# Empty dependencies file for test_crossval.
# This may be replaced when dependencies are built.
