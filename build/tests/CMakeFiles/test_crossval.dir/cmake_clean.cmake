file(REMOVE_RECURSE
  "CMakeFiles/test_crossval.dir/test_crossval.cc.o"
  "CMakeFiles/test_crossval.dir/test_crossval.cc.o.d"
  "test_crossval"
  "test_crossval.pdb"
  "test_crossval[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_crossval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
