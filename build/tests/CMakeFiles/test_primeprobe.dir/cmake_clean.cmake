file(REMOVE_RECURSE
  "CMakeFiles/test_primeprobe.dir/test_primeprobe.cc.o"
  "CMakeFiles/test_primeprobe.dir/test_primeprobe.cc.o.d"
  "test_primeprobe"
  "test_primeprobe.pdb"
  "test_primeprobe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_primeprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
