# Empty dependencies file for test_primeprobe.
# This may be replaced when dependencies are built.
