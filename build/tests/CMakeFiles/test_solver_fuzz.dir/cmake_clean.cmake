file(REMOVE_RECURSE
  "CMakeFiles/test_solver_fuzz.dir/test_solver_fuzz.cc.o"
  "CMakeFiles/test_solver_fuzz.dir/test_solver_fuzz.cc.o.d"
  "test_solver_fuzz"
  "test_solver_fuzz.pdb"
  "test_solver_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
