file(REMOVE_RECURSE
  "CMakeFiles/test_hw_core.dir/test_hw_core.cc.o"
  "CMakeFiles/test_hw_core.dir/test_hw_core.cc.o.d"
  "test_hw_core"
  "test_hw_core.pdb"
  "test_hw_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
