# Empty compiler generated dependencies file for test_hw_core.
# This may be replaced when dependencies are built.
