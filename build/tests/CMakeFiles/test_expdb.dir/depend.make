# Empty dependencies file for test_expdb.
# This may be replaced when dependencies are built.
