file(REMOVE_RECURSE
  "CMakeFiles/test_expdb.dir/test_expdb.cc.o"
  "CMakeFiles/test_expdb.dir/test_expdb.cc.o.d"
  "test_expdb"
  "test_expdb.pdb"
  "test_expdb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_expdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
