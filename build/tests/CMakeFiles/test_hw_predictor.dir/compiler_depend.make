# Empty compiler generated dependencies file for test_hw_predictor.
# This may be replaced when dependencies are built.
