file(REMOVE_RECURSE
  "CMakeFiles/test_hw_predictor.dir/test_hw_predictor.cc.o"
  "CMakeFiles/test_hw_predictor.dir/test_hw_predictor.cc.o.d"
  "test_hw_predictor"
  "test_hw_predictor.pdb"
  "test_hw_predictor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
