file(REMOVE_RECURSE
  "CMakeFiles/test_siscloak.dir/test_siscloak.cc.o"
  "CMakeFiles/test_siscloak.dir/test_siscloak.cc.o.d"
  "test_siscloak"
  "test_siscloak.pdb"
  "test_siscloak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_siscloak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
