# Empty dependencies file for test_siscloak.
# This may be replaced when dependencies are built.
