file(REMOVE_RECURSE
  "CMakeFiles/test_hw_prefetcher.dir/test_hw_prefetcher.cc.o"
  "CMakeFiles/test_hw_prefetcher.dir/test_hw_prefetcher.cc.o.d"
  "test_hw_prefetcher"
  "test_hw_prefetcher.pdb"
  "test_hw_prefetcher[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
