# Empty dependencies file for test_rel.
# This may be replaced when dependencies are built.
