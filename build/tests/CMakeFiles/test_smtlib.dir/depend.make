# Empty dependencies file for test_smtlib.
# This may be replaced when dependencies are built.
