file(REMOVE_RECURSE
  "CMakeFiles/test_smtlib.dir/test_smtlib.cc.o"
  "CMakeFiles/test_smtlib.dir/test_smtlib.cc.o.d"
  "test_smtlib"
  "test_smtlib.pdb"
  "test_smtlib[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smtlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
