# Empty dependencies file for test_bv.
# This may be replaced when dependencies are built.
