file(REMOVE_RECURSE
  "CMakeFiles/test_bv.dir/test_bv.cc.o"
  "CMakeFiles/test_bv.dir/test_bv.cc.o.d"
  "test_bv"
  "test_bv.pdb"
  "test_bv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
