file(REMOVE_RECURSE
  "CMakeFiles/test_hw_cache.dir/test_hw_cache.cc.o"
  "CMakeFiles/test_hw_cache.dir/test_hw_cache.cc.o.d"
  "test_hw_cache"
  "test_hw_cache.pdb"
  "test_hw_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
