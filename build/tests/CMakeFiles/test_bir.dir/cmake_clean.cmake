file(REMOVE_RECURSE
  "CMakeFiles/test_bir.dir/test_bir.cc.o"
  "CMakeFiles/test_bir.dir/test_bir.cc.o.d"
  "test_bir"
  "test_bir.pdb"
  "test_bir[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
