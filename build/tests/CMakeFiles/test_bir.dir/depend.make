# Empty dependencies file for test_bir.
# This may be replaced when dependencies are built.
