file(REMOVE_RECURSE
  "libscamv_obs.a"
)
