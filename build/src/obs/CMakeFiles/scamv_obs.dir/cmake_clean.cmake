file(REMOVE_RECURSE
  "CMakeFiles/scamv_obs.dir/models.cc.o"
  "CMakeFiles/scamv_obs.dir/models.cc.o.d"
  "libscamv_obs.a"
  "libscamv_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
