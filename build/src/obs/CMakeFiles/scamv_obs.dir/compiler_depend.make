# Empty compiler generated dependencies file for scamv_obs.
# This may be replaced when dependencies are built.
