file(REMOVE_RECURSE
  "CMakeFiles/scamv_smt.dir/sampler.cc.o"
  "CMakeFiles/scamv_smt.dir/sampler.cc.o.d"
  "CMakeFiles/scamv_smt.dir/smtlib.cc.o"
  "CMakeFiles/scamv_smt.dir/smtlib.cc.o.d"
  "CMakeFiles/scamv_smt.dir/solver.cc.o"
  "CMakeFiles/scamv_smt.dir/solver.cc.o.d"
  "libscamv_smt.a"
  "libscamv_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
