# Empty compiler generated dependencies file for scamv_smt.
# This may be replaced when dependencies are built.
