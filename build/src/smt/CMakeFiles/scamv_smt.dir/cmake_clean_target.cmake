file(REMOVE_RECURSE
  "libscamv_smt.a"
)
