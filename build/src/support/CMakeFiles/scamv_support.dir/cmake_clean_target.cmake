file(REMOVE_RECURSE
  "libscamv_support.a"
)
