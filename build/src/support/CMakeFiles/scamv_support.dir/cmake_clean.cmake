file(REMOVE_RECURSE
  "CMakeFiles/scamv_support.dir/logging.cc.o"
  "CMakeFiles/scamv_support.dir/logging.cc.o.d"
  "CMakeFiles/scamv_support.dir/rng.cc.o"
  "CMakeFiles/scamv_support.dir/rng.cc.o.d"
  "CMakeFiles/scamv_support.dir/table.cc.o"
  "CMakeFiles/scamv_support.dir/table.cc.o.d"
  "libscamv_support.a"
  "libscamv_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
