# Empty compiler generated dependencies file for scamv_support.
# This may be replaced when dependencies are built.
