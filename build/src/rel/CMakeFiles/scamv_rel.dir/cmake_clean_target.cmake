file(REMOVE_RECURSE
  "libscamv_rel.a"
)
