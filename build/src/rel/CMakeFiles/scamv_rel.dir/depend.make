# Empty dependencies file for scamv_rel.
# This may be replaced when dependencies are built.
