file(REMOVE_RECURSE
  "CMakeFiles/scamv_rel.dir/relation.cc.o"
  "CMakeFiles/scamv_rel.dir/relation.cc.o.d"
  "libscamv_rel.a"
  "libscamv_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
