file(REMOVE_RECURSE
  "libscamv_bir.a"
)
