# Empty compiler generated dependencies file for scamv_bir.
# This may be replaced when dependencies are built.
