
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bir/asm.cc" "src/bir/CMakeFiles/scamv_bir.dir/asm.cc.o" "gcc" "src/bir/CMakeFiles/scamv_bir.dir/asm.cc.o.d"
  "/root/repo/src/bir/bir.cc" "src/bir/CMakeFiles/scamv_bir.dir/bir.cc.o" "gcc" "src/bir/CMakeFiles/scamv_bir.dir/bir.cc.o.d"
  "/root/repo/src/bir/cfg.cc" "src/bir/CMakeFiles/scamv_bir.dir/cfg.cc.o" "gcc" "src/bir/CMakeFiles/scamv_bir.dir/cfg.cc.o.d"
  "/root/repo/src/bir/transform.cc" "src/bir/CMakeFiles/scamv_bir.dir/transform.cc.o" "gcc" "src/bir/CMakeFiles/scamv_bir.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/scamv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
