file(REMOVE_RECURSE
  "CMakeFiles/scamv_bir.dir/asm.cc.o"
  "CMakeFiles/scamv_bir.dir/asm.cc.o.d"
  "CMakeFiles/scamv_bir.dir/bir.cc.o"
  "CMakeFiles/scamv_bir.dir/bir.cc.o.d"
  "CMakeFiles/scamv_bir.dir/cfg.cc.o"
  "CMakeFiles/scamv_bir.dir/cfg.cc.o.d"
  "CMakeFiles/scamv_bir.dir/transform.cc.o"
  "CMakeFiles/scamv_bir.dir/transform.cc.o.d"
  "libscamv_bir.a"
  "libscamv_bir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_bir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
