file(REMOVE_RECURSE
  "libscamv_bv.a"
)
