# Empty dependencies file for scamv_bv.
# This may be replaced when dependencies are built.
