file(REMOVE_RECURSE
  "CMakeFiles/scamv_bv.dir/bitblast.cc.o"
  "CMakeFiles/scamv_bv.dir/bitblast.cc.o.d"
  "libscamv_bv.a"
  "libscamv_bv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_bv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
