file(REMOVE_RECURSE
  "libscamv_hw.a"
)
