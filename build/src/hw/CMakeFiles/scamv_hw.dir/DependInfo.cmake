
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/scamv_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/scamv_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/core.cc" "src/hw/CMakeFiles/scamv_hw.dir/core.cc.o" "gcc" "src/hw/CMakeFiles/scamv_hw.dir/core.cc.o.d"
  "/root/repo/src/hw/memory.cc" "src/hw/CMakeFiles/scamv_hw.dir/memory.cc.o" "gcc" "src/hw/CMakeFiles/scamv_hw.dir/memory.cc.o.d"
  "/root/repo/src/hw/predictor.cc" "src/hw/CMakeFiles/scamv_hw.dir/predictor.cc.o" "gcc" "src/hw/CMakeFiles/scamv_hw.dir/predictor.cc.o.d"
  "/root/repo/src/hw/prefetcher.cc" "src/hw/CMakeFiles/scamv_hw.dir/prefetcher.cc.o" "gcc" "src/hw/CMakeFiles/scamv_hw.dir/prefetcher.cc.o.d"
  "/root/repo/src/hw/tlb.cc" "src/hw/CMakeFiles/scamv_hw.dir/tlb.cc.o" "gcc" "src/hw/CMakeFiles/scamv_hw.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bir/CMakeFiles/scamv_bir.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/scamv_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/scamv_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/scamv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scamv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
