file(REMOVE_RECURSE
  "CMakeFiles/scamv_hw.dir/cache.cc.o"
  "CMakeFiles/scamv_hw.dir/cache.cc.o.d"
  "CMakeFiles/scamv_hw.dir/core.cc.o"
  "CMakeFiles/scamv_hw.dir/core.cc.o.d"
  "CMakeFiles/scamv_hw.dir/memory.cc.o"
  "CMakeFiles/scamv_hw.dir/memory.cc.o.d"
  "CMakeFiles/scamv_hw.dir/predictor.cc.o"
  "CMakeFiles/scamv_hw.dir/predictor.cc.o.d"
  "CMakeFiles/scamv_hw.dir/prefetcher.cc.o"
  "CMakeFiles/scamv_hw.dir/prefetcher.cc.o.d"
  "CMakeFiles/scamv_hw.dir/tlb.cc.o"
  "CMakeFiles/scamv_hw.dir/tlb.cc.o.d"
  "libscamv_hw.a"
  "libscamv_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
