# Empty compiler generated dependencies file for scamv_hw.
# This may be replaced when dependencies are built.
