file(REMOVE_RECURSE
  "CMakeFiles/scamv_sat.dir/solver.cc.o"
  "CMakeFiles/scamv_sat.dir/solver.cc.o.d"
  "libscamv_sat.a"
  "libscamv_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
