file(REMOVE_RECURSE
  "libscamv_sat.a"
)
