# Empty compiler generated dependencies file for scamv_sat.
# This may be replaced when dependencies are built.
