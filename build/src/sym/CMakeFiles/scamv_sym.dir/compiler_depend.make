# Empty compiler generated dependencies file for scamv_sym.
# This may be replaced when dependencies are built.
