file(REMOVE_RECURSE
  "libscamv_sym.a"
)
