file(REMOVE_RECURSE
  "CMakeFiles/scamv_sym.dir/symexec.cc.o"
  "CMakeFiles/scamv_sym.dir/symexec.cc.o.d"
  "libscamv_sym.a"
  "libscamv_sym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_sym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
