# Empty dependencies file for scamv_core.
# This may be replaced when dependencies are built.
