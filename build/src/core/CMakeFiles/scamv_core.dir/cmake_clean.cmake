file(REMOVE_RECURSE
  "CMakeFiles/scamv_core.dir/expdb.cc.o"
  "CMakeFiles/scamv_core.dir/expdb.cc.o.d"
  "CMakeFiles/scamv_core.dir/pipeline.cc.o"
  "CMakeFiles/scamv_core.dir/pipeline.cc.o.d"
  "CMakeFiles/scamv_core.dir/repair.cc.o"
  "CMakeFiles/scamv_core.dir/repair.cc.o.d"
  "CMakeFiles/scamv_core.dir/report.cc.o"
  "CMakeFiles/scamv_core.dir/report.cc.o.d"
  "libscamv_core.a"
  "libscamv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
