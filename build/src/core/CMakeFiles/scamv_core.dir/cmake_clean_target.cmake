file(REMOVE_RECURSE
  "libscamv_core.a"
)
