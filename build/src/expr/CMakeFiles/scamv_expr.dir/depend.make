# Empty dependencies file for scamv_expr.
# This may be replaced when dependencies are built.
