file(REMOVE_RECURSE
  "CMakeFiles/scamv_expr.dir/eval.cc.o"
  "CMakeFiles/scamv_expr.dir/eval.cc.o.d"
  "CMakeFiles/scamv_expr.dir/expr.cc.o"
  "CMakeFiles/scamv_expr.dir/expr.cc.o.d"
  "libscamv_expr.a"
  "libscamv_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
