file(REMOVE_RECURSE
  "libscamv_expr.a"
)
