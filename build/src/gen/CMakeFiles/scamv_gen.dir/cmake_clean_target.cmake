file(REMOVE_RECURSE
  "libscamv_gen.a"
)
