file(REMOVE_RECURSE
  "CMakeFiles/scamv_gen.dir/templates.cc.o"
  "CMakeFiles/scamv_gen.dir/templates.cc.o.d"
  "libscamv_gen.a"
  "libscamv_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
