# Empty dependencies file for scamv_gen.
# This may be replaced when dependencies are built.
