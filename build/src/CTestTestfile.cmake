# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("expr")
subdirs("bir")
subdirs("sym")
subdirs("obs")
subdirs("sat")
subdirs("bv")
subdirs("smt")
subdirs("rel")
subdirs("hw")
subdirs("harness")
subdirs("gen")
subdirs("core")
