
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/flush_reload.cc" "src/harness/CMakeFiles/scamv_harness.dir/flush_reload.cc.o" "gcc" "src/harness/CMakeFiles/scamv_harness.dir/flush_reload.cc.o.d"
  "/root/repo/src/harness/platform.cc" "src/harness/CMakeFiles/scamv_harness.dir/platform.cc.o" "gcc" "src/harness/CMakeFiles/scamv_harness.dir/platform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/scamv_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/scamv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/scamv_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/scamv_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/bir/CMakeFiles/scamv_bir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scamv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
