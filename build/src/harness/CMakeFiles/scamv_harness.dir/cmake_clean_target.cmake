file(REMOVE_RECURSE
  "libscamv_harness.a"
)
