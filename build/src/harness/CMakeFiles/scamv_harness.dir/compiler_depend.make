# Empty compiler generated dependencies file for scamv_harness.
# This may be replaced when dependencies are built.
