file(REMOVE_RECURSE
  "CMakeFiles/scamv_harness.dir/flush_reload.cc.o"
  "CMakeFiles/scamv_harness.dir/flush_reload.cc.o.d"
  "CMakeFiles/scamv_harness.dir/platform.cc.o"
  "CMakeFiles/scamv_harness.dir/platform.cc.o.d"
  "libscamv_harness.a"
  "libscamv_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scamv_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
