
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scamv_core.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/scamv_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/scamv_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/rel/CMakeFiles/scamv_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/scamv_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/scamv_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/sym/CMakeFiles/scamv_sym.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/scamv_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/bir/CMakeFiles/scamv_bir.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/scamv_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/scamv_support.dir/DependInfo.cmake"
  "/root/repo/build/src/bv/CMakeFiles/scamv_bv.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/scamv_sat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
