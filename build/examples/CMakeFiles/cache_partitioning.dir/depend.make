# Empty dependencies file for cache_partitioning.
# This may be replaced when dependencies are built.
