file(REMOVE_RECURSE
  "CMakeFiles/cache_partitioning.dir/cache_partitioning.cpp.o"
  "CMakeFiles/cache_partitioning.dir/cache_partitioning.cpp.o.d"
  "cache_partitioning"
  "cache_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
