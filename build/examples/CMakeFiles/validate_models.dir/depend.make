# Empty dependencies file for validate_models.
# This may be replaced when dependencies are built.
