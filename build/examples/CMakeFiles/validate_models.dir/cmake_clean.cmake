file(REMOVE_RECURSE
  "CMakeFiles/validate_models.dir/validate_models.cpp.o"
  "CMakeFiles/validate_models.dir/validate_models.cpp.o.d"
  "validate_models"
  "validate_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
