file(REMOVE_RECURSE
  "CMakeFiles/siscloak_attack.dir/siscloak_attack.cpp.o"
  "CMakeFiles/siscloak_attack.dir/siscloak_attack.cpp.o.d"
  "siscloak_attack"
  "siscloak_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siscloak_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
