# Empty dependencies file for siscloak_attack.
# This may be replaced when dependencies are built.
