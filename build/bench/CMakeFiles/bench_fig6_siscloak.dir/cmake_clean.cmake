file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_siscloak.dir/bench_fig6_siscloak.cpp.o"
  "CMakeFiles/bench_fig6_siscloak.dir/bench_fig6_siscloak.cpp.o.d"
  "bench_fig6_siscloak"
  "bench_fig6_siscloak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_siscloak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
