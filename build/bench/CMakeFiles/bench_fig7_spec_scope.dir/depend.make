# Empty dependencies file for bench_fig7_spec_scope.
# This may be replaced when dependencies are built.
