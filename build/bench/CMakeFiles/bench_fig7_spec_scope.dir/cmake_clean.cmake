file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_spec_scope.dir/bench_fig7_spec_scope.cpp.o"
  "CMakeFiles/bench_fig7_spec_scope.dir/bench_fig7_spec_scope.cpp.o.d"
  "bench_fig7_spec_scope"
  "bench_fig7_spec_scope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_spec_scope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
