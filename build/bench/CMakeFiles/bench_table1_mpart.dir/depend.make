# Empty dependencies file for bench_table1_mpart.
# This may be replaced when dependencies are built.
