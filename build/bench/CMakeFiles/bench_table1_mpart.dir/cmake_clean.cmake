file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mpart.dir/bench_table1_mpart.cpp.o"
  "CMakeFiles/bench_table1_mpart.dir/bench_table1_mpart.cpp.o.d"
  "bench_table1_mpart"
  "bench_table1_mpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
