file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mct_b.dir/bench_table1_mct_b.cpp.o"
  "CMakeFiles/bench_table1_mct_b.dir/bench_table1_mct_b.cpp.o.d"
  "bench_table1_mct_b"
  "bench_table1_mct_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mct_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
