/**
 * @file
 * SC frontend bench: compiles the example corpus repeatedly
 * (bench/front_report.hh) and emits `BENCH_front.json`.  Exits
 * non-zero when compilation throughput, corpus-load determinism or
 * the assembler round-trip regress, so CI catches frontend rot the
 * way it catches campaign-engine rot.
 */

#include <cstdio>

#include "front_report.hh"

int
main()
{
    const bool ok = scamv::benchsupport::writeFrontReport(
        std::string(SCAMV_REPO_ROOT) + "/examples/corpus");
    if (!ok)
        std::printf("[front] FAILED (see BENCH_front.json)\n");
    return ok ? 0 : 1;
}
