/**
 * @file
 * Shared bench helper: run a campaign at threads=1 and
 * threads=hardware_concurrency, report both wall-clocks, and emit
 * `BENCH_parallel.json` with the per-campaign speedup.
 *
 * Determinism is checked on the spot — the serial and parallel runs
 * must agree on every counter (they share a seed), so the speedup
 * numbers always describe equivalent work.
 *
 * The JSON file is merged across bench binaries: each writer re-reads
 * the campaign lines it previously wrote (one entry per line, a
 * format this header controls end to end) and rewrites the union, so
 * running all table benches accumulates one consolidated report.
 */

#ifndef SCAMV_BENCH_PARALLEL_REPORT_HH
#define SCAMV_BENCH_PARALLEL_REPORT_HH

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "core/pipeline.hh"
#include "support/stopwatch.hh"
#include "support/thread_pool.hh"

namespace scamv::benchsupport {

/** Collects threads=1 vs threads=N campaign timings. */
class ParallelReport
{
  public:
    /**
     * Run `cfg` serially and with the default thread count, print
     * the comparison, and record it under `campaign`.
     * @return the serial run's stats (identical counters; timing
     *         fields carry the reference single-thread meaning).
     */
    core::RunStats
    compare(const std::string &campaign, core::PipelineConfig cfg)
    {
        const int n =
            static_cast<int>(ThreadPool::defaultThreadCount());

        cfg.threads = 1;
        Stopwatch serial_watch;
        const core::RunStats serial = core::Pipeline(cfg).run();
        const double serial_s = serial_watch.seconds();

        cfg.threads = n;
        Stopwatch parallel_watch;
        const core::RunStats parallel = core::Pipeline(cfg).run();
        const double parallel_s = parallel_watch.seconds();

        // The merged metrics counters subsume the legacy RunStats
        // fields (which are rebuilt from them), and also cover every
        // solver/hardware counter reported by the layers below.
        // Timings are excluded: in wall-clock mode they legitimately
        // differ between the two runs.
        const bool identical =
            serial.programs == parallel.programs &&
            serial.programsWithCex == parallel.programsWithCex &&
            serial.experiments == parallel.experiments &&
            serial.counterexamples == parallel.counterexamples &&
            serial.inconclusive == parallel.inconclusive &&
            serial.generationFailures == parallel.generationFailures &&
            serial.metrics.counters == parallel.metrics.counters;

        Entry e;
        e.threads = n;
        e.serialSeconds = serial_s;
        e.parallelSeconds = parallel_s;
        e.identical = identical;
        entries[campaign] = e;

        std::printf("[parallel] %-32s threads=1: %.2fs  threads=%d: "
                    "%.2fs  speedup: %.2fx  deterministic: %s\n",
                    campaign.c_str(), serial_s, n, parallel_s,
                    parallel_s > 0 ? serial_s / parallel_s : 0.0,
                    identical ? "yes" : "NO");
        return serial;
    }

    /** Write (merging with any existing file) BENCH_parallel.json. */
    bool
    write(const std::string &path = "BENCH_parallel.json") const
    {
        // Fold previously written campaign lines into the union.
        std::map<std::string, std::string> lines = existingLines(path);
        for (const auto &[name, e] : entries) {
            std::ostringstream line;
            char buf[256];
            std::snprintf(buf, sizeof buf,
                          "\"%s\": {\"threads\": %d, "
                          "\"serial_s\": %.4f, \"parallel_s\": %.4f, "
                          "\"speedup\": %.3f, \"deterministic\": %s}",
                          name.c_str(), e.threads, e.serialSeconds,
                          e.parallelSeconds,
                          e.parallelSeconds > 0
                              ? e.serialSeconds / e.parallelSeconds
                              : 0.0,
                          e.identical ? "true" : "false");
            lines[name] = buf;
        }

        std::ofstream out(path);
        if (!out)
            return false;
        out << "{\n  \"benchmark\": \"parallel campaign speedup\",\n"
            << "  \"campaigns\": {\n";
        std::size_t i = 0;
        for (const auto &[name, line] : lines) {
            out << "    " << line;
            if (++i != lines.size())
                out << ',';
            out << '\n';
        }
        out << "  }\n}\n";
        return static_cast<bool>(out);
    }

  private:
    struct Entry {
        int threads = 1;
        double serialSeconds = 0.0;
        double parallelSeconds = 0.0;
        bool identical = true;
    };

    /**
     * Re-parse campaign lines from a previous write().  Only the
     * exact one-entry-per-line shape produced above is recognized;
     * anything else is ignored, which at worst drops a stale entry.
     */
    static std::map<std::string, std::string>
    existingLines(const std::string &path)
    {
        std::map<std::string, std::string> out;
        std::ifstream in(path);
        std::string line;
        while (std::getline(in, line)) {
            if (line.find("\"speedup\"") == std::string::npos)
                continue;
            const auto first = line.find('"');
            const auto second = line.find('"', first + 1);
            if (first == std::string::npos ||
                second == std::string::npos)
                continue;
            std::string body = line.substr(first);
            while (!body.empty() &&
                   (body.back() == ',' || body.back() == ' ' ||
                    body.back() == '\r'))
                body.pop_back();
            out[line.substr(first + 1, second - first - 1)] = body;
        }
        return out;
    }

    std::map<std::string, Entry> entries;
};

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_PARALLEL_REPORT_HH
