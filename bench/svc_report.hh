/**
 * @file
 * Shared bench helper: measure the campaign service's shared
 * cross-campaign qcache (src/svc) and emit `BENCH_svc.json`
 * (schema "scamv-svc-v1").
 *
 * A multi-tenant shop re-runs near-identical campaigns all day
 * (re-validating a model after every harness tweak), and without the
 * service each run re-solves the same SMT queries from scratch.  The
 * bench runs N identical campaigns both ways:
 *
 *  - standalone: each campaign through the shard worker/merge
 *    machinery with its own private qcache — what N one-shot CLI
 *    invocations cost;
 *  - service: the same N submissions through one `svc::Service`,
 *    whose shared checkpoint seeds every campaign after the first.
 *
 * Gates: the aggregate wall-clock speedup must reach
 * `kMinSvcSpeedup` *or* the shared cache must avoid at least
 * `kMinSvcSolvesAvoided` of the standalone cache misses (cache-miss
 * counts are exact and host-independent; the wall clock is the
 * honest end-to-end number — the same disjunction as the triage
 * gate).  And every service campaign's deterministic artifacts
 * (metrics / coverage / db / stats) must be byte-identical to its
 * standalone run — invariant 10 — a gate that never relaxes.
 */

#ifndef SCAMV_BENCH_SVC_REPORT_HH
#define SCAMV_BENCH_SVC_REPORT_HH

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cover/ledger.hh"
#include "shard/shard.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "svc/svc.hh"

namespace scamv::benchsupport {

/** Required standalone : service aggregate wall-clock advantage. */
inline constexpr double kMinSvcSpeedup = 1.3;

/** Alternative gate: fraction of standalone cache misses (actual
 *  solver work) the shared checkpoint must avoid. */
inline constexpr double kMinSvcSolvesAvoided = 0.3;

namespace svc_detail {

inline std::uint64_t
globalCounter(const char *name)
{
    return metrics::Registry::global().counter(name).value();
}

inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return in ? text.str() : std::string("<unreadable:" + path + ">");
}

/** The repeated campaign: the shard bench's workload family. */
inline svc::SubmissionSpec
tenantSpec()
{
    svc::SubmissionSpec spec;
    spec.programs =
        std::max(6, core::scaled(10, core::scaleFromEnv(1.0)));
    spec.tests = 3;
    spec.seed = 7;
    return spec;
}

/** One standalone campaign: worker per shard + coordinator merge,
 *  exactly the scamv_worker / scamv_merge CLI path. */
inline bool
runStandalone(const svc::SubmissionSpec &spec, int shards,
              const std::string &root)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    for (int i = 0; i < shards; ++i) {
        fs::create_directories(shard::shardDir(root, i), ec);
        core::PipelineConfig cfg = svc::campaignConfig(spec);
        cover::CoverageLedger ledger;
        cfg.coverageLedger = &ledger;
        if (!shard::runWorker(cfg, shard::ShardSpec{i, shards},
                              shard::shardDir(root, i))
                 .ok)
            return false;
    }
    core::PipelineConfig cfg = svc::campaignConfig(spec);
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    return shard::mergeCampaign(cfg, shards, root, opts).ok;
}

/** Byte-compare the cache-state-invariant artifact set. */
inline bool
artifactsEqual(const std::string &dir, const std::string &ref)
{
    for (const char *f : {shard::kMetricsFile, shard::kCoverageFile,
                          shard::kDbFile, shard::kStatsFile})
        if (readFile(dir + "/" + std::string(f)) !=
            readFile(ref + "/" + std::string(f)))
            return false;
    return true;
}

} // namespace svc_detail

/**
 * Run the standalone vs service comparison and write `path` in the
 * "scamv-svc-v1" schema.
 * @return false when the report cannot be written, any service
 * campaign's artifacts diverge from its standalone run, or both the
 * speedup and the avoided-solves gates miss.
 */
inline bool
writeSvcReport(const std::string &path = "BENCH_svc.json")
{
    using namespace svc_detail;
    namespace fs = std::filesystem;

    constexpr int kCampaigns = 3;
    constexpr int kShards = 2;
    const svc::SubmissionSpec spec = tenantSpec();
    const std::string root = fs::temp_directory_path().string() +
                             "/scamv_bench_svc";
    fs::remove_all(root);
    fs::create_directories(root);

    // Both legs run the campaign machinery with the same cache env;
    // the only difference is the service's shared checkpoint.
    setenv("SCAMV_QCACHE_MB", "64", 1);
    unsetenv("SCAMV_QCACHE_FILE");

    // ---- standalone leg: N private caches ------------------------
    const std::uint64_t sa_m0 = globalCounter("qcache.miss");
    Stopwatch standalone_watch;
    bool ok = true;
    for (int i = 0; i < kCampaigns && ok; ++i)
        ok = runStandalone(spec, kShards,
                           root + "/standalone-" + std::to_string(i));
    const double standalone_s = standalone_watch.seconds();
    const std::uint64_t standalone_misses =
        globalCounter("qcache.miss") - sa_m0;

    // ---- service leg: one shared checkpoint ----------------------
    const std::uint64_t sv_m0 = globalCounter("qcache.miss");
    Stopwatch service_watch;
    std::vector<std::uint64_t> ids;
    if (ok) {
        svc::ServiceConfig cfg;
        cfg.dir = root + "/svc";
        cfg.workers = 2;
        cfg.shards = kShards;
        svc::Service service(cfg);
        for (int i = 0; i < kCampaigns && ok; ++i) {
            const svc::SubmitResult res = service.submit(spec);
            ok = res.accepted && service.wait(res.id);
            if (ok)
                ids.push_back(res.id);
        }
        service.drain();
    }
    const double service_s = service_watch.seconds();
    const std::uint64_t service_misses =
        globalCounter("qcache.miss") - sv_m0;
    unsetenv("SCAMV_QCACHE_MB");

    // ---- gates ---------------------------------------------------
    bool deterministic = ok;
    for (int i = 0; deterministic && i < kCampaigns; ++i)
        deterministic = artifactsEqual(
            root + "/svc/campaign-" + std::to_string(ids.at(i)),
            root + "/standalone-" + std::to_string(i));
    const double speedup =
        service_s > 0.0 ? standalone_s / service_s : 0.0;
    const double avoided =
        standalone_misses > 0
            ? 1.0 - static_cast<double>(service_misses) /
                        static_cast<double>(standalone_misses)
            : 0.0;

    std::printf("[svc] standalone: %d campaigns in %.3fs "
                "(%llu cache misses)\n",
                kCampaigns, standalone_s,
                static_cast<unsigned long long>(standalone_misses));
    std::printf("[svc] service:    %d campaigns in %.3fs "
                "(%llu cache misses, shared checkpoint)\n",
                kCampaigns, service_s,
                static_cast<unsigned long long>(service_misses));
    std::printf("[svc] speedup: %.2fx (gate %.1fx)  solves avoided: "
                "%.0f%% (gate %.0f%%)  deterministic: %s\n",
                speedup, kMinSvcSpeedup, 100.0 * avoided,
                100.0 * kMinSvcSolvesAvoided,
                deterministic ? "yes" : "NO");

    char buf[640];
    std::string body = "{\n  \"schema\": \"scamv-svc-v1\",\n";
    std::snprintf(buf, sizeof buf,
                  "  \"campaigns\": %d,\n  \"shards\": %d,\n"
                  "  \"workload\": {\"programs\": %d, "
                  "\"tests_per_program\": %d, \"seed\": %llu},\n",
                  kCampaigns, kShards, spec.programs, spec.tests,
                  static_cast<unsigned long long>(spec.seed));
    body += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"standalone_seconds\": %.4f,\n"
                  "  \"service_seconds\": %.4f,\n"
                  "  \"speedup\": %.3f,\n  \"min_speedup\": %.2f,\n"
                  "  \"standalone_misses\": %llu,\n"
                  "  \"service_misses\": %llu,\n"
                  "  \"solves_avoided\": %.3f,\n"
                  "  \"min_solves_avoided\": %.2f,\n"
                  "  \"deterministic\": %s\n}\n",
                  standalone_s, service_s, speedup, kMinSvcSpeedup,
                  static_cast<unsigned long long>(standalone_misses),
                  static_cast<unsigned long long>(service_misses),
                  avoided, kMinSvcSolvesAvoided,
                  deterministic ? "true" : "false");
    body += buf;

    std::ofstream out(path);
    const bool wrote = out && (out << body);
    out.close();
    fs::remove_all(root);
    return wrote && deterministic &&
           (speedup >= kMinSvcSpeedup ||
            avoided >= kMinSvcSolvesAvoided);
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_SVC_REPORT_HH
