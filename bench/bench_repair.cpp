/**
 * @file
 * Automatic model repair demo (Section 8 future work): for each
 * evaluation scenario, walk the more-restrictiveness lattice until a
 * candidate model validates without counterexamples, and report the
 * lattice path and per-candidate statistics.
 *
 * Expected repairs on the A53 core model:
 *   Mct   / Template A  -> Mspec1 (one transient load is everything)
 *   Mct   / Template C  -> Mspec1 (dependent loads never issue)
 *   Mct   / Template B  -> Mspec  (independent loads need full obs)
 *   Mpart / Stride      -> Mpart' (observe all access lines)
 */

#include <cstdio>

#include "core/repair.hh"

using namespace scamv;
using core::RepairConfig;

namespace {

void
report(const char *scenario, const core::RepairResult &r)
{
    std::printf("%s: %s", scenario, obs::modelName(r.original));
    for (std::size_t i = 1; i < r.attempts.size(); ++i)
        std::printf(" -> %s", obs::modelName(r.attempts[i].model));
    if (r.repaired)
        std::printf("   [repaired: %s]\n", obs::modelName(*r.repaired));
    else
        std::printf("   [no sound candidate in lattice]\n");
    for (const auto &a : r.attempts) {
        std::printf("    %-7s %-9s cex=%5ld / %5ld experiments%s\n",
                    obs::modelName(a.model),
                    a.sound ? "sound" : "unsound",
                    a.stats.counterexamples, a.stats.experiments,
                    a.vacuous ? " (vacuous: refinement adds nothing)"
                              : "");
    }
}

RepairConfig
config(gen::TemplateKind kind, bool train, double scale)
{
    RepairConfig cfg;
    cfg.campaign.templateKind = kind;
    cfg.campaign.train = train;
    cfg.campaign.programs = core::scaled(60, scale);
    cfg.campaign.testsPerProgram = 20;
    cfg.campaign.seed = 808;
    return cfg;
}

} // namespace

int
main()
{
    const double scale = core::scaleFromEnv(1.0);
    std::printf("=== Automatic model repair (Section 8 future work) "
                "[SCAMV_SCALE=%.2f] ===\n\n", scale);

    report("Mct / Template A",
           core::repairModel(obs::ModelKind::Mct,
                             config(gen::TemplateKind::A, true, scale)));
    report("Mct / Template C",
           core::repairModel(obs::ModelKind::Mct,
                             config(gen::TemplateKind::C, true, scale)));
    report("Mct / Template B",
           core::repairModel(obs::ModelKind::Mct,
                             config(gen::TemplateKind::B, true, scale)));

    RepairConfig mpart = config(gen::TemplateKind::Stride, false, scale);
    mpart.campaign.coverage = core::Coverage::PcAndLine;
    mpart.campaign.modelParams.attacker.loSet = 61;
    mpart.campaign.platform.visibleLoSet = 61;
    mpart.campaign.platform.visibleHiSet = 127;
    report("Mpart / Stride",
           core::repairModel(obs::ModelKind::Mpart, mpart));

    std::printf("\nReading: the repairer recovers exactly the scope "
                "results of Section 6.5 —\nobserving the first "
                "transient load suffices unless transient loads are\n"
                "independent, and cache colouring needs line "
                "observations everywhere.\n");
    return 0;
}
