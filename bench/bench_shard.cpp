/**
 * @file
 * Sharded campaign bench: runs the single-process vs N-worker
 * comparison of bench/shard_report.hh and emits `BENCH_shard.json`.
 * Exits non-zero when the sharded run misses its end-to-end speedup
 * gate or the coordinator merge diverges from the single-process
 * campaign artifacts, so CI catches both scaling and determinism
 * regressions.
 */

#include <cstdio>

#include "shard_report.hh"

int
main()
{
    const bool ok = scamv::benchsupport::writeShardReport();
    if (!ok)
        std::printf("[shard] FAILED (see BENCH_shard.json)\n");
    return ok ? 0 : 1;
}
