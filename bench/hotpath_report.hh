/**
 * @file
 * Shared bench helper: measure the hot-path engine (batched
 * arena-backed simulation + incremental per-pair solving) against the
 * pre-hotpath baseline on the paper's stride workload and emit
 * `BENCH_hotpath.json` (schema "scamv-hotpath-v1").
 *
 * Three configurations run the same campaign (same seed, programs,
 * tests):
 *
 *  - baseline_oneshot: SolverMode::Oneshot (fresh solver per test,
 *    op-log replay) with batched simulation off (fresh hw::Core per
 *    repetition) — the quadratic-solving, allocation-heavy shape the
 *    hot-path engine replaces;
 *  - hotpath_incremental: SolverMode::Incremental with batched
 *    simulation on — one live solver per pair, one arena-backed core
 *    per experiment;
 *  - hotpath_portfolio: like incremental, plus the sampler scout on
 *    genuine budget exhaustion (never fires on this workload).
 *
 * All three must produce byte-identical campaign artifacts (verdict
 * counters and the ExperimentDb CSV) — the report's "deterministic"
 * field — and the incremental configuration must beat the baseline by
 * `kMinSpeedup` end-to-end, which is the report's self-gate.
 * Per-program latency percentiles come from the campaign's
 * `pipeline.program_seconds` histogram (wall-clock registry).
 */

#ifndef SCAMV_BENCH_HOTPATH_REPORT_HH
#define SCAMV_BENCH_HOTPATH_REPORT_HH

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "gen/templates.hh"
#include "obs/models.hh"
#include "smt/modes.hh"
#include "support/stopwatch.hh"

namespace scamv::benchsupport {

/** Required baseline : hotpath end-to-end wall-clock advantage. */
inline constexpr double kMinSpeedup = 1.5;

namespace hotpath_detail {

struct ModeResult {
    core::RunStats stats;
    double wallSeconds = 0.0;
    double p50 = 0.0; ///< per-program latency median (seconds)
    double p99 = 0.0; ///< per-program latency tail (seconds)
    std::string csv;  ///< ExperimentDb export (determinism witness)
};

inline core::PipelineConfig
strideWorkload()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.testsPerProgram = 8;
    cfg.seed = 99;
    cfg.threads = 1;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    cfg.programs =
        std::max(8, core::scaled(16, core::scaleFromEnv(1.0)));
    return cfg;
}

inline ModeResult
runMode(smt::SolverMode mode, int sim_batch)
{
    core::ExperimentDb db;
    core::PipelineConfig cfg = strideWorkload();
    cfg.solverMode = mode;
    cfg.platform.simBatch = sim_batch;
    cfg.database = &db;
    ModeResult r;
    Stopwatch watch;
    r.stats = core::Pipeline(cfg).run();
    r.wallSeconds = watch.seconds();

    const auto hist =
        r.stats.metrics.histograms.find("pipeline.program_seconds");
    if (hist != r.stats.metrics.histograms.end()) {
        r.p50 = hist->second.quantile(0.5);
        r.p99 = hist->second.quantile(0.99);
    }

    const std::string path =
        std::string("hotpath_") + smt::solverModeName(mode) + "_" +
        std::to_string(sim_batch) + ".csv";
    if (db.exportCsv(path)) {
        std::ifstream in(path);
        std::ostringstream text;
        text << in.rdbuf();
        r.csv = text.str();
        std::remove(path.c_str());
    }
    return r;
}

/** Campaign artifacts the modes must agree on, byte for byte. */
inline bool
sameArtifacts(const ModeResult &a, const ModeResult &b)
{
    return a.csv == b.csv && !a.csv.empty() &&
           a.stats.experiments == b.stats.experiments &&
           a.stats.counterexamples == b.stats.counterexamples &&
           a.stats.inconclusive == b.stats.inconclusive &&
           a.stats.generationFailures == b.stats.generationFailures;
}

inline void
appendMode(std::string &out, const char *name, const char *solver,
           int sim_batch, const ModeResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    \"%s\": {\"solver\": \"%s\", \"sim_batch\": %d, "
        "\"wall_s\": %.4f, \"p50_program_s\": %.6f, "
        "\"p99_program_s\": %.6f, \"experiments\": %lld, "
        "\"counterexamples\": %lld}",
        name, solver, sim_batch, r.wallSeconds, r.p50, r.p99,
        static_cast<long long>(r.stats.experiments),
        static_cast<long long>(r.stats.counterexamples));
    out += buf;
}

} // namespace hotpath_detail

/**
 * Run the baseline/hotpath comparison and write `path` in the
 * "scamv-hotpath-v1" schema.
 * @return false when the report cannot be written, the modes diverge,
 * or the hotpath engine fails the kMinSpeedup gate.
 */
inline bool
writeHotpathReport(const std::string &path = "BENCH_hotpath.json")
{
    using hotpath_detail::ModeResult;

    const ModeResult baseline =
        hotpath_detail::runMode(smt::SolverMode::Oneshot, 0);
    const ModeResult hotpath =
        hotpath_detail::runMode(smt::SolverMode::Incremental, 1);
    const ModeResult portfolio =
        hotpath_detail::runMode(smt::SolverMode::Portfolio, 1);

    const bool deterministic =
        hotpath_detail::sameArtifacts(baseline, hotpath) &&
        hotpath_detail::sameArtifacts(baseline, portfolio);
    const double speedup = hotpath.wallSeconds > 0
                               ? baseline.wallSeconds /
                                     hotpath.wallSeconds
                               : 0.0;

    std::printf("[hotpath] baseline (oneshot, unbatched):     "
                "%.3fs  p50 %.4fs  p99 %.4fs\n",
                baseline.wallSeconds, baseline.p50, baseline.p99);
    std::printf("[hotpath] hotpath  (incremental, batched):   "
                "%.3fs  p50 %.4fs  p99 %.4fs\n",
                hotpath.wallSeconds, hotpath.p50, hotpath.p99);
    std::printf("[hotpath] hotpath  (portfolio, batched):     "
                "%.3fs  p50 %.4fs  p99 %.4fs\n",
                portfolio.wallSeconds, portfolio.p50, portfolio.p99);
    std::printf("[hotpath] speedup: %.2fx (gate: %.1fx)  "
                "deterministic: %s\n",
                speedup, kMinSpeedup, deterministic ? "yes" : "NO");

    const core::PipelineConfig wl = hotpath_detail::strideWorkload();
    std::string body = "{\n  \"schema\": \"scamv-hotpath-v1\",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"workload\": {\"template\": \"stride\", "
                  "\"programs\": %d, \"tests_per_program\": %d, "
                  "\"seed\": %llu},\n",
                  wl.programs, wl.testsPerProgram,
                  static_cast<unsigned long long>(wl.seed));
    body += buf;
    body += "  \"modes\": {\n";
    hotpath_detail::appendMode(body, "baseline_oneshot", "oneshot", 0,
                               baseline);
    body += ",\n";
    hotpath_detail::appendMode(body, "hotpath_incremental",
                               "incremental", 1, hotpath);
    body += ",\n";
    hotpath_detail::appendMode(body, "hotpath_portfolio", "portfolio",
                               1, portfolio);
    body += "\n  },\n";
    std::snprintf(buf, sizeof buf,
                  "  \"speedup\": %.3f,\n  \"min_speedup\": %.2f,\n"
                  "  \"deterministic\": %s\n}\n",
                  speedup, kMinSpeedup,
                  deterministic ? "true" : "false");
    body += buf;

    std::ofstream out(path);
    if (!out || !(out << body))
        return false;
    out.close();
    return deterministic && speedup >= kMinSpeedup;
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_HOTPATH_REPORT_HH
