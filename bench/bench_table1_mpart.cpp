/**
 * @file
 * Regenerates Table 1, columns 1-4: validation of the cache-
 * partitioning model Mpart with and without observation refinement,
 * for the unaligned (AR = sets 61..127) and page-aligned
 * (AR = sets 64..127) attacker partitions.
 *
 * Paper reference values (450/425 programs):
 *     Mpart      no-ref: 21 cex / 13752 exps, refined: 447 / 18000
 *     page-aligned:      0 cex either way
 *     checklist A.6.1: ~4x programs-with-cex, ~20x cex, ~4x TTC.
 *
 * Scale with SCAMV_SCALE (1.0 = paper-sized campaign).
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "parallel_report.hh"

using namespace scamv;
using core::PipelineConfig;

namespace {

PipelineConfig
mpartConfig(bool refined, std::uint64_t ar_lo, double scale)
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    if (refined) {
        cfg.refinement = obs::ModelKind::MpartRefined;
        cfg.coverage = core::Coverage::PcAndLine;
    }
    cfg.programs = core::scaled(450, scale);
    cfg.testsPerProgram = 30;
    cfg.seed = 1821 + (refined ? 1 : 0) + ar_lo;
    cfg.modelParams.attacker.loSet = ar_lo;
    cfg.platform.visibleLoSet = ar_lo;
    cfg.platform.visibleHiSet = 127;
    cfg.platform.noiseProbability = 0.01;
    return cfg;
}

} // namespace

int
main()
{
    const double scale = core::scaleFromEnv(1.0);
    std::printf("=== Table 1 (cols 1-4): Mpart vs prefetching "
                "[SCAMV_SCALE=%.2f] ===\n\n", scale);

    std::vector<core::ColumnMeta> metas = {
        {"Mpart", "Stride", "No", "Mpc"},
        {"Mpart", "Stride", "Mpart'", "Mpc & Mline"},
        {"Mpart PA", "Stride", "No", "Mpc"},
        {"Mpart PA", "Stride", "Mpart'", "Mpc & Mline"},
    };
    benchsupport::ParallelReport parallel;
    std::vector<core::RunStats> stats;
    stats.push_back(parallel.compare("table1_mpart/unrefined",
                                     mpartConfig(false, 61, scale)));
    stats.push_back(parallel.compare("table1_mpart/refined",
                                     mpartConfig(true, 61, scale)));
    stats.push_back(parallel.compare("table1_mpart/pa_unrefined",
                                     mpartConfig(false, 64, scale)));
    stats.push_back(parallel.compare("table1_mpart/pa_refined",
                                     mpartConfig(true, 64, scale)));
    parallel.write();

    std::printf("%s\n",
                core::renderCampaignTable(metas, stats).render().c_str());
    std::printf("Artifact checklist A.6.1 (Mpart, unaligned):\n%s\n",
                core::renderChecklist(stats[0], stats[1])
                    .render()
                    .c_str());
    std::printf("Expected shape: refinement finds many more "
                "counterexamples and more\nprograms-with-cex on the "
                "unaligned partition; the page-aligned partition\n"
                "yields zero counterexamples in both modes (prefetcher "
                "stops at the page).\n");
    return 0;
}
