/**
 * @file
 * Google-benchmark microbenchmarks of the pipeline's substrates:
 * cache access, core execution, symbolic execution, relation
 * synthesis, SMT solving (canonical and blocked re-solves) and the
 * repair sampler.  These correspond to the per-phase costs behind the
 * "Avg. Gen. time" / "Avg. Exe. time" rows of Table 1.
 *
 * After the microbenchmarks, main() runs the query-cache on/off
 * comparison (bench/qcache_report.hh) and emits BENCH_qcache.json.
 */

#include <benchmark/benchmark.h>

#include "bir/asm.hh"
#include "bir/transform.hh"
#include "core/pipeline.hh"
#include "gen/templates.hh"
#include "harness/platform.hh"
#include "obs/models.hh"
#include "rel/relation.hh"
#include "smt/sampler.hh"
#include "smt/solver.hh"
#include "support/thread_pool.hh"
#include "sym/symexec.hh"

#include "qcache_report.hh"

using namespace scamv;

namespace {

bir::Program
templateAProgram()
{
    gen::ProgramGenerator g(gen::TemplateKind::A, 7);
    return g.next();
}

void
BM_CacheAccess(benchmark::State &state)
{
    hw::Cache cache;
    std::uint64_t addr = 0x80000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr += 64;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CoreRunStride(benchmark::State &state)
{
    auto p = bir::assemble("ldr x1, [x0]\n"
                           "ldr x2, [x0, #64]\n"
                           "ldr x3, [x0, #128]\n"
                           "ret\n")
                 .program;
    hw::Core core;
    hw::ArchState st;
    st.regs[0] = 0x80000;
    for (auto _ : state)
        benchmark::DoNotOptimize(core.run(p, st));
}
BENCHMARK(BM_CoreRunStride);

void
BM_PlatformExperiment(benchmark::State &state)
{
    harness::Platform platform(harness::PlatformConfig{});
    auto p = bir::assemble("ldr x1, [x0]\nret\n").program;
    harness::TestCase tc;
    tc.s1.regs.regs[0] = 0x80000;
    tc.s2.regs.regs[0] = 0x80040;
    for (auto _ : state)
        benchmark::DoNotOptimize(platform.runExperiment(p, tc));
}
BENCHMARK(BM_PlatformExperiment);

void
BM_SymbolicExecutionInstrumented(benchmark::State &state)
{
    bir::Program p =
        bir::instrumentSpeculation(templateAProgram());
    auto annot = std::make_unique<obs::RefinementPair>(
        obs::makeModel(obs::ModelKind::Mct),
        obs::makeModel(obs::ModelKind::Mspec));
    for (auto _ : state) {
        expr::ExprContext ctx;
        benchmark::DoNotOptimize(
            sym::execute(ctx, p, *annot, {"_1"}));
    }
}
BENCHMARK(BM_SymbolicExecutionInstrumented);

void
BM_RelationSynthesis(benchmark::State &state)
{
    bir::Program p =
        bir::instrumentSpeculation(templateAProgram());
    obs::RefinementPair annot(obs::makeModel(obs::ModelKind::Mct),
                              obs::makeModel(obs::ModelKind::Mspec));
    for (auto _ : state) {
        expr::ExprContext ctx;
        auto p1 = sym::execute(ctx, p, annot, {"_1"});
        auto p2 = sym::execute(ctx, p, annot, {"_2"});
        rel::RelationConfig cfg;
        cfg.refine = true;
        rel::RelationSynthesizer rel(ctx, std::move(p1), std::move(p2),
                                     cfg);
        for (const auto &pair : rel.pairs())
            benchmark::DoNotOptimize(rel.formulaFor(pair));
    }
}
BENCHMARK(BM_RelationSynthesis);

void
BM_SmtSolveRelation(benchmark::State &state)
{
    bir::Program p =
        bir::instrumentSpeculation(templateAProgram());
    obs::RefinementPair annot(obs::makeModel(obs::ModelKind::Mct),
                              obs::makeModel(obs::ModelKind::Mspec));
    for (auto _ : state) {
        expr::ExprContext ctx;
        auto p1 = sym::execute(ctx, p, annot, {"_1"});
        auto p2 = sym::execute(ctx, p, annot, {"_2"});
        rel::RelationConfig cfg;
        cfg.refine = true;
        rel::RelationSynthesizer rel(ctx, std::move(p1), std::move(p2),
                                     cfg);
        smt::SmtSolver solver(ctx, rel.formulaFor(rel.pairs()[0]));
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SmtSolveRelation);

void
BM_SmtBlockedResolve(benchmark::State &state)
{
    // The per-test-case cost once symbolic execution and the first
    // solve are cached: block the model and re-solve.
    expr::ExprContext ctx;
    bir::Program p =
        bir::instrumentSpeculation(templateAProgram());
    obs::RefinementPair annot(obs::makeModel(obs::ModelKind::Mct),
                              obs::makeModel(obs::ModelKind::Mspec));
    auto p1 = sym::execute(ctx, p, annot, {"_1"});
    auto p2 = sym::execute(ctx, p, annot, {"_2"});
    rel::RelationConfig cfg;
    cfg.refine = true;
    rel::RelationSynthesizer rel(ctx, std::move(p1), std::move(p2), cfg);
    smt::SmtSolver solver(ctx, rel.formulaFor(rel.pairs()[0]));
    std::vector<expr::Expr> vars;
    for (int r = 0; r < 8; ++r) {
        vars.push_back(ctx.bvVar("x" + std::to_string(r) + "_1"));
        vars.push_back(ctx.bvVar("x" + std::to_string(r) + "_2"));
    }
    for (auto _ : state) {
        if (solver.solve() != smt::Outcome::Sat) {
            state.SkipWithError("relation exhausted");
            break;
        }
        solver.blockCurrentModel(vars);
    }
}
BENCHMARK(BM_SmtBlockedResolve);

void
BM_RepairSampler(benchmark::State &state)
{
    expr::ExprContext ctx;
    expr::Expr x1 = ctx.bvVar("x0_1"), x2 = ctx.bvVar("x0_2");
    expr::Expr m1 = ctx.memVar("mem_1"), m2 = ctx.memVar("mem_2");
    expr::Expr f = ctx.conj({
        ctx.eq(x1, x2),
        ctx.neq(ctx.read(m1, x1), ctx.read(m2, x2)),
        ctx.ule(ctx.bv(0x80000), x1),
        ctx.ult(x1, ctx.bv(0x100000)),
    });
    Rng rng(5);
    for (auto _ : state) {
        smt::RepairSampler sampler(ctx, f, rng);
        benchmark::DoNotOptimize(sampler.sample());
    }
}
BENCHMARK(BM_RepairSampler);

void
BM_ProgramGeneration(benchmark::State &state)
{
    gen::ProgramGenerator g(gen::TemplateKind::B, 3);
    for (auto _ : state)
        benchmark::DoNotOptimize(g.next());
}
BENCHMARK(BM_ProgramGeneration);

/**
 * Whole-campaign wall-clock at a given worker count; Arg(1) is the
 * serial reference, the second registration uses every core.  Both
 * runs do bit-identical work (same seed), so the ratio of the
 * real-time numbers is the campaign speedup.
 */
void
BM_CampaignThreads(benchmark::State &state)
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = 16;
    cfg.testsPerProgram = 8;
    cfg.seed = 99;
    cfg.threads = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(core::Pipeline(cfg).run());
}
BENCHMARK(BM_CampaignThreads)
    ->Arg(1)
    ->Arg(static_cast<int>(scamv::ThreadPool::defaultThreadCount()))
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return benchsupport::writeQcacheReport() ? 0 : 1;
}
