/**
 * @file
 * Regenerates Table 1, columns 5-6: validation of the constant-time
 * model Mct on Template A, with and without Mspec refinement.
 *
 * Paper reference values: without refinement, 655 programs find only
 * 6 counterexamples in 26200 experiments (a lucky register-aliasing
 * subclass, T.T.C. 29 hours); with refinement, 626 of 652 programs
 * have counterexamples, 12462 of 25737 experiments are
 * counterexamples, and the first one appears after 13 seconds.
 * Checklist A.6.1: ~100x programs-with-cex, ~2000x cex, ~7000x TTC.
 *
 * Scale with SCAMV_SCALE (1.0 = paper-sized campaign).
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "parallel_report.hh"

using namespace scamv;
using core::PipelineConfig;

namespace {

PipelineConfig
mctConfig(bool refined, double scale)
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    if (refined)
        cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = core::scaled(655, scale);
    cfg.testsPerProgram = 40;
    cfg.seed = 63 + (refined ? 1 : 0);
    cfg.platform.noiseProbability = 0.0005;
    return cfg;
}

} // namespace

int
main()
{
    const double scale = core::scaleFromEnv(1.0);
    std::printf("=== Table 1 (cols 5-6): Mct / Template A "
                "[SCAMV_SCALE=%.2f] ===\n\n", scale);

    std::vector<core::ColumnMeta> metas = {
        {"Mct", "Template A", "No", "Mpc"},
        {"Mct", "Template A", "Mspec", "Mpc"},
    };
    benchsupport::ParallelReport parallel;
    std::vector<core::RunStats> stats;
    stats.push_back(parallel.compare("table1_mct_a/unrefined",
                                     mctConfig(false, scale)));
    stats.push_back(parallel.compare("table1_mct_a/Mspec",
                                     mctConfig(true, scale)));
    parallel.write();

    std::printf("%s\n",
                core::renderCampaignTable(metas, stats).render().c_str());
    std::printf("Artifact checklist A.6.1 (Mct, Template A):\n%s\n",
                core::renderChecklist(stats[0], stats[1])
                    .render()
                    .c_str());
    std::printf("Expected shape: unguided search finds (almost) no "
                "counterexamples; with\nMspec refinement the majority "
                "of programs expose SiSCloak leakage and the\nfirst "
                "counterexample appears orders of magnitude sooner.\n");
    return 0;
}
