/**
 * @file
 * Adaptive-scheduler coverage bench: runs the uniform vs adaptive
 * comparison of bench/coverage_report.hh and emits
 * `BENCH_coverage.json`.  Exits non-zero when adaptive scheduling
 * fails its classes-per-program gate, so CI catches regressions in
 * the scheduler's coverage economics.
 */

#include <cstdio>

#include "coverage_report.hh"

int
main()
{
    const bool ok = scamv::benchsupport::writeCoverageReport();
    if (!ok)
        std::printf("[coverage] FAILED (see BENCH_coverage.json)\n");
    return ok ? 0 : 1;
}
