/**
 * @file
 * Shared bench helper: measure the semantic SMT query cache
 * (src/support/qcache) on its two hot shapes and emit
 * `BENCH_qcache.json` (schema "scamv-qcache-v1"):
 *
 *  - repeated_query: the pipeline's dominant pattern — structurally
 *    similar relation formulas solved over and over (Section 5.4's
 *    per-pair relations re-queried across test cases).  Cache-off
 *    re-solves each query; cache-on replays it.
 *
 *  - warm_campaign: a full campaign run cold (populating a checkpoint
 *    file) and again resumed from it.  The runs must agree on every
 *    counter — a warm cache may only change the wall-clock, never the
 *    results — so the speedup always describes identical work.
 */

#ifndef SCAMV_BENCH_QCACHE_REPORT_HH
#define SCAMV_BENCH_QCACHE_REPORT_HH

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bir/transform.hh"
#include "core/pipeline.hh"
#include "gen/templates.hh"
#include "obs/models.hh"
#include "rel/relation.hh"
#include "support/metrics.hh"
#include "support/qcache/cached_solve.hh"
#include "support/qcache/qcache.hh"
#include "support/stopwatch.hh"
#include "sym/symexec.hh"

namespace scamv::benchsupport {

namespace qcache_detail {

inline std::uint64_t
globalCounter(const char *name)
{
    return metrics::Registry::global().counter(name).value();
}

/** Relation formulas of `programs` template-A programs (one per
 *  path pair), kept alive through the shared context. */
inline std::vector<expr::Expr>
relationFormulas(expr::ExprContext &ctx, int programs)
{
    std::vector<expr::Expr> formulas;
    for (int i = 0; i < programs; ++i) {
        gen::ProgramGenerator g(gen::TemplateKind::A,
                                static_cast<std::uint64_t>(7 + i));
        const bir::Program p = bir::instrumentSpeculation(g.next());
        obs::RefinementPair annot(obs::makeModel(obs::ModelKind::Mct),
                                  obs::makeModel(obs::ModelKind::Mspec));
        auto p1 = sym::execute(ctx, p, annot, {"_1"});
        auto p2 = sym::execute(ctx, p, annot, {"_2"});
        rel::RelationConfig cfg;
        cfg.refine = true;
        rel::RelationSynthesizer rel(ctx, std::move(p1), std::move(p2),
                                     cfg);
        for (const auto &pair : rel.pairs())
            formulas.push_back(rel.formulaFor(pair));
    }
    return formulas;
}

} // namespace qcache_detail

/**
 * Run the cache on/off comparison and write `path`.
 * @return false when a write error or a determinism violation makes
 * the report unusable (the caller should fail the bench run).
 */
inline bool
writeQcacheReport(const std::string &path = "BENCH_qcache.json")
{
    using qcache_detail::globalCounter;
    constexpr int kPasses = 5;
    constexpr std::int64_t kBudget = 200000;

    // --- repeated_query -------------------------------------------
    expr::ExprContext ctx;
    const std::vector<expr::Expr> formulas =
        qcache_detail::relationFormulas(ctx, 6);
    const int queries = static_cast<int>(formulas.size()) * kPasses;

    Stopwatch off_watch;
    for (int pass = 0; pass < kPasses; ++pass)
        for (expr::Expr f : formulas)
            qcache::solveOnce(ctx, f, kBudget, nullptr);
    const double off_s = off_watch.seconds();

    qcache::QueryCache cache({std::size_t{64} << 20, ""});
    const std::uint64_t h0 = globalCounter("qcache.hit");
    const std::uint64_t m0 = globalCounter("qcache.miss");
    Stopwatch on_watch;
    for (int pass = 0; pass < kPasses; ++pass)
        for (expr::Expr f : formulas)
            qcache::solveOnce(ctx, f, kBudget, &cache);
    const double on_s = on_watch.seconds();
    const std::uint64_t hits = globalCounter("qcache.hit") - h0;
    const std::uint64_t misses = globalCounter("qcache.miss") - m0;
    const double rq_speedup = on_s > 0 ? off_s / on_s : 0.0;

    std::printf("[qcache] repeated_query: %d queries  off: %.3fs  "
                "on: %.3fs  speedup: %.2fx  (%llu hits, %llu misses)\n",
                queries, off_s, on_s, rq_speedup,
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));

    // --- warm_campaign --------------------------------------------
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = core::scaled(8, core::scaleFromEnv(1.0));
    cfg.testsPerProgram = 6;
    cfg.seed = 99;
    cfg.threads = 1;

    const std::string checkpoint = path + ".checkpoint.tmp";
    std::remove(checkpoint.c_str());

    core::RunStats cold_stats, warm_stats;
    double cold_s = 0.0, warm_s = 0.0;
    {
        qcache::QueryCache cold({std::size_t{64} << 20, checkpoint});
        core::PipelineConfig c = cfg;
        c.queryCache = &cold;
        Stopwatch watch;
        cold_stats = core::Pipeline(c).run();
        cold_s = watch.seconds();
    }
    const std::uint64_t wh0 = globalCounter("qcache.hit");
    {
        qcache::QueryCache warm({std::size_t{64} << 20, checkpoint});
        core::PipelineConfig c = cfg;
        c.queryCache = &warm;
        Stopwatch watch;
        warm_stats = core::Pipeline(c).run();
        warm_s = watch.seconds();
    }
    const std::uint64_t warm_hits = globalCounter("qcache.hit") - wh0;
    std::remove(checkpoint.c_str());

    const bool identical =
        cold_stats.experiments == warm_stats.experiments &&
        cold_stats.counterexamples == warm_stats.counterexamples &&
        cold_stats.inconclusive == warm_stats.inconclusive &&
        cold_stats.metrics.counters == warm_stats.metrics.counters;
    const double wc_speedup = warm_s > 0 ? cold_s / warm_s : 0.0;

    std::printf("[qcache] warm_campaign: cold: %.3fs  warm: %.3fs  "
                "speedup: %.2fx  deterministic: %s\n",
                cold_s, warm_s, wc_speedup,
                identical ? "yes" : "NO");
    if (!identical)
        return false;

    // --- report ---------------------------------------------------
    std::ofstream out(path);
    if (!out)
        return false;
    char buf[512];
    out << "{\n  \"schema\": \"scamv-qcache-v1\",\n"
        << "  \"benchmark\": \"semantic SMT query cache\",\n"
        << "  \"components\": {\n";
    std::snprintf(buf, sizeof buf,
                  "    \"repeated_query\": {\"queries\": %d, "
                  "\"cache_off_s\": %.4f, \"cache_on_s\": %.4f, "
                  "\"speedup\": %.3f, \"hits\": %llu, "
                  "\"misses\": %llu},\n",
                  queries, off_s, on_s, rq_speedup,
                  static_cast<unsigned long long>(hits),
                  static_cast<unsigned long long>(misses));
    out << buf;
    std::snprintf(buf, sizeof buf,
                  "    \"warm_campaign\": {\"cold_s\": %.4f, "
                  "\"warm_s\": %.4f, \"speedup\": %.3f, "
                  "\"hits\": %llu, \"deterministic\": %s}\n",
                  cold_s, warm_s, wc_speedup,
                  static_cast<unsigned long long>(warm_hits),
                  identical ? "true" : "false");
    out << buf << "  }\n}\n";
    return static_cast<bool>(out);
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_QCACHE_REPORT_HH
