/**
 * @file
 * Triage pre-screen bench: runs the screened vs unscreened
 * comparison of bench/triage_report.hh and emits `BENCH_triage.json`.
 * Exits non-zero when the screen neither pays for itself (wall-clock
 * or avoided SMT queries) nor preserves campaign outcomes, so CI
 * catches both efficiency and soundness regressions.
 */

#include <cstdio>

#include "triage_report.hh"

int
main()
{
    const bool ok = scamv::benchsupport::writeTriageReport();
    if (!ok)
        std::printf("[triage] FAILED (see BENCH_triage.json)\n");
    return ok ? 0 : 1;
}
