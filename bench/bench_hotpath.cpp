/**
 * @file
 * Hot-path engine bench: runs the baseline (oneshot solving,
 * unbatched simulation) vs hot-path (incremental solving, batched
 * arena-backed simulation) comparison of bench/hotpath_report.hh and
 * emits `BENCH_hotpath.json`.  Exits non-zero when the engine misses
 * its end-to-end speedup gate or any solver mode diverges from the
 * baseline's campaign artifacts, so CI catches both performance and
 * determinism regressions.
 */

#include <cstdio>

#include "hotpath_report.hh"

int
main()
{
    const bool ok = scamv::benchsupport::writeHotpathReport();
    if (!ok)
        std::printf("[hotpath] FAILED (see BENCH_hotpath.json)\n");
    return ok ? 0 : 1;
}
