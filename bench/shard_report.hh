/**
 * @file
 * Shared bench helper: measure sharded campaign throughput (N
 * concurrent workers + coordinator merge, src/shard) against the
 * 1-process, 1-thread reference on the paper's stride workload and
 * emit `BENCH_shard.json` (schema "scamv-shard-v1").
 *
 * Two configurations run the same campaign (same seed, programs,
 * tests):
 *
 *  - single: one process, one thread, artifacts written via
 *    shard::writeCampaignArtifacts — the byte-identity reference;
 *  - sharded: kShards workers (shard::runWorker, each single-
 *    threaded) running concurrently, then shard::mergeCampaign
 *    folding their outputs into campaign artifacts.
 *
 * The report self-gates on two properties at once: the sharded run
 * must beat the single run end-to-end (worker wall-clock plus merge)
 * by `kMinShardSpeedup`, and every merged campaign artifact
 * (metrics.json, coverage.json, db.csv, stats.json) must be
 * byte-identical to the reference — the "deterministic" field, i.e.
 * determinism invariant 8 of ARCHITECTURE.md measured rather than
 * assumed.
 *
 * Shard scaling is parallelism-bound (theoretical ceiling is
 * min(shards, cores)), so the speedup gate written to the report's
 * "min_speedup" field adapts to the host: the full kMinShardSpeedup
 * on >= 4 cores (CI runners), a modest win on 2-3 cores, and on a
 * single core — where concurrent workers cannot beat one process —
 * only a no-pathological-overhead floor.  The determinism gate never
 * relaxes.
 */

#ifndef SCAMV_BENCH_SHARD_REPORT_HH
#define SCAMV_BENCH_SHARD_REPORT_HH

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "shard/shard.hh"
#include "support/stopwatch.hh"

namespace scamv::benchsupport {

/** Required single : sharded end-to-end wall-clock advantage on a
 *  host with at least kShards cores. */
inline constexpr double kMinShardSpeedup = 1.5;

/** Worker fan-out measured by the report. */
inline constexpr int kShards = 4;

/** Host-adapted speedup gate (see the file comment). */
inline double
shardSpeedupGate(unsigned cores)
{
    if (cores >= 4)
        return kMinShardSpeedup;
    if (cores >= 2)
        return 1.1;
    return 0.5;
}

namespace shard_detail {

inline core::PipelineConfig
shardWorkload()
{
    core::PipelineConfig cfg = shard::defaultWorkload(
        /*programs=*/std::max(16,
                              core::scaled(64,
                                           core::scaleFromEnv(1.0))),
        /*tests=*/6, /*seed=*/99, /*adaptive=*/false,
        /*line=*/false);
    return cfg;
}

inline std::string
readArtifact(const std::string &dir, const char *name)
{
    std::ifstream in(dir + "/" + name, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    return in ? text.str() : std::string();
}

/** Byte-compare the campaign artifact set of two directories. */
inline bool
sameArtifacts(const std::string &a, const std::string &b)
{
    for (const char *f : {shard::kMetricsFile, shard::kCoverageFile,
                          shard::kDbFile, shard::kStatsFile}) {
        const std::string lhs = readArtifact(a, f);
        if (lhs.empty() || lhs != readArtifact(b, f))
            return false;
    }
    return true;
}

inline double
runSingle(const core::PipelineConfig &base, const std::string &dir)
{
    std::filesystem::create_directories(dir);
    core::PipelineConfig cfg = base;
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    Stopwatch watch;
    const core::RunStats stats = core::Pipeline(cfg).run();
    const double seconds = watch.seconds();
    shard::writeCampaignArtifacts(stats, &db, dir);
    return seconds;
}

struct ShardedTiming {
    double workerSeconds = 0.0; ///< wall-clock of the slowest worker
    double mergeSeconds = 0.0;
    bool ok = true;
};

inline ShardedTiming
runSharded(const core::PipelineConfig &base, const std::string &root)
{
    ShardedTiming t;
    std::vector<std::thread> threads;
    std::vector<bool> worker_ok(kShards, false);
    Stopwatch watch;
    for (int i = 0; i < kShards; ++i) {
        threads.emplace_back([&base, &root, &worker_ok, i] {
            core::PipelineConfig cfg = base;
            cover::CoverageLedger ledger;
            cfg.coverageLedger = &ledger;
            const shard::WorkerResult res = shard::runWorker(
                cfg, shard::ShardSpec{i, kShards},
                shard::shardDir(root, i));
            worker_ok[static_cast<std::size_t>(i)] = res.ok;
        });
    }
    for (std::thread &th : threads)
        th.join();
    t.workerSeconds = watch.seconds();

    core::PipelineConfig cfg = base;
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    Stopwatch merge_watch;
    const shard::MergeResult merged =
        shard::mergeCampaign(cfg, kShards, root, {});
    t.mergeSeconds = merge_watch.seconds();
    t.ok = merged.ok && merged.missingPrograms.empty();
    for (const bool ok : worker_ok)
        t.ok = t.ok && ok;
    return t;
}

} // namespace shard_detail

/**
 * Run the single-process vs sharded comparison and write `path` in
 * the "scamv-shard-v1" schema.
 * @return false when the report cannot be written, the merged
 * artifacts diverge from the reference, or the sharded run misses the
 * kMinShardSpeedup gate.
 */
inline bool
writeShardReport(const std::string &path = "BENCH_shard.json")
{
    namespace fs = std::filesystem;
    const core::PipelineConfig wl = shard_detail::shardWorkload();
    const std::string single_dir = "bench_shard_single";
    const std::string sharded_dir = "bench_shard_sharded";
    fs::remove_all(single_dir);
    fs::remove_all(sharded_dir);

    const double single_s = shard_detail::runSingle(wl, single_dir);
    const shard_detail::ShardedTiming sharded =
        shard_detail::runSharded(wl, sharded_dir);
    const double sharded_s =
        sharded.workerSeconds + sharded.mergeSeconds;

    const bool deterministic =
        sharded.ok &&
        shard_detail::sameArtifacts(single_dir, sharded_dir);
    const double speedup =
        sharded_s > 0 ? single_s / sharded_s : 0.0;
    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const double gate = shardSpeedupGate(cores);

    std::printf("[shard] single  (1 process, 1 thread):  %.3fs\n",
                single_s);
    std::printf("[shard] sharded (%d workers + merge):    %.3fs "
                "(workers %.3fs, merge %.3fs)\n",
                kShards, sharded_s, sharded.workerSeconds,
                sharded.mergeSeconds);
    std::printf("[shard] speedup: %.2fx (gate: %.1fx on %u cores)  "
                "deterministic: %s\n",
                speedup, gate, cores, deterministic ? "yes" : "NO");

    char buf[512];
    std::string body = "{\n  \"schema\": \"scamv-shard-v1\",\n";
    std::snprintf(buf, sizeof buf,
                  "  \"workload\": {\"template\": \"stride\", "
                  "\"programs\": %d, \"tests_per_program\": %d, "
                  "\"seed\": %llu},\n  \"shards\": %d,\n"
                  "  \"cores\": %u,\n",
                  wl.programs, wl.testsPerProgram,
                  static_cast<unsigned long long>(wl.seed), kShards,
                  cores);
    body += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"single_seconds\": %.4f,\n"
                  "  \"sharded_seconds\": %.4f,\n"
                  "  \"worker_seconds\": %.4f,\n"
                  "  \"merge_seconds\": %.4f,\n"
                  "  \"speedup\": %.3f,\n  \"min_speedup\": %.2f,\n"
                  "  \"deterministic\": %s\n}\n",
                  single_s, sharded_s, sharded.workerSeconds,
                  sharded.mergeSeconds, speedup, gate,
                  deterministic ? "true" : "false");
    body += buf;

    std::ofstream out(path);
    const bool wrote = out && (out << body);
    out.close();
    fs::remove_all(single_dir);
    fs::remove_all(sharded_dir);
    return wrote && deterministic && speedup >= gate;
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_SHARD_REPORT_HH
