/**
 * @file
 * Regenerates the Fig. 7 table: the scope of speculation on
 * Cortex-A53 (Section 6.5).
 *
 *   col 1: Mct    / Template C / no refinement   -> 0 cex
 *   col 2: Mct    / Template C / Mspec           -> ~42% of exps cex
 *   col 3: Mspec1 / Template C / Mspec           -> 0 cex (dependent
 *          transient loads never issue: no forwarding)
 *   col 4: Mspec1 / Template B / Mspec           -> few cex (~0.6%),
 *          from programs whose two transient loads are independent
 *   col 5: Mct    / Template D / Mspec'          -> 0 cex (no
 *          straight-line speculation after direct branches)
 *
 * Scale with SCAMV_SCALE (1.0 = paper-sized campaign).
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/report.hh"

using namespace scamv;
using core::PipelineConfig;

int
main()
{
    const double scale = core::scaleFromEnv(1.0);
    std::printf("=== Fig. 7 table: scope of speculation "
                "[SCAMV_SCALE=%.2f] ===\n\n", scale);

    std::vector<core::ColumnMeta> metas;
    std::vector<core::RunStats> stats;

    auto campaign = [&](const char *model_name, const char *templ,
                        const char *refinement, gen::TemplateKind kind,
                        obs::ModelKind model,
                        std::optional<obs::ModelKind> refine,
                        bool rewrite_jumps, int programs,
                        std::uint64_t seed) {
        PipelineConfig cfg;
        cfg.templateKind = kind;
        cfg.model = model;
        cfg.refinement = refine;
        cfg.rewriteJumps = rewrite_jumps;
        cfg.train = kind != gen::TemplateKind::D;
        cfg.programs = core::scaled(programs, scale);
        cfg.testsPerProgram = 40;
        cfg.seed = seed;
        cfg.platform.noiseProbability = 0.0005;
        metas.push_back({model_name, templ, refinement, "Mpc"});
        stats.push_back(core::Pipeline(cfg).run());
    };

    // The paper runs 8 programs x 1000 experiments for Template C; we
    // keep more programs with fewer tests per program (same budget
    // shape, better generator coverage).
    campaign("Mct", "C", "No", gen::TemplateKind::C,
             obs::ModelKind::Mct, std::nullopt, false, 100, 541);
    campaign("Mct", "C", "Mspec", gen::TemplateKind::C,
             obs::ModelKind::Mct, obs::ModelKind::Mspec, false, 100,
             542);
    campaign("Mspec1", "C", "Mspec", gen::TemplateKind::C,
             obs::ModelKind::Mspec1, obs::ModelKind::Mspec, false, 100,
             543);
    campaign("Mspec1", "B", "Mspec", gen::TemplateKind::B,
             obs::ModelKind::Mspec1, obs::ModelKind::Mspec, false, 915,
             544);
    campaign("Mct", "D", "Mspec'", gen::TemplateKind::D,
             obs::ModelKind::Mct, obs::ModelKind::Mspec, true, 478,
             545);

    std::printf("%s\n",
                core::renderCampaignTable(metas, stats).render().c_str());

    std::printf(
        "Expected shape (paper: 0 / 3423 of 8000 / 0 / 206 of 36600 / "
        "0):\n"
        "  - Template C leaks only under Mspec refinement "
        "(single-load SiSCloak);\n"
        "  - Mspec1 is sound on Template C (dependent load blocked) "
        "but unsound\n"
        "    on Template B (independent transient loads both "
        "issue);\n"
        "  - Template D never leaks: no straight-line speculation on "
        "direct jumps.\n");
    return 0;
}
