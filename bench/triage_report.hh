/**
 * @file
 * Shared bench helper: measure the abstract-cache pre-screen
 * (src/triage) on the paper's stride workload and emit
 * `BENCH_triage.json` (schema "scamv-triage-v1").
 *
 * Two sections run:
 *
 *  - stride: an Mpart -> Mpart' campaign whose attacker window spans
 *    every cache set, so the ar-containment criterion proves each
 *    stride program boring.  The screened run must either beat the
 *    unscreened run end-to-end by `kMinTriageSpeedup` or avoid at
 *    least `kMinSmtAvoided` of its SMT queries — the pre-screen's
 *    whole value proposition, measured rather than assumed.
 *
 *  - mixed: a {Stride, C} Mct -> Mspec campaign run screened and
 *    unscreened.  The screen may only skip work, never change an
 *    outcome: verdict counters and the experiment-log CSV must match
 *    byte for byte (the report's "deterministic" field — determinism
 *    invariant 9 of ARCHITECTURE.md).  This gate never relaxes.
 *
 * Wall-clock speedup on small campaigns is noisy, which is why the
 * gate is the (speedup || smt_avoided) disjunction: the query count
 * is exact and host-independent, the wall clock is the honest
 * end-to-end number.
 */

#ifndef SCAMV_BENCH_TRIAGE_REPORT_HH
#define SCAMV_BENCH_TRIAGE_REPORT_HH

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "support/stopwatch.hh"

namespace scamv::benchsupport {

/** Required unscreened : screened wall-clock advantage. */
inline constexpr double kMinTriageSpeedup = 1.5;

/** Alternative gate: fraction of SMT queries the screen must avoid. */
inline constexpr double kMinSmtAvoided = 0.3;

namespace triage_detail {

inline core::PipelineConfig
strideWorkload()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.programs =
        std::max(16, core::scaled(48, core::scaleFromEnv(1.0)));
    cfg.testsPerProgram = 6;
    cfg.seed = 1213;
    cfg.threads = 1;
    cfg.deterministicMetricsTiming = true;
    // Attacker window = every set: ar-containment holds everywhere.
    cfg.modelParams.attacker.loSet = 0;
    cfg.platform.visibleLoSet = 0;
    cfg.triageMinimize = 0;
    return cfg;
}

inline core::PipelineConfig
mixedWorkload()
{
    core::PipelineConfig cfg;
    cfg.templateKinds = {gen::TemplateKind::Stride,
                         gen::TemplateKind::C};
    cfg.model = obs::ModelKind::Mct;
    cfg.refinement = obs::ModelKind::Mspec;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.programs =
        std::max(12, core::scaled(32, core::scaleFromEnv(1.0)));
    cfg.testsPerProgram = 3;
    cfg.seed = 77;
    cfg.threads = 1;
    cfg.deterministicMetricsTiming = true;
    cfg.triageMinimize = 0;
    return cfg;
}

inline std::int64_t
smtQueries(const core::RunStats &stats)
{
    const auto it = stats.metrics.counters.find("smt.queries");
    return it == stats.metrics.counters.end() ? 0 : it->second;
}

inline std::string
dbCsv(core::ExperimentDb &db, const std::string &path)
{
    if (!db.exportCsv(path))
        return std::string();
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    std::remove(path.c_str());
    return in ? text.str() : std::string();
}

} // namespace triage_detail

/**
 * Run the screened vs unscreened comparison and write `path` in the
 * "scamv-triage-v1" schema.
 * @return false when the report cannot be written, the screened
 * mixed campaign diverges from the unscreened one, nothing was
 * screened, or both the speedup and the SMT-avoidance gates miss.
 */
inline bool
writeTriageReport(const std::string &path = "BENCH_triage.json")
{
    using namespace triage_detail;

    // ---- stride section: the work the screen saves ----------------
    core::PipelineConfig stride = strideWorkload();
    stride.triageScreen = 0;
    Stopwatch off_watch;
    const core::RunStats off = core::Pipeline(stride).run();
    const double off_s = off_watch.seconds();

    stride.triageScreen = 1;
    Stopwatch on_watch;
    const core::RunStats on = core::Pipeline(stride).run();
    const double on_s = on_watch.seconds();

    const std::int64_t q_off = smtQueries(off);
    const std::int64_t q_on = smtQueries(on);
    const double speedup = on_s > 0.0 ? off_s / on_s : 0.0;
    const double smt_avoided =
        q_off > 0 ? 1.0 - static_cast<double>(q_on) /
                              static_cast<double>(q_off)
                  : 0.0;

    // ---- mixed section: the screen must not change outcomes -------
    core::PipelineConfig mixed = mixedWorkload();
    core::ExperimentDb db_on, db_off;
    mixed.triageScreen = 1;
    mixed.database = &db_on;
    const core::RunStats mix_on = core::Pipeline(mixed).run();
    mixed.triageScreen = 0;
    mixed.database = &db_off;
    const core::RunStats mix_off = core::Pipeline(mixed).run();
    const bool deterministic =
        mix_on.experiments == mix_off.experiments &&
        mix_on.counterexamples == mix_off.counterexamples &&
        mix_on.inconclusive == mix_off.inconclusive &&
        dbCsv(db_on, path + ".on.csv") ==
            dbCsv(db_off, path + ".off.csv");

    std::printf("[triage] unscreened: %.3fs (%lld SMT queries)\n",
                off_s, static_cast<long long>(q_off));
    std::printf("[triage] screened:   %.3fs (%lld SMT queries, "
                "%lld/%d programs screened)\n",
                on_s, static_cast<long long>(q_on),
                static_cast<long long>(on.screened),
                stride.programs);
    std::printf("[triage] speedup: %.2fx (gate %.1fx)  smt avoided: "
                "%.0f%% (gate %.0f%%)  deterministic: %s\n",
                speedup, kMinTriageSpeedup, 100.0 * smt_avoided,
                100.0 * kMinSmtAvoided, deterministic ? "yes" : "NO");

    char buf[640];
    std::string body = "{\n  \"schema\": \"scamv-triage-v1\",\n";
    std::snprintf(buf, sizeof buf,
                  "  \"workload\": {\"template\": \"stride\", "
                  "\"programs\": %d, \"tests_per_program\": %d, "
                  "\"seed\": %llu},\n",
                  stride.programs, stride.testsPerProgram,
                  static_cast<unsigned long long>(stride.seed));
    body += buf;
    std::snprintf(buf, sizeof buf,
                  "  \"screened\": %lld,\n"
                  "  \"screen_off_seconds\": %.4f,\n"
                  "  \"screen_on_seconds\": %.4f,\n"
                  "  \"speedup\": %.3f,\n  \"min_speedup\": %.2f,\n"
                  "  \"smt_queries_off\": %lld,\n"
                  "  \"smt_queries_on\": %lld,\n"
                  "  \"smt_avoided\": %.3f,\n"
                  "  \"min_smt_avoided\": %.2f,\n"
                  "  \"deterministic\": %s\n}\n",
                  static_cast<long long>(on.screened), off_s, on_s,
                  speedup, kMinTriageSpeedup,
                  static_cast<long long>(q_off),
                  static_cast<long long>(q_on), smt_avoided,
                  kMinSmtAvoided, deterministic ? "true" : "false");
    body += buf;

    std::ofstream out(path);
    const bool wrote = out && (out << body);
    out.close();
    return wrote && deterministic && on.screened > 0 &&
           (speedup >= kMinTriageSpeedup ||
            smt_avoided >= kMinSmtAvoided);
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_TRIAGE_REPORT_HH
