/**
 * @file
 * Shared bench helper: compare the adaptive campaign scheduler
 * (src/cover) against the uniform baseline on the paper's stride
 * workload and emit `BENCH_coverage.json` (schema
 * "scamv-coverage-v1", plus a "comparison" section).
 *
 * Both campaigns run the same Stride / Mpart+MpartRefined / PcAndLine
 * configuration with the same seed and budget.  The uniform schedule
 * draws Mline classes at random, re-hitting covered classes for the
 * whole campaign; the adaptive schedule plans each round
 * least-covered-first from the coverage ledger and stops early once
 * the class universe is saturated.  The headline metric is *classes
 * covered per program actually run* — the coverage a program of
 * budget buys — and the report gates on adaptive being at least
 * `kMinRatio` times better.
 */

#ifndef SCAMV_BENCH_COVERAGE_REPORT_HH
#define SCAMV_BENCH_COVERAGE_REPORT_HH

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/pipeline.hh"
#include "cover/ledger.hh"
#include "gen/templates.hh"
#include "obs/models.hh"
#include "support/stopwatch.hh"

namespace scamv::benchsupport {

/** Required adaptive : uniform classes-per-program advantage. */
inline constexpr double kMinRatio = 1.5;

namespace coverage_detail {

struct ModeResult {
    core::RunStats stats;
    double wallSeconds = 0.0;
    cover::Snapshot coverage;

    double
    classesPerProgram() const
    {
        return stats.programs
                   ? static_cast<double>(stats.coveredClasses) /
                         static_cast<double>(stats.programs)
                   : 0.0;
    }
};

inline core::PipelineConfig
strideWorkload()
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.testsPerProgram = 8;
    cfg.seed = 99;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    // SCAMV_SCALE shrinks smoke runs, but the comparison needs enough
    // budget for the uniform baseline's diminishing returns to show:
    // keep at least ~2x the programs adaptive needs to saturate.
    cfg.programs =
        std::max(32, core::scaled(48, core::scaleFromEnv(1.0)));
    return cfg;
}

inline ModeResult
runMode(core::Schedule schedule)
{
    cover::CoverageLedger ledger;
    core::PipelineConfig cfg = strideWorkload();
    cfg.schedule = schedule;
    cfg.coverageLedger = &ledger;
    ModeResult r;
    Stopwatch watch;
    r.stats = core::Pipeline(cfg).run();
    r.wallSeconds = watch.seconds();
    r.coverage = ledger.snapshot();
    return r;
}

inline void
appendMode(std::string &out, const char *name, const ModeResult &r)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "    \"%s\": {\"programs\": %d, \"early_stopped\": %d, "
        "\"classes_covered\": %lld, \"classes_per_program\": %.3f, "
        "\"counterexamples\": %lld, \"ttc_s\": %.4f, "
        "\"wall_s\": %.4f}",
        name, r.stats.programs, r.stats.earlyStopped,
        static_cast<long long>(r.stats.coveredClasses),
        r.classesPerProgram(),
        static_cast<long long>(r.stats.counterexamples),
        r.stats.ttcSeconds, r.wallSeconds);
    out += buf;
}

} // namespace coverage_detail

/**
 * Run the uniform/adaptive comparison and write `path`: the adaptive
 * campaign's coverage ledger in the "scamv-coverage-v1" schema, plus
 * a "comparison" section with both campaigns' coverage economics.
 * @return false when the report cannot be written or adaptive fails
 * the kMinRatio gate (the caller should fail the bench run).
 */
inline bool
writeCoverageReport(const std::string &path = "BENCH_coverage.json")
{
    using coverage_detail::ModeResult;

    const ModeResult uniform =
        coverage_detail::runMode(core::Schedule::Uniform);
    const ModeResult adaptive =
        coverage_detail::runMode(core::Schedule::Adaptive);

    const double up = uniform.classesPerProgram();
    const double ap = adaptive.classesPerProgram();
    const double ratio = up > 0 ? ap / up : 0.0;

    std::printf("[coverage] uniform:  %d programs  %lld classes "
                "(%.2f / program)\n",
                uniform.stats.programs,
                static_cast<long long>(uniform.stats.coveredClasses),
                up);
    std::printf("[coverage] adaptive: %d programs  %lld classes "
                "(%.2f / program, %d early-stopped)\n",
                adaptive.stats.programs,
                static_cast<long long>(adaptive.stats.coveredClasses),
                ap, adaptive.stats.earlyStopped);
    std::printf("[coverage] classes-per-program ratio: %.2fx "
                "(gate: %.1fx)\n",
                ratio, kMinRatio);

    // The ledger JSON already carries the closing brace; splice the
    // comparison section in before it.
    std::string body = cover::toJson(adaptive.coverage);
    body.erase(body.rfind('}'));
    body += ",\n  \"comparison\": {\n";
    coverage_detail::appendMode(body, "uniform", uniform);
    body += ",\n";
    coverage_detail::appendMode(body, "adaptive", adaptive);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  ",\n    \"ratio\": %.3f,\n    \"min_ratio\": %.2f\n",
                  ratio, kMinRatio);
    body += buf;
    body += "  }\n}\n";

    std::ofstream out(path);
    if (!out || !(out << body))
        return false;
    out.close();
    return ratio >= kMinRatio;
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_COVERAGE_REPORT_HH
