/**
 * @file
 * Ablation studies for the design choices called out in DESIGN.md:
 *
 *   1. Test-generation strategy: canonical CDCL models (the unguided
 *      Z3-like baseline), randomized solver phases, and the repair
 *      sampler — with and without refinement.  Shows that refinement
 *      is not just "more randomness": random unguided search still
 *      underperforms refinement-guided generation.
 *   2. Hardware knobs: prefetcher trigger depth and page-boundary
 *      behaviour (Mpart campaign), transient-window size and
 *      result-forwarding (Mct campaign).
 *
 * Scale with SCAMV_SCALE.
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/report.hh"

using namespace scamv;
using core::PipelineConfig;

namespace {

PipelineConfig
mctA(double scale)
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mct;
    cfg.train = true;
    cfg.programs = core::scaled(120, scale);
    cfg.testsPerProgram = 20;
    cfg.seed = 7001;
    return cfg;
}

PipelineConfig
mpart(double scale)
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage = core::Coverage::PcAndLine;
    cfg.programs = core::scaled(120, scale);
    cfg.testsPerProgram = 20;
    cfg.seed = 7002;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    return cfg;
}

} // namespace

int
main()
{
    const double scale = core::scaleFromEnv(0.5);
    std::printf("=== Ablations [SCAMV_SCALE=%.2f] ===\n\n", scale);

    // ---- 1. Generation strategy x refinement (Mct / Template A) ----
    {
        std::vector<core::ColumnMeta> metas;
        std::vector<core::RunStats> stats;
        struct Row {
            const char *label;
            core::SolveStrategy strategy;
            bool refined;
        };
        const Row rows[] = {
            {"canonical", core::SolveStrategy::Canonical, false},
            {"random", core::SolveStrategy::RandomPhases, false},
            {"sampler", core::SolveStrategy::Sampler, false},
            {"canonical", core::SolveStrategy::Canonical, true},
            {"random", core::SolveStrategy::RandomPhases, true},
            {"sampler", core::SolveStrategy::Sampler, true},
        };
        for (const Row &row : rows) {
            PipelineConfig cfg = mctA(scale);
            cfg.strategy = row.strategy;
            if (row.refined)
                cfg.refinement = obs::ModelKind::Mspec;
            metas.push_back({"Mct", "Template A",
                             row.refined ? "Mspec" : "No", row.label});
            stats.push_back(core::Pipeline(cfg).run());
        }
        std::printf("-- generation strategy (coverage column = "
                    "strategy) --\n%s\n",
                    core::renderCampaignTable(metas, stats)
                        .render()
                        .c_str());
    }

    // ---- 2. Prefetcher trigger depth (Mpart campaign) ---------------
    {
        std::vector<core::ColumnMeta> metas;
        std::vector<core::RunStats> stats;
        for (int trigger : {2, 3, 4, 6}) {
            PipelineConfig cfg = mpart(scale);
            cfg.platform.core.prefetcher.trigger = trigger;
            metas.push_back({"Mpart", "Stride", "Mpart'",
                             "trigger=" + std::to_string(trigger)});
            stats.push_back(core::Pipeline(cfg).run());
        }
        {
            PipelineConfig cfg = mpart(scale);
            cfg.platform.core.prefetcher.enabled = false;
            metas.push_back({"Mpart", "Stride", "Mpart'", "pf off"});
            stats.push_back(core::Pipeline(cfg).run());
        }
        std::printf("-- prefetcher trigger depth (coverage column = "
                    "knob) --\n%s\n",
                    core::renderCampaignTable(metas, stats)
                        .render()
                        .c_str());
        std::printf("Expected: deeper triggers reduce counterexamples "
                    "(5-load strides are the\nlongest the template "
                    "emits); disabling the prefetcher removes them "
                    "entirely.\n\n");
    }

    // ---- 3. Speculation knobs (Mct / Template A) --------------------
    {
        std::vector<core::ColumnMeta> metas;
        std::vector<core::RunStats> stats;
        for (int window : {0, 1, 8}) {
            PipelineConfig cfg = mctA(scale);
            cfg.refinement = obs::ModelKind::Mspec;
            cfg.platform.core.transientWindow = window;
            metas.push_back({"Mct", "Template A", "Mspec",
                             "window=" + std::to_string(window)});
            stats.push_back(core::Pipeline(cfg).run());
        }
        {
            // An out-of-order-style core that forwards speculative
            // results: Template C-style dependent gadgets would leak;
            // Template A already leaks either way.
            PipelineConfig cfg = mctA(scale);
            cfg.refinement = obs::ModelKind::Mspec;
            cfg.templateKind = gen::TemplateKind::C;
            cfg.model = obs::ModelKind::Mspec1;
            cfg.platform.core.forwardTransientResults = true;
            metas.push_back({"Mspec1", "Template C", "Mspec",
                             "forwarding on"});
            stats.push_back(core::Pipeline(cfg).run());
        }
        std::printf("-- speculation knobs (coverage column = knob) "
                    "--\n%s\n",
                    core::renderCampaignTable(metas, stats)
                        .render()
                        .c_str());
        std::printf("Expected: window=0 (no transient execution) "
                    "yields zero counterexamples;\nenabling result "
                    "forwarding makes even Mspec1 unsound on Template "
                    "C —\nthe dependent second load issues, i.e. "
                    "full Spectre-PHT.\n");
    }
    return 0;
}
