/**
 * @file
 * Regenerates Fig. 6: the Spectre-PHT and SiSCloak counterexamples,
 * as relational experiments (the framework's view) and as end-to-end
 * Flush+Reload attacks recovering every secret value (the attacker's
 * view, Section 6.4).
 */

#include <cstdio>

#include "bir/asm.hh"
#include "harness/flush_reload.hh"
#include "harness/platform.hh"

using namespace scamv;

namespace {

constexpr std::uint64_t kArrayA = 0x80000;
constexpr std::uint64_t kArrayB = 0x90000;

bir::Program
variant1()
{
    return bir::assemble("ldr x2, [x5, x0]\n"
                         "b.geu x0, x1, end\n"
                         "ldr x3, [x6, x2]\n"
                         "end: ret\n",
                         "fig6-variant1")
        .program;
}

bir::Program
variant2()
{
    return bir::assemble("ldr x2, [x5, x0]\n"
                         "and x4, x2, #0x80000000\n"
                         "b.ne x4, #0, end\n"
                         "ldr x3, [x6, x2]\n"
                         "end: ret\n",
                         "fig6-variant2")
        .program;
}

bir::Program
spectrePht()
{
    // The original Spectre-PHT gadget: both loads inside the branch.
    return bir::assemble("b.geu x0, x1, end\n"
                         "ldr x2, [x5, x0]\n"
                         "ldr x3, [x6, x2]\n"
                         "end: ret\n",
                         "fig6-spectre-pht")
        .program;
}

/** Relational experiment: do two secrets yield distinct cache states? */
harness::Verdict
relationalVerdict(const bir::Program &p)
{
    harness::Platform platform(harness::PlatformConfig{});
    auto mk = [&](std::uint64_t secret) {
        harness::ProgramInput in;
        in.regs.regs[5] = kArrayA;
        in.regs.regs[6] = kArrayB;
        in.regs.regs[0] = 512;
        in.regs.regs[1] = 256;
        in.mem = {{kArrayA + 512, secret * 64}};
        return in;
    };
    harness::TestCase tc;
    tc.s1 = mk(3);
    tc.s2 = mk(9);
    harness::ProgramInput train;
    train.regs.regs[5] = kArrayA;
    train.regs.regs[6] = kArrayB;
    train.regs.regs[0] = 8;
    train.regs.regs[1] = 256;
    train.mem = {{kArrayA + 8, 0}};
    return platform.runExperiment(p, tc, train).verdict;
}

/** Full attack success rate over all 64 one-line secrets. */
int
attackSweep(const bir::Program &p, bool cloaked)
{
    int recovered = 0;
    for (std::uint64_t secret = 0; secret < 64; ++secret) {
        hw::Core core;
        const std::uint64_t stored =
            cloaked ? (0x80000000ULL | (secret * 64)) : secret * 64;
        core.memory().store(kArrayA + (cloaked ? 64 : 512), stored);

        hw::ArchState st;
        st.regs[5] = kArrayA;
        st.regs[6] = kArrayB;
        st.regs[1] = 256;
        for (int i = 0; i < 4; ++i) {
            st.regs[0] = 8 * i;
            core.memory().store(kArrayA + 8 * i, 0);
            core.run(p, st);
        }
        const std::uint64_t probe_base =
            cloaked ? kArrayB + 0x80000000ULL : kArrayB;
        harness::FlushReloadAttacker attacker(probe_base, 64);
        attacker.flush(core);
        st.regs[0] = cloaked ? 64 : 512;
        core.run(p, st);
        auto hot = attacker.hotLines(core);
        recovered += hot.size() == 1 &&
                     hot[0] == static_cast<int>(secret);
    }
    return recovered;
}

const char *
verdictName(harness::Verdict v)
{
    switch (v) {
      case harness::Verdict::Counterexample: return "COUNTEREXAMPLE";
      case harness::Verdict::Indistinguishable:
        return "indistinguishable";
      case harness::Verdict::Inconclusive: return "inconclusive";
    }
    return "?";
}

} // namespace

int
main()
{
    std::printf("=== Fig. 6: Spectre-PHT and SiSCloak counterexamples "
                "===\n\n");

    std::printf("Relational experiments (Mct-equivalent states, "
                "trained predictor):\n");
    std::printf("  variant 1 (hoisted load):        %s\n",
                verdictName(relationalVerdict(variant1())));
    std::printf("  variant 2 (cloaking bit):        %s\n",
                verdictName(relationalVerdict(variant2())));
    std::printf("  original Spectre-PHT (dependent): %s\n",
                verdictName(relationalVerdict(spectrePht())));

    std::printf("\nEnd-to-end Flush+Reload secret recovery "
                "(64 secrets each):\n");
    std::printf("  variant 1: %d/64 recovered\n",
                attackSweep(variant1(), false));
    std::printf("  variant 2: %d/64 recovered\n",
                attackSweep(variant2(), true));
    std::printf("  Spectre-PHT: %d/64 recovered (A53 claim: 0)\n",
                attackSweep(spectrePht(), false));

    std::printf("\nExpected shape: both SiSCloak variants are "
                "counterexamples with full\nsecret recovery; the "
                "dependent-load Spectre-PHT gadget does not leak on\n"
                "the A53 core model (no forwarding of speculative "
                "results).\n");
    return 0;
}
