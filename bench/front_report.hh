/**
 * @file
 * Shared bench helper: measure the SC frontend (src/front) and emit
 * `BENCH_front.json` (schema "scamv-front-v1").
 *
 * The frontend sits on every corpus campaign's startup path — the
 * worker, the merge coordinator and every scamvd submission each
 * recompile the corpus from source (corpus compilation is a pure
 * function, so recompiling is what keeps shard and service runs
 * byte-identical without shipping compiled programs around).  The
 * bench compiles the example corpus many times and gates on:
 *
 *  - throughput: at least `kMinCompilesPerSec` kernel compilations
 *    per second — a compile must stay microscopic next to the
 *    campaign work it fronts;
 *  - determinism: two independent corpus loads produce byte-identical
 *    BIR and identical layouts/contracts — the property every
 *    byte-identity invariant in ARCHITECTURE.md leans on;
 *  - round-trip: assemble(toString(p)) == p for every kernel — the
 *    `scamv-fc --emit-bir` output is a faithful program encoding.
 */

#ifndef SCAMV_BENCH_FRONT_REPORT_HH
#define SCAMV_BENCH_FRONT_REPORT_HH

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bir/asm.hh"
#include "core/pipeline.hh"
#include "front/front.hh"
#include "support/stopwatch.hh"

namespace scamv::benchsupport {

/** Required kernel compilations per second (pessimistic floor: real
 *  hosts compile the whole corpus in well under a millisecond). */
inline constexpr double kMinCompilesPerSec = 1000.0;

namespace front_detail {

/** Structural equality of two corpus loads (program bytes + the
 *  relational contract the campaign consumes). */
inline bool
corpusEqual(const std::vector<front::CompiledProgram> &a,
            const std::vector<front::CompiledProgram> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].name != b[i].name ||
            !(a[i].program == b[i].program) ||
            a[i].program.toString() != b[i].program.toString() ||
            a[i].secretRegs != b[i].secretRegs ||
            a[i].publicRegs != b[i].publicRegs ||
            a[i].publicMemAddrs != b[i].publicMemAddrs)
            return false;
    }
    return true;
}

} // namespace front_detail

/**
 * Run the frontend measurement over `corpus_dir` and write `path` in
 * the "scamv-front-v1" schema.
 * @return false when the report cannot be written, the corpus fails
 * to load, determinism or round-trip break, or throughput misses.
 */
inline bool
writeFrontReport(const std::string &corpus_dir,
                 const std::string &path = "BENCH_front.json")
{
    using namespace front_detail;

    const std::vector<front::CompiledProgram> corpus =
        front::loadCorpusDir(corpus_dir);
    if (corpus.empty()) {
        std::printf("[front] no kernels in %s\n", corpus_dir.c_str());
        return false;
    }

    // ---- determinism: a second independent load is identical -----
    const bool deterministic =
        corpusEqual(corpus, front::loadCorpusDir(corpus_dir));

    // ---- round-trip through the bir/asm assembler ----------------
    bool round_trip = true;
    long instructions = 0;
    for (const front::CompiledProgram &cp : corpus) {
        const bir::AsmResult back =
            bir::assemble(cp.program.toString(), cp.name);
        round_trip = round_trip && back.ok() &&
                     back.program == cp.program;
        instructions += static_cast<long>(cp.program.size());
    }

    // ---- throughput ----------------------------------------------
    const int iterations =
        std::max(20, core::scaled(200, core::scaleFromEnv(1.0)));
    Stopwatch watch;
    long compiled = 0;
    for (int it = 0; it < iterations; ++it)
        compiled +=
            static_cast<long>(front::loadCorpusDir(corpus_dir).size());
    const double compile_s = watch.seconds();
    const double per_sec =
        compile_s > 0.0 ? static_cast<double>(compiled) / compile_s
                        : 0.0;

    std::printf("[front] %zu kernels (%ld instrs), %d corpus loads "
                "in %.3fs = %.0f compiles/s (gate %.0f)\n",
                corpus.size(), instructions, iterations, compile_s,
                per_sec, kMinCompilesPerSec);
    std::printf("[front] deterministic: %s  round-trip: %s\n",
                deterministic ? "yes" : "NO",
                round_trip ? "yes" : "NO");

    char buf[512];
    std::string body = "{\n  \"schema\": \"scamv-front-v1\",\n";
    std::snprintf(
        buf, sizeof buf,
        "  \"kernels\": %zu,\n  \"instructions\": %ld,\n"
        "  \"iterations\": %d,\n  \"compile_seconds\": %.4f,\n"
        "  \"compiles_per_second\": %.1f,\n"
        "  \"min_compiles_per_second\": %.1f,\n"
        "  \"deterministic\": %s,\n  \"round_trip\": %s\n}\n",
        corpus.size(), instructions, iterations, compile_s, per_sec,
        kMinCompilesPerSec, deterministic ? "true" : "false",
        round_trip ? "true" : "false");
    body += buf;

    std::ofstream out(path);
    const bool wrote = out && (out << body);
    return wrote && deterministic && round_trip &&
           per_sec >= kMinCompilesPerSec;
}

} // namespace scamv::benchsupport

#endif // SCAMV_BENCH_FRONT_REPORT_HH
