/**
 * @file
 * Campaign service bench: runs the N-standalone-campaigns vs
 * N-through-scamvd comparison of bench/svc_report.hh and emits
 * `BENCH_svc.json`.  Exits non-zero when the shared cross-campaign
 * qcache neither pays for itself (aggregate wall clock or avoided
 * solver work) nor preserves byte-identical campaign artifacts, so
 * CI catches both efficiency and soundness regressions.
 */

#include <cstdio>

#include "svc_report.hh"

int
main()
{
    const bool ok = scamv::benchsupport::writeSvcReport();
    if (!ok)
        std::printf("[svc] FAILED (see BENCH_svc.json)\n");
    return ok ? 0 : 1;
}
