/**
 * @file
 * Regenerates Table 1, columns 7-8: validation of Mct on the more
 * general Template B, with and without Mspec refinement.
 *
 * Paper reference values: no counterexamples at all without
 * refinement (942 programs, 37680 experiments, 138 hours); with
 * refinement 498 of 941 programs (~50%) have counterexamples and
 * ~13% of experiments are counterexamples (T.T.C. ~11 minutes).
 *
 * Scale with SCAMV_SCALE (1.0 = paper-sized campaign).
 */

#include <cstdio>

#include "core/pipeline.hh"
#include "core/report.hh"
#include "parallel_report.hh"

using namespace scamv;
using core::PipelineConfig;

namespace {

PipelineConfig
mctBConfig(bool refined, double scale)
{
    PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::B;
    cfg.model = obs::ModelKind::Mct;
    if (refined)
        cfg.refinement = obs::ModelKind::Mspec;
    cfg.train = true;
    cfg.programs = core::scaled(942, scale);
    cfg.testsPerProgram = 40;
    cfg.seed = 1794 + (refined ? 1 : 0);
    cfg.platform.noiseProbability = 0.0005;
    return cfg;
}

} // namespace

int
main()
{
    const double scale = core::scaleFromEnv(1.0);
    std::printf("=== Table 1 (cols 7-8): Mct / Template B "
                "[SCAMV_SCALE=%.2f] ===\n\n", scale);

    std::vector<core::ColumnMeta> metas = {
        {"Mct", "Template B", "No", "Mpc"},
        {"Mct", "Template B", "Mspec", "Mpc"},
    };
    benchsupport::ParallelReport parallel;
    std::vector<core::RunStats> stats;
    stats.push_back(parallel.compare("table1_mct_b/unrefined",
                                     mctBConfig(false, scale)));
    stats.push_back(parallel.compare("table1_mct_b/Mspec",
                                     mctBConfig(true, scale)));
    parallel.write();

    std::printf("%s\n",
                core::renderCampaignTable(metas, stats).render().c_str());
    std::printf("Artifact checklist A.6.1 (Mct, Template B):\n%s\n",
                core::renderChecklist(stats[0], stats[1])
                    .render()
                    .c_str());
    std::printf("Expected shape: zero (or near-zero) counterexamples "
                "without refinement;\nwith refinement roughly half the "
                "programs have at least one counterexample\nand a "
                "sizeable fraction of experiments are "
                "counterexamples.\n");
    return 0;
}
