/**
 * @file
 * Model-validation campaign demo: the public Pipeline API end-to-end.
 *
 * Runs four miniature validation campaigns (a scaled-down slice of
 * Table 1 / Fig. 7) and prints them in the paper's table layout:
 *
 *   1. Mct on Template A, no refinement   (finds ~nothing)
 *   2. Mct on Template A, Mspec refined   (finds SiSCloak leaks)
 *   3. Mspec1 on Template C, Mspec refined (sound: dependent loads)
 *   4. Mct on Template D, Mspec' refined  (sound: no straight-line
 *      speculation on direct branches)
 *
 * Build & run:  ./build/examples/validate_models
 */

#include <cstdio>

#include "core/expdb.hh"
#include "core/pipeline.hh"
#include "core/report.hh"

using namespace scamv;
using core::PipelineConfig;

namespace {

PipelineConfig
base()
{
    PipelineConfig cfg;
    cfg.programs = 10;
    cfg.testsPerProgram = 10;
    cfg.seed = 2021;
    cfg.train = true;
    return cfg;
}

} // namespace

int
main()
{
    std::vector<core::ColumnMeta> metas;
    std::vector<core::RunStats> stats;

    {
        PipelineConfig cfg = base();
        cfg.templateKind = gen::TemplateKind::A;
        cfg.model = obs::ModelKind::Mct;
        metas.push_back({"Mct", "Template A", "No", "Mpc"});
        stats.push_back(core::Pipeline(cfg).run());
    }
    core::ExperimentDb db;
    {
        PipelineConfig cfg = base();
        cfg.templateKind = gen::TemplateKind::A;
        cfg.model = obs::ModelKind::Mct;
        cfg.refinement = obs::ModelKind::Mspec;
        cfg.database = &db; // log every experiment for inspection
        metas.push_back({"Mct", "Template A", "Mspec", "Mpc"});
        stats.push_back(core::Pipeline(cfg).run());
    }
    {
        PipelineConfig cfg = base();
        cfg.templateKind = gen::TemplateKind::C;
        cfg.model = obs::ModelKind::Mspec1;
        cfg.refinement = obs::ModelKind::Mspec;
        metas.push_back({"Mspec1", "Template C", "Mspec", "Mpc"});
        stats.push_back(core::Pipeline(cfg).run());
    }
    {
        PipelineConfig cfg = base();
        cfg.templateKind = gen::TemplateKind::D;
        cfg.model = obs::ModelKind::Mct;
        cfg.refinement = obs::ModelKind::Mspec;
        cfg.rewriteJumps = true; // Mspec'
        cfg.train = false;       // no conditional branches
        metas.push_back({"Mct", "Template D", "Mspec'", "Mpc"});
        stats.push_back(core::Pipeline(cfg).run());
    }

    std::printf("%s\n",
                core::renderCampaignTable(metas, stats).render().c_str());

    std::printf("Experiment log (campaign 2): %s\n",
                db.summary().c_str());
    if (!db.counterexamples().empty()) {
        const auto *cex = db.counterexamples().front();
        std::printf("First counterexample (program %s, path %s):\n%s",
                    cex->programName.c_str(), cex->pathId.c_str(),
                    cex->programText.c_str());
    }

    std::printf("\nReading: refinement turns Template A from ~0 to many "
                "counterexamples\n(SiSCloak); Mspec1 is sound for "
                "dependent loads (Template C); direct\njumps do not "
                "speculate straight-line (Template D).\n");
    return 0;
}
