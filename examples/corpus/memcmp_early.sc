// memcmp with data-dependent control flow: every word is loaded at a
// public (loop-index) address and mismatches only steer the pc, so
// pc-observing models already account for it — no leak expected here.
secret u64 a[4];
public u64 b[4];
u64 i;
u64 eq;
u64 x;
u64 y;

eq = 1;
for (i = 0; i < 4; i = i + 1) {
    x = a[i];
    y = b[i];
    if (x != y) {
        eq = 0;
    }
}
