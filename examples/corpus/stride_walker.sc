// Stride walker: load addresses are a secret-keyed stride sequence, a
// classic prime+probe target — leak expected (counterexample under the
// address-hiding cacheless model).
secret u64 stride;
public u64 arr[512];
u64 i;
u64 acc;

for (i = 1; i < 5; i = i + 1) {
    acc = acc + arr[(i * stride) & 511];
}
