// Branchy length parser: the number of buffer loads depends on the
// secret length via a branch — pc-observing models catch this, so no
// refinement counterexample is expected against the ct model.
secret u64 len;
public u64 buf[16];
u64 i;
u64 acc;

if (len < 8) {
    for (i = 0; i < 4; i = i + 1) {
        acc = acc + buf[i];
    }
} else {
    for (i = 0; i < 8; i = i + 1) {
        acc = acc + buf[i];
    }
}
