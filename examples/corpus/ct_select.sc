// Constant-time select: branchless mask arithmetic, no memory access —
// no leak expected under any observational model in the zoo.
secret u64 sel;
secret u64 a;
secret u64 b;
u64 mask;
u64 out;

mask = 0 - (sel & 1);
out = (a & mask) | (b & (mask ^ 0xffffffffffffffff));
