// AES-style S-box lookup: the load address depends on the secret key
// byte, so cacheless models that hide addresses are invalid — leak
// expected (counterexample under Mpc refined by the ct model).
secret u64 k;
public u64 table[256];
u64 v;

v = table[k & 255];
