/**
 * @file
 * Cache-partitioning (cache colouring) vs. prefetching demo
 * (Sections 4.2.1 and 6.2).
 *
 * Shows concretely why the Mpart observational model is unsound on a
 * core with a stride prefetcher: two states that access only
 * attacker-invisible cache sets (and are therefore observationally
 * equivalent under Mpart) leave different footprints *inside* the
 * attacker's cache partition, because one of them strides close
 * enough to the colour boundary that the prefetcher crosses it.
 * Repeating the experiment with a page-aligned partition shows the
 * leak disappear: the A53 prefetcher does not cross 4 KiB pages.
 *
 * Build & run:  ./build/examples/cache_partitioning
 */

#include <cstdio>

#include "bir/asm.hh"
#include "harness/platform.hh"

using namespace scamv;

namespace {

harness::ProgramInput
strideInput(std::uint64_t base)
{
    harness::ProgramInput in;
    in.regs.regs[0] = base;
    return in;
}

void
runPartitionExperiment(std::uint64_t ar_lo_set, const char *label)
{
    // A stride of three loads, one cache line apart (the Stride
    // template of Fig. 5).
    auto p = bir::assemble("ldr x1, [x0]\n"
                           "ldr x2, [x0, #64]\n"
                           "ldr x3, [x0, #128]\n"
                           "ret\n",
                           "stride");

    harness::PlatformConfig cfg;
    cfg.visibleLoSet = ar_lo_set; // attacker-visible partition
    cfg.visibleHiSet = 127;
    harness::Platform platform(cfg);

    const std::uint64_t region = 0x80000; // page- and set-aligned

    // s1 strides up to the set just below the colour boundary; the
    // prefetched next line falls on the boundary set itself.
    harness::TestCase tc;
    tc.s1 = strideInput(region + (ar_lo_set - 3) * 64);
    // s2 strides far from the boundary.
    tc.s2 = strideInput(region + 10 * 64);

    auto r = platform.runExperiment(p.program, tc);
    std::printf("%-22s AR = sets %3lu..127   verdict: %s\n", label,
                ar_lo_set,
                r.verdict == harness::Verdict::Counterexample
                    ? "COUNTEREXAMPLE — colouring broken by prefetch"
                    : "indistinguishable — colouring holds");
}

} // namespace

int
main()
{
    std::printf("Cache colouring vs. the stride prefetcher "
                "(Section 6.2)\n\n");
    std::printf("Both test states only touch sets *outside* the "
                "attacker partition,\nso the cache-partitioning model "
                "Mpart deems them equivalent.\n\n");

    // Paper configuration 1: AR = sets 61..127 (not page aligned).
    runPartitionExperiment(61, "unaligned partition:");

    // Paper configuration 2: AR = sets 64..127 (page aligned) — the
    // prefetcher stops at the 4 KiB boundary, so nothing spills.
    runPartitionExperiment(64, "page-aligned partition:");

    std::printf("\nConclusion (matches Table 1): cache colouring is "
                "unsound against a\nstride prefetcher unless the "
                "partition is page aligned.\n");
    return 0;
}
