/**
 * @file
 * SiSCloak attack demonstration (Section 6.4, Fig. 6).
 *
 * Mounts the real attack the paper reports against Cortex-A53: a
 * *single* speculative load leaks through the data cache even though
 * the core never forwards speculative results.  Both Fig. 6 gadgets
 * are demonstrated, with full secret recovery via Flush+Reload and the
 * PMC cycle counter.
 *
 * Build & run:  ./build/examples/siscloak_attack
 */

#include <cstdio>
#include <string>

#include "bir/asm.hh"
#include "harness/flush_reload.hh"
#include "hw/core.hh"

using namespace scamv;

namespace {

constexpr std::uint64_t kArrayA = 0x80000; // victim array A
constexpr std::uint64_t kArrayB = 0x90000; // shared probe array B

/** Recover one secret byte with the Fig. 6 variant-1 gadget. */
std::uint64_t
attackVariant1(std::uint64_t secret_line)
{
    // ldr x2, [#A + x0]; if (x0 < bound) ldr x3, [#B + x2]
    auto gadget = bir::assemble("ldr x2, [x5, x0]\n"
                                "b.geu x0, x1, end\n"
                                "ldr x3, [x6, x2]\n"
                                "end: ret\n",
                                "siscloak-v1");
    hw::Core core;
    // The "secret" lives out of bounds, beyond A's 256-byte extent.
    core.memory().store(kArrayA + 512, secret_line * 64);

    hw::ArchState st;
    st.regs[5] = kArrayA;
    st.regs[6] = kArrayB;
    st.regs[1] = 256; // bound

    // Phase 1: train the bounds check with in-bounds indices.
    for (int i = 0; i < 4; ++i) {
        st.regs[0] = 8 * i;
        core.memory().store(kArrayA + 8 * i, 0);
        core.run(gadget.program, st);
    }

    // Phase 2: Flush+Reload around the malicious access.
    harness::FlushReloadAttacker attacker(kArrayB, 64);
    attacker.flush(core);
    st.regs[0] = 512; // out of bounds -> misprediction -> leak
    core.run(gadget.program, st);
    auto hot = attacker.hotLines(core);
    return hot.size() == 1 ? static_cast<std::uint64_t>(hot[0])
                           : UINT64_MAX;
}

/** Recover a classified element with the Fig. 6 variant-2 gadget. */
std::uint64_t
attackVariant2(std::uint64_t secret_value)
{
    // The high bit of A[i] classifies the element as secret; the
    // branch guards the B access, but the classification check itself
    // is predicted.
    auto gadget = bir::assemble("ldr x2, [x5, x0]\n"
                                "and x4, x2, #0x80000000\n"
                                "b.ne x4, #0, end\n"
                                "ldr x3, [x6, x2]\n"
                                "end: ret\n",
                                "siscloak-v2");
    hw::Core core;
    core.memory().store(kArrayA + 64,
                        0x80000000ULL | (secret_value * 64));

    hw::ArchState st;
    st.regs[5] = kArrayA;
    st.regs[6] = kArrayB;

    // Train with public (high-bit-clear) elements.
    for (int i = 0; i < 4; ++i) {
        st.regs[0] = 8 * i;
        core.memory().store(kArrayA + 8 * i, 0);
        core.run(gadget.program, st);
    }

    // Probe the B-relative window the cloaked address lands in.
    harness::FlushReloadAttacker attacker(kArrayB + 0x80000000ULL, 64);
    attacker.flush(core);
    st.regs[0] = 64; // index of the classified element
    core.run(gadget.program, st);
    auto hot = attacker.hotLines(core);
    return hot.size() == 1 ? static_cast<std::uint64_t>(hot[0])
                           : UINT64_MAX;
}

} // namespace

int
main()
{
    std::printf("SiSCloak: SIngle SpeCulative LOad AttacK "
                "(MICRO'21, Section 6.4)\n\n");

    std::printf("Variant 1: hoisted load + predicted bounds check\n");
    bool ok1 = true;
    for (std::uint64_t secret : {3ULL, 13ULL, 42ULL, 63ULL}) {
        const std::uint64_t recovered = attackVariant1(secret);
        std::printf("  secret=%2lu  recovered=%2lu  %s\n", secret,
                    recovered, recovered == secret ? "OK" : "FAIL");
        ok1 = ok1 && recovered == secret;
    }

    std::printf("\nVariant 2: classification-bit cloaking\n");
    bool ok2 = true;
    for (std::uint64_t secret : {1ULL, 21ULL, 40ULL, 55ULL}) {
        const std::uint64_t recovered = attackVariant2(secret);
        std::printf("  secret=%2lu  recovered=%2lu  %s\n", secret,
                    recovered, recovered == secret ? "OK" : "FAIL");
        ok2 = ok2 && recovered == secret;
    }

    std::printf("\nClassic Spectre-PHT (dependent loads) for contrast: "
                "the A53 core\nnever forwards a speculative result, so "
                "the second load is blocked\nand nothing leaks — "
                "matching ARM's (partially correct) claim.\n");

    return ok1 && ok2 ? 0 : 1;
}
