/**
 * @file
 * Quickstart: walks the paper's running example (Fig. 2) through the
 * whole pipeline — assemble a program, annotate it with observational
 * models, symbolically execute it, synthesize the observational
 * equivalence relation with refinement (Section 3), ask the solver for
 * a test case, and run it on the simulated Cortex-A53 platform.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "bir/asm.hh"
#include "bir/transform.hh"
#include "harness/platform.hh"
#include "obs/models.hh"
#include "rel/relation.hh"
#include "smt/smtlib.hh"
#include "smt/solver.hh"
#include "sym/symexec.hh"

using namespace scamv;

int
main()
{
    // The running example of Fig. 2:
    //     x2 := mem[x0]
    //     if (x0 < x1 + 1)
    //         x3 := mem[x2]
    const char *source = "ldr x2, [x0]\n"
                         "add x4, x1, #1\n"
                         "b.geu x0, x4, end\n"
                         "ldr x3, [x2]\n"
                         "end: ret\n";
    auto assembled = bir::assemble(source, "fig2");
    if (!assembled.ok()) {
        std::fprintf(stderr, "assembly failed: %s\n",
                     assembled.error.c_str());
        return 1;
    }
    bir::Program program = assembled.program;
    std::printf("== Program (Fig. 2) ==\n%s\n",
                program.toString().c_str());

    // Instrument for speculation (Fig. 4) and annotate with the
    // constant-time model Mct refined by Mspec.
    expr::ExprContext ctx;
    bir::Program instrumented = bir::instrumentSpeculation(program);
    std::printf("== Instrumented (shadow statements marked @t) ==\n%s\n",
                instrumented.toString().c_str());

    obs::RefinementPair annotator(obs::makeModel(obs::ModelKind::Mct),
                                  obs::makeModel(obs::ModelKind::Mspec));
    auto paths1 = sym::execute(ctx, instrumented, annotator, {"_1"});
    auto paths2 = sym::execute(ctx, instrumented, annotator, {"_2"});

    std::printf("== Symbolic paths ==\n");
    for (const auto &p : paths1) {
        std::printf("path %-3s cond=%s\n", p.pathId().c_str(),
                    expr::toString(p.cond).c_str());
        for (const auto &o : p.obs)
            std::printf("    [%s] %-20s %s\n",
                        o.tag == sym::ObsTag::Base ? "base" : "ref ",
                        o.note, expr::toString(o.value).c_str());
    }

    // Relation synthesis (Eq. 1 + refinement, per path pair).
    rel::RelationConfig rel_cfg;
    rel_cfg.refine = true;
    rel::RelationSynthesizer relation(ctx, paths1, paths2, rel_cfg);
    std::printf("\n%zu structurally compatible path pair(s)\n",
                relation.pairs().size());

    // Generate one test case from the first pair and measure it.
    harness::PlatformConfig pcfg;
    harness::Platform platform(pcfg);
    auto mpc = obs::makeModel(obs::ModelKind::Mpc);
    auto training_paths = sym::execute(ctx, instrumented, *mpc, {"_t"});

    bool dumped = false;
    for (const auto &pair : relation.pairs()) {
        if (!dumped) {
            // The synthesized relation, exported for external solvers
            // (pipe into `z3 -in` to cross-check the SMT-lite stack).
            std::printf("\n== Relation in SMT-LIB 2 (first pair) ==\n%s\n",
                        smt::toSmtLib(relation.formulaFor(pair))
                            .c_str());
            dumped = true;
        }
        smt::SmtSolver solver(ctx, relation.formulaFor(pair));
        if (solver.solve() != smt::Outcome::Sat)
            continue;
        auto model = solver.model();
        harness::TestCase tc;
        tc.s1 = harness::inputFromAssignment(model, "_1");
        tc.s2 = harness::inputFromAssignment(model, "_2");
        std::printf("\n== Test case (path %s) ==\n",
                    relation.paths1()[pair.idx1].pathId().c_str());
        std::printf("s1: x0=%#lx x1=%#lx   s2: x0=%#lx x1=%#lx\n",
                    tc.s1.regs.regs[0], tc.s1.regs.regs[1],
                    tc.s2.regs.regs[0], tc.s2.regs.regs[1]);

        std::optional<harness::ProgramInput> training;
        auto tf = rel::RelationSynthesizer::trainingFormula(
            ctx, training_paths, relation.paths1()[pair.idx1], rel_cfg);
        if (tf) {
            smt::SmtSolver ts(ctx, *tf);
            if (ts.solve() == smt::Outcome::Sat)
                training = harness::inputFromAssignment(ts.model(), "_t");
        }

        auto result = platform.runExperiment(program, tc, training);
        const char *verdict =
            result.verdict == harness::Verdict::Counterexample
                ? "COUNTEREXAMPLE (model unsound on this hardware!)"
            : result.verdict == harness::Verdict::Inconclusive
                ? "inconclusive"
                : "indistinguishable";
        std::printf("verdict: %s (%d/%d repetitions differ)\n", verdict,
                    result.differingReps, result.totalReps);
    }
    return 0;
}
