/**
 * @file
 * Experiment database — the stand-in for the artifact's EmbExp-Logs
 * store (Appendix A): every generated test case and its verdict is
 * recorded, so that counterexamples can be collected and inspected to
 * "get better insight and identify patterns that trigger
 * microarchitectural features in unexpected ways" (Section 1).
 *
 * The store is in-memory with CSV export; the original uses SQLite,
 * but nothing in the workflow depends on SQL (the artifact's analysis
 * scripts are grep/aggregate passes that the accessors below cover).
 */

#ifndef SCAMV_CORE_EXPDB_HH
#define SCAMV_CORE_EXPDB_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "harness/platform.hh"

namespace scamv::core {

/** One logged experiment. */
struct ExperimentRecord {
    std::string programName;
    std::string programText;
    /** Path id ("T", "FF", ...) of the tested path pair. */
    std::string pathId;
    harness::TestCase testCase;
    bool trained = false;
    /** Mline set-index class pinned for each state's first access by
     *  the test's coverage draw (-1: none — Pc-only campaigns or
     *  memory-free paths). */
    int lineClass1 = -1;
    int lineClass2 = -1;
    harness::Verdict verdict = harness::Verdict::Indistinguishable;
    int differingReps = 0;
    int totalReps = 0;
};

/**
 * In-memory experiment log with aggregate queries and CSV export.
 *
 * Thread safety: add() is internally synchronized so concurrent
 * pipeline workers may log directly.  (The parallel pipeline itself
 * buffers per program and flushes on one thread in index order — see
 * DESIGN.md "Concurrency model" — so its record order is
 * deterministic.)  The query/export accessors are unsynchronized and
 * must not race with writers.
 */
class ExperimentDb
{
  public:
    /**
     * Append one record (safe to call from multiple threads).
     * @return false when the write is dropped by an injected
     *         `db_write` fault (see support/faults.hh); the caller may
     *         retry with a fresh copy of the record.
     */
    bool add(ExperimentRecord record);

    std::size_t size() const { return records.size(); }
    const std::vector<ExperimentRecord> &all() const { return records; }

    /** @return the number of records with the given verdict. */
    std::size_t countByVerdict(harness::Verdict v) const;

    /** @return all counterexample records. */
    std::vector<const ExperimentRecord *> counterexamples() const;

    /** @return per-program counterexample counts (insight mining). */
    std::map<std::string, int> counterexamplesByProgram() const;

    /** @return per-path-id counterexample counts. */
    std::map<std::string, int> counterexamplesByPath() const;

    /**
     * Export the log as CSV (one row per experiment; register values
     * of both states flattened as hex, memory init as `a=v` lists).
     * @return success.
     */
    bool exportCsv(const std::string &path) const;

    /** Render a short aggregate summary (for bench/example output). */
    std::string summary() const;

    void clear() { records.clear(); }

  private:
    std::vector<ExperimentRecord> records;
    std::mutex writeMutex;
};

/** @return a short string name for a verdict. */
const char *verdictName(harness::Verdict v);

} // namespace scamv::core

#endif // SCAMV_CORE_EXPDB_HH
