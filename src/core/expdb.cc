#include "core/expdb.hh"

#include <sstream>

#include "support/faults.hh"
#include "support/table.hh"

namespace scamv::core {

const char *
verdictName(harness::Verdict v)
{
    switch (v) {
      case harness::Verdict::Indistinguishable:
        return "indistinguishable";
      case harness::Verdict::Counterexample:
        return "counterexample";
      case harness::Verdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

bool
ExperimentDb::add(ExperimentRecord record)
{
    // Injected storage failure: the record is lost before it reaches
    // the log, as if the backing store rejected the insert.
    if (faults::maybeInject(faults::Site::DbWrite))
        return false;
    std::lock_guard<std::mutex> lock(writeMutex);
    records.push_back(std::move(record));
    return true;
}

std::size_t
ExperimentDb::countByVerdict(harness::Verdict v) const
{
    std::size_t n = 0;
    for (const auto &r : records)
        n += r.verdict == v;
    return n;
}

std::vector<const ExperimentRecord *>
ExperimentDb::counterexamples() const
{
    std::vector<const ExperimentRecord *> out;
    for (const auto &r : records)
        if (r.verdict == harness::Verdict::Counterexample)
            out.push_back(&r);
    return out;
}

std::map<std::string, int>
ExperimentDb::counterexamplesByProgram() const
{
    std::map<std::string, int> out;
    for (const auto &r : records)
        if (r.verdict == harness::Verdict::Counterexample)
            ++out[r.programName];
    return out;
}

std::map<std::string, int>
ExperimentDb::counterexamplesByPath() const
{
    std::map<std::string, int> out;
    for (const auto &r : records)
        if (r.verdict == harness::Verdict::Counterexample)
            ++out[r.pathId];
    return out;
}

namespace {

std::string
hexList(const hw::ArchState &regs)
{
    std::ostringstream out;
    bool first = true;
    for (int r = 0; r < bir::kNumRegs; ++r) {
        if (regs.regs[r] == 0)
            continue;
        if (!first)
            out << ' ';
        out << 'x' << r << "=0x" << std::hex << regs.regs[r]
            << std::dec;
        first = false;
    }
    return out.str();
}

std::string
memList(const harness::MemInit &mem)
{
    std::ostringstream out;
    bool first = true;
    for (const auto &[addr, val] : mem) {
        if (!first)
            out << ' ';
        out << "0x" << std::hex << addr << "=0x" << val << std::dec;
        first = false;
    }
    return out.str();
}

} // namespace

bool
ExperimentDb::exportCsv(const std::string &path) const
{
    TextTable t;
    t.setHeader({"program", "path", "trained", "line_class1",
                 "line_class2", "verdict", "differing_reps",
                 "total_reps", "s1_regs", "s1_mem", "s2_regs",
                 "s2_mem"});
    // A -1 line class exports as an empty cell: "no class pinned" is
    // not a class id.
    auto cls = [](int c) {
        return c < 0 ? std::string() : std::to_string(c);
    };
    for (const auto &r : records) {
        t.addRow({r.programName, r.pathId, r.trained ? "yes" : "no",
                  cls(r.lineClass1), cls(r.lineClass2),
                  verdictName(r.verdict),
                  std::to_string(r.differingReps),
                  std::to_string(r.totalReps),
                  hexList(r.testCase.s1.regs),
                  memList(r.testCase.s1.mem),
                  hexList(r.testCase.s2.regs),
                  memList(r.testCase.s2.mem)});
    }
    return t.writeCsv(path);
}

std::string
ExperimentDb::summary() const
{
    std::ostringstream out;
    out << records.size() << " experiments: "
        << countByVerdict(harness::Verdict::Counterexample)
        << " counterexamples, "
        << countByVerdict(harness::Verdict::Inconclusive)
        << " inconclusive, "
        << countByVerdict(harness::Verdict::Indistinguishable)
        << " indistinguishable; "
        << counterexamplesByProgram().size()
        << " distinct programs with counterexamples";
    return out.str();
}

} // namespace scamv::core
