#include "core/repair.hh"

#include "support/logging.hh"

namespace scamv::core {

std::vector<obs::ModelKind>
repairLattice(obs::ModelKind model)
{
    using obs::ModelKind;
    switch (model) {
      case ModelKind::Mct:
        return {ModelKind::Mct, ModelKind::Mspec1, ModelKind::Mspec};
      case ModelKind::Mspec1:
        return {ModelKind::Mspec1, ModelKind::Mspec};
      case ModelKind::Mspec:
        return {ModelKind::Mspec};
      case ModelKind::Mpart:
        return {ModelKind::Mpart, ModelKind::MpartRefined};
      case ModelKind::MpartRefined:
        return {ModelKind::MpartRefined};
      case ModelKind::Mpage:
        return {ModelKind::Mpage, ModelKind::MspecPage};
      case ModelKind::MspecPage:
        return {ModelKind::MspecPage};
      case ModelKind::Mpc:
      case ModelKind::Mline:
        // Support models are not subject to validation.
        return {model};
    }
    SCAMV_PANIC("repairLattice: unknown model");
}

RepairResult
repairModel(obs::ModelKind model, const RepairConfig &config)
{
    RepairResult result;
    result.original = model;

    const std::vector<obs::ModelKind> lattice = repairLattice(model);
    const obs::ModelKind top = lattice.back();

    for (obs::ModelKind candidate : lattice) {
        RepairAttempt attempt;
        attempt.model = candidate;
        if (candidate != top)
            attempt.refinement = top;

        PipelineConfig cfg = config.campaign;
        cfg.model = candidate;
        cfg.refinement = attempt.refinement;
        // Decorrelate candidate campaigns without losing determinism.
        cfg.seed = config.campaign.seed ^
                   (static_cast<std::uint64_t>(candidate) << 8);

        attempt.stats = Pipeline(cfg).run();
        attempt.sound = attempt.stats.counterexamples == 0;
        attempt.vacuous = attempt.stats.experiments == 0;
        const bool sound = attempt.sound;
        result.attempts.push_back(std::move(attempt));

        if (sound) {
            result.repaired = candidate;
            break;
        }
    }
    return result;
}

} // namespace scamv::core
