#include "core/pipeline.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bir/transform.hh"
#include "core/expdb.hh"
#include "rel/relation.hh"
#include "smt/sampler.hh"
#include "smt/solver.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/thread_pool.hh"

namespace scamv::core {

using expr::Expr;
using expr::ExprContext;

bool
needsSpecInstrumentation(const PipelineConfig &cfg)
{
    auto speculative = [](obs::ModelKind k) {
        return k == obs::ModelKind::Mspec ||
               k == obs::ModelKind::Mspec1 ||
               k == obs::ModelKind::MspecPage;
    };
    if (speculative(cfg.model))
        return true;
    return cfg.refinement && speculative(*cfg.refinement);
}

double
scaleFromEnv(double fallback)
{
    const auto v = envDouble("SCAMV_SCALE");
    return v && *v > 0.0 ? *v : fallback;
}

int
scaled(int n, double scale)
{
    const int v = static_cast<int>(std::lround(n * scale));
    return v < 1 ? 1 : v;
}

std::uint64_t
deriveProgramSeed(std::uint64_t seed, int prog_i)
{
    // splitmix64 finalizer over (seed, prog_i); +1 keeps program 0
    // from collapsing onto the raw campaign seed.
    std::uint64_t x =
        seed + 0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(prog_i) + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Pipeline::Pipeline(const PipelineConfig &config) : cfg(config) {}

/** Register variables of both states, for model blocking. */
static std::vector<Expr>
blockingVars(ExprContext &ctx, const bir::Program &program)
{
    std::vector<Expr> vars;
    for (bir::Reg r : program.usedRegs()) {
        vars.push_back(ctx.bvVar("x" + std::to_string(r) + "_1"));
        vars.push_back(ctx.bvVar("x" + std::to_string(r) + "_2"));
    }
    return vars;
}

void
symmetrizeModel(Expr formula, const bir::Program &program,
                expr::Assignment &model, Rng &rng, double bias)
{
    auto try_merge = [&](auto mutate) {
        if (!rng.chance(bias))
            return;
        expr::Assignment candidate = model;
        mutate(candidate);
        if (expr::evalBool(formula, candidate))
            model = std::move(candidate);
    };

    // Wholesale merge first: s2 := s1.  Relations without refinement
    // are reflexive, so this almost always succeeds for the unguided
    // baseline; refinement disequalities reject it, and the per-
    // component passes below then remove only incidental asymmetry.
    try_merge([&](expr::Assignment &c) {
        for (bir::Reg r : program.usedRegs())
            c.bvVars["x" + std::to_string(r) + "_2"] =
                c.bv("x" + std::to_string(r) + "_1");
        if (auto m1 = c.mems.find("mem_1"); m1 != c.mems.end()) {
            auto cells = m1->second.entries();
            for (const auto &[addr, val] : cells)
                c.mems["mem_2"].storeWord(addr, val);
        }
    });

    for (bir::Reg r : program.usedRegs()) {
        const std::string v1 = "x" + std::to_string(r) + "_1";
        const std::string v2 = "x" + std::to_string(r) + "_2";
        if (model.bv(v1) == model.bv(v2))
            continue;
        try_merge([&](expr::Assignment &c) {
            c.bvVars[v2] = c.bv(v1);
        });
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> mem1_cells;
    if (auto m1 = model.mems.find("mem_1"); m1 != model.mems.end())
        for (const auto &[addr, val] : m1->second.entries())
            mem1_cells.emplace_back(addr, val);
    for (const auto &[a, v] : mem1_cells) {
        auto m2 = model.mems.find("mem_2");
        if (m2 != model.mems.end() && m2->second.contains(a) &&
            m2->second.load(a) == v)
            continue;
        try_merge([&](expr::Assignment &c) {
            c.mems["mem_2"].storeWord(a, v);
        });
    }
}

namespace {

/** Per-program solving state: one incremental solver per path pair. */
struct PairSolvers {
    std::vector<std::unique_ptr<smt::SmtSolver>> solvers;
    std::vector<bool> dead;
};

/**
 * Everything one program task produces.  Slots are indexed by
 * program index and merged in order after the campaign barrier, so
 * the aggregate is independent of task scheduling.  All counting and
 * timing lives in the task's metrics snapshot; only what the merge
 * needs per program (TTC reconstruction, record flushing) is kept
 * alongside.
 */
struct ProgramOutcome {
    bool hasCex = false;
    /** Task-relative time of the first counterexample (-1: none). */
    double firstCexOffsetSeconds = -1.0;
    /** Total wall-clock of this task (sequential-campaign clock). */
    double taskSeconds = 0.0;
    /** Buffered database records, flushed in index order. */
    std::vector<ExperimentRecord> records;
    /** This task's private metrics registry, frozen at task end. */
    metrics::Snapshot metrics;
};

/**
 * Run the whole experiment campaign of one program.  Pure function
 * of (cfg, prog_i): every stochastic component is seeded from
 * deriveProgramSeed(cfg.seed, prog_i), and nothing outside the
 * returned ProgramOutcome is written.
 */
ProgramOutcome
runOneProgram(const PipelineConfig &cfg, bool instrument, int prog_i)
{
    ProgramOutcome out;
    Stopwatch task_watch;

    // Every metric of this task accumulates in a private registry:
    // the instrumented layers below (smt, sat, hw, harness) reach it
    // through metrics::current(), and Pipeline::run() merges the
    // snapshots in program-index order, keeping the campaign metrics
    // independent of task scheduling.
    metrics::Registry reg(cfg.deterministicMetricsTiming
                              ? metrics::ClockMode::Deterministic
                              : metrics::ClockMode::Wall);
    metrics::ScopedRegistry scoped_registry(reg);
    const double task_t0 = reg.now();
    reg.counter("pipeline.programs").inc();

    // Freeze the task's registry into the outcome; called on every
    // exit path so even pair-less programs contribute a snapshot.
    auto finish_task = [&] {
        if (out.hasCex)
            reg.counter("pipeline.programs_with_cex").inc();
        reg.gauge("pipeline.task_seconds").add(reg.now() - task_t0);
        out.metrics = reg.snapshot();
        out.taskSeconds = task_watch.seconds();
    };

    const std::uint64_t prog_seed = deriveProgramSeed(cfg.seed, prog_i);
    gen::GeneratorConfig gen_cfg;
    gen_cfg.lineBytes = cfg.modelParams.geom.lineBytes;
    gen::ProgramGenerator generator(cfg.templateKind, prog_seed,
                                    gen_cfg);
    generator.setCounter(prog_i);
    harness::Platform platform(cfg.platform, prog_seed ^ 0x90153ULL);
    Rng rng(prog_seed ^ 0xc0ffeeULL);

    ExprContext ctx;

    // ---- Observation augmentation (Sections 4.2.2, 5.1) --------
    bir::Program program, model_prog;
    std::unique_ptr<sym::Annotator> annotator;
    {
        metrics::PhaseTimer phase(reg, "generate");
        program = generator.next();
        model_prog = program;
        if (instrument) {
            if (cfg.rewriteJumps)
                model_prog =
                    bir::rewriteJumpsToCondBranches(model_prog);
            model_prog = bir::instrumentSpeculation(model_prog);
        }

        if (cfg.refinement) {
            annotator = std::make_unique<obs::RefinementPair>(
                obs::makeModel(cfg.model, cfg.modelParams),
                obs::makeModel(*cfg.refinement, cfg.modelParams));
        } else {
            annotator = obs::makeModel(cfg.model, cfg.modelParams);
        }
    }

    // ---- Symbolic execution (cached per program) ----------------
    std::vector<sym::PathResult> paths1, paths2;
    {
        metrics::PhaseTimer phase(reg, "symbolic_exec");
        paths1 = sym::execute(ctx, model_prog, *annotator, {"_1"});
        paths2 = sym::execute(ctx, model_prog, *annotator, {"_2"});
    }

    rel::RelationConfig rel_cfg;
    rel_cfg.refine = cfg.refinement.has_value();
    rel_cfg.region = cfg.region;
    rel_cfg.geom = cfg.modelParams.geom;
    std::optional<rel::RelationSynthesizer> relation;
    {
        metrics::PhaseTimer phase(reg, "relation_synthesis");
        relation.emplace(ctx, std::move(paths1), std::move(paths2),
                         rel_cfg);
    }

    // Training paths (third symbolic execution, suffix "_t").
    std::vector<sym::PathResult> training_paths;
    if (cfg.train) {
        metrics::PhaseTimer phase(reg, "symbolic_exec");
        auto mpc = obs::makeModel(obs::ModelKind::Mpc);
        training_paths = sym::execute(ctx, model_prog, *mpc, {"_t"});
    }

    const auto &pairs = relation->pairs();
    if (pairs.empty()) {
        finish_task();
        return out;
    }

    PairSolvers per_pair;
    per_pair.solvers.resize(pairs.size());
    per_pair.dead.assign(pairs.size(), false);

    // Relation formulas, synthesized once per path pair: the formula
    // is a pure function of the pair, but it is needed by solver
    // construction, the sampler, and symmetrizeModel on every test
    // iteration.
    std::vector<Expr> formulas(pairs.size(), nullptr);
    auto formula_for = [&](std::size_t idx) {
        if (!formulas[idx]) {
            metrics::PhaseTimer phase(reg, "relation_synthesis");
            formulas[idx] = relation->formulaFor(pairs[idx]);
        }
        return formulas[idx];
    };

    // Training inputs, cached per s1-path index.
    std::unordered_map<int, std::optional<harness::ProgramInput>>
        training_cache;
    auto training_for =
        [&](const rel::PathPair &pair)
        -> std::optional<harness::ProgramInput> {
        if (!cfg.train)
            return std::nullopt;
        auto hit = training_cache.find(pair.idx1);
        if (hit != training_cache.end())
            return hit->second;
        std::optional<harness::ProgramInput> input;
        auto formula = rel::RelationSynthesizer::trainingFormula(
            ctx, training_paths, relation->paths1()[pair.idx1],
            rel_cfg);
        if (formula) {
            smt::SmtSolver ts(ctx, *formula);
            if (ts.solve(cfg.conflictBudget) == smt::Outcome::Sat)
                input = harness::inputFromAssignment(ts.model(),
                                                     "_t");
        }
        training_cache.emplace(pair.idx1, input);
        return input;
    };

    std::size_t rr = 0; // round-robin cursor over path pairs

    for (int test_i = 0; test_i < cfg.testsPerProgram; ++test_i) {
        // Advance to the next live pair.
        std::size_t probe = 0;
        while (probe < pairs.size() &&
               per_pair.dead[rr % pairs.size()]) {
            ++rr;
            ++probe;
        }
        if (probe == pairs.size())
            break; // all relations exhausted
        const std::size_t pair_idx = rr % pairs.size();
        ++rr;
        const rel::PathPair &pair = pairs[pair_idx];

        // Synthesized (and cached) outside the smt phase scope so
        // nested relation_synthesis time is not charged twice.
        const Expr pair_formula = formula_for(pair_idx);
        std::optional<expr::Assignment> model;
        {
        metrics::PhaseTimer phase(reg, "smt");

        if (cfg.strategy == SolveStrategy::Sampler) {
            Expr f = pair_formula;
            if (cfg.coverage == Coverage::PcAndLine) {
                auto cov =
                    relation->lineCoverageConstraint(pair, rng);
                if (cov)
                    f = ctx.land(f, *cov);
            }
            smt::SamplerConfig sampler_cfg;
            sampler_cfg.regionBase = cfg.region.base;
            sampler_cfg.regionLimit = cfg.region.limit();
            smt::RepairSampler sampler(ctx, f, rng, sampler_cfg);
            model = sampler.sample();
            if (!model) {
                // Fall back to the complete solver.
                smt::SmtSolver fallback(ctx, f);
                if (fallback.solve(cfg.conflictBudget) ==
                    smt::Outcome::Sat)
                    model = fallback.model();
                else
                    per_pair.dead[pair_idx] = true;
            }
        } else {
            auto &solver = per_pair.solvers[pair_idx];
            if (!solver) {
                solver = std::make_unique<smt::SmtSolver>(
                    ctx, pair_formula);
            }
            if (cfg.strategy == SolveStrategy::RandomPhases)
                solver->randomizePhases(rng);

            smt::Outcome outcome = smt::Outcome::Unsat;
            if (cfg.coverage == Coverage::PcAndLine) {
                // Randomly drawn set-index classes often
                // contradict the relation (e.g. distinct classes
                // pinned inside the attacker region); redraw a few
                // times before charging a generation failure.
                for (int attempt = 0;
                     attempt < cfg.coverageRetries &&
                     outcome != smt::Outcome::Sat;
                     ++attempt) {
                    auto cov =
                        relation->lineCoverageConstraint(pair, rng);
                    outcome =
                        cov ? solver->solveWith(*cov,
                                                cfg.conflictBudget)
                            : solver->solve(cfg.conflictBudget);
                    if (!cov)
                        break;
                }
            } else {
                outcome = solver->solve(cfg.conflictBudget);
            }

            if (outcome == smt::Outcome::Sat) {
                model = solver->model();
                if (!solver->blockCurrentModel(
                        blockingVars(ctx, program),
                        cfg.blockingBits))
                    per_pair.dead[pair_idx] = true;
            } else if (cfg.coverage != Coverage::PcAndLine ||
                       outcome == smt::Outcome::Unknown) {
                // Without per-test coverage constraints an Unsat
                // relation stays Unsat: retire the pair.
                per_pair.dead[pair_idx] = true;
            }
        }
        if (model && cfg.strategy == SolveStrategy::Canonical)
            symmetrizeModel(pair_formula, program, *model,
                            rng, cfg.similarityBias);
        } // phase "smt"

        if (!model) {
            reg.counter("pipeline.generation_failures").inc();
            continue;
        }

        harness::TestCase tc;
        tc.s1 = harness::inputFromAssignment(*model, "_1");
        tc.s2 = harness::inputFromAssignment(*model, "_2");
        const auto training = training_for(pair);

        harness::ExperimentResult result;
        {
            metrics::PhaseTimer phase(reg, "hw_run");
            result = platform.runExperiment(program, tc, training);
        }
        reg.counter("pipeline.experiments").inc();

        if (cfg.database) {
            ExperimentRecord record;
            record.programName = program.name();
            record.programText = program.toString();
            record.pathId =
                relation->paths1()[pair.idx1].pathId();
            record.testCase = tc;
            record.trained = training.has_value();
            record.verdict = result.verdict;
            record.differingReps = result.differingReps;
            record.totalReps = result.totalReps;
            out.records.push_back(std::move(record));
        }

        switch (result.verdict) {
          case harness::Verdict::Counterexample:
            reg.counter("pipeline.counterexamples").inc();
            out.hasCex = true;
            if (out.firstCexOffsetSeconds < 0)
                out.firstCexOffsetSeconds = task_watch.seconds();
            break;
          case harness::Verdict::Inconclusive:
            reg.counter("pipeline.inconclusive").inc();
            break;
          case harness::Verdict::Indistinguishable:
            break;
        }
    }

    finish_task();
    return out;
}

/** @return the worker count for a config (0 = auto). */
int
resolveThreads(int configured)
{
    if (configured > 0)
        return configured;
    return static_cast<int>(ThreadPool::defaultThreadCount());
}

/** @return snapshot counter value, or 0 when never touched. */
std::int64_t
counterOr0(const metrics::Snapshot &s, const std::string &name)
{
    auto it = s.counters.find(name);
    return it == s.counters.end()
               ? 0
               : static_cast<std::int64_t>(it->second);
}

/** @return total seconds recorded in a phase histogram, or 0. */
double
histogramSumOr0(const metrics::Snapshot &s, const std::string &name)
{
    auto it = s.histograms.find(name);
    return it == s.histograms.end() ? 0.0 : it->second.sum;
}

} // namespace

RunStats
Pipeline::run()
{
    RunStats stats;

    const bool instrument = needsSpecInstrumentation(cfg);
    const int n_threads = resolveThreads(cfg.threads);

    // One slot per program; tasks never touch shared state, so the
    // campaign is embarrassingly parallel and the merge below sees
    // the same slot contents regardless of scheduling.
    std::vector<ProgramOutcome> slots(
        cfg.programs > 0 ? static_cast<std::size_t>(cfg.programs) : 0);

    if (n_threads <= 1 || cfg.programs <= 1) {
        // Reference path: plain sequential loop on this thread.
        for (int prog_i = 0; prog_i < cfg.programs; ++prog_i)
            slots[prog_i] = runOneProgram(cfg, instrument, prog_i);
    } else {
        ThreadPool pool(static_cast<unsigned>(n_threads));
        for (int prog_i = 0; prog_i < cfg.programs; ++prog_i) {
            pool.submit([this, instrument, prog_i, &slots] {
                slots[prog_i] = runOneProgram(cfg, instrument, prog_i);
            });
        }
        pool.wait();
    }

    // Deterministic in-order merge.  Task snapshots are folded in
    // program-index order, so the campaign snapshot is identical for
    // any thread count; the db_merge phase of the campaign-level
    // registry covers the fold plus the database flush.
    metrics::Registry campaign_reg(cfg.deterministicMetricsTiming
                                       ? metrics::ClockMode::Deterministic
                                       : metrics::ClockMode::Wall);
    {
        metrics::PhaseTimer phase(campaign_reg, "db_merge");

        // ttcSeconds is rebuilt on the sequential-campaign clock:
        // the sum of the task durations of all earlier programs plus
        // the in-task offset of the first counterexample, so its
        // meaning matches a threads=1 run.
        double clock = 0.0;
        for (const ProgramOutcome &out : slots) {
            stats.metrics.merge(out.metrics);
            if (stats.ttcSeconds < 0 && out.firstCexOffsetSeconds >= 0)
                stats.ttcSeconds = clock + out.firstCexOffsetSeconds;
            clock += out.taskSeconds;
        }
        if (cfg.database) {
            for (ProgramOutcome &out : slots)
                for (ExperimentRecord &record : out.records)
                    cfg.database->add(std::move(record));
        }
    }
    stats.metrics.merge(campaign_reg.snapshot());

    // The legacy Table-1 counters are views of the merged snapshot:
    // one source of truth, so reports and metrics cannot disagree.
    stats.programs = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.programs"));
    stats.programsWithCex = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.programs_with_cex"));
    stats.experiments =
        counterOr0(stats.metrics, "pipeline.experiments");
    stats.counterexamples =
        counterOr0(stats.metrics, "pipeline.counterexamples");
    stats.inconclusive =
        counterOr0(stats.metrics, "pipeline.inconclusive");
    stats.generationFailures =
        counterOr0(stats.metrics, "pipeline.generation_failures");
    stats.totalGenSeconds =
        histogramSumOr0(stats.metrics, "phase.generate_seconds") +
        histogramSumOr0(stats.metrics, "phase.symbolic_exec_seconds") +
        histogramSumOr0(stats.metrics,
                        "phase.relation_synthesis_seconds") +
        histogramSumOr0(stats.metrics, "phase.smt_seconds");
    stats.totalExeSeconds =
        histogramSumOr0(stats.metrics, "phase.hw_run_seconds");

    // Optional exporters (see README): SCAMV_METRICS writes the JSON
    // snapshot, SCAMV_METRICS_TABLE prints the text table to stderr.
    if (const char *path = std::getenv("SCAMV_METRICS");
        path && *path) {
        if (!metrics::writeJson(stats.metrics, path))
            warn("pipeline: cannot write metrics JSON to " +
                 std::string(path));
    }
    if (const char *table = std::getenv("SCAMV_METRICS_TABLE");
        table && *table && *table != '0') {
        std::fputs(metrics::toTable(stats.metrics).render().c_str(),
                   stderr);
    }
    return stats;
}

} // namespace scamv::core
