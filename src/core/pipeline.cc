#include "core/pipeline.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bir/transform.hh"
#include "core/expdb.hh"
#include "cover/scheduler.hh"
#include "rel/relation.hh"
#include "smt/sampler.hh"
#include "smt/solver.hh"
#include "support/env.hh"
#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/qcache/cached_solve.hh"
#include "support/qcache/qcache.hh"
#include "support/stopwatch.hh"
#include "support/thread_pool.hh"
#include "triage/minimize.hh"
#include "triage/screen.hh"

namespace scamv::core {

using expr::Expr;
using expr::ExprContext;

bool
needsSpecInstrumentation(const PipelineConfig &cfg)
{
    auto speculative = [](obs::ModelKind k) {
        return k == obs::ModelKind::Mspec ||
               k == obs::ModelKind::Mspec1 ||
               k == obs::ModelKind::MspecPage;
    };
    if (speculative(cfg.model))
        return true;
    return cfg.refinement && speculative(*cfg.refinement);
}

double
scaleFromEnv(double fallback)
{
    const auto v = envDouble("SCAMV_SCALE");
    return v && *v > 0.0 ? *v : fallback;
}

int
scaled(int n, double scale)
{
    const int v = static_cast<int>(std::lround(n * scale));
    return v < 1 ? 1 : v;
}

std::uint64_t
deriveProgramSeed(std::uint64_t seed, int prog_i)
{
    // splitmix64 finalizer over (seed, prog_i); +1 keeps program 0
    // from collapsing onto the raw campaign seed.
    std::uint64_t x =
        seed + 0x9e3779b97f4a7c15ULL *
                   (static_cast<std::uint64_t>(prog_i) + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

Pipeline::Pipeline(const PipelineConfig &config) : cfg(config) {}

/** Register variables of both states, for model blocking. */
static std::vector<Expr>
blockingVars(ExprContext &ctx, const bir::Program &program)
{
    std::vector<Expr> vars;
    for (bir::Reg r : program.usedRegs()) {
        vars.push_back(ctx.bvVar("x" + std::to_string(r) + "_1"));
        vars.push_back(ctx.bvVar("x" + std::to_string(r) + "_2"));
    }
    return vars;
}

void
symmetrizeModel(Expr formula, const bir::Program &program,
                expr::Assignment &model, Rng &rng, double bias)
{
    auto try_merge = [&](auto mutate) {
        if (!rng.chance(bias))
            return;
        expr::Assignment candidate = model;
        mutate(candidate);
        if (expr::evalBool(formula, candidate))
            model = std::move(candidate);
    };

    // Wholesale merge first: s2 := s1.  Relations without refinement
    // are reflexive, so this almost always succeeds for the unguided
    // baseline; refinement disequalities reject it, and the per-
    // component passes below then remove only incidental asymmetry.
    try_merge([&](expr::Assignment &c) {
        for (bir::Reg r : program.usedRegs())
            c.bvVars["x" + std::to_string(r) + "_2"] =
                c.bv("x" + std::to_string(r) + "_1");
        if (auto m1 = c.mems.find("mem_1"); m1 != c.mems.end()) {
            auto cells = m1->second.entries();
            for (const auto &[addr, val] : cells)
                c.mems["mem_2"].storeWord(addr, val);
        }
    });

    for (bir::Reg r : program.usedRegs()) {
        const std::string v1 = "x" + std::to_string(r) + "_1";
        const std::string v2 = "x" + std::to_string(r) + "_2";
        if (model.bv(v1) == model.bv(v2))
            continue;
        try_merge([&](expr::Assignment &c) {
            c.bvVars[v2] = c.bv(v1);
        });
    }

    std::vector<std::pair<std::uint64_t, std::uint64_t>> mem1_cells;
    if (auto m1 = model.mems.find("mem_1"); m1 != model.mems.end())
        for (const auto &[addr, val] : m1->second.entries())
            mem1_cells.emplace_back(addr, val);
    for (const auto &[a, v] : mem1_cells) {
        auto m2 = model.mems.find("mem_2");
        if (m2 != model.mems.end() && m2->second.contains(a) &&
            m2->second.load(a) == v)
            continue;
        try_merge([&](expr::Assignment &c) {
            c.mems["mem_2"].storeWord(a, v);
        });
    }
}

namespace {

/**
 * Per-program solving state: one (possibly cache-backed) incremental
 * enumerator per path pair.  `dead` marks exhausted pairs — either
 * model blocking ran dry or the relation went Unsat/Unknown.
 */
/**
 * One recorded mutation of a pair's live incremental solver (oneshot
 * solver mode).  What gets recorded follows what actually mutated the
 * solver: genuine solves (including budget exhaustions — they leave
 * learned clauses behind) are recorded in full; an injected
 * SmtUnknown returns before touching solver state and is not
 * recorded; an injected SatTimeout inside solveWith is recorded as
 * Prepare — the temporary was already blasted into the solver when
 * the search was cut short; see the delta gating at the recording
 * sites.
 */
struct SolverOp {
    enum class Kind { Solve, SolveWith, Prepare, Block };
    Kind kind = Kind::Solve;
    Expr temporary = nullptr; ///< SolveWith coverage constraint
    std::int64_t budget = 0;  ///< conflict budget of the call
};

struct PairEnumerators {
    std::vector<std::unique_ptr<qcache::CachedEnumerator>> enums;
    std::vector<bool> dead;
    /** Oneshot solver mode: per-pair op log, replayed onto a fresh
     *  solver at every test (see replaySolverOps). */
    std::vector<std::vector<SolverOp>> oplogs;
};

/**
 * Rebuild a pair's discarded solver by replaying its recorded op log
 * (oneshot solver mode).  The replay is invisible: the CDCL work was
 * already charged to the task registry when first performed, so
 * metrics go to a discarded scratch registry, and fault decisions are
 * suppressed (the original, counted attempt already made them) —
 * mirroring qcache::CachedEnumerator::ensureSolverAt.  Deterministic
 * CDCL makes the rebuilt state exact, which is what keeps oneshot
 * campaigns byte-identical to incremental ones.
 */
void
replaySolverOps(qcache::CachedEnumerator &en,
                const std::vector<SolverOp> &ops,
                const std::vector<Expr> &block_vars, int block_bits)
{
    metrics::Registry mute(metrics::ClockMode::Wall);
    metrics::ScopedRegistry scope(mute);
    faults::ScopedSuppress suppress;
    smt::SmtSolver &solver = en.solver();
    for (const SolverOp &op : ops) {
        switch (op.kind) {
          case SolverOp::Kind::Solve:
            solver.solveNoInject(op.budget);
            break;
          case SolverOp::Kind::SolveWith:
            // solveWith's SmtUnknown gate is a no-op under
            // suppression (no injector installed, no attempt counter
            // consumed).
            solver.solveWith(op.temporary, op.budget);
            break;
          case SolverOp::Kind::Prepare:
            solver.prepareTemporary(op.temporary);
            break;
          case SolverOp::Kind::Block:
            solver.blockCurrentModel(block_vars, block_bits);
            break;
        }
    }
}

/**
 * Record one bounded backoff step before a stage retry.  The delay
 * doubles per attempt (1 ms base, capped at ~1 s); it is always
 * recorded in `retry.backoff_seconds`, but only slept on the wall
 * clock — under the deterministic clock a retried campaign stays a
 * pure function of the call sequence, hence byte-identical across
 * thread counts.
 */
void
retryBackoff(metrics::Registry &reg, const char *stage, int attempt)
{
    reg.counter("retry.attempts").inc();
    reg.counter(std::string("retry.attempts.") + stage).inc();
    const double delay =
        0.001 * static_cast<double>(1ULL << std::min(attempt, 10));
    reg.gauge("retry.backoff_seconds").add(delay);
    if (reg.clockMode() == metrics::ClockMode::Wall)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay));
}

/**
 * Run the whole experiment campaign of one program.  Pure function
 * of (cfg, task): every stochastic component is seeded from
 * deriveProgramSeed(cfg.seed, task.prog_i), and nothing outside the
 * returned ProgramOutcome is written.
 */
ProgramOutcome
runOneProgram(const PipelineConfig &cfg, bool instrument,
              const ProgramTask &task)
{
    const int prog_i = task.prog_i;
    ProgramOutcome out;
    Stopwatch task_watch;

    // Every metric of this task accumulates in a private registry:
    // the instrumented layers below (smt, sat, hw, harness) reach it
    // through metrics::current(), and Pipeline::run() merges the
    // snapshots in program-index order, keeping the campaign metrics
    // independent of task scheduling.
    metrics::Registry reg(cfg.deterministicMetricsTiming
                              ? metrics::ClockMode::Deterministic
                              : metrics::ClockMode::Wall);
    metrics::ScopedRegistry scoped_registry(reg);
    const double task_t0 = reg.now();
    reg.counter("pipeline.programs").inc();
    out.name = "program-" + std::to_string(prog_i);

    // Fault plan: install this task's injector (thread-local, like
    // the registry above).  Decisions are pure functions of
    // (cfg.seed, prog_i, site, attempt), so injected campaigns replay
    // byte-identically for any thread count.  With a disabled plan no
    // injector exists and every maybeInject() below is a null test.
    faults::Injector injector(cfg.faultPlan, cfg.seed, prog_i);
    std::optional<faults::ScopedInjector> scoped_injector;
    if (cfg.faultPlan.enabled())
        scoped_injector.emplace(injector);
    // Injected task death: thrown before any work, caught by the
    // campaign guard (runOneProgramGuarded), which re-counts it.
    if (faults::maybeInject(faults::Site::TaskAbort))
        throw faults::InjectedTaskFault(prog_i);
    const int retry_max = cfg.retryMax < 0 ? 2 : cfg.retryMax;

    // Coverage accounting is opt-in per task: the Uniform schedule
    // without a ledger never touches the delta (or the extra clock
    // reads below), keeping untracked campaigns byte-identical to the
    // pre-cover pipeline.
    // Corpus workloads replace the generator draw with a pre-compiled
    // SC kernel (see PipelineConfig::corpus).
    const front::CompiledProgram *corpus_entry = nullptr;
    if (task.corpusIndex >= 0 && cfg.corpus &&
        task.corpusIndex < static_cast<int>(cfg.corpus->size()))
        corpus_entry = &(*cfg.corpus)[static_cast<std::size_t>(
            task.corpusIndex)];

    cover::ProgramDelta &delta = out.coverDelta;
    if (task.collectCover) {
        delta.templ = corpus_entry ? "corpus:" + corpus_entry->name
                                   : gen::templateName(task.templ);
        delta.model = obs::modelName(cfg.model);
        if (cfg.coverage == Coverage::PcAndLine)
            delta.universe = cfg.modelParams.geom.numSets;
    }

    // Freeze the task's registry into the outcome; called on every
    // exit path so even pair-less programs contribute a snapshot.
    auto finish_task = [&] {
        if (out.hasCex)
            reg.counter("pipeline.programs_with_cex").inc();
        // One now() call feeds both the gauge and the per-program
        // latency histogram (p50/p99 in exports), keeping the
        // deterministic-clock tick count unchanged.
        const double task_elapsed = reg.now() - task_t0;
        reg.gauge("pipeline.task_seconds").add(task_elapsed);
        reg.histogram("pipeline.program_seconds").observe(task_elapsed);
        out.metrics = reg.snapshot();
        out.taskSeconds = task_watch.seconds();
    };

    const std::uint64_t prog_seed = deriveProgramSeed(cfg.seed, prog_i);
    gen::GeneratorConfig gen_cfg;
    gen_cfg.lineBytes = cfg.modelParams.geom.lineBytes;
    gen::ProgramGenerator generator(task.templ, prog_seed, gen_cfg);
    generator.setCounter(prog_i);
    harness::Platform platform(cfg.platform, prog_seed ^ 0x90153ULL);
    Rng rng(prog_seed ^ 0xc0ffeeULL);

    ExprContext ctx;

    // ---- Observation augmentation (Sections 4.2.2, 5.1) --------
    bir::Program program, model_prog;
    std::unique_ptr<sym::Annotator> annotator;
    {
        metrics::PhaseTimer phase(reg, "generate");
        if (corpus_entry) {
            program = corpus_entry->program;
            program.setName(corpus_entry->name + "#" +
                            std::to_string(prog_i));
        } else {
            program = generator.next();
        }
        out.name = program.name();
        model_prog = program;
        if (instrument) {
            if (cfg.rewriteJumps)
                model_prog =
                    bir::rewriteJumpsToCondBranches(model_prog);
            model_prog = bir::instrumentSpeculation(model_prog);
        }

        if (cfg.refinement) {
            annotator = std::make_unique<obs::RefinementPair>(
                obs::makeModel(cfg.model, cfg.modelParams),
                obs::makeModel(*cfg.refinement, cfg.modelParams));
        } else {
            annotator = obs::makeModel(cfg.model, cfg.modelParams);
        }
    }

    // ---- Triage pre-screen (src/triage/screen.hh) ---------------
    // Runs before any rng, solver or platform use, and is a pure
    // function of the instrumented program — a screened-out program
    // leaves the task's rng streams untouched, so the surviving
    // programs replay byte-identically with the screen on or off.
    // The class mask survives for non-boring programs: the adaptive
    // coverage draw below skips classes the program provably cannot
    // touch.
    std::vector<bool> screen_mask;
    if (cfg.triageScreen > 0 && cfg.refinement) {
        metrics::PhaseTimer phase(reg, "triage_screen");
        triage::ScreenResult screen = triage::screenProgram(
            model_prog, cfg.model, *cfg.refinement, cfg.modelParams);
        if (screen.verdict == triage::ScreenVerdict::Boring) {
            reg.counter("triage.screened").inc();
            reg.counter("triage.screened." + screen.reason).inc();
            finish_task();
            return out;
        }
        screen_mask = std::move(screen.classMask);
    }

    // ---- Symbolic execution (cached per program) ----------------
    std::vector<sym::PathResult> paths1, paths2;
    {
        metrics::PhaseTimer phase(reg, "symbolic_exec");
        paths1 = sym::execute(ctx, model_prog, *annotator, {"_1"});
        paths2 = sym::execute(ctx, model_prog, *annotator, {"_2"});
    }

    rel::RelationConfig rel_cfg;
    rel_cfg.refine = cfg.refinement.has_value();
    rel_cfg.region = cfg.region;
    rel_cfg.geom = cfg.modelParams.geom;
    if (corpus_entry) {
        // The kernel's declared security contract: public inputs are
        // pinned equal across s1/s2, secrets stay free to differ.
        rel_cfg.lowRegs = corpus_entry->publicRegs;
        rel_cfg.lowMemAddrs = corpus_entry->publicMemAddrs;
    }
    std::optional<rel::RelationSynthesizer> relation;
    {
        metrics::PhaseTimer phase(reg, "relation_synthesis");
        relation.emplace(ctx, std::move(paths1), std::move(paths2),
                         rel_cfg);
    }

    // Training paths (third symbolic execution, suffix "_t").
    std::vector<sym::PathResult> training_paths;
    if (cfg.train) {
        metrics::PhaseTimer phase(reg, "symbolic_exec");
        auto mpc = obs::makeModel(obs::ModelKind::Mpc);
        training_paths = sym::execute(ctx, model_prog, *mpc, {"_t"});
    }

    const auto &pairs = relation->pairs();
    if (pairs.empty()) {
        finish_task();
        return out;
    }

    // Query cache: the enumerated (Canonical/Pc) path threads every
    // solve through it; other strategies keep their incremental
    // solver access but still cache the one-shot fallback/training
    // queries.  With qc == nullptr every wrapper below degrades to
    // the exact pre-cache call sequence.
    qcache::QueryCache *qc = cfg.queryCache;
    const bool use_enum_cache =
        qc && cfg.strategy == SolveStrategy::Canonical &&
        cfg.coverage == Coverage::Pc;

    // Solver-mode resolution (cfg.solverMode / SCAMV_SOLVER).  Modes
    // reshape *how* the Canonical strategy reaches each model — fresh
    // solver plus op-log replay (oneshot), one live solver
    // (incremental), or incremental plus a sampler scout on genuine
    // budget exhaustion (portfolio) — never *which* model, so every
    // campaign artifact is byte-identical across modes
    // (ctest-enforced).  Other strategies always take the incremental
    // path: RandomPhases draws phases from the task rng (a replay
    // would consume extra draws) and Sampler has its own search loop.
    const smt::SolverMode solver_mode =
        cfg.strategy == SolveStrategy::Canonical
            ? cfg.solverMode.value_or(smt::SolverMode::Incremental)
            : smt::SolverMode::Incremental;
    const bool oneshot = solver_mode == smt::SolverMode::Oneshot;
    const bool portfolio = solver_mode == smt::SolverMode::Portfolio;

    // Model-blocking variables: a pure function of the program's used
    // registers (every register variable already exists in ctx after
    // symbolic execution), hoisted out of the per-test loop.
    const std::vector<Expr> block_vars = blockingVars(ctx, program);

    PairEnumerators per_pair;
    per_pair.enums.resize(pairs.size());
    per_pair.dead.assign(pairs.size(), false);
    if (oneshot)
        per_pair.oplogs.resize(pairs.size());

    // Relation formulas, synthesized once per path pair: the formula
    // is a pure function of the pair, but it is needed by solver
    // construction, the sampler, and symmetrizeModel on every test
    // iteration.
    std::vector<Expr> formulas(pairs.size(), nullptr);
    auto formula_for = [&](std::size_t idx) {
        if (!formulas[idx]) {
            metrics::PhaseTimer phase(reg, "relation_synthesis");
            formulas[idx] = relation->formulaFor(pairs[idx]);
        }
        return formulas[idx];
    };

    // Training inputs, cached per s1-path index.
    std::unordered_map<int, std::optional<harness::ProgramInput>>
        training_cache;
    auto training_for =
        [&](const rel::PathPair &pair)
        -> std::optional<harness::ProgramInput> {
        if (!cfg.train)
            return std::nullopt;
        auto hit = training_cache.find(pair.idx1);
        if (hit != training_cache.end())
            return hit->second;
        std::optional<harness::ProgramInput> input;
        auto formula = rel::RelationSynthesizer::trainingFormula(
            ctx, training_paths, relation->paths1()[pair.idx1],
            rel_cfg);
        if (formula) {
            auto solved = qcache::solveOnce(ctx, *formula,
                                            cfg.conflictBudget, qc);
            if (solved.outcome == smt::Outcome::Sat)
                input = harness::inputFromAssignment(*solved.model,
                                                     "_t");
        }
        training_cache.emplace(pair.idx1, input);
        return input;
    };

    std::size_t rr = 0; // round-robin cursor over path pairs
    int fault_failures = 0; // consecutive injected-fault test failures
    int plan_draw = 0; // monotone cursor into the adaptive class plan
    int rescue_draws = 0; // portfolio scout rng derivations

    // One Mline coverage draw: least-covered-first from the round
    // plan when the adaptive scheduler supplied one, the classic
    // random draw otherwise (same rng sequence as ever).
    auto draw_line_coverage = [&](const rel::PathPair &pair)
        -> std::optional<rel::LineCoverageDraw> {
        std::optional<rel::LineCoverageDraw> cov;
        if (task.plan && !task.plan->classOrder.empty()) {
            int cls;
            if (screen_mask.empty()) {
                cls = cover::planClass(*task.plan, task.slot,
                                       plan_draw++, task.stride);
            } else {
                // Screened class gating: classes outside the
                // program's abstract reach don't consume draws.
                std::int64_t skipped = 0;
                cls = cover::planClassAllowed(*task.plan, task.slot,
                                              plan_draw, task.stride,
                                              screen_mask, &skipped);
                if (skipped)
                    reg.counter("triage.skipped_draws").add(skipped);
            }
            cov = relation->lineCoverageConstraintFor(pair, cls, cls);
        } else {
            cov = relation->lineCoverageConstraint(pair, rng);
        }
        if (cov && task.collectCover) {
            delta.countDraw(cov->class1);
            if (cov->class2 != cov->class1)
                delta.countDraw(cov->class2);
        }
        return cov;
    };

    for (int test_i = 0; test_i < cfg.testsPerProgram; ++test_i) {
        const std::uint64_t test_faults0 = faults::injectedCount();

        // Advance to the next live pair.
        std::size_t probe = 0;
        while (probe < pairs.size() &&
               per_pair.dead[rr % pairs.size()]) {
            ++rr;
            ++probe;
        }
        if (probe == pairs.size())
            break; // all relations exhausted
        const std::size_t pair_idx = rr % pairs.size();
        ++rr;
        const rel::PathPair &pair = pairs[pair_idx];

        // Synthesized (and cached) outside the smt phase scope so
        // nested relation_synthesis time is not charged twice.
        const Expr pair_formula = formula_for(pair_idx);
        std::optional<expr::Assignment> model;
        int line_cls1 = -1, line_cls2 = -1;
        const double smt_t0 = task.collectCover ? reg.now() : 0.0;
        {
        metrics::PhaseTimer phase(reg, "smt");

        bool retire_pair = false;
        for (int attempt = 0;; ++attempt) {
            const std::uint64_t before = faults::injectedCount();
            // Each retry doubles the per-query conflict budget — the
            // time/attempt budget granted to a timed-out query.
            const std::int64_t budget =
                cfg.conflictBudget << std::min(attempt, 8);
            retire_pair = false;

            if (cfg.strategy == SolveStrategy::Sampler) {
                Expr f = pair_formula;
                if (cfg.coverage == Coverage::PcAndLine) {
                    auto cov = draw_line_coverage(pair);
                    if (cov) {
                        f = ctx.land(f, cov->constraint);
                        line_cls1 = cov->class1;
                        line_cls2 = cov->class2;
                    }
                }
                smt::SamplerConfig sampler_cfg;
                sampler_cfg.regionBase = cfg.region.base;
                sampler_cfg.regionLimit = cfg.region.limit();
                smt::RepairSampler sampler(ctx, f, rng, sampler_cfg);
                model = sampler.sample();
                if (!model) {
                    // Fall back to the complete solver.
                    auto solved =
                        qcache::solveOnce(ctx, f, budget, qc);
                    if (solved.outcome == smt::Outcome::Sat)
                        model = std::move(solved.model);
                    else
                        retire_pair = true;
                }
            } else {
                auto &en = per_pair.enums[pair_idx];
                if (!en) {
                    // Blocking variables are fixed at construction on
                    // the cached path (they parameterize the cache's
                    // enumeration chain); the uncached path passes
                    // them at blocking time, as it always did.
                    en = std::make_unique<qcache::CachedEnumerator>(
                        ctx, pair_formula,
                        use_enum_cache ? block_vars
                                       : std::vector<Expr>{},
                        cfg.blockingBits,
                        use_enum_cache ? qc : nullptr);
                }
                if (cfg.strategy == SolveStrategy::RandomPhases)
                    en->solver().randomizePhases(rng);

                // Oneshot mode: every test solves on a freshly built
                // solver.  The uncached paths (which drive the raw
                // solver below) rebuild it from this pair's op log;
                // the cached path rebuilds lazily from the cache's
                // own enumeration prefix on the next miss.
                std::vector<SolverOp> *oplog =
                    oneshot && !en->usesCache()
                        ? &per_pair.oplogs[pair_idx]
                        : nullptr;
                if (oneshot && attempt == 0) {
                    en->discardSolver();
                    if (oplog && !oplog->empty())
                        replaySolverOps(*en, *oplog, block_vars,
                                        cfg.blockingBits);
                }

                smt::Outcome outcome = smt::Outcome::Unsat;
                Expr last_cov = nullptr;
                if (cfg.coverage == Coverage::PcAndLine) {
                    // Randomly drawn set-index classes often
                    // contradict the relation (e.g. distinct classes
                    // pinned inside the attacker region); redraw a
                    // few times before charging a generation failure.
                    for (int redraw = 0;
                         redraw < cfg.coverageRetries &&
                         outcome != smt::Outcome::Sat;
                         ++redraw) {
                        auto cov = draw_line_coverage(pair);
                        if (cov) {
                            line_cls1 = cov->class1;
                            line_cls2 = cov->class2;
                            last_cov = cov->constraint;
                        }
                        const std::uint64_t solve_inj0 =
                            faults::injectedCount();
                        const std::uint64_t sat_inj0 =
                            faults::injectedCountAt(
                                faults::Site::SatTimeout);
                        outcome =
                            cov ? en->solver().solveWith(
                                      cov->constraint, budget)
                                : en->solver().solve(budget);
                        // Record for replay what mutated the solver:
                        // a clean call in full (a genuine exhaustion
                        // leaves learned clauses behind); an injected
                        // SmtUnknown not at all (it returns before
                        // touching solver state); an injected
                        // SatTimeout under a coverage constraint as a
                        // blast-only Prepare (solveWith blasts the
                        // temporary before the SAT core cuts the
                        // search short).
                        if (oplog &&
                            faults::injectedCount() == solve_inj0) {
                            oplog->push_back(
                                {cov ? SolverOp::Kind::SolveWith
                                     : SolverOp::Kind::Solve,
                                 cov ? cov->constraint : nullptr,
                                 budget});
                        } else if (oplog && cov &&
                                   faults::injectedCountAt(
                                       faults::Site::SatTimeout) !=
                                       sat_inj0) {
                            oplog->push_back(
                                {SolverOp::Kind::Prepare,
                                 cov->constraint, 0});
                        }
                        if (!cov)
                            break;
                    }
                } else if (en->usesCache()) {
                    // Cached enumeration step: solve + model + block
                    // in one cacheable unit.
                    auto step = en->next(budget);
                    outcome = step.outcome;
                    if (outcome == smt::Outcome::Sat) {
                        model = std::move(step.model);
                        if (en->dead())
                            per_pair.dead[pair_idx] = true;
                    }
                } else {
                    const std::uint64_t solve_inj0 =
                        faults::injectedCount();
                    outcome = en->solver().solve(budget);
                    if (oplog &&
                        faults::injectedCount() == solve_inj0)
                        oplog->push_back({SolverOp::Kind::Solve,
                                          nullptr, budget});
                }

                if (outcome == smt::Outcome::Sat) {
                    if (!en->usesCache()) {
                        model = en->solver().model();
                        if (!en->solver().blockCurrentModel(
                                block_vars, cfg.blockingBits))
                            per_pair.dead[pair_idx] = true;
                        if (oplog)
                            oplog->push_back(
                                {SolverOp::Kind::Block, nullptr, 0});
                    }
                } else if (cfg.coverage != Coverage::PcAndLine ||
                           outcome == smt::Outcome::Unknown) {
                    // Without per-test coverage constraints an Unsat
                    // relation stays Unsat: retire the pair.
                    retire_pair = true;
                }

                // Portfolio mode: on a *genuine* budget exhaustion —
                // never an injected Unknown, which carries a nonzero
                // injection delta and belongs to the retry machinery —
                // race a repair-sampler scout over the same formula.
                // The CDCL result stays authoritative for Sat/Unsat
                // and the scout draws from its own derived rng, so a
                // rescue never shifts the task rng stream: this fixed
                // arbitration order keeps portfolio byte-identical to
                // incremental whenever no rescue fires.
                if (portfolio && !model &&
                    outcome == smt::Outcome::Unknown &&
                    faults::injectedCount() == before) {
                    reg.counter("portfolio.rescue_attempts").inc();
                    Rng scout_rng(deriveProgramSeed(
                        prog_seed ^ 0x5c007eULL, rescue_draws++));
                    smt::SamplerConfig scout_cfg;
                    scout_cfg.regionBase = cfg.region.base;
                    scout_cfg.regionLimit = cfg.region.limit();
                    const Expr scout_f =
                        last_cov ? ctx.land(pair_formula, last_cov)
                                 : pair_formula;
                    smt::RepairSampler scout(ctx, scout_f, scout_rng,
                                             scout_cfg);
                    if (auto rescued = scout.sample()) {
                        // The rescued model is not blocked in the
                        // solver (the solver never saw it) and the
                        // pair stays live.
                        model = std::move(rescued);
                        retire_pair = false;
                        reg.counter("portfolio.rescues").inc();
                    }
                }
            }

            if (model)
                break;
            // Delta-gated retry: only an attempt polluted by an
            // injected fault is re-run (with backoff and a doubled
            // budget); genuine Unsat/exhaustion keeps its original
            // fault-free behaviour and is never retried.
            const bool polluted = faults::injectedCount() != before;
            if (polluted)
                retire_pair = false; // not attributable to the pair
            if (!polluted || attempt >= retry_max)
                break;
            retryBackoff(reg, "smt", attempt);
        }

        if (!model && retire_pair)
            per_pair.dead[pair_idx] = true;
        if (model && cfg.strategy == SolveStrategy::Canonical)
            symmetrizeModel(pair_formula, program, *model,
                            rng, cfg.similarityBias);
        } // phase "smt"
        if (task.collectCover) {
            // Per-atom cost: the whole solve (including redraws) is
            // charged to the test's final s1 class.  Deterministic
            // under the deterministic registry clock.
            delta.chargeSolver(line_cls1, reg.now() - smt_t0);
        }

        if (!model) {
            reg.counter("pipeline.generation_failures").inc();
            if (faults::injectedCount() != test_faults0) {
                // The test failed because of injected faults, not on
                // its own merits.  A program that keeps losing tests
                // this way is quarantined: its remaining tests are
                // abandoned and it is listed in the campaign report
                // instead of stalling the run.
                if (++fault_failures >= cfg.quarantineAfter) {
                    out.quarantined = true;
                    reg.counter("pipeline.quarantined").inc();
                    reg.counter("pipeline.degraded").inc();
                    break;
                }
            } else {
                fault_failures = 0;
            }
            continue;
        }
        fault_failures = 0;

        harness::TestCase tc;
        tc.s1 = harness::inputFromAssignment(*model, "_1");
        tc.s2 = harness::inputFromAssignment(*model, "_2");
        const auto training = training_for(pair);

        harness::ExperimentResult result;
        {
            metrics::PhaseTimer phase(reg, "hw_run");
            for (int attempt = 0;; ++attempt) {
                const std::uint64_t before = faults::injectedCount();
                result = platform.runExperiment(program, tc,
                                                training);
                // Delta-gated retry: re-measure only when this run
                // was polluted by injected measurement faults, in
                // the hope of a clean repetition set.
                if (faults::injectedCount() == before ||
                    attempt >= retry_max)
                    break;
                retryBackoff(reg, "hw_run", attempt);
            }
        }
        reg.counter("pipeline.experiments").inc();
        if (task.collectCover) {
            ++delta.verdicts.experiments;
            delta.countHit(line_cls1);
            if (line_cls2 != line_cls1)
                delta.countHit(line_cls2);
            ++delta.pathPairs[relation->paths1()[pair.idx1].pathId() +
                              "|" +
                              relation->paths2()[pair.idx2].pathId()];
        }
        if (result.flakedReps > 0) {
            // Accepted, but on flaky measurements: the verdict has
            // already been degraded to at most Inconclusive by the
            // platform (unless every clean repetition differed).
            reg.counter("pipeline.degraded").inc();
        }

        if (cfg.database) {
            ExperimentRecord record;
            record.programName = program.name();
            record.programText = program.toString();
            record.pathId =
                relation->paths1()[pair.idx1].pathId();
            record.testCase = tc;
            record.trained = training.has_value();
            record.lineClass1 = line_cls1;
            record.lineClass2 = line_cls2;
            record.verdict = result.verdict;
            record.differingReps = result.differingReps;
            record.totalReps = result.totalReps;
            out.records.push_back(std::move(record));
        }

        switch (result.verdict) {
          case harness::Verdict::Counterexample: {
            reg.counter("pipeline.counterexamples").inc();
            out.hasCex = true;
            if (out.firstCexOffsetSeconds < 0)
                out.firstCexOffsetSeconds = task_watch.seconds();
            if (task.collectCover)
                ++delta.verdicts.counterexamples;
            if (cfg.triageMinimize > 0 || cfg.findingsFile) {
                triage::Finding f;
                f.progIndex = prog_i;
                f.program = program.name();
                f.instrsBefore = static_cast<int>(program.size());
                f.instrsAfter = f.instrsBefore;
                f.stateBitsBefore = triage::stateBitCount(tc);
                f.stateBitsAfter = f.stateBitsBefore;
                bir::Program core_prog = program;
                harness::TestCase core_tc = tc;
                if (cfg.triageMinimize > 0) {
                    // One fault decision per finding, taken *before*
                    // shrinking (the minimizer itself runs under
                    // ScopedSuppress): a flaked minimizer keeps the
                    // unminimized witness — degraded, never lost.
                    if (faults::maybeInject(
                            faults::Site::TriageMinimizeFlake)) {
                        f.degraded = true;
                        reg.counter("triage.degraded").inc();
                    } else {
                        metrics::PhaseTimer mphase(reg,
                                                   "triage_minimize");
                        triage::MinimizeConfig mcfg;
                        mcfg.platform = cfg.platform;
                        mcfg.seed = prog_seed;
                        mcfg.training = training;
                        auto min = triage::minimizeCounterexample(
                            program, tc, mcfg);
                        if (min.evalsUsed <= 1) {
                            // The evaluation platform could not
                            // reproduce the leak (noise): keep the
                            // original witness.
                            f.degraded = true;
                            reg.counter("triage.degraded").inc();
                        } else {
                            core_prog = std::move(min.program);
                            core_tc = std::move(min.tc);
                            f.minimized = true;
                            f.instrsAfter =
                                static_cast<int>(core_prog.size());
                            f.stateBitsAfter =
                                triage::stateBitCount(core_tc);
                            reg.counter("triage.minimized").inc();
                        }
                    }
                }
                const bool spec_ref =
                    cfg.refinement &&
                    (*cfg.refinement == obs::ModelKind::Mspec ||
                     *cfg.refinement == obs::ModelKind::Mspec1 ||
                     *cfg.refinement == obs::ModelKind::MspecPage);
                f.mechanism = triage::classifyMechanism(
                    core_prog, core_tc, training, spec_ref,
                    cfg.platform, prog_seed);
                f.signature = f.mechanism + "/" +
                              triage::shapeSignature(core_prog);
                f.core = core_prog.toString();
                f.tc = std::move(core_tc);
                out.findings.push_back(std::move(f));
            }
            break;
          }
          case harness::Verdict::Inconclusive:
            reg.counter("pipeline.inconclusive").inc();
            if (task.collectCover)
                ++delta.verdicts.inconclusive;
            break;
          case harness::Verdict::Indistinguishable:
            if (task.collectCover)
                ++delta.verdicts.indistinguishable;
            break;
        }
    }

    finish_task();
    return out;
}

/**
 * Campaign guard around runOneProgram: a task that dies with an
 * exception (injected or genuine) must cost exactly one program, not
 * the campaign.  The failed program is counted in a fresh
 * deterministic registry — the task's own registry died with it — so
 * the merged campaign metrics still account for the program and, for
 * the injected case, for its fault.
 */
ProgramOutcome
runOneProgramGuarded(const PipelineConfig &cfg, bool instrument,
                     const ProgramTask &task)
{
    const int prog_i = task.prog_i;
    ProgramOutcome out;
    bool injected = false;
    try {
        return runOneProgram(cfg, instrument, task);
    } catch (const faults::InjectedTaskFault &e) {
        injected = true;
        warn(std::string("pipeline: ") + e.what());
    } catch (const std::exception &e) {
        warn("pipeline: program task " + std::to_string(prog_i) +
             " failed: " + e.what());
    } catch (...) {
        warn("pipeline: program task " + std::to_string(prog_i) +
             " failed with a non-standard exception");
    }
    out.failed = true;
    out.name = "program-" + std::to_string(prog_i);
    metrics::Registry reg(cfg.deterministicMetricsTiming
                              ? metrics::ClockMode::Deterministic
                              : metrics::ClockMode::Wall);
    reg.counter("pipeline.programs").inc();
    reg.counter("pipeline.program_failures").inc();
    reg.counter("pipeline.degraded").inc();
    if (injected) {
        reg.counter("faults.injected").inc();
        reg.counter(std::string("faults.injected.") +
                    faults::siteName(faults::Site::TaskAbort))
            .inc();
    }
    out.metrics = reg.snapshot();
    return out;
}

/** @return the worker count for a config (0 = auto). */
int
resolveThreads(int configured)
{
    if (configured > 0)
        return configured;
    return static_cast<int>(ThreadPool::defaultThreadCount());
}

/** @return snapshot counter value, or 0 when never touched. */
std::int64_t
counterOr0(const metrics::Snapshot &s, const std::string &name)
{
    auto it = s.counters.find(name);
    return it == s.counters.end()
               ? 0
               : static_cast<std::int64_t>(it->second);
}

/** @return total seconds recorded in a phase histogram, or 0. */
double
histogramSumOr0(const metrics::Snapshot &s, const std::string &name)
{
    auto it = s.histograms.find(name);
    return it == s.histograms.end() ? 0.0 : it->second.sum;
}

/** Resolve SCAMV_SCHEDULE ("uniform" | "adaptive"; unknown warns). */
Schedule
scheduleFromEnv()
{
    const char *v = std::getenv("SCAMV_SCHEDULE");
    if (!v || !*v)
        return Schedule::Uniform;
    const std::string_view s(v);
    if (s == "adaptive")
        return Schedule::Adaptive;
    if (s != "uniform")
        warn("SCAMV_SCHEDULE: unknown schedule '" + std::string(s) +
             "', using uniform");
    return Schedule::Uniform;
}

/**
 * Fold the coverage deltas of programs [first_prog, first_prog+count)
 * into the ledger, in program-index order on this thread — the ledger
 * state at every fold boundary (and hence the exported JSON) is a
 * pure function of the schedule, never of the thread count.  `outs[k]`
 * is program first_prog + k.  Each program's merge runs under its own
 * injector (mirroring the db flush): an injected cover.ledger_merge
 * fault drops that delta.  Empty outcomes — failed tasks, early-
 * stopped or lost programs — are skipped.  @return true when every
 * delta landed.
 */
bool
mergeCoverDeltas(const PipelineConfig &cfg,
                 cover::CoverageLedger &ledger, metrics::Registry &reg,
                 const ProgramOutcome *outs, int first_prog, int count)
{
    const bool cover_faults =
        cfg.faultPlan.enabled() &&
        cfg.faultPlan.covers(faults::Site::CoverLedgerMerge);
    bool ok = true;
    metrics::ScopedRegistry scope(reg);
    for (int k = 0; k < count; ++k) {
        const ProgramOutcome &out = outs[k];
        if (out.failed || out.coverDelta.templ.empty())
            continue; // no delta was produced for this slot
        faults::Injector injector(cfg.faultPlan, cfg.seed,
                                  first_prog + k);
        std::optional<faults::ScopedInjector> inj_scope;
        if (cover_faults)
            inj_scope.emplace(injector);
        if (!ledger.merge(out.coverDelta)) {
            reg.counter("cover.merge_dropped").inc();
            ok = false;
        }
    }
    return ok;
}

/**
 * Execute programs [first, first+budget) of the campaign under the
 * resolved schedule, writing program first+k's outcome into outs[k].
 * Uniform: one embarrassingly parallel batch, templates round-robin
 * by *global* program index, no ledger access (deltas are folded by
 * the merge tail).  Adaptive: deterministic rounds planned from
 * `ledger` (required), folding each round's deltas before planning
 * the next and counting scheduler events into `reg`.
 * @return the number of budget programs skipped by adaptive
 * early-stop (their slots stay empty).
 */
int
runScheduleRange(const PipelineConfig &cfg,
                 cover::CoverageLedger *ledger, metrics::Registry &reg,
                 ProgramOutcome *outs, int first, int budget,
                 bool track_cover)
{
    if (budget <= 0)
        return 0;
    const Schedule sched = cfg.schedule.value_or(Schedule::Uniform);
    const bool instrument = needsSpecInstrumentation(cfg);
    const int n_threads = resolveThreads(cfg.threads);

    // The workload universe: corpus entries when a corpus is loaded
    // (exclusive — corpus campaigns never mix in generated programs),
    // generator templates otherwise.  Both schedules treat a unit the
    // same way: uniform round-robins program indices over the units,
    // adaptive weighs each unit's ledger bucket.
    struct WorkloadUnit {
        gen::TemplateKind templ = gen::TemplateKind::A;
        int corpusIndex = -1;
        std::string name;
    };
    std::vector<WorkloadUnit> units;
    if (cfg.corpus && !cfg.corpus->empty()) {
        for (int c = 0; c < static_cast<int>(cfg.corpus->size()); ++c)
            units.push_back(
                {gen::TemplateKind::A, c,
                 "corpus:" +
                     (*cfg.corpus)[static_cast<std::size_t>(c)].name});
    } else {
        std::vector<gen::TemplateKind> templates = cfg.templateKinds;
        if (templates.empty())
            templates.push_back(cfg.templateKind);
        for (gen::TemplateKind kind : templates)
            units.push_back({kind, -1, gen::templateName(kind)});
    }

    std::optional<ThreadPool> pool;
    if (n_threads > 1 && budget > 1)
        pool.emplace(static_cast<unsigned>(n_threads));

    auto run_batch = [&](const std::vector<ProgramTask> &tasks) {
        if (!pool) {
            // Reference path: plain sequential loop on this thread.
            for (const ProgramTask &task : tasks) {
                outs[task.prog_i - first] =
                    runOneProgramGuarded(cfg, instrument, task);
                if (cfg.progressHook)
                    cfg.progressHook(task.prog_i);
            }
        } else {
            for (const ProgramTask &task : tasks) {
                pool->submit([&cfg, instrument, task, outs, first] {
                    outs[task.prog_i - first] =
                        runOneProgramGuarded(cfg, instrument, task);
                    if (cfg.progressHook)
                        cfg.progressHook(task.prog_i);
                });
            }
            pool->wait();
        }
    };

    if (sched == Schedule::Uniform) {
        // One uniform batch over the whole budget; multi-template
        // campaigns round-robin by program index.
        std::vector<ProgramTask> tasks;
        tasks.reserve(static_cast<std::size_t>(budget));
        for (int k = 0; k < budget; ++k) {
            ProgramTask task;
            task.prog_i = first + k;
            const WorkloadUnit &u =
                units[static_cast<std::size_t>(task.prog_i) %
                      units.size()];
            task.templ = u.templ;
            task.corpusIndex = u.corpusIndex;
            task.collectCover = track_cover;
            tasks.push_back(task);
        }
        run_batch(tasks);
        return 0;
    }

    // Adaptive schedule: spend the budget in deterministic rounds
    // (round size is a pure function of the budget), replanning from
    // a ledger snapshot at every round boundary.
    const int round_size = cover::roundSizeFor(budget);
    const std::uint64_t num_sets = cfg.coverage == Coverage::PcAndLine
                                       ? cfg.modelParams.geom.numSets
                                       : 0;
    std::vector<std::string> names;
    for (const WorkloadUnit &u : units)
        names.push_back(u.name);

    bool degraded = false;
    int next = 0;
    for (int round = 0; next < budget; ++round) {
        const int batch = std::min(round_size, budget - next);
        std::vector<cover::RoundPlan> plans(units.size());
        std::vector<int> assign;
        if (!degraded) {
            const cover::Snapshot snap = ledger->snapshot();
            bool all_saturated = num_sets > 0;
            for (std::size_t i = 0; i < units.size(); ++i) {
                plans[i] = cover::planRound(snap, names[i], cfg.seed,
                                            round, num_sets);
                all_saturated &= plans[i].saturated;
            }
            if (all_saturated) {
                // Every template's class universe is covered or
                // exhausted: stop spending programs on it.
                reg.counter("cover.early_stop").inc();
                reg.counter("cover.skipped_programs")
                    .add(static_cast<std::uint64_t>(budget - next));
                break;
            }
            assign = cover::weightedAssignment(
                cover::templateWeights(snap, names, num_sets), batch);
        } else {
            // Ledger-merge faults poisoned the accounting: degrade
            // to the uniform round-robin draw for the rest of the
            // campaign.
            assign.resize(batch);
            for (int s = 0; s < batch; ++s)
                assign[s] = static_cast<int>(
                    (static_cast<std::size_t>(first + next + s)) %
                    units.size());
        }
        reg.counter("cover.rounds").inc();

        std::vector<ProgramTask> tasks;
        tasks.reserve(static_cast<std::size_t>(batch));
        for (int s = 0; s < batch; ++s) {
            ProgramTask task;
            task.prog_i = first + next + s;
            const WorkloadUnit &u = units[static_cast<std::size_t>(
                assign[static_cast<std::size_t>(s)])];
            task.templ = u.templ;
            task.corpusIndex = u.corpusIndex;
            task.collectCover = true;
            task.plan = degraded
                            ? nullptr
                            : &plans[static_cast<std::size_t>(
                                  assign[static_cast<std::size_t>(s)])];
            task.slot = s;
            task.stride = batch;
            tasks.push_back(task);
        }
        run_batch(tasks);
        if (!mergeCoverDeltas(cfg, *ledger, reg, outs + next,
                              first + next, batch) &&
            !degraded) {
            degraded = true;
            reg.counter("cover.degraded").inc();
        }
        next += batch;
    }
    return budget - next;
}

/**
 * The campaign merge tail shared by Pipeline::run() and the shard
 * coordinator: fold the slots in program-index order into a RunStats.
 * `fold_cover` folds the coverage deltas first (the Uniform path —
 * the adaptive scheduler already folded per round); `export_env`
 * honours the SCAMV_COVERAGE_FILE / SCAMV_METRICS /
 * SCAMV_METRICS_TABLE exporters.
 */
RunStats
mergeTailImpl(const PipelineConfig &cfg,
              std::vector<ProgramOutcome> &slots,
              cover::CoverageLedger *ledger, bool track_cover,
              metrics::Registry &campaign_reg, bool fold_cover,
              int early_stopped, bool export_env)
{
    RunStats stats;
    stats.earlyStopped = early_stopped;

    if (fold_cover && track_cover)
        mergeCoverDeltas(cfg, *ledger, campaign_reg, slots.data(), 0,
                         static_cast<int>(slots.size()));

    // Deterministic in-order merge.  Task snapshots are folded in
    // program-index order, so the campaign snapshot is identical for
    // any thread count; the db_merge phase of the campaign-level
    // registry covers the fold plus the database flush.
    {
        metrics::PhaseTimer phase(campaign_reg, "db_merge");

        // ttcSeconds is rebuilt on the sequential-campaign clock:
        // the sum of the task durations of all earlier programs plus
        // the in-task offset of the first counterexample, so its
        // meaning matches a threads=1 run.
        double clock = 0.0;
        for (const ProgramOutcome &out : slots) {
            stats.metrics.merge(out.metrics);
            if (stats.ttcSeconds < 0 && out.firstCexOffsetSeconds >= 0)
                stats.ttcSeconds = clock + out.firstCexOffsetSeconds;
            clock += out.taskSeconds;
            if (out.quarantined)
                stats.quarantinedPrograms.push_back(out.name);
            if (out.failed)
                stats.failedPrograms.push_back(out.name);
            // Findings concatenate in program-index order, which is
            // what makes the findings export independent of thread
            // and shard count.
            stats.findings.insert(stats.findings.end(),
                                  out.findings.begin(),
                                  out.findings.end());
        }
        if (cfg.database) {
            // Flush sequentially in program-index order so the
            // record sequence — and any injected db_write decision —
            // is independent of the thread count.  The fault plan's
            // DbWrite site can reject a write; rejected writes are
            // retried with backoff and finally dropped (counted, not
            // fatal: the campaign completes with a partial log).
            metrics::ScopedRegistry flush_scope(campaign_reg);
            const bool db_faults =
                cfg.faultPlan.enabled() &&
                cfg.faultPlan.covers(faults::Site::DbWrite);
            for (std::size_t prog_i = 0; prog_i < slots.size();
                 ++prog_i) {
                faults::Injector db_injector(
                    cfg.faultPlan, cfg.seed, static_cast<int>(prog_i));
                std::optional<faults::ScopedInjector> inj_scope;
                if (db_faults)
                    inj_scope.emplace(db_injector);
                for (ExperimentRecord &record :
                     slots[prog_i].records) {
                    bool written = false;
                    for (int attempt = 0;; ++attempt) {
                        const std::uint64_t before =
                            faults::injectedCount();
                        // add() consumes the record, so attempts
                        // that can fail get their own copy.
                        written = db_faults
                                      ? cfg.database->add(record)
                                      : cfg.database->add(
                                            std::move(record));
                        if (written ||
                            faults::injectedCount() == before ||
                            attempt >= cfg.retryMax)
                            break;
                        retryBackoff(campaign_reg, "db_write",
                                     attempt);
                    }
                    if (!written)
                        campaign_reg
                            .counter("pipeline.db_write_drops")
                            .inc();
                }
            }
        }
    }
    stats.metrics.merge(campaign_reg.snapshot());

    // The legacy Table-1 counters are views of the merged snapshot:
    // one source of truth, so reports and metrics cannot disagree.
    stats.programs = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.programs"));
    stats.programsWithCex = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.programs_with_cex"));
    stats.experiments =
        counterOr0(stats.metrics, "pipeline.experiments");
    stats.counterexamples =
        counterOr0(stats.metrics, "pipeline.counterexamples");
    stats.inconclusive =
        counterOr0(stats.metrics, "pipeline.inconclusive");
    stats.generationFailures =
        counterOr0(stats.metrics, "pipeline.generation_failures");
    stats.faultsInjected = counterOr0(stats.metrics, "faults.injected");
    stats.retryAttempts = counterOr0(stats.metrics, "retry.attempts");
    stats.quarantined = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.quarantined"));
    stats.degraded = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.degraded"));
    stats.programFailures = static_cast<int>(
        counterOr0(stats.metrics, "pipeline.program_failures"));
    stats.dbWriteDrops =
        counterOr0(stats.metrics, "pipeline.db_write_drops");
    stats.ledgerMergeDrops =
        counterOr0(stats.metrics, "cover.merge_dropped");
    stats.schedulerDegraded =
        counterOr0(stats.metrics, "cover.degraded") > 0;
    stats.screened = counterOr0(stats.metrics, "triage.screened");
    stats.triageDegraded =
        counterOr0(stats.metrics, "triage.degraded");

    if (track_cover) {
        stats.coverageTracked = true;
        stats.coverage = ledger->snapshot();
        for (const auto &[templ, cell] : stats.coverage.templates) {
            stats.coveredClasses += cell.coveredClasses();
            stats.classUniverse += cell.universe;
        }
        const char *cov_env =
            export_env ? std::getenv("SCAMV_COVERAGE_FILE") : nullptr;
        if (cov_env && *cov_env &&
            !cover::writeJson(stats.coverage, cov_env))
            warn("pipeline: cannot write coverage JSON to " +
                 std::string(cov_env));
    }
    stats.totalGenSeconds =
        histogramSumOr0(stats.metrics, "phase.generate_seconds") +
        histogramSumOr0(stats.metrics, "phase.symbolic_exec_seconds") +
        histogramSumOr0(stats.metrics,
                        "phase.relation_synthesis_seconds") +
        histogramSumOr0(stats.metrics, "phase.smt_seconds");
    stats.totalExeSeconds =
        histogramSumOr0(stats.metrics, "phase.hw_run_seconds");

    // Optional exporters (see README): SCAMV_METRICS writes the JSON
    // snapshot, SCAMV_METRICS_TABLE prints the text table to stderr.
    if (export_env) {
        if (const char *path = std::getenv("SCAMV_METRICS");
            path && *path) {
            if (!metrics::writeJson(stats.metrics, path))
                warn("pipeline: cannot write metrics JSON to " +
                     std::string(path));
        }
        if (const char *table = std::getenv("SCAMV_METRICS_TABLE");
            table && *table && *table != '0') {
            std::fputs(
                metrics::toTable(stats.metrics).render().c_str(),
                stderr);
        }
        if (cfg.findingsFile &&
            !triage::writeFindings(stats.findings, *cfg.findingsFile))
            warn("pipeline: cannot write findings JSON to " +
                 *cfg.findingsFile);
    }
    return stats;
}

} // namespace

PipelineConfig
resolveCampaignEnv(PipelineConfig cfg)
{
    // Resolve the failure-model knobs: an explicitly configured plan
    // wins, otherwise the environment is consulted
    // (SCAMV_FAULT_RATE / SCAMV_FAULT_PLAN / SCAMV_RETRY_MAX).
    if (!cfg.faultPlan.enabled())
        cfg.faultPlan = faults::FaultPlan::fromEnv();
    if (cfg.retryMax < 0)
        cfg.retryMax = static_cast<int>(
            envLong("SCAMV_RETRY_MAX", 0, 64).value_or(2));

    // Solver mode: an explicitly configured mode wins, otherwise
    // SCAMV_SOLVER (defaulting to incremental).  See PipelineConfig
    // for the mode semantics and the byte-identity contract.
    if (!cfg.solverMode)
        cfg.solverMode = smt::solverModeFromEnv();

    // Query cache: an explicitly configured cache wins, otherwise the
    // environment-configured shared cache (SCAMV_QCACHE_MB /
    // SCAMV_QCACHE_FILE).  Fault-injection campaigns bypass the cache
    // entirely: injected-fault decisions are keyed to per-site attempt
    // counters, and skipping solver work on hits would change which
    // attempts exist — byte-identical fault replay beats cache wins.
    if (!cfg.queryCache)
        cfg.queryCache = qcache::QueryCache::sharedFromEnv();
    if (cfg.queryCache && cfg.faultPlan.enabled()) {
        metrics::Registry::global()
            .counter("qcache.bypass_faults")
            .inc();
        cfg.queryCache = nullptr;
    }

    // Schedule: an explicitly configured schedule wins, otherwise
    // SCAMV_SCHEDULE (defaulting to uniform).
    if (!cfg.schedule)
        cfg.schedule = scheduleFromEnv();

    // Triage: pre-screen (SCAMV_TRIAGE), minimizer (SCAMV_MINIMIZE)
    // and findings export (SCAMV_FINDINGS_FILE), each defaulting off.
    if (cfg.triageScreen < 0)
        cfg.triageScreen = static_cast<int>(
            envLong("SCAMV_TRIAGE", 0, 1).value_or(0));
    if (cfg.triageMinimize < 0)
        cfg.triageMinimize = static_cast<int>(
            envLong("SCAMV_MINIMIZE", 0, 1).value_or(0));
    if (!cfg.findingsFile) {
        const char *path = std::getenv("SCAMV_FINDINGS_FILE");
        if (path && *path)
            cfg.findingsFile = path;
    }

    // Corpus workload: an explicitly configured corpus wins, otherwise
    // SCAMV_CORPUS_DIR / SCAMV_PROGRAM_FILE.  Arrays are laid out
    // inside the campaign's experiment region so the relation's
    // region constraints accept corpus addresses.
    if (!cfg.corpus) {
        front::CompileOptions fopts;
        fopts.arrayBase = cfg.region.base;
        fopts.arrayLimit = cfg.region.base + cfg.region.size;
        std::vector<front::CompiledProgram> loaded =
            front::corpusFromEnv(fopts);
        if (!loaded.empty())
            cfg.corpus = std::make_shared<
                const std::vector<front::CompiledProgram>>(
                std::move(loaded));
    }
    return cfg;
}

bool
coverageTracked(const PipelineConfig &cfg)
{
    // Coverage accounting activates only when something consumes it
    // (adaptive rounds, a configured ledger, or a SCAMV_COVERAGE_FILE
    // export) — an untracked uniform campaign takes the exact
    // pre-cover code path.
    const char *cov = std::getenv("SCAMV_COVERAGE_FILE");
    return cfg.schedule.value_or(Schedule::Uniform) ==
               Schedule::Adaptive ||
           cfg.coverageLedger != nullptr || (cov && *cov);
}

ProgramOutcome
runProgramTask(const PipelineConfig &cfg, const ProgramTask &task)
{
    return runOneProgramGuarded(cfg, needsSpecInstrumentation(cfg),
                                task);
}

CampaignSlice
runCampaignSlice(const PipelineConfig &cfg, int first, int count)
{
    CampaignSlice slice;
    slice.first = first;
    slice.count = count > 0 ? count : 0;
    slice.outcomes.resize(static_cast<std::size_t>(slice.count));
    if (slice.count == 0)
        return slice;

    const bool adaptive = cfg.schedule.value_or(Schedule::Uniform) ==
                          Schedule::Adaptive;
    // An adaptive slice plans its rounds locally: a throwaway ledger
    // over the slice's own budget.  Its scheduler counters are scoped
    // to the worker and intentionally discarded — the coordinator
    // re-folds the deltas authoritatively and records the planning
    // deviation as `shard.schedule_local` (see DESIGN.md §12).
    cover::CoverageLedger local_ledger;
    metrics::Registry scratch(cfg.deterministicMetricsTiming
                                  ? metrics::ClockMode::Deterministic
                                  : metrics::ClockMode::Wall);
    slice.scheduleLocal = adaptive;
    slice.earlyStopped = runScheduleRange(
        cfg, adaptive ? &local_ledger : nullptr, scratch,
        slice.outcomes.data(), first, slice.count,
        coverageTracked(cfg));
    return slice;
}

RunStats
mergeCampaignOutcomes(const PipelineConfig &cfg,
                      std::vector<ProgramOutcome> &slots,
                      const MergeTailOptions &opts)
{
    cover::CoverageLedger local_ledger;
    cover::CoverageLedger *ledger = cfg.coverageLedger;
    const bool track_cover = coverageTracked(cfg);
    if (track_cover && !ledger)
        ledger = &local_ledger;
    metrics::Registry campaign_reg(
        cfg.deterministicMetricsTiming
            ? metrics::ClockMode::Deterministic
            : metrics::ClockMode::Wall);
    return mergeTailImpl(cfg, slots, ledger, track_cover, campaign_reg,
                         /*fold_cover=*/true, opts.earlyStopped,
                         opts.honorEnvExports);
}

RunStats
Pipeline::run()
{
    cfg = resolveCampaignEnv(std::move(cfg));

    cover::CoverageLedger local_ledger;
    cover::CoverageLedger *ledger = cfg.coverageLedger;
    const bool track_cover = coverageTracked(cfg);
    if (track_cover && !ledger)
        ledger = &local_ledger;

    // One slot per program; tasks never touch shared state, so the
    // campaign is embarrassingly parallel and the merge below sees
    // the same slot contents regardless of scheduling.  (Adaptive
    // early-stop may leave trailing slots unused; they merge as empty
    // outcomes.)
    std::vector<ProgramOutcome> slots(
        cfg.programs > 0 ? static_cast<std::size_t>(cfg.programs) : 0);

    // Campaign-level registry: round planning, ledger merging and the
    // final stats/db merge all count into it; it is folded into the
    // campaign snapshot after the per-program snapshots.
    metrics::Registry campaign_reg(cfg.deterministicMetricsTiming
                                       ? metrics::ClockMode::Deterministic
                                       : metrics::ClockMode::Wall);

    const int early_stopped =
        runScheduleRange(cfg, ledger, campaign_reg, slots.data(), 0,
                         cfg.programs, track_cover);

    // The Uniform path folds its coverage deltas in the tail; the
    // adaptive scheduler already folded per round.
    const bool fold_cover =
        track_cover && *cfg.schedule == Schedule::Uniform;
    return mergeTailImpl(cfg, slots, ledger, track_cover, campaign_reg,
                         fold_cover, early_stopped,
                         /*export_env=*/true);
}

} // namespace scamv::core
