/**
 * @file
 * Automatic observation-model repair (the future-work direction of
 * Section 8: "refine unsound observation models to automatically
 * restore their soundness, e.g., by adding state observations").
 *
 * Given a model under validation and a validation campaign
 * configuration, the repairer walks a more-restrictiveness lattice of
 * candidate models (each adding observations to the previous one),
 * validating each candidate with refinement-guided testing.  The
 * first candidate for which no counterexample is found is reported as
 * the (empirically) repaired model.  As in the paper, the absence of
 * counterexamples under guided testing is evidence, not proof, of
 * soundness.
 *
 * Lattices used:
 *   Mct    -> Mspec1 -> Mspec     (speculative leakage)
 *   Mpart  -> Mpart'              (prefetch leakage)
 *
 * Every non-top candidate is validated with the lattice top as the
 * refined model; the top itself is validated unguided (there is no
 * strictly more restrictive model available to steer the search).
 */

#ifndef SCAMV_CORE_REPAIR_HH
#define SCAMV_CORE_REPAIR_HH

#include <optional>
#include <vector>

#include "core/pipeline.hh"

namespace scamv::core {

/** Outcome of validating one lattice candidate. */
struct RepairAttempt {
    obs::ModelKind model;
    /** Refined model used for guidance (unset for the lattice top). */
    std::optional<obs::ModelKind> refinement;
    RunStats stats;
    bool sound = false; ///< no counterexample found
    /**
     * No experiment could even be generated: the refined model added
     * no observations over the candidate for any generated program
     * (Section 3's signal that the refinement is not useful here).
     */
    bool vacuous = false;
};

/** Result of a repair run. */
struct RepairResult {
    obs::ModelKind original;
    std::vector<RepairAttempt> attempts;
    /** First candidate that validated cleanly, if any. */
    std::optional<obs::ModelKind> repaired;
};

/** Configuration: the campaign settings reused per candidate. */
struct RepairConfig {
    /** Base pipeline settings (model/refinement fields are ignored). */
    PipelineConfig campaign;
};

/**
 * Repair `model` by walking its lattice.
 * @return attempts in order and the first sound candidate.
 */
RepairResult repairModel(obs::ModelKind model,
                         const RepairConfig &config);

/** @return the more-restrictiveness lattice starting at `model`. */
std::vector<obs::ModelKind> repairLattice(obs::ModelKind model);

} // namespace scamv::core

#endif // SCAMV_CORE_REPAIR_HH
