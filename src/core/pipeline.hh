/**
 * @file
 * The Scam-V validation pipeline with observation refinement
 * (Fig. 1 / Fig. 8, Sections 3 and 5).
 *
 * For each generated program the pipeline:
 *
 *  1. instruments the program with observations for the model under
 *     validation M1 and (when refinement is enabled) the refined model
 *     M2, via the tag-based RefinementPair (Section 5.1) — for
 *     speculative models this includes the shadow-statement transform;
 *  2. symbolically executes the instrumented program once per state
 *     variable set (s1, s2, and a training set st), caching the result
 *     for all test cases of the program;
 *  3. synthesizes per-path-pair relations (Section 5.4) requiring
 *     equal M1 observations and, with refinement, different M2-only
 *     observations (Section 3, step 4);
 *  4. asks the SMT-lite solver for models, enumerating distinct test
 *     cases via blocking clauses and round-robin path-pair/line
 *     coverage;
 *  5. optionally synthesizes a branch-predictor training input that
 *     takes the other path (Section 5.3);
 *  6. executes each test case on the simulated platform and tallies
 *     counterexamples / inconclusive runs / timing, producing the
 *     statistics reported in Table 1 and Fig. 7.
 *
 * Programs are independent experiments, so the campaign loop runs
 * them on a thread pool (`PipelineConfig::threads`), one task per
 * program index.  Each task derives its own seed from
 * `deriveProgramSeed(cfg.seed, prog_i)` and owns its generator, Rng,
 * ExprContext and Platform; per-program results are merged in index
 * order afterwards, so every statistic and database record is
 * bit-identical for any thread count (see DESIGN.md, "Concurrency
 * model").
 *
 * The campaign is instrumented end to end against the metrics
 * registry (support/metrics.hh): each task owns a private registry
 * receiving phase timings (generate / symbolic_exec /
 * relation_synthesis / smt / hw_run) plus the solver and hardware
 * counters reported from the layers below; task snapshots are merged
 * in program-index order — the RunStats counters are rebuilt from
 * that merged snapshot, which is also exported via `RunStats::metrics`
 * and the SCAMV_METRICS / SCAMV_METRICS_TABLE environment variables
 * (see DESIGN.md, "Observability").
 */

#ifndef SCAMV_CORE_PIPELINE_HH
#define SCAMV_CORE_PIPELINE_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/expdb.hh"
#include "cover/ledger.hh"
#include "front/front.hh"
#include "gen/templates.hh"
#include "harness/platform.hh"
#include "obs/models.hh"
#include "smt/modes.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "triage/findings.hh"

namespace scamv::qcache {
class QueryCache;
}

namespace scamv::cover {
struct RoundPlan;
}

namespace scamv::core {

/** Support-model coverage driving test-case enumeration (4.1). */
enum class Coverage {
    Pc,       ///< path-pair coverage only (Mpc)
    PcAndLine ///< Mpc + cache-set-index classes (Mline)
};

/** Campaign budget allocation policy (see src/cover, DESIGN.md §10). */
enum class Schedule {
    Uniform, ///< spend the budget uniformly (the pre-cover behaviour)
    Adaptive ///< deterministic rounds planned from the coverage ledger
};

/** Test-generation strategy (how models are drawn from the relation). */
enum class SolveStrategy {
    Canonical,    ///< CDCL, default polarities: minimal Z3-like models
    RandomPhases, ///< CDCL with randomized polarities per test case
    Sampler       ///< randomized repair sampler, CDCL fallback
};

/** Full pipeline configuration for one experiment campaign. */
struct PipelineConfig {
    gen::TemplateKind templateKind = gen::TemplateKind::A;
    /**
     * Multi-template campaigns: when non-empty, programs draw their
     * template from this list instead of `templateKind` — round-robin
     * under the Uniform schedule, coverage-weighted under Adaptive
     * (undecided / low-coverage templates get more budget).
     */
    std::vector<gen::TemplateKind> templateKinds;
    /**
     * Corpus workload (src/front): when set and non-empty, the
     * campaign validates these compiled SC kernels instead of drawing
     * from the generator templates — program prog_i runs corpus entry
     * prog_i % corpus->size(), its `public` qualifiers feed the
     * relation's low-input constraints, and its coverage-ledger bucket
     * is "corpus:<name>".  Unset resolves from SCAMV_CORPUS_DIR /
     * SCAMV_PROGRAM_FILE in resolveCampaignEnv() (shared_ptr so shard
     * workers and the service share one immutable load).
     */
    std::shared_ptr<const std::vector<front::CompiledProgram>> corpus;
    /** Model under validation (M1). */
    obs::ModelKind model = obs::ModelKind::Mct;
    /** Refined model (M2); disabled when unset. */
    std::optional<obs::ModelKind> refinement;
    Coverage coverage = Coverage::Pc;
    /** Rewrite direct jumps before instrumentation (Mspec'). */
    bool rewriteJumps = false;
    /** Train the branch predictor to mispredict (Section 5.3). */
    bool train = false;

    int programs = 50;
    int testsPerProgram = 40;
    std::uint64_t seed = 1;
    /**
     * Worker threads for program-level parallelism.  0 = auto: the
     * validated SCAMV_THREADS environment variable if set, otherwise
     * hardware_concurrency().  1 runs the campaign serially on the
     * calling thread (the reference path).  Results are identical
     * for every value (see DESIGN.md, "Concurrency model").
     */
    int threads = 0;
    /**
     * Use the deterministic metrics clock (see support/metrics.hh):
     * every duration in the campaign's metrics snapshot becomes a
     * pure function of the instrumented call sequence, so the
     * exported JSON is byte-identical for any thread count.  Used by
     * the determinism tests; production runs keep wall-clock timing.
     */
    bool deterministicMetricsTiming = false;

    obs::ModelParams modelParams;
    obs::MemoryRegion region;
    harness::PlatformConfig platform;

    /**
     * Budget allocation policy.  Unset resolves from the validated
     * SCAMV_SCHEDULE environment variable ("uniform" | "adaptive"),
     * defaulting to Uniform.  Uniform without coverage tracking (no
     * ledger, no SCAMV_COVERAGE_FILE) takes the exact pre-cover code
     * path: no extra rng draws, counters or clock reads, so campaign
     * results stay byte-identical to earlier releases.  Adaptive runs
     * the campaign in deterministic rounds planned from the coverage
     * ledger (see src/cover/scheduler.hh and DESIGN.md §10).
     */
    std::optional<Schedule> schedule;
    /**
     * Campaign coverage ledger (see src/cover/ledger.hh).  When set,
     * per-program coverage deltas are folded into it in program-index
     * order; when unset, run() uses an internal ledger whenever one
     * is needed (Adaptive schedule or SCAMV_COVERAGE_FILE).  Not
     * owned; must outlive the pipeline run.
     */
    cover::CoverageLedger *coverageLedger = nullptr;

    SolveStrategy strategy = SolveStrategy::Canonical;
    /**
     * How the per-pair SMT enumeration drives the solver (see
     * smt/modes.hh): `Incremental` reuses one live solver per pair,
     * `Oneshot` rebuilds a fresh solver per test by op-log replay
     * (the benchmark baseline), `Portfolio` adds a repair-sampler
     * rescue of genuine Unknown outcomes with fixed arbitration
     * order.  Applies to the Canonical strategy only — RandomPhases
     * consumes rng for phase selection and Sampler has its own path —
     * other strategies silently use Incremental.  Unset resolves from
     * the SCAMV_SOLVER environment variable (default incremental).
     * All modes produce byte-identical campaign artifacts (ctest
     * enforces this; see ARCHITECTURE.md, determinism invariants).
     */
    std::optional<smt::SolverMode> solverMode;
    std::int64_t conflictBudget = 200000;
    /** Redraws of an unsatisfiable Mline coverage class per test. */
    int coverageRetries = 8;
    /**
     * Bits per variable participating in model-blocking clauses.
     * Low values make successive canonical test cases differ only in
     * the low address bits — the "too similar" unguided enumeration
     * of Section 1.  12 bits allow within-page drift, so unguided
     * search occasionally crosses a cache line and gets lucky, as the
     * paper's baseline does.
     */
    int blockingBits = 12;
    /**
     * Canonical-strategy model symmetrization (see DESIGN.md): after
     * solving, each register/memory difference between s1 and s2 that
     * the relation does not *require* is removed with this
     * probability.  Z3's structurally-canonical models behave this
     * way, which is what makes the paper's unguided baseline nearly
     * blind; the residual probability models search noise and
     * reproduces the rare lucky baseline counterexamples.
     */
    double similarityBias = 0.98;
    /**
     * Optional experiment log: when set, every executed experiment is
     * recorded (program, test case, verdict) for post-hoc analysis.
     * Not owned; must outlive the pipeline run.
     */
    ExperimentDb *database = nullptr;

    /**
     * Semantic SMT query cache (support/qcache).  When unset, run()
     * consults SCAMV_QCACHE_MB / SCAMV_QCACHE_FILE via
     * qcache::QueryCache::sharedFromEnv(); both unset leaves solving
     * uncached — the byte-exact pre-cache behaviour.  Hits replay the
     * original solve exactly (outcome, model, metric delta), so
     * campaign results are identical with a cold, warm or absent
     * cache; with a persistence file the cache doubles as a
     * checkpoint for interrupted campaigns.  Ignored (with a global
     * `qcache.bypass_faults` count) whenever the resolved fault plan
     * is enabled, keeping fault-injection campaigns byte-identical.
     * Not owned; must outlive the pipeline run.
     */
    qcache::QueryCache *queryCache = nullptr;

    /**
     * Fault-injection plan (see support/faults.hh).  Disabled by
     * default; a disabled plan is overlaid with SCAMV_FAULT_RATE /
     * SCAMV_FAULT_PLAN from the environment at run() time.  When the
     * resolved plan stays disabled no injector is installed and the
     * instrumented sites reduce to a thread-local null test.
     */
    faults::FaultPlan faultPlan;
    /**
     * Maximum extra attempts per stage when the previous attempt was
     * polluted by an injected fault.  -1 = resolve from the validated
     * SCAMV_RETRY_MAX environment variable, defaulting to 2.  Retries
     * are delta-gated on the injected-fault count, so genuine
     * (non-injected) failures are never retried and a fault-free
     * campaign behaves exactly as before.
     */
    int retryMax = -1;
    /**
     * Quarantine a program after this many *consecutive* test
     * iterations that failed attributably to injected faults: the
     * remaining tests of the program are abandoned and the program is
     * listed in RunStats::quarantinedPrograms instead of stalling the
     * campaign.
     */
    int quarantineAfter = 3;

    /**
     * Abstract-cache pre-screen (src/triage/screen.hh).  Programs the
     * abstraction proves boring — no M2-only observation can differ
     * across any relation pair — skip symbolic execution, relation
     * synthesis and SMT (counted `triage.screened` plus a per-reason
     * counter), and the screen's class mask gates adaptive coverage
     * draws so provably-unreachable classes don't consume the budget.
     * The screen may only skip provably fruitless work, never change
     * a verdict or database record (ctest's differential test).  Only
     * consulted under refinement.  -1 = resolve from SCAMV_TRIAGE
     * (0|1, default off).
     */
    int triageScreen = -1;
    /**
     * Counterexample minimizer (src/triage/minimize.hh): shrink each
     * confirmed counterexample to a minimal leaking core via ddmin
     * over statements and initial-state bits, re-validated through
     * the experiment platform.  Findings are clustered by mechanism
     * signature into RunStats::findings.  -1 = resolve from
     * SCAMV_MINIMIZE (0|1, default off).
     */
    int triageMinimize = -1;
    /**
     * Findings export path (scamv-findings-v1 JSON, see
     * src/triage/findings.hh).  Unset resolves from
     * SCAMV_FINDINGS_FILE.  Findings are collected (and classified)
     * whenever this is set or the minimizer is on; they are shrunk
     * only when the minimizer is on.
     */
    std::optional<std::string> findingsFile;
    /**
     * Optional per-program completion hook, invoked once per program
     * task right after its outcome slot is filled.  Purely
     * observational: the campaign's artifacts are byte-identical with
     * or without a hook installed (it runs outside the instrumented
     * registries and must not touch them).  Under SCAMV_THREADS > 1
     * the hook is called concurrently from pool workers, so it must
     * be thread-safe; `scamvd` uses it to stream live progress
     * counters to attached clients (src/svc).
     */
    std::function<void(int prog_i)> progressHook;
};

/** Campaign statistics, mirroring a column of Table 1 / Fig. 7. */
struct RunStats {
    std::string label;
    int programs = 0;
    int programsWithCex = 0;
    std::int64_t experiments = 0;
    std::int64_t counterexamples = 0;
    std::int64_t inconclusive = 0;
    std::int64_t generationFailures = 0;
    /** Faults injected by the active fault plan (0 when disabled). */
    std::int64_t faultsInjected = 0;
    /** Delta-gated stage retries taken after injected faults. */
    std::int64_t retryAttempts = 0;
    /** Programs abandoned after repeated injected failures. */
    int quarantined = 0;
    /** Degraded outcomes: quarantined/failed programs and accepted
     *  experiments whose repetitions carried injected flakes. */
    int degraded = 0;
    /** Program tasks that died with an exception (campaign survived). */
    int programFailures = 0;
    /** Database records dropped after exhausting write retries. */
    std::int64_t dbWriteDrops = 0;
    /** Coverage accounting ran (Adaptive schedule, a configured
     *  ledger, or SCAMV_COVERAGE_FILE). */
    bool coverageTracked = false;
    /** Distinct Mline classes covered, summed over templates. */
    std::int64_t coveredClasses = 0;
    /** Mline class universe, summed over templates (0: Pc-only). */
    std::uint64_t classUniverse = 0;
    /** Programs not run: adaptive early-stop on saturation. */
    int earlyStopped = 0;
    /** Programs proven boring by the triage pre-screen (skipped
     *  symbolic execution and SMT). */
    std::int64_t screened = 0;
    /** Findings kept unminimized after a minimizer flake. */
    std::int64_t triageDegraded = 0;
    /** Minimized counterexamples, in program-index order (collected
     *  when the minimizer or a findings export is enabled; export
     *  with triage::findingsToJson or via SCAMV_FINDINGS_FILE). */
    std::vector<triage::Finding> findings;
    /** Coverage deltas dropped by injected ledger-merge faults. */
    std::int64_t ledgerMergeDrops = 0;
    /** Adaptive scheduling degraded to uniform after merge faults. */
    bool schedulerDegraded = false;
    /** Final coverage-ledger snapshot (empty when untracked); export
     *  with cover::toJson, or via SCAMV_COVERAGE_FILE. */
    cover::Snapshot coverage;
    /** Names of quarantined programs, in program-index order. */
    std::vector<std::string> quarantinedPrograms;
    /** Names of failed program tasks, in program-index order. */
    std::vector<std::string> failedPrograms;
    double totalGenSeconds = 0.0;
    double totalExeSeconds = 0.0;
    /** Wall-clock seconds to the first counterexample (-1: none). */
    double ttcSeconds = -1.0;
    /**
     * Merged campaign metrics (per-phase time histograms, solver and
     * hardware counters) — the registry snapshot all counter fields
     * above are rebuilt from, folded in program-index order so it is
     * identical for any thread count.  Export with metrics::toJson /
     * metrics::toTable, or via the SCAMV_METRICS environment
     * variable (see README).
     */
    metrics::Snapshot metrics;

    double
    avgGenSeconds() const
    {
        const auto n = experiments + generationFailures;
        return n ? totalGenSeconds / static_cast<double>(n) : 0.0;
    }

    double
    avgExeSeconds() const
    {
        return experiments
                   ? totalExeSeconds / static_cast<double>(experiments)
                   : 0.0;
    }
};

/** The validation pipeline. */
class Pipeline
{
  public:
    explicit Pipeline(const PipelineConfig &config);

    /** Run the whole campaign. */
    RunStats run();

  private:
    PipelineConfig cfg;
};

/** @return true if the configuration requires shadow instrumentation. */
bool needsSpecInstrumentation(const PipelineConfig &cfg);

/**
 * One program's slot in the campaign schedule.  Under the Uniform
 * schedule the template is the round-robin draw and `plan` is null;
 * the adaptive scheduler assigns templates by coverage weight and
 * points `plan` at the round's class plan (not owned; must outlive
 * the task).  `slot`/`stride` stratify a round's tests over the
 * plan's classes (see src/cover/scheduler.hh).
 */
struct ProgramTask {
    int prog_i = 0;
    gen::TemplateKind templ = gen::TemplateKind::A;
    /** Corpus entry to run instead of generating (-1: generator). */
    int corpusIndex = -1;
    /** Collect a cover::ProgramDelta for the campaign ledger. */
    bool collectCover = false;
    /** Adaptive round plan for this program (nullptr: unguided). */
    const cover::RoundPlan *plan = nullptr;
    /** First class-plan slot this program's tests walk. */
    int slot = 0;
    /** Stride of the slot walk (the round's program count). */
    int stride = 1;
};

/**
 * Everything one program task produces, merged in program-index order
 * by the campaign tail (or exported per shard and merged by
 * shard::mergeCampaign).  Cache-line aligned: outcome slots are
 * written concurrently by neighbouring pool workers.
 */
struct alignas(64) ProgramOutcome {
    bool hasCex = false;
    bool failed = false;
    bool quarantined = false;
    std::string name;
    /** Offset of the first counterexample inside the task (-1: none),
     *  in task-clock seconds; the merge rebuilds the campaign
     *  time-to-counterexample from these on the sequential clock. */
    double firstCexOffsetSeconds = -1.0;
    double taskSeconds = 0.0;
    /** Experiment-log rows, flushed by the merge thread in order. */
    std::vector<ExperimentRecord> records;
    /** Coverage delta (empty unless ProgramTask::collectCover). */
    cover::ProgramDelta coverDelta;
    /** The task's private metrics registry snapshot. */
    metrics::Snapshot metrics;
    /** Triage findings of this program (see RunStats::findings). */
    std::vector<triage::Finding> findings;
};

/**
 * Resolve every environment-dependent knob of a campaign config the
 * way Pipeline::run() does — fault plan (SCAMV_FAULT_RATE /
 * SCAMV_FAULT_PLAN), retry budget (SCAMV_RETRY_MAX), solver mode
 * (SCAMV_SOLVER), schedule (SCAMV_SCHEDULE) and query cache
 * (SCAMV_QCACHE_MB / SCAMV_QCACHE_FILE, bypassed when the resolved
 * fault plan is enabled).  Idempotent.  Shard workers and the merge
 * coordinator resolve once and pass the result to the slice / merge
 * entry points below, so every process answers environment questions
 * identically.
 */
PipelineConfig resolveCampaignEnv(PipelineConfig cfg);

/**
 * @return true when the resolved config tracks coverage: Adaptive
 * schedule, a configured ledger, or SCAMV_COVERAGE_FILE set.
 */
bool coverageTracked(const PipelineConfig &cfg);

/**
 * Run one program task under the campaign task guard (fresh
 * per-program registry and fault injector, exceptions contained as a
 * failed outcome).  `cfg` must be resolved (`resolveCampaignEnv`).
 * Pure function of (cfg, task): reruns — including a coordinator
 * re-dispatch of a lost shard slice — reproduce the outcome
 * byte-identically.
 */
ProgramOutcome runProgramTask(const PipelineConfig &cfg,
                              const ProgramTask &task);

/** Result of running a contiguous campaign slice (one shard). */
struct CampaignSlice {
    /** First program index of the slice. */
    int first = 0;
    /** Programs in the slice; `outcomes[k]` is program `first + k`. */
    int count = 0;
    std::vector<ProgramOutcome> outcomes;
    /** Slice programs skipped by adaptive early-stop. */
    int earlyStopped = 0;
    /** Adaptive rounds were planned locally over the slice (see
     *  DESIGN.md §12: recorded as `shard.schedule_local`). */
    bool scheduleLocal = false;
};

/**
 * Run programs [first, first + count) of the campaign.  `cfg` must be
 * resolved.  Under the Uniform schedule this executes exactly the
 * tasks a full run would give those indices, so concatenating slices
 * and merging with `mergeCampaignOutcomes` is byte-identical to
 * `Pipeline::run()`.  Under Adaptive the slice plans rounds locally
 * (its own throwaway ledger over its own budget) — deterministic for
 * a fixed partition, but not bit-equal to a global adaptive run.
 */
CampaignSlice runCampaignSlice(const PipelineConfig &cfg, int first,
                               int count);

/** Options for `mergeCampaignOutcomes`. */
struct MergeTailOptions {
    /** Programs skipped before the merge (adaptive early-stop). */
    int earlyStopped = 0;
    /** Honour SCAMV_COVERAGE_FILE / SCAMV_METRICS /
     *  SCAMV_METRICS_TABLE exports (workers building per-shard
     *  artifacts turn this off). */
    bool honorEnvExports = true;
};

/**
 * The campaign merge tail: fold `slots` (indexed by program) in
 * program-index order into a RunStats exactly as Pipeline::run()
 * does — coverage ledger fold, experiment-log flush with per-program
 * fault injectors and delta-gated retries, metrics snapshot merge on
 * the deterministic clock, counter rebuild and optional exports.
 * `cfg` must be resolved; empty slots (skipped or lost programs)
 * merge as no-ops.  Byte-identical to the tail of a 1-process run
 * for the same slots.
 */
RunStats mergeCampaignOutcomes(const PipelineConfig &cfg,
                               std::vector<ProgramOutcome> &slots,
                               const MergeTailOptions &opts = {});

/**
 * Per-program seed: a splitmix64-style avalanche over the campaign
 * seed and the program index.  Program prog_i's entire experiment
 * (generation, solving, platform noise) is a pure function of this
 * value, which is what makes the parallel campaign deterministic.
 */
std::uint64_t deriveProgramSeed(std::uint64_t seed, int prog_i);

/**
 * Canonical-model symmetrization (see PipelineConfig::similarityBias):
 * greedily copy s1's registers and memory words into s2 wherever
 * `formula` stays satisfied.  Differences the relation *requires*
 * (path conditions, refinement disequalities) survive; incidental
 * solver asymmetry is removed with probability `bias` per component.
 */
void symmetrizeModel(expr::Expr formula, const bir::Program &program,
                     expr::Assignment &model, Rng &rng, double bias);

/**
 * Scale factor from the SCAMV_SCALE environment variable (default
 * `fallback`); benches multiply program/test counts by it.
 */
double scaleFromEnv(double fallback);

/** @return max(1, round(n * scale)). */
int scaled(int n, double scale);

} // namespace scamv::core

#endif // SCAMV_CORE_PIPELINE_HH
