#include "core/report.hh"

#include "support/logging.hh"

namespace scamv::core {

TextTable
renderCampaignTable(const std::vector<ColumnMeta> &metas,
                    const std::vector<RunStats> &stats)
{
    SCAMV_ASSERT(metas.size() == stats.size(),
                 "renderCampaignTable: size mismatch");
    TextTable t;

    auto row = [&](const std::string &name, auto value_of) {
        std::vector<std::string> cells{name};
        for (const RunStats &s : stats)
            cells.push_back(value_of(s));
        t.addRow(std::move(cells));
    };

    {
        std::vector<std::string> cells{"Model"};
        for (const ColumnMeta &m : metas)
            cells.push_back(m.model);
        t.setHeader(std::move(cells));
    }
    {
        std::vector<std::string> cells{"Template"};
        for (const ColumnMeta &m : metas)
            cells.push_back(m.templ);
        t.addRow(std::move(cells));
    }
    {
        std::vector<std::string> cells{"Refinement"};
        for (const ColumnMeta &m : metas)
            cells.push_back(m.refinement);
        t.addRow(std::move(cells));
    }
    {
        // With a coverage ledger the static support-model label gains
        // the measured class coverage ("Mpc & Mline 97/128").
        std::vector<std::string> cells{"Coverage"};
        for (std::size_t i = 0; i < metas.size(); ++i) {
            std::string cell = metas[i].coverage;
            if (stats[i].coverageTracked && stats[i].classUniverse)
                cell += " " + std::to_string(stats[i].coveredClasses) +
                        "/" + std::to_string(stats[i].classUniverse);
            cells.push_back(std::move(cell));
        }
        t.addRow(std::move(cells));
    }

    row("Programs",
        [](const RunStats &s) { return std::to_string(s.programs); });
    row("Prog. w. Count.", [](const RunStats &s) {
        return std::to_string(s.programsWithCex);
    });
    row("Experiments",
        [](const RunStats &s) { return std::to_string(s.experiments); });
    row("- Counterexample", [](const RunStats &s) {
        return std::to_string(s.counterexamples);
    });
    row("- Inconclusive", [](const RunStats &s) {
        return std::to_string(s.inconclusive);
    });
    row("- Avg. Gen. time (ms)", [](const RunStats &s) {
        return fmtDouble(s.avgGenSeconds() * 1e3, 2);
    });
    row("- Avg. Exe. time (ms)", [](const RunStats &s) {
        return fmtDouble(s.avgExeSeconds() * 1e3, 2);
    });
    row("- T.T.C. (s)", [](const RunStats &s) {
        return s.ttcSeconds < 0 ? std::string("-")
                                : fmtDouble(s.ttcSeconds, 2);
    });

    // Coverage-ledger rows appear only when some campaign tracked
    // coverage, keeping the default table in the paper layout.
    bool any_cover = false;
    for (const RunStats &s : stats)
        any_cover |= s.coverageTracked;
    if (any_cover) {
        row("Mline classes covered", [](const RunStats &s) {
            return s.coverageTracked
                       ? std::to_string(s.coveredClasses)
                       : std::string("-");
        });
        row("- Early-stopped programs", [](const RunStats &s) {
            return s.coverageTracked ? std::to_string(s.earlyStopped)
                                     : std::string("-");
        });
    }

    // Resilience rows appear only when some campaign ran under a
    // fault plan, keeping the fault-free table in the paper layout.
    bool any_faults = false;
    for (const RunStats &s : stats)
        any_faults |= s.faultsInjected > 0 || s.retryAttempts > 0 ||
                      s.programFailures > 0;
    if (any_faults) {
        row("Faults injected", [](const RunStats &s) {
            return std::to_string(s.faultsInjected);
        });
        row("- Retries", [](const RunStats &s) {
            return std::to_string(s.retryAttempts);
        });
        row("- Quarantined", [](const RunStats &s) {
            return std::to_string(s.quarantined);
        });
        row("- Failed tasks", [](const RunStats &s) {
            return std::to_string(s.programFailures);
        });
        row("- Degraded", [](const RunStats &s) {
            return std::to_string(s.degraded);
        });
        row("- Dropped db writes", [](const RunStats &s) {
            return std::to_string(s.dbWriteDrops);
        });
        row("- Dropped ledger merges", [](const RunStats &s) {
            return std::to_string(s.ledgerMergeDrops);
        });
    }
    return t;
}

std::string
renderResilienceSummary(const RunStats &stats)
{
    std::string out;
    out += "faults injected: " + std::to_string(stats.faultsInjected) +
           ", retries: " + std::to_string(stats.retryAttempts) +
           ", degraded outcomes: " + std::to_string(stats.degraded) +
           ", dropped db writes: " +
           std::to_string(stats.dbWriteDrops) + "\n";
    if (stats.ledgerMergeDrops > 0 || stats.schedulerDegraded)
        out += "dropped ledger merges: " +
               std::to_string(stats.ledgerMergeDrops) +
               (stats.schedulerDegraded
                    ? " (adaptive scheduling degraded to uniform)"
                    : "") +
               "\n";
    if (!stats.quarantinedPrograms.empty()) {
        out += "quarantined programs (" +
               std::to_string(stats.quarantinedPrograms.size()) + "):";
        for (const std::string &name : stats.quarantinedPrograms)
            out += " " + name;
        out += "\n";
    }
    if (!stats.failedPrograms.empty()) {
        out += "failed program tasks (" +
               std::to_string(stats.failedPrograms.size()) + "):";
        for (const std::string &name : stats.failedPrograms)
            out += " " + name;
        out += "\n";
    }
    return out;
}

TextTable
renderChecklist(const RunStats &baseline, const RunStats &refined)
{
    TextTable t;
    t.setHeader({"A.6.1 checklist metric", "baseline", "refined",
                 "ratio"});
    t.addRow({"Programs with counterexamples",
              std::to_string(baseline.programsWithCex),
              std::to_string(refined.programsWithCex),
              fmtRatio(refined.programsWithCex,
                       baseline.programsWithCex)});
    t.addRow({"Counterexamples",
              std::to_string(baseline.counterexamples),
              std::to_string(refined.counterexamples),
              fmtRatio(static_cast<double>(refined.counterexamples),
                       static_cast<double>(baseline.counterexamples))});
    const bool both_ttc =
        baseline.ttcSeconds >= 0 && refined.ttcSeconds >= 0;
    t.addRow({"Time to first counterexample (s)",
              baseline.ttcSeconds < 0 ? "-"
                                      : fmtDouble(baseline.ttcSeconds, 2),
              refined.ttcSeconds < 0 ? "-"
                                     : fmtDouble(refined.ttcSeconds, 2),
              both_ttc ? fmtRatio(baseline.ttcSeconds,
                                  refined.ttcSeconds) +
                             " faster"
                       : "-"});
    return t;
}

} // namespace scamv::core
