/**
 * @file
 * Rendering of campaign statistics in the layout of Table 1 and the
 * Fig. 7 table: one column per campaign, metric rows.
 */

#ifndef SCAMV_CORE_REPORT_HH
#define SCAMV_CORE_REPORT_HH

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "support/table.hh"

namespace scamv::core {

/** Header metadata of one table column. */
struct ColumnMeta {
    std::string model;      ///< e.g. "Mct"
    std::string templ;      ///< e.g. "Template A"
    std::string refinement; ///< "No" or the refined model's name
    std::string coverage;   ///< e.g. "Mpc & Mline"
};

/**
 * Render campaigns side by side (paper-table layout).
 * `metas` and `stats` must have equal length.
 */
TextTable renderCampaignTable(const std::vector<ColumnMeta> &metas,
                              const std::vector<RunStats> &stats);

/**
 * Render the artifact-checklist ratios of Section A.6.1 for a
 * (baseline, refined) campaign pair.
 */
TextTable renderChecklist(const RunStats &baseline,
                          const RunStats &refined);

/**
 * Render a plain-text resilience summary of one campaign: injected
 * faults, retries, degraded outcomes, and the quarantined / failed
 * programs by name — campaigns under a fault plan complete with this
 * report instead of aborting.  Empty sections are omitted.
 */
std::string renderResilienceSummary(const RunStats &stats);

} // namespace scamv::core

#endif // SCAMV_CORE_REPORT_HH
