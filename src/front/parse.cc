/**
 * @file
 * SC recursive-descent parser and stable AST dumper.
 *
 * Grammar (EBNF, `//` comments and whitespace handled by the lexer):
 *
 *   unit   := decl* stmt*
 *   decl   := ("secret"|"public")? "u64" ident ("[" number "]")? ";"
 *   stmt   := ident "=" expr ";"
 *           | ident "[" expr "]" "=" expr ";"
 *           | "if" "(" expr relop expr ")" block ("else" block)?
 *           | "for" "(" ident "=" expr ";" ident "<" expr ";"
 *                       ident "=" ident "+" expr ")" block
 *   block  := "{" stmt* "}"
 *   expr   := precedence climbing over | ^ & (<< >>) (+ -) *
 *   prim   := number | ident | ident "[" expr "]" | "(" expr ")"
 *   relop  := "==" | "!=" | "<" | "<=" | ">" | ">="
 *
 * The `for` shape is deliberately rigid (same variable in all three
 * positions, `<` bound, additive step) so that boundedness is a purely
 * local property the lowering pass can check by constant-folding the
 * three header expressions.
 *
 * Nesting depth is capped (kMaxDepth) so that pathological inputs from
 * the fuzzer diagnose instead of overflowing the stack.
 */

#include "front/front.hh"

namespace scamv::front {

namespace {

/** Maximum combined expression/block nesting depth. */
constexpr int kMaxDepth = 64;

bool
isKeyword(const std::string &s)
{
    return s == "u64" || s == "secret" || s == "public" || s == "if" ||
           s == "else" || s == "for";
}

/** Binding power of a binary operator token, or 0 if not one. */
int
precOf(const Token &t, BinOp &op)
{
    if (t.kind != TokKind::Punct)
        return 0;
    if (t.text == "|") { op = BinOp::Or;  return 1; }
    if (t.text == "^") { op = BinOp::Xor; return 2; }
    if (t.text == "&") { op = BinOp::And; return 3; }
    if (t.text == "<<") { op = BinOp::Shl; return 4; }
    if (t.text == ">>") { op = BinOp::Shr; return 4; }
    if (t.text == "+") { op = BinOp::Add; return 5; }
    if (t.text == "-") { op = BinOp::Sub; return 5; }
    if (t.text == "*") { op = BinOp::Mul; return 6; }
    return 0;
}

bool
relOf(const Token &t, RelOp &op)
{
    if (t.kind != TokKind::Punct)
        return false;
    if (t.text == "==") { op = RelOp::Eq; return true; }
    if (t.text == "!=") { op = RelOp::Ne; return true; }
    if (t.text == "<")  { op = RelOp::Lt; return true; }
    if (t.text == "<=") { op = RelOp::Le; return true; }
    if (t.text == ">")  { op = RelOp::Gt; return true; }
    if (t.text == ">=") { op = RelOp::Ge; return true; }
    return false;
}

class Parser
{
  public:
    explicit Parser(std::vector<Token> toks) : tokens(std::move(toks)) {}

    ParseResult
    run()
    {
        ParseResult out;
        parseDecls(out.unit);
        while (!failed && !atEnd())
            if (StmtPtr s = parseStmt(0))
                out.unit.stmts.push_back(std::move(s));
        out.error = error;
        return out;
    }

  private:
    std::vector<Token> tokens;
    std::size_t idx = 0;
    bool failed = false;
    std::optional<Diagnostic> error;

    const Token &peek(std::size_t ahead = 0) const
    {
        std::size_t i = idx + ahead;
        return tokens[i < tokens.size() ? i : tokens.size() - 1];
    }
    bool atEnd() const { return peek().kind == TokKind::End; }

    void
    fail(const SourcePos &pos, std::string msg)
    {
        if (!failed) {
            failed = true;
            error = Diagnostic{pos, std::move(msg)};
        }
    }

    bool atPunct(const char *p) const
    {
        return peek().kind == TokKind::Punct && peek().text == p;
    }
    bool atIdent(const char *kw) const
    {
        return peek().kind == TokKind::Ident && peek().text == kw;
    }

    bool
    eatPunct(const char *p)
    {
        if (!atPunct(p)) {
            fail(peek().pos, std::string("expected '") + p + "'");
            return false;
        }
        ++idx;
        return true;
    }

    /** Consume a non-keyword identifier. */
    std::string
    eatName()
    {
        if (peek().kind != TokKind::Ident || isKeyword(peek().text)) {
            fail(peek().pos, "expected identifier");
            return "";
        }
        return tokens[idx++].text;
    }

    void
    parseDecls(Unit &unit)
    {
        while (!failed &&
               (atIdent("u64") || atIdent("secret") || atIdent("public"))) {
            Decl d;
            d.pos = peek().pos;
            if (atIdent("secret")) {
                d.qual = Qualifier::Secret;
                ++idx;
            } else if (atIdent("public")) {
                d.qual = Qualifier::Public;
                ++idx;
            }
            if (!atIdent("u64")) {
                fail(peek().pos, "expected 'u64' after input qualifier");
                return;
            }
            ++idx;
            d.name = eatName();
            if (failed)
                return;
            if (atPunct("[")) {
                ++idx;
                if (peek().kind != TokKind::Number) {
                    fail(peek().pos, "expected constant array size");
                    return;
                }
                d.isArray = true;
                d.arraySize = tokens[idx++].value;
                if (!eatPunct("]"))
                    return;
            }
            if (!eatPunct(";"))
                return;
            unit.decls.push_back(std::move(d));
        }
    }

    ExprPtr
    parsePrimary(int depth)
    {
        if (depth > kMaxDepth) {
            fail(peek().pos, "expression nested too deeply");
            return nullptr;
        }
        const Token &t = peek();
        if (t.kind == TokKind::Number) {
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Num;
            e->pos = t.pos;
            e->value = t.value;
            ++idx;
            return e;
        }
        if (t.kind == TokKind::Ident && !isKeyword(t.text)) {
            auto e = std::make_unique<Expr>();
            e->pos = t.pos;
            e->name = t.text;
            ++idx;
            if (atPunct("[")) {
                ++idx;
                e->kind = Expr::Kind::Index;
                e->lhs = parseExpr(1, depth + 1);
                if (failed || !eatPunct("]"))
                    return nullptr;
            } else {
                e->kind = Expr::Kind::Var;
            }
            return e;
        }
        if (atPunct("(")) {
            ++idx;
            ExprPtr e = parseExpr(1, depth + 1);
            if (failed || !eatPunct(")"))
                return nullptr;
            return e;
        }
        fail(t.pos, "expected expression");
        return nullptr;
    }

    ExprPtr
    parseExpr(int minPrec, int depth)
    {
        if (depth > kMaxDepth) {
            fail(peek().pos, "expression nested too deeply");
            return nullptr;
        }
        ExprPtr lhs = parsePrimary(depth);
        while (!failed) {
            BinOp op;
            int prec = precOf(peek(), op);
            if (prec < minPrec || prec == 0)
                break;
            SourcePos pos = peek().pos;
            ++idx;
            ExprPtr rhs = parseExpr(prec + 1, depth + 1);
            if (failed)
                return nullptr;
            auto e = std::make_unique<Expr>();
            e->kind = Expr::Kind::Bin;
            e->pos = pos;
            e->op = op;
            e->lhs = std::move(lhs);
            e->rhs = std::move(rhs);
            lhs = std::move(e);
        }
        if (failed)
            return nullptr;
        return lhs;
    }

    bool
    parseBlock(std::vector<StmtPtr> &body, int depth)
    {
        if (!eatPunct("{"))
            return false;
        while (!failed && !atPunct("}") && !atEnd())
            if (StmtPtr s = parseStmt(depth))
                body.push_back(std::move(s));
        return !failed && eatPunct("}");
    }

    StmtPtr
    parseStmt(int depth)
    {
        if (depth > kMaxDepth) {
            fail(peek().pos, "statements nested too deeply");
            return nullptr;
        }
        if (atIdent("if"))
            return parseIf(depth);
        if (atIdent("for"))
            return parseFor(depth);
        const Token &t = peek();
        if (t.kind == TokKind::Ident && !isKeyword(t.text)) {
            auto s = std::make_unique<Stmt>();
            s->pos = t.pos;
            s->name = t.text;
            ++idx;
            if (atPunct("[")) {
                ++idx;
                s->kind = Stmt::Kind::Store;
                s->index = parseExpr(1, depth + 1);
                if (failed || !eatPunct("]"))
                    return nullptr;
            } else {
                s->kind = Stmt::Kind::Assign;
            }
            if (!eatPunct("="))
                return nullptr;
            s->value = parseExpr(1, depth + 1);
            if (failed || !eatPunct(";"))
                return nullptr;
            return s;
        }
        fail(t.pos, "expected statement");
        return nullptr;
    }

    StmtPtr
    parseIf(int depth)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::If;
        s->pos = peek().pos;
        ++idx; // "if"
        if (!eatPunct("("))
            return nullptr;
        s->cond.lhs = parseExpr(1, depth + 1);
        if (failed)
            return nullptr;
        s->cond.pos = peek().pos;
        if (!relOf(peek(), s->cond.op)) {
            fail(peek().pos, "expected comparison operator");
            return nullptr;
        }
        ++idx;
        s->cond.rhs = parseExpr(1, depth + 1);
        if (failed || !eatPunct(")"))
            return nullptr;
        if (!parseBlock(s->body, depth + 1))
            return nullptr;
        if (atIdent("else")) {
            ++idx;
            if (!parseBlock(s->elseBody, depth + 1))
                return nullptr;
        }
        return s;
    }

    StmtPtr
    parseFor(int depth)
    {
        auto s = std::make_unique<Stmt>();
        s->kind = Stmt::Kind::For;
        s->pos = peek().pos;
        ++idx; // "for"
        if (!eatPunct("("))
            return nullptr;
        s->name = eatName();
        if (failed || !eatPunct("="))
            return nullptr;
        s->forInit = parseExpr(1, depth + 1);
        if (failed || !eatPunct(";"))
            return nullptr;
        SourcePos condPos = peek().pos;
        std::string v2 = eatName();
        if (failed)
            return nullptr;
        if (v2 != s->name) {
            fail(condPos, "for condition must test loop variable '" +
                              s->name + "'");
            return nullptr;
        }
        if (!eatPunct("<"))
            return nullptr;
        s->forBound = parseExpr(1, depth + 1);
        if (failed || !eatPunct(";"))
            return nullptr;
        SourcePos stepPos = peek().pos;
        std::string v3 = eatName();
        if (!failed && v3 == s->name && eatPunct("=")) {
            std::string v4 = eatName();
            if (!failed && v4 != s->name)
                fail(stepPos, "for step must be '" + s->name + " = " +
                                  s->name + " + <expr>'");
            if (!failed)
                eatPunct("+");
        } else if (!failed) {
            fail(stepPos, "for step must update loop variable '" +
                              s->name + "'");
        }
        if (failed)
            return nullptr;
        s->forStep = parseExpr(1, depth + 1);
        if (failed || !eatPunct(")"))
            return nullptr;
        if (!parseBlock(s->body, depth + 1))
            return nullptr;
        return s;
    }
};

const char *
binName(BinOp op)
{
    switch (op) {
    case BinOp::Or: return "|";
    case BinOp::Xor: return "^";
    case BinOp::And: return "&";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    }
    return "?";
}

const char *
relName(RelOp op)
{
    switch (op) {
    case RelOp::Eq: return "==";
    case RelOp::Ne: return "!=";
    case RelOp::Lt: return "<";
    case RelOp::Le: return "<=";
    case RelOp::Gt: return ">";
    case RelOp::Ge: return ">=";
    }
    return "?";
}

/** Inline (single-line) s-expression for an expression tree. */
void
dumpExpr(const Expr &e, std::string &out)
{
    switch (e.kind) {
    case Expr::Kind::Num:
        out += "(num " + std::to_string(e.value) + ")";
        break;
    case Expr::Kind::Var:
        out += "(var " + e.name + ")";
        break;
    case Expr::Kind::Index:
        out += "(index " + e.name + " ";
        dumpExpr(*e.lhs, out);
        out += ")";
        break;
    case Expr::Kind::Bin:
        out += std::string("(bin ") + binName(e.op) + " ";
        dumpExpr(*e.lhs, out);
        out += " ";
        dumpExpr(*e.rhs, out);
        out += ")";
        break;
    }
}

void
dumpStmt(const Stmt &s, int indent, std::string &out)
{
    std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    switch (s.kind) {
    case Stmt::Kind::Assign:
        out += pad + "(assign " + s.name + " ";
        dumpExpr(*s.value, out);
        out += ")\n";
        break;
    case Stmt::Kind::Store:
        out += pad + "(store " + s.name + " ";
        dumpExpr(*s.index, out);
        out += " ";
        dumpExpr(*s.value, out);
        out += ")\n";
        break;
    case Stmt::Kind::If:
        out += pad + "(if (rel " + std::string(relName(s.cond.op)) + " ";
        dumpExpr(*s.cond.lhs, out);
        out += " ";
        dumpExpr(*s.cond.rhs, out);
        out += ")\n";
        out += pad + "  (then\n";
        for (const auto &c : s.body)
            dumpStmt(*c, indent + 2, out);
        out += pad + "  )\n";
        if (!s.elseBody.empty()) {
            out += pad + "  (else\n";
            for (const auto &c : s.elseBody)
                dumpStmt(*c, indent + 2, out);
            out += pad + "  )\n";
        }
        out += pad + ")\n";
        break;
    case Stmt::Kind::For:
        out += pad + "(for " + s.name + " ";
        dumpExpr(*s.forInit, out);
        out += " ";
        dumpExpr(*s.forBound, out);
        out += " ";
        dumpExpr(*s.forStep, out);
        out += "\n";
        for (const auto &c : s.body)
            dumpStmt(*c, indent + 1, out);
        out += pad + ")\n";
        break;
    }
}

} // namespace

ParseResult
parse(std::string_view source)
{
    LexResult lx = lex(source);
    if (!lx.ok()) {
        ParseResult out;
        out.error = lx.error;
        return out;
    }
    return Parser(std::move(lx.tokens)).run();
}

std::string
dumpAst(const Unit &unit)
{
    std::string out = "(unit\n";
    for (const Decl &d : unit.decls) {
        out += "  (decl ";
        switch (d.qual) {
        case Qualifier::None: out += "local "; break;
        case Qualifier::Secret: out += "secret "; break;
        case Qualifier::Public: out += "public "; break;
        }
        out += "u64 " + d.name;
        if (d.isArray)
            out += "[" + std::to_string(d.arraySize) + "]";
        out += ")\n";
    }
    for (const auto &s : unit.stmts)
        dumpStmt(*s, 1, out);
    out += ")\n";
    return out;
}

} // namespace scamv::front
