/**
 * @file
 * SC frontend: a small C-like language compiled down to bir::Program.
 *
 * The paper's Scam-V pipeline only ever validated observational models
 * against the five synthetic generator templates of Fig. 5/7.  This
 * module opens the real-code workload tier of the roadmap: a
 * self-contained frontend for "SC", a C subset rich enough to express
 * the classic side-channel kernels — constant-time selects, S-box
 * table lookups, branchy parsers, memcmp chains, stride walkers — and
 * compile them into the exact IR the campaign machinery consumes.
 *
 * The pipeline is classical and entirely hand-written:
 *
 *   lex()     byte stream -> tokens, with line/column positions;
 *   parse()   recursive-descent into a typed AST (u64 scalars,
 *             fixed-size u64 arrays, secret/public input qualifiers,
 *             if/else, bounded for loops, assignments, indexing);
 *   compile() semantic checks (undeclared/duplicate names, scalar vs
 *             array misuse, non-constant loop bounds) and lowering:
 *             bounded full loop unrolling under a configurable budget,
 *             linear-scan register allocation onto x0..x31, arrays at
 *             deterministic 64-byte-aligned base addresses, array
 *             accesses as Load/Store with register offsets, if/else as
 *             fused compare-and-branch.
 *
 * Every failure is a Diagnostic carrying the 1-based line/column of
 * the offending token — the frontend never throws and never crashes
 * on malformed input (fuzz-tested in tests/test_front.cc).
 *
 * The `secret` / `public` qualifiers are the relational contract of
 * the compiled program: qualified scalar declarations become input
 * registers (CompiledProgram::secretRegs / publicRegs) and array
 * declarations become memory slabs whose words are secret (free to
 * differ between the two symbolic states) or public (pinned equal by
 * the relation synthesizer, see rel::RelationConfig::lowMemAddrs).
 * Unqualified scalars are locals, zero-initialized at entry so no
 * uninitialized junk can masquerade as a leak; unqualified arrays
 * default to public inputs for the same reason.
 */

#ifndef SCAMV_FRONT_FRONT_HH
#define SCAMV_FRONT_FRONT_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bir/bir.hh"

namespace scamv::front {

/** 1-based position of a token in the source text. */
struct SourcePos {
    int line = 1;
    int col = 1;

    bool operator==(const SourcePos &) const = default;
};

/** One frontend error ("<line>:<col>: message"). */
struct Diagnostic {
    SourcePos pos;
    std::string message;

    /** Render as "<file>:<line>:<col>: error: <message>". */
    std::string render(const std::string &file = "<sc>") const;
};

/*
 * ------------------------------------------------------------------
 * Lexer
 * ------------------------------------------------------------------
 */

/** Token kinds.  Punctuation tokens carry their spelling in `text`. */
enum class TokKind {
    Ident,   ///< identifier or keyword (keywords resolved by parser)
    Number,  ///< u64 literal (decimal or 0x hex), value in `value`
    Punct,   ///< operator/punctuation spelling in `text`
    End      ///< end of input
};

/** One token. */
struct Token {
    TokKind kind = TokKind::End;
    std::string text;
    std::uint64_t value = 0;
    SourcePos pos;
};

/** Lexer output: the token stream, or the first lexical error. */
struct LexResult {
    std::vector<Token> tokens; ///< always End-terminated on success
    std::optional<Diagnostic> error;

    bool ok() const { return !error.has_value(); }
};

/** Tokenize SC source.  Total: any byte sequence lexes or diagnoses. */
LexResult lex(std::string_view source);

/*
 * ------------------------------------------------------------------
 * AST
 * ------------------------------------------------------------------
 */

/** Binary operators, in precedence-climbing order (see parse.cc). */
enum class BinOp { Or, Xor, And, Shl, Shr, Add, Sub, Mul };

/** Relational operators (unsigned, as everything in SC is u64). */
enum class RelOp { Eq, Ne, Lt, Le, Gt, Ge };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/** Expression node. */
struct Expr {
    enum class Kind { Num, Var, Index, Bin };
    Kind kind = Kind::Num;
    SourcePos pos;
    std::uint64_t value = 0; ///< Num
    std::string name;        ///< Var / Index (the array)
    BinOp op = BinOp::Add;   ///< Bin
    ExprPtr lhs;             ///< Bin left operand / Index subscript
    ExprPtr rhs;             ///< Bin right operand
};

/** Relational condition `lhs relop rhs`. */
struct Cond {
    RelOp op = RelOp::Eq;
    SourcePos pos;
    ExprPtr lhs;
    ExprPtr rhs;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** Statement node. */
struct Stmt {
    enum class Kind { Assign, Store, If, For };
    Kind kind = Kind::Assign;
    SourcePos pos;
    std::string name;  ///< Assign target / Store array / For variable
    ExprPtr index;     ///< Store subscript
    ExprPtr value;     ///< Assign / Store right-hand side
    Cond cond;         ///< If condition
    std::vector<StmtPtr> body;     ///< If-then / For body
    std::vector<StmtPtr> elseBody; ///< If-else (may be empty)
    ExprPtr forInit;   ///< For: initial value of the loop variable
    ExprPtr forBound;  ///< For: exclusive upper bound (`<` only)
    ExprPtr forStep;   ///< For: per-iteration increment
};

/** Input qualifier of a top-level declaration. */
enum class Qualifier {
    None,   ///< local scalar (zeroed) / public array (see file header)
    Secret, ///< high input: free to differ between the two states
    Public  ///< low input: pinned equal between the two states
};

/** One top-level `[secret|public] u64 name [\[N\]];` declaration. */
struct Decl {
    Qualifier qual = Qualifier::None;
    std::string name;
    bool isArray = false;
    std::uint64_t arraySize = 0;
    SourcePos pos;
};

/** A parsed translation unit: declarations, then statements. */
struct Unit {
    std::vector<Decl> decls;
    std::vector<StmtPtr> stmts;
};

/** Parser output: the unit, or the first syntax/lexical error. */
struct ParseResult {
    Unit unit;
    std::optional<Diagnostic> error;

    bool ok() const { return !error.has_value(); }
};

/** Parse SC source.  Total: never throws, never crashes. */
ParseResult parse(std::string_view source);

/**
 * Stable s-expression dump of a parsed unit, used by the golden-file
 * tests: purely structural (no source positions), one node per line,
 * two-space indentation.
 */
std::string dumpAst(const Unit &unit);

/*
 * ------------------------------------------------------------------
 * Lowering
 * ------------------------------------------------------------------
 */

/** Compilation options. */
struct CompileOptions {
    /**
     * Maximum lowered (architectural) instruction count — the loop
     * unrolling budget.  Negative resolves from the validated
     * SCAMV_UNROLL_BUDGET environment variable, defaulting to 1024.
     */
    long unrollBudget = -1;
    /** First array base address (the experiment region base). */
    std::uint64_t arrayBase = 0x80000;
    /** Array storage limit (the experiment region end). */
    std::uint64_t arrayLimit = 0x80000 + 0x80000;
    /** Array base alignment (one cache line). */
    std::uint64_t arrayAlign = 64;
};

/** Deterministic memory slab assigned to one array declaration. */
struct ArrayLayout {
    std::string name;
    Qualifier qual = Qualifier::Public;
    std::uint64_t base = 0;  ///< 64-byte aligned slab base
    std::uint64_t words = 0; ///< element count (8 bytes per element)
};

/** A compiled SC program plus its relational input contract. */
struct CompiledProgram {
    std::string name;
    bir::Program program;
    /** Registers holding `secret` scalar inputs (declaration order). */
    std::vector<bir::Reg> secretRegs;
    /** Registers holding `public` scalar inputs (declaration order). */
    std::vector<bir::Reg> publicRegs;
    /** Array memory layout, in declaration order. */
    std::vector<ArrayLayout> arrays;
    /** Every 8-byte word of every public array — the low memory the
     *  relation synthesizer pins equal across the two states. */
    std::vector<std::uint64_t> publicMemAddrs;
};

/** Compiler output: the compiled program, or the first error. */
struct CompileResult {
    std::optional<CompiledProgram> compiled;
    std::optional<Diagnostic> error;

    bool ok() const { return compiled.has_value(); }
};

/** Parse, check and lower SC source into a CompiledProgram. */
CompileResult compile(std::string_view source, const std::string &name,
                      const CompileOptions &opts = {});

/** Lower an already-parsed unit (the compile() back half). */
CompileResult lower(const Unit &unit, const std::string &name,
                    const CompileOptions &opts = {});

/*
 * ------------------------------------------------------------------
 * Corpus loading
 * ------------------------------------------------------------------
 */

/**
 * Load and compile every `*.sc` file in `dir`, sorted by filename so
 * the corpus order — and hence every campaign artifact built from it —
 * is deterministic.  Files that fail to read or compile warn and are
 * skipped (the campaign must not die on one bad kernel).  Program
 * names are the filename stems ("sbox" from "sbox.sc").
 */
std::vector<CompiledProgram> loadCorpusDir(const std::string &dir,
                                           const CompileOptions &opts = {});

/** Load and compile one `.sc` file; warns and returns nullopt on
 *  read/compile failure. */
std::optional<CompiledProgram>
loadProgramFile(const std::string &path, const CompileOptions &opts = {});

/**
 * The environment-configured corpus: every kernel of SCAMV_CORPUS_DIR
 * (when set) plus the single SCAMV_PROGRAM_FILE kernel (when set), in
 * that order.  Empty when neither variable is set.
 */
std::vector<CompiledProgram> corpusFromEnv(const CompileOptions &opts = {});

} // namespace scamv::front

#endif // SCAMV_FRONT_FRONT_HH
