/**
 * @file
 * SC semantic checks and lowering to BIR.
 *
 * Allocation strategy (all deterministic, so the same source always
 * produces byte-identical BIR):
 *
 *   - scalars get registers in declaration order from x0; expression
 *     temporaries are a stack growing above the last scalar, and the
 *     high-water mark crossing x31 is a diagnostic, not a spill —
 *     kernels this IR targets are small by construction;
 *   - arrays get sequential cache-line-aligned slabs starting at the
 *     experiment-region base, 8 bytes per element;
 *   - `for` loops are fully unrolled (the symbolic executor has no
 *     fixpoint engine), with the loop header constant-folded; a
 *     non-constant bound is the "unbounded loop" diagnostic and the
 *     total instruction count is capped by CompileOptions::unrollBudget;
 *   - assignments evaluate the right-hand side into a fresh temporary
 *     and then move it into the target register, so `x = 1 + x` reads
 *     the old value instead of a clobbered one;
 *   - unqualified scalars are zero-initialized at entry: without that,
 *     their junk start values would be unconstrained symbolic inputs
 *     and every use would masquerade as a secret-dependent leak.
 */

#include "front/front.hh"

#include "support/env.hh"
#include "support/logging.hh"

#include <map>

namespace scamv::front {

namespace {

/** Resolved symbol: a scalar register or an array slab. */
struct Sym {
    bool isArray = false;
    Qualifier qual = Qualifier::None;
    bir::Reg reg = -1;           ///< scalar only
    std::uint64_t base = 0;      ///< array only
    std::uint64_t words = 0;     ///< array only
    SourcePos pos;
};

bir::AluOp
aluOf(BinOp op)
{
    switch (op) {
    case BinOp::Or: return bir::AluOp::Orr;
    case BinOp::Xor: return bir::AluOp::Eor;
    case BinOp::And: return bir::AluOp::And;
    case BinOp::Shl: return bir::AluOp::Lsl;
    case BinOp::Shr: return bir::AluOp::Lsr;
    case BinOp::Add: return bir::AluOp::Add;
    case BinOp::Sub: return bir::AluOp::Sub;
    case BinOp::Mul: return bir::AluOp::Mul;
    }
    return bir::AluOp::Add;
}

bir::CmpOp
cmpOf(RelOp op)
{
    switch (op) {
    case RelOp::Eq: return bir::CmpOp::Eq;
    case RelOp::Ne: return bir::CmpOp::Ne;
    case RelOp::Lt: return bir::CmpOp::Ult;
    case RelOp::Le: return bir::CmpOp::Ule;
    case RelOp::Gt: return bir::CmpOp::Ugt;
    case RelOp::Ge: return bir::CmpOp::Uge;
    }
    return bir::CmpOp::Eq;
}

class Lowerer
{
  public:
    Lowerer(const Unit &u, const std::string &name,
            const CompileOptions &options)
        : unit(u), opts(options), out{}
    {
        out.name = name;
        out.program.setName(name);
        budget = opts.unrollBudget >= 0
                     ? opts.unrollBudget
                     : envLong("SCAMV_UNROLL_BUDGET", 1, 1000000)
                           .value_or(1024);
    }

    CompileResult
    run()
    {
        CompileResult res;
        layoutSymbols();
        if (!failed) {
            for (const Decl &d : unit.decls)
                if (!d.isArray && d.qual == Qualifier::None)
                    emit(bir::Instr::movImm(syms[d.name].reg, 0), d.pos);
            for (const auto &s : unit.stmts)
                lowerStmt(*s);
        }
        if (!failed) {
            emit(bir::Instr::halt(), SourcePos{});
            std::string v = out.program.validate();
            if (!v.empty())
                fail(SourcePos{}, "internal: lowered program invalid: " + v);
        }
        if (failed) {
            res.error = error;
            return res;
        }
        res.compiled = std::move(out);
        return res;
    }

  private:
    const Unit &unit;
    CompileOptions opts;
    CompiledProgram out;
    std::map<std::string, Sym> syms;
    bir::Reg firstTemp = 0;
    long budget = 1024;
    std::string loopVar; ///< active induction variable, "" outside for
    bool failed = false;
    std::optional<Diagnostic> error;

    void
    fail(const SourcePos &pos, std::string msg)
    {
        if (!failed) {
            failed = true;
            error = Diagnostic{pos, std::move(msg)};
        }
    }

    /** Check a register index fits the architectural file. */
    bool
    checkReg(bir::Reg r, const SourcePos &pos)
    {
        if (r >= bir::kNumRegs) {
            fail(pos, "register allocation exceeded x31 (too many "
                      "variables or deep expressions)");
            return false;
        }
        return true;
    }

    void
    emit(bir::Instr i, const SourcePos &pos)
    {
        if (failed)
            return;
        if (static_cast<long>(out.program.size()) >= budget) {
            fail(pos, "program exceeds unroll budget of " +
                          std::to_string(budget) +
                          " instructions (SCAMV_UNROLL_BUDGET)");
            return;
        }
        out.program.push(i);
    }

    void
    layoutSymbols()
    {
        bir::Reg nextReg = 0;
        std::uint64_t nextBase = opts.arrayBase;
        for (const Decl &d : unit.decls) {
            if (syms.count(d.name)) {
                fail(d.pos, "duplicate declaration of '" + d.name + "'");
                return;
            }
            Sym s;
            s.isArray = d.isArray;
            s.qual = d.qual;
            s.pos = d.pos;
            if (d.isArray) {
                if (d.arraySize == 0) {
                    fail(d.pos, "array '" + d.name +
                                    "' must have positive size");
                    return;
                }
                // Unqualified arrays default to public inputs: their
                // contents must come from somewhere, and "equal in both
                // states" is the only junk-free reading.
                if (s.qual == Qualifier::None)
                    s.qual = Qualifier::Public;
                std::uint64_t align = opts.arrayAlign ? opts.arrayAlign : 1;
                nextBase = (nextBase + align - 1) / align * align;
                s.base = nextBase;
                s.words = d.arraySize;
                if (d.arraySize > (opts.arrayLimit - nextBase) / 8) {
                    fail(d.pos, "array '" + d.name +
                                    "' exceeds the experiment memory "
                                    "region");
                    return;
                }
                nextBase += d.arraySize * 8;
            } else {
                if (!checkReg(nextReg, d.pos))
                    return;
                s.reg = nextReg++;
            }
            syms[d.name] = s;
            if (d.isArray) {
                out.arrays.push_back(
                    ArrayLayout{d.name, s.qual, s.base, s.words});
                if (s.qual == Qualifier::Public)
                    for (std::uint64_t w = 0; w < s.words; ++w)
                        out.publicMemAddrs.push_back(s.base + 8 * w);
            } else if (d.qual == Qualifier::Secret) {
                out.secretRegs.push_back(s.reg);
            } else if (d.qual == Qualifier::Public) {
                out.publicRegs.push_back(s.reg);
            }
        }
        firstTemp = nextReg;
    }

    const Sym *
    lookup(const std::string &name, const SourcePos &pos, bool wantArray)
    {
        auto it = syms.find(name);
        if (it == syms.end()) {
            fail(pos, "use of undeclared identifier '" + name + "'");
            return nullptr;
        }
        if (it->second.isArray != wantArray) {
            fail(pos, wantArray
                          ? "'" + name + "' is a scalar, not an array"
                          : "'" + name + "' is an array; subscript it");
            return nullptr;
        }
        return &it->second;
    }

    /** Evaluate `e` into `dst`, temporaries from `next` upward. */
    void
    evalInto(const Expr &e, bir::Reg dst, bir::Reg next)
    {
        if (failed || !checkReg(dst, e.pos))
            return;
        switch (e.kind) {
        case Expr::Kind::Num:
            emit(bir::Instr::movImm(dst, e.value), e.pos);
            break;
        case Expr::Kind::Var: {
            const Sym *s = lookup(e.name, e.pos, false);
            if (s)
                emit(bir::Instr::aluImm(bir::AluOp::Orr, dst, s->reg, 0),
                     e.pos);
            break;
        }
        case Expr::Kind::Index: {
            const Sym *s = lookup(e.name, e.pos, true);
            if (!s || !checkReg(next, e.pos))
                return;
            evalInto(*e.lhs, dst, next + 1);
            emit(bir::Instr::aluImm(bir::AluOp::Lsl, dst, dst, 3), e.pos);
            emit(bir::Instr::movImm(next, s->base), e.pos);
            emit(bir::Instr::load(dst, next, dst), e.pos);
            break;
        }
        case Expr::Kind::Bin:
            if (!checkReg(next, e.pos))
                return;
            evalInto(*e.lhs, dst, next + 1);
            evalInto(*e.rhs, next, next + 1);
            emit(bir::Instr::alu(aluOf(e.op), dst, dst, next), e.pos);
            break;
        }
    }

    /** Constant-fold `e`; nullopt when it references any variable. */
    std::optional<std::uint64_t>
    evalConst(const Expr &e)
    {
        switch (e.kind) {
        case Expr::Kind::Num:
            return e.value;
        case Expr::Kind::Bin: {
            auto a = evalConst(*e.lhs);
            auto b = evalConst(*e.rhs);
            if (!a || !b)
                return std::nullopt;
            switch (e.op) {
            case BinOp::Or: return *a | *b;
            case BinOp::Xor: return *a ^ *b;
            case BinOp::And: return *a & *b;
            case BinOp::Shl: return *b >= 64 ? 0 : *a << *b;
            case BinOp::Shr: return *b >= 64 ? 0 : *a >> *b;
            case BinOp::Add: return *a + *b;
            case BinOp::Sub: return *a - *b;
            case BinOp::Mul: return *a * *b;
            }
            return std::nullopt;
        }
        default:
            return std::nullopt;
        }
    }

    void
    lowerStmt(const Stmt &s)
    {
        if (failed)
            return;
        switch (s.kind) {
        case Stmt::Kind::Assign: {
            const Sym *sym = lookup(s.name, s.pos, false);
            if (!sym)
                return;
            if (s.name == loopVar) {
                fail(s.pos, "assignment to loop variable '" + s.name +
                                "' inside its loop body");
                return;
            }
            if (s.value->kind == Expr::Kind::Num) {
                emit(bir::Instr::movImm(sym->reg, s.value->value), s.pos);
                return;
            }
            evalInto(*s.value, firstTemp, firstTemp + 1);
            emit(bir::Instr::aluImm(bir::AluOp::Orr, sym->reg, firstTemp,
                                    0),
                 s.pos);
            break;
        }
        case Stmt::Kind::Store: {
            const Sym *sym = lookup(s.name, s.pos, true);
            if (!sym)
                return;
            bir::Reg tVal = firstTemp, tIdx = firstTemp + 1,
                     tBase = firstTemp + 2;
            if (!checkReg(tBase, s.pos))
                return;
            evalInto(*s.value, tVal, tBase + 1);
            evalInto(*s.index, tIdx, tBase + 1);
            emit(bir::Instr::aluImm(bir::AluOp::Lsl, tIdx, tIdx, 3),
                 s.pos);
            emit(bir::Instr::movImm(tBase, sym->base), s.pos);
            emit(bir::Instr::store(tVal, tBase, tIdx), s.pos);
            break;
        }
        case Stmt::Kind::If: {
            bir::Reg tL = firstTemp, tR = firstTemp + 1;
            evalInto(*s.cond.lhs, tL, tR + 1);
            evalInto(*s.cond.rhs, tR, tR + 1);
            // Branch over the then-body when the condition is false.
            int br = -1;
            emit(bir::Instr::branch(bir::negateCmp(cmpOf(s.cond.op)), tL,
                                    tR, 0),
                 s.pos);
            if (failed)
                return;
            br = static_cast<int>(out.program.size()) - 1;
            for (const auto &c : s.body)
                lowerStmt(*c);
            if (failed)
                return;
            if (s.elseBody.empty()) {
                out.program[br].target =
                    static_cast<int>(out.program.size());
            } else {
                emit(bir::Instr::jump(0), s.pos);
                if (failed)
                    return;
                int jp = static_cast<int>(out.program.size()) - 1;
                out.program[br].target =
                    static_cast<int>(out.program.size());
                for (const auto &c : s.elseBody)
                    lowerStmt(*c);
                if (failed)
                    return;
                out.program[jp].target =
                    static_cast<int>(out.program.size());
            }
            break;
        }
        case Stmt::Kind::For: {
            const Sym *sym = lookup(s.name, s.pos, false);
            if (!sym)
                return;
            if (sym->qual != Qualifier::None) {
                fail(s.pos, "loop variable '" + s.name +
                                "' must be an unqualified local");
                return;
            }
            auto init = evalConst(*s.forInit);
            auto bound = evalConst(*s.forBound);
            auto step = evalConst(*s.forStep);
            if (!init || !bound || !step) {
                fail(s.pos, "unbounded loop: for header of '" + s.name +
                                "' must use constant expressions");
                return;
            }
            if (*step == 0) {
                fail(s.pos, "unbounded loop: step of '" + s.name +
                                "' is zero");
                return;
            }
            std::string prevLoop = loopVar;
            loopVar = s.name;
            std::uint64_t v = *init;
            while (v < *bound && !failed) {
                emit(bir::Instr::movImm(sym->reg, v), s.pos);
                for (const auto &c : s.body)
                    lowerStmt(*c);
                std::uint64_t nv = v + *step;
                if (nv < v) // wrapped past 2^64: the loop is done
                    break;
                v = nv;
            }
            loopVar = prevLoop;
            // Leave the register holding its post-loop value, as C would.
            if (!failed)
                emit(bir::Instr::movImm(sym->reg, v), s.pos);
            break;
        }
        }
    }
};

} // namespace

CompileResult
lower(const Unit &unit, const std::string &name, const CompileOptions &opts)
{
    return Lowerer(unit, name, opts).run();
}

CompileResult
compile(std::string_view source, const std::string &name,
        const CompileOptions &opts)
{
    ParseResult p = parse(source);
    if (!p.ok()) {
        CompileResult res;
        res.error = p.error;
        return res;
    }
    return lower(p.unit, name, opts);
}

} // namespace scamv::front
