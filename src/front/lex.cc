/**
 * @file
 * SC lexer.
 *
 * Hand-written single-pass scanner.  Total over arbitrary byte input:
 * every byte sequence either tokenizes or yields a Diagnostic with the
 * position of the first offending byte — the fuzz tests in
 * tests/test_front.cc rely on this never crashing or looping.
 */

#include "front/front.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace scamv::front {

std::string
Diagnostic::render(const std::string &file) const
{
    return file + ":" + std::to_string(pos.line) + ":" +
           std::to_string(pos.col) + ": error: " + message;
}

namespace {

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Multi-character operators, longest first so "<<" wins over "<". */
const char *const kPuncts[] = {
    "<<", ">>", "==", "!=", "<=", ">=",
    "(", ")", "{", "}", "[", "]", ";", "=", "<", ">",
    "+", "-", "*", "&", "|", "^", ",",
};

} // namespace

LexResult
lex(std::string_view source)
{
    LexResult out;
    SourcePos pos;
    std::size_t i = 0;

    auto advance = [&](std::size_t n) {
        for (std::size_t k = 0; k < n; ++k) {
            if (source[i + k] == '\n') {
                ++pos.line;
                pos.col = 1;
            } else {
                ++pos.col;
            }
        }
        i += n;
    };

    while (i < source.size()) {
        char c = source[i];
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance(1);
            continue;
        }
        // Line comments: "//" to end of line.
        if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n')
                advance(1);
            continue;
        }
        if (isIdentStart(c)) {
            Token t;
            t.kind = TokKind::Ident;
            t.pos = pos;
            std::size_t n = 1;
            while (i + n < source.size() && isIdentChar(source[i + n]))
                ++n;
            t.text = std::string(source.substr(i, n));
            advance(n);
            out.tokens.push_back(std::move(t));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            Token t;
            t.kind = TokKind::Number;
            t.pos = pos;
            std::size_t n = 1;
            // Accept any run of alphanumerics, then parse strictly, so
            // "0x1g" and "12ab" diagnose rather than split into two
            // tokens that happen to parse.
            while (i + n < source.size() && isIdentChar(source[i + n]))
                ++n;
            t.text = std::string(source.substr(i, n));
            errno = 0;
            char *end = nullptr;
            t.value = std::strtoull(t.text.c_str(), &end, 0);
            if (errno == ERANGE || end != t.text.c_str() + t.text.size()) {
                out.error = Diagnostic{pos, "invalid numeric literal '" +
                                                t.text + "'"};
                return out;
            }
            advance(n);
            out.tokens.push_back(std::move(t));
            continue;
        }
        bool matched = false;
        for (const char *p : kPuncts) {
            std::size_t n = std::char_traits<char>::length(p);
            if (source.substr(i, n) == p) {
                Token t;
                t.kind = TokKind::Punct;
                t.pos = pos;
                t.text = p;
                advance(n);
                out.tokens.push_back(std::move(t));
                matched = true;
                break;
            }
        }
        if (!matched) {
            out.error = Diagnostic{
                pos, std::string("unexpected character '") + c + "'"};
            return out;
        }
    }

    Token end;
    end.kind = TokKind::End;
    end.pos = pos;
    out.tokens.push_back(std::move(end));
    return out;
}

} // namespace scamv::front
