/**
 * @file
 * scamv-fc: the SC frontend driver.
 *
 * Compiles `.sc` kernels and prints diagnostics, the AST dump, or the
 * lowered BIR assembly.  The BIR emitted by --emit-bir is exactly the
 * asm.hh syntax, so `scamv-fc --emit-bir k.sc` output can be fed back
 * through bir::assemble() unchanged (property-tested in
 * tests/test_front.cc).
 *
 * Usage:
 *   scamv-fc [--emit-ast] [--emit-bir] [--unroll-budget N] file.sc...
 *
 * With no emit flag, compiles each file and prints a one-line summary;
 * exit status is non-zero if any file fails.
 */

#include "front/front.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace scamv;

namespace {

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--emit-ast] [--emit-bir] "
                 "[--unroll-budget N] file.sc...\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    bool emitAst = false;
    bool emitBir = false;
    front::CompileOptions opts;
    std::vector<std::string> files;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--emit-ast")) {
            emitAst = true;
        } else if (!std::strcmp(argv[i], "--emit-bir")) {
            emitBir = true;
        } else if (!std::strcmp(argv[i], "--unroll-budget") &&
                   i + 1 < argc) {
            opts.unrollBudget = std::atol(argv[++i]);
            if (opts.unrollBudget <= 0) {
                std::fprintf(stderr, "scamv-fc: bad --unroll-budget\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--help")) {
            usage(argv[0]);
            return 0;
        } else if (argv[i][0] == '-') {
            usage(argv[0]);
            return 2;
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.empty()) {
        usage(argv[0]);
        return 2;
    }

    int rc = 0;
    for (const std::string &path : files) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "scamv-fc: cannot read %s\n",
                         path.c_str());
            rc = 1;
            continue;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        std::string src = ss.str();

        if (emitAst) {
            front::ParseResult p = front::parse(src);
            if (!p.ok()) {
                std::fprintf(stderr, "%s\n",
                             p.error->render(path).c_str());
                rc = 1;
                continue;
            }
            std::fputs(front::dumpAst(p.unit).c_str(), stdout);
            if (!emitBir)
                continue;
        }

        std::string stem = path;
        if (std::size_t slash = stem.find_last_of('/');
            slash != std::string::npos)
            stem = stem.substr(slash + 1);
        if (stem.size() > 3 && stem.ends_with(".sc"))
            stem = stem.substr(0, stem.size() - 3);
        front::CompileResult res = front::compile(src, stem, opts);
        if (!res.ok()) {
            std::fprintf(stderr, "%s\n", res.error->render(path).c_str());
            rc = 1;
            continue;
        }
        if (emitBir) {
            std::fputs(res.compiled->program.toString().c_str(), stdout);
        } else if (!emitAst) {
            std::printf("%s: ok (%zu instrs, %d loads/stores, %d "
                        "branches, %zu secret regs, %zu arrays)\n",
                        path.c_str(), res.compiled->program.size(),
                        res.compiled->program.memAccessCount(),
                        res.compiled->program.branchCount(),
                        res.compiled->secretRegs.size(),
                        res.compiled->arrays.size());
        }
    }
    return rc;
}
