/**
 * @file
 * SC corpus loading.
 *
 * Campaigns consume corpus programs by index, and every artifact
 * (metrics, coverage, database, findings) must be byte-identical
 * across threads, shards and the service — so corpus enumeration must
 * be deterministic.  Directory iteration order is filesystem-specific;
 * we sort by filename before compiling.
 *
 * A kernel that fails to read or compile warns and is skipped rather
 * than aborting the campaign: one bad file in a user corpus should
 * cost one program, not the run.
 */

#include "front/front.hh"

#include "support/logging.hh"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace scamv::front {

namespace {

std::optional<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** "sbox" from "examples/corpus/sbox.sc". */
std::string
stemOf(const std::string &path)
{
    return std::filesystem::path(path).stem().string();
}

} // namespace

std::optional<CompiledProgram>
loadProgramFile(const std::string &path, const CompileOptions &opts)
{
    std::optional<std::string> src = readFile(path);
    if (!src) {
        warn("front: cannot read program file " + path);
        return std::nullopt;
    }
    CompileResult res = compile(*src, stemOf(path), opts);
    if (!res.ok()) {
        warn("front: skipping " + res.error->render(path));
        return std::nullopt;
    }
    return std::move(res.compiled);
}

std::vector<CompiledProgram>
loadCorpusDir(const std::string &dir, const CompileOptions &opts)
{
    std::vector<CompiledProgram> out;
    std::error_code ec;
    std::vector<std::string> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sc")
            files.push_back(entry.path().string());
    }
    if (ec) {
        warn("front: cannot read corpus directory " + dir + ": " +
             ec.message());
        return out;
    }
    std::sort(files.begin(), files.end());
    for (const std::string &f : files)
        if (std::optional<CompiledProgram> p = loadProgramFile(f, opts))
            out.push_back(std::move(*p));
    return out;
}

std::vector<CompiledProgram>
corpusFromEnv(const CompileOptions &opts)
{
    std::vector<CompiledProgram> out;
    if (const char *dir = std::getenv("SCAMV_CORPUS_DIR"); dir && *dir)
        out = loadCorpusDir(dir, opts);
    if (const char *file = std::getenv("SCAMV_PROGRAM_FILE");
        file && *file)
        if (std::optional<CompiledProgram> p =
                loadProgramFile(file, opts))
            out.push_back(std::move(*p));
    return out;
}

} // namespace scamv::front
