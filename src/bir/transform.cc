#include "bir/transform.hh"

#include <map>
#include <vector>

#include "support/logging.hh"

namespace scamv::bir {

namespace {

/**
 * Collect up to opts.maxShadowInstrs copyable instructions along the
 * straight-line path starting at `start`.  Control-flow instructions
 * terminate the collection: nested speculation is bounded to one
 * branch level, matching the short Cortex-A53 transient window.
 */
std::vector<Instr>
collectShadow(const Program &p, int start,
              const SpecInstrumentOptions &opts)
{
    std::vector<Instr> shadow;
    const int n = static_cast<int>(p.size());
    for (int idx = start;
         idx < n && static_cast<int>(shadow.size()) < opts.maxShadowInstrs;
         ++idx) {
        const Instr &ins = p[idx];
        if (ins.kind == InstrKind::Branch || ins.kind == InstrKind::Jump ||
            ins.kind == InstrKind::Halt)
            break;
        if (ins.kind == InstrKind::Store && !opts.includeStores)
            continue;
        Instr copy = ins;
        copy.transient = true;
        shadow.push_back(copy);
    }
    return shadow;
}

} // namespace

Program
instrumentSpeculation(const Program &p, const SpecInstrumentOptions &opts)
{
    SCAMV_ASSERT(p.validate().empty(), "instrument: invalid program");
    const int n = static_cast<int>(p.size());

    // Two kinds of shadow blocks placed before original instruction
    // idx (idx == n appends at the end):
    //  - fall-through blocks: entered by the branch at idx-1 falling
    //    through (they speculate the taken side);
    //  - at-target blocks: entered only via a (re-targeted) branch
    //    (they speculate the fall-through side).  Architectural
    //    control flow arriving from above must *skip* them, so a jump
    //    over the block is emitted.
    std::map<int, std::vector<Instr>> insertFall;
    std::map<int, std::vector<Instr>> insertTarget;

    for (int i = 0; i < n; ++i) {
        const Instr &ins = p[i];
        if (ins.kind != InstrKind::Branch || ins.transient)
            continue;
        const int taken = ins.target;
        const int fall = i + 1;
        // Taken side speculatively executes the fall-through block.
        auto &at_taken = insertTarget[taken];
        auto from_fall = collectShadow(p, fall, opts);
        at_taken.insert(at_taken.end(), from_fall.begin(),
                        from_fall.end());
        // Fall-through side speculatively executes the taken block.
        auto &at_fall = insertFall[fall];
        auto from_taken = collectShadow(p, taken, opts);
        at_fall.insert(at_fall.end(), from_taken.begin(),
                       from_taken.end());
    }

    Program out(p.name() + "+spec");
    std::vector<int> newIndexOf(n + 1, -1);
    std::vector<int> targetRemap(n + 1, -1);
    // Jump-over instructions whose target (an original index) must be
    // fixed up once newIndexOf is known.
    std::vector<std::pair<int, int>> jumpFixups; // (out idx, orig idx)

    for (int idx = 0; idx <= n; ++idx) {
        auto fit = insertFall.find(idx);
        if (fit != insertFall.end())
            for (const Instr &s : fit->second)
                out.push(s);

        auto tit = insertTarget.find(idx);
        if (tit != insertTarget.end() && !tit->second.empty()) {
            // Skip marker for architectural fall-through from above.
            jumpFixups.emplace_back(static_cast<int>(out.size()), idx);
            out.push(Instr::jump(-1));
            targetRemap[idx] = static_cast<int>(out.size());
            for (const Instr &s : tit->second)
                out.push(s);
        } else {
            targetRemap[idx] = static_cast<int>(out.size());
        }

        if (idx < n) {
            newIndexOf[idx] = static_cast<int>(out.size());
            out.push(p[idx]);
        } else {
            newIndexOf[idx] = static_cast<int>(out.size());
        }
    }

    // Re-resolve control-flow targets of the original instructions.
    for (std::size_t j = 0; j < out.size(); ++j) {
        Instr &ins = out[j];
        if (ins.kind == InstrKind::Branch ||
            (ins.kind == InstrKind::Jump && ins.target != -1)) {
            SCAMV_ASSERT(ins.target >= 0 && ins.target <= n,
                         "instrument: target out of range");
            ins.target = targetRemap[ins.target];
        }
    }
    for (auto [out_idx, orig_idx] : jumpFixups)
        out[out_idx].target = newIndexOf[orig_idx];

    // Shadow instructions appended at the very end may leave the
    // program without a terminator; running off the end means halt,
    // make that explicit.
    if (out.empty() || (out[out.size() - 1].kind != InstrKind::Halt &&
                        out[out.size() - 1].kind != InstrKind::Jump))
        out.push(Instr::halt());

    SCAMV_ASSERT(out.validate().empty(), "instrument: produced invalid");
    return out;
}

Program
rewriteJumpsToCondBranches(const Program &p)
{
    Program out(p.name() + "+sls");
    for (const Instr &ins : p.instrs()) {
        if (ins.kind == InstrKind::Jump && !ins.transient) {
            // x0 == x0 is tautologically true: the branch is always
            // taken, preserving architectural semantics, but the
            // instrumentation now treats the straight-line successor
            // as a mutually-exclusive block.
            out.push(Instr::branch(CmpOp::Eq, 0, 0, ins.target));
        } else {
            out.push(ins);
        }
    }
    return out;
}

} // namespace scamv::bir
