#include "bir/bir.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "support/logging.hh"

namespace scamv::bir {

const char *
cmpName(CmpOp op)
{
    switch (op) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Ult: return "ltu";
      case CmpOp::Ule: return "leu";
      case CmpOp::Ugt: return "gtu";
      case CmpOp::Uge: return "geu";
      case CmpOp::Slt: return "lt";
      case CmpOp::Sle: return "le";
      case CmpOp::Sgt: return "gt";
      case CmpOp::Sge: return "ge";
    }
    return "?";
}

const char *
aluName(AluOp op)
{
    switch (op) {
      case AluOp::Add: return "add";
      case AluOp::Sub: return "sub";
      case AluOp::And: return "and";
      case AluOp::Orr: return "orr";
      case AluOp::Eor: return "eor";
      case AluOp::Lsl: return "lsl";
      case AluOp::Lsr: return "lsr";
      case AluOp::Asr: return "asr";
      case AluOp::Mul: return "mul";
    }
    return "?";
}

CmpOp
negateCmp(CmpOp op)
{
    switch (op) {
      case CmpOp::Eq: return CmpOp::Ne;
      case CmpOp::Ne: return CmpOp::Eq;
      case CmpOp::Ult: return CmpOp::Uge;
      case CmpOp::Ule: return CmpOp::Ugt;
      case CmpOp::Ugt: return CmpOp::Ule;
      case CmpOp::Uge: return CmpOp::Ult;
      case CmpOp::Slt: return CmpOp::Sge;
      case CmpOp::Sle: return CmpOp::Sgt;
      case CmpOp::Sgt: return CmpOp::Sle;
      case CmpOp::Sge: return CmpOp::Slt;
    }
    return CmpOp::Eq;
}

Instr
Instr::alu(AluOp op, Reg rd, Reg rn, Reg rm)
{
    Instr i;
    i.kind = InstrKind::Alu;
    i.aluOp = op;
    i.rd = rd;
    i.rn = rn;
    i.rm = rm;
    return i;
}

Instr
Instr::aluImm(AluOp op, Reg rd, Reg rn, std::uint64_t imm)
{
    Instr i;
    i.kind = InstrKind::Alu;
    i.aluOp = op;
    i.rd = rd;
    i.rn = rn;
    i.useImm = true;
    i.imm = imm;
    return i;
}

Instr
Instr::movImm(Reg rd, std::uint64_t imm)
{
    Instr i;
    i.kind = InstrKind::MovImm;
    i.rd = rd;
    i.imm = imm;
    i.useImm = true;
    return i;
}

Instr
Instr::load(Reg rd, Reg rn, Reg rm)
{
    Instr i;
    i.kind = InstrKind::Load;
    i.rd = rd;
    i.rn = rn;
    i.rm = rm;
    return i;
}

Instr
Instr::loadImm(Reg rd, Reg rn, std::uint64_t imm)
{
    Instr i;
    i.kind = InstrKind::Load;
    i.rd = rd;
    i.rn = rn;
    i.useImm = true;
    i.imm = imm;
    return i;
}

Instr
Instr::store(Reg rd, Reg rn, Reg rm)
{
    Instr i;
    i.kind = InstrKind::Store;
    i.rd = rd;
    i.rn = rn;
    i.rm = rm;
    return i;
}

Instr
Instr::storeImm(Reg rd, Reg rn, std::uint64_t imm)
{
    Instr i;
    i.kind = InstrKind::Store;
    i.rd = rd;
    i.rn = rn;
    i.useImm = true;
    i.imm = imm;
    return i;
}

Instr
Instr::branch(CmpOp op, Reg rn, Reg rm, int target)
{
    Instr i;
    i.kind = InstrKind::Branch;
    i.cmpOp = op;
    i.rn = rn;
    i.rm = rm;
    i.target = target;
    return i;
}

Instr
Instr::branchImm(CmpOp op, Reg rn, std::uint64_t imm, int target)
{
    Instr i;
    i.kind = InstrKind::Branch;
    i.cmpOp = op;
    i.rn = rn;
    i.useImm = true;
    i.imm = imm;
    i.target = target;
    return i;
}

Instr
Instr::jump(int target)
{
    Instr i;
    i.kind = InstrKind::Jump;
    i.target = target;
    return i;
}

Instr
Instr::halt()
{
    return Instr();
}

std::vector<Reg>
Instr::sourceRegs() const
{
    std::vector<Reg> srcs;
    switch (kind) {
      case InstrKind::Alu:
      case InstrKind::Load:
        srcs.push_back(rn);
        if (!useImm)
            srcs.push_back(rm);
        break;
      case InstrKind::Store:
        srcs.push_back(rd); // value register
        srcs.push_back(rn);
        if (!useImm)
            srcs.push_back(rm);
        break;
      case InstrKind::Branch:
        srcs.push_back(rn);
        if (!useImm)
            srcs.push_back(rm);
        break;
      case InstrKind::MovImm:
      case InstrKind::Jump:
      case InstrKind::Halt:
        break;
    }
    return srcs;
}

Reg
Instr::destReg() const
{
    switch (kind) {
      case InstrKind::Alu:
      case InstrKind::MovImm:
      case InstrKind::Load:
        return rd;
      default:
        return -1;
    }
}

std::string
Program::validate() const
{
    const int n = static_cast<int>(code.size());
    if (n == 0)
        return "empty program";
    auto regOk = [](Reg r) { return r >= 0 && r < kNumRegs; };
    for (int idx = 0; idx < n; ++idx) {
        const Instr &i = code[idx];
        std::ostringstream err;
        err << "instr " << idx << ": ";
        for (Reg r : i.sourceRegs()) {
            if (!regOk(r))
                return err.str() + "source register out of range";
        }
        if (i.destReg() != -1 && !regOk(i.destReg()))
            return err.str() + "destination register out of range";
        if (i.kind == InstrKind::Branch || i.kind == InstrKind::Jump) {
            if (i.target < 0 || i.target > n)
                return err.str() + "target out of range";
        }
    }
    const Instr &last = code.back();
    const bool terminates = last.kind == InstrKind::Halt ||
                            last.kind == InstrKind::Jump;
    if (!terminates)
        return "last instruction does not terminate";
    return "";
}

std::vector<Reg>
Program::usedRegs() const
{
    std::set<Reg> regs;
    for (const Instr &i : code) {
        for (Reg r : i.sourceRegs())
            regs.insert(r);
        if (i.destReg() != -1)
            regs.insert(i.destReg());
    }
    return {regs.begin(), regs.end()};
}

int
Program::branchCount() const
{
    int n = 0;
    for (const Instr &i : code)
        if (i.kind == InstrKind::Branch)
            ++n;
    return n;
}

int
Program::memAccessCount() const
{
    int n = 0;
    for (const Instr &i : code)
        if (i.isMemAccess() && !i.transient)
            ++n;
    return n;
}

std::string
Program::toString() const
{
    std::ostringstream out;
    // Labels for every branch/jump target.
    std::set<int> targets;
    for (const Instr &i : code)
        if (i.kind == InstrKind::Branch || i.kind == InstrKind::Jump)
            targets.insert(i.target);

    auto label = [&](int idx) {
        std::ostringstream l;
        l << "L" << idx;
        return l.str();
    };

    for (int idx = 0; idx <= static_cast<int>(code.size()); ++idx) {
        if (targets.count(idx))
            out << label(idx) << ":\n";
        if (idx == static_cast<int>(code.size()))
            break;
        const Instr &i = code[idx];
        out << "    ";
        if (i.transient)
            out << "@t ";
        switch (i.kind) {
          case InstrKind::Alu:
            out << aluName(i.aluOp) << " x" << i.rd << ", x" << i.rn
                << ", ";
            if (i.useImm)
                out << "#" << i.imm;
            else
                out << "x" << i.rm;
            break;
          case InstrKind::MovImm:
            out << "mov x" << i.rd << ", #" << i.imm;
            break;
          case InstrKind::Load:
            out << "ldr x" << i.rd << ", [x" << i.rn;
            if (i.useImm) {
                if (i.imm)
                    out << ", #" << i.imm;
            } else {
                out << ", x" << i.rm;
            }
            out << "]";
            break;
          case InstrKind::Store:
            out << "str x" << i.rd << ", [x" << i.rn;
            if (i.useImm) {
                if (i.imm)
                    out << ", #" << i.imm;
            } else {
                out << ", x" << i.rm;
            }
            out << "]";
            break;
          case InstrKind::Branch:
            out << "b." << cmpName(i.cmpOp) << " x" << i.rn << ", ";
            if (i.useImm)
                out << "#" << i.imm;
            else
                out << "x" << i.rm;
            out << ", " << label(i.target);
            break;
          case InstrKind::Jump:
            out << "b " << label(i.target);
            break;
          case InstrKind::Halt:
            out << "ret";
            break;
        }
        out << "\n";
    }
    return out.str();
}

} // namespace scamv::bir
