#include "bir/asm.hh"

#include <cctype>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace scamv::bir {

namespace {

/** Minimal recursive-descent tokenizer over one line. */
class LineParser
{
  public:
    explicit LineParser(const std::string &line) : s(line) {}

    void
    skipWs()
    {
        while (pos < s.size() && std::isspace(static_cast<unsigned char>(
                                     s[pos])))
            ++pos;
    }

    bool
    eof()
    {
        skipWs();
        return pos >= s.size();
    }

    bool
    eat(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    /** Read an identifier-like word ([A-Za-z_.][A-Za-z0-9_.]*). */
    std::string
    word()
    {
        skipWs();
        std::size_t start = pos;
        while (pos < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[pos])) ||
                s[pos] == '_' || s[pos] == '.'))
            ++pos;
        return s.substr(start, pos - start);
    }

    /** Parse a register "xN". @return register or nullopt. */
    std::optional<Reg>
    reg()
    {
        skipWs();
        std::size_t save = pos;
        std::string w = word();
        if (w.size() >= 2 && (w[0] == 'x' || w[0] == 'X')) {
            char *end = nullptr;
            long v = std::strtol(w.c_str() + 1, &end, 10);
            if (end && *end == '\0' && v >= 0 && v < kNumRegs)
                return static_cast<Reg>(v);
        }
        pos = save;
        return std::nullopt;
    }

    /** Parse "#imm" with decimal or 0x hex. */
    std::optional<std::uint64_t>
    imm()
    {
        skipWs();
        std::size_t save = pos;
        if (!eat('#')) {
            pos = save;
            return std::nullopt;
        }
        skipWs();
        bool negate = false;
        if (pos < s.size() && s[pos] == '-') {
            negate = true;
            ++pos;
        }
        if (pos >= s.size() ||
            !std::isdigit(static_cast<unsigned char>(s[pos]))) {
            pos = save;
            return std::nullopt;
        }
        char *end = nullptr;
        std::uint64_t v = std::strtoull(s.c_str() + pos, &end, 0);
        pos = end - s.c_str();
        return negate ? (~v + 1) : v;
    }

  private:
    const std::string &s;
    std::size_t pos = 0;
};

std::optional<CmpOp>
parseCmp(const std::string &suffix)
{
    if (suffix == "eq") return CmpOp::Eq;
    if (suffix == "ne") return CmpOp::Ne;
    if (suffix == "ltu") return CmpOp::Ult;
    if (suffix == "leu") return CmpOp::Ule;
    if (suffix == "gtu") return CmpOp::Ugt;
    if (suffix == "geu") return CmpOp::Uge;
    if (suffix == "lt") return CmpOp::Slt;
    if (suffix == "le") return CmpOp::Sle;
    if (suffix == "gt") return CmpOp::Sgt;
    if (suffix == "ge") return CmpOp::Sge;
    return std::nullopt;
}

std::optional<AluOp>
parseAlu(const std::string &mnem)
{
    if (mnem == "add") return AluOp::Add;
    if (mnem == "sub") return AluOp::Sub;
    if (mnem == "and") return AluOp::And;
    if (mnem == "orr") return AluOp::Orr;
    if (mnem == "eor") return AluOp::Eor;
    if (mnem == "lsl") return AluOp::Lsl;
    if (mnem == "lsr") return AluOp::Lsr;
    if (mnem == "asr") return AluOp::Asr;
    if (mnem == "mul") return AluOp::Mul;
    return std::nullopt;
}

std::string
stripComment(const std::string &line)
{
    std::size_t c1 = line.find(';');
    std::size_t c2 = line.find("//");
    std::size_t cut = std::min(c1 == std::string::npos ? line.size() : c1,
                               c2 == std::string::npos ? line.size() : c2);
    return line.substr(0, cut);
}

} // namespace

AsmResult
assemble(const std::string &source, const std::string &name)
{
    AsmResult result;
    result.program.setName(name);

    struct Pending {
        int instrIdx;
        std::string label;
        int line;
    };
    std::map<std::string, int> labels;
    std::vector<Pending> fixups;

    std::istringstream stream(source);
    std::string raw;
    int lineNo = 0;
    auto fail = [&](const std::string &msg) {
        std::ostringstream err;
        err << "line " << lineNo << ": " << msg;
        result.error = err.str();
        return result;
    };

    while (std::getline(stream, raw)) {
        ++lineNo;
        std::string line = stripComment(raw);
        LineParser p(line);
        if (p.eof())
            continue;

        bool transient = false;
        // Optional transient marker.
        {
            LineParser probe(line);
            if (probe.eat('@')) {
                std::string t = probe.word();
                if (t == "t") {
                    transient = true;
                    line = line.substr(line.find("@t") + 2);
                }
            }
        }
        LineParser q(line);
        if (q.eof())
            continue;

        std::string mnem = q.word();
        if (mnem.empty())
            return fail("cannot parse mnemonic");

        // Label definition?
        if (q.eat(':')) {
            if (labels.count(mnem))
                return fail("duplicate label '" + mnem + "'");
            labels[mnem] = static_cast<int>(result.program.size());
            if (q.eof())
                continue;
            mnem = q.word(); // instruction on the same line after label
            if (mnem.empty())
                return fail("cannot parse mnemonic after label");
        }

        Instr instr;
        if (mnem == "ret") {
            instr = Instr::halt();
        } else if (mnem == "mov") {
            auto rd = q.reg();
            if (!rd || !q.eat(','))
                return fail("mov: expected 'mov xD, #imm'");
            auto v = q.imm();
            if (!v)
                return fail("mov: expected immediate");
            instr = Instr::movImm(*rd, *v);
        } else if (mnem == "ldr" || mnem == "str") {
            auto rd = q.reg();
            if (!rd || !q.eat(',') || !q.eat('['))
                return fail(mnem + ": expected '" + mnem + " xD, [xN...'");
            auto rn = q.reg();
            if (!rn)
                return fail(mnem + ": expected base register");
            Instr i;
            if (q.eat(',')) {
                if (auto rm = q.reg()) {
                    i = mnem == "ldr" ? Instr::load(*rd, *rn, *rm)
                                      : Instr::store(*rd, *rn, *rm);
                } else if (auto v = q.imm()) {
                    i = mnem == "ldr" ? Instr::loadImm(*rd, *rn, *v)
                                      : Instr::storeImm(*rd, *rn, *v);
                } else {
                    return fail(mnem + ": bad offset");
                }
            } else {
                i = mnem == "ldr" ? Instr::loadImm(*rd, *rn, 0)
                                  : Instr::storeImm(*rd, *rn, 0);
            }
            if (!q.eat(']'))
                return fail(mnem + ": missing ']'");
            instr = i;
        } else if (mnem == "b") {
            std::string lbl = q.word();
            if (lbl.empty())
                return fail("b: expected label");
            instr = Instr::jump(-1);
            fixups.push_back(
                {static_cast<int>(result.program.size()), lbl, lineNo});
        } else if (mnem.rfind("b.", 0) == 0) {
            auto cmp = parseCmp(mnem.substr(2));
            if (!cmp)
                return fail("unknown condition '" + mnem + "'");
            auto rn = q.reg();
            if (!rn || !q.eat(','))
                return fail("branch: expected first operand");
            Instr i;
            if (auto rm = q.reg()) {
                i = Instr::branch(*cmp, *rn, *rm, -1);
            } else if (auto v = q.imm()) {
                i = Instr::branchImm(*cmp, *rn, *v, -1);
            } else {
                return fail("branch: bad second operand");
            }
            if (!q.eat(','))
                return fail("branch: expected ', label'");
            std::string lbl = q.word();
            if (lbl.empty())
                return fail("branch: expected label");
            fixups.push_back(
                {static_cast<int>(result.program.size()), lbl, lineNo});
            instr = i;
        } else if (auto alu = parseAlu(mnem)) {
            auto rd = q.reg();
            if (!rd || !q.eat(','))
                return fail(mnem + ": expected destination");
            auto rn = q.reg();
            if (!rn || !q.eat(','))
                return fail(mnem + ": expected first source");
            if (auto rm = q.reg()) {
                instr = Instr::alu(*alu, *rd, *rn, *rm);
            } else if (auto v = q.imm()) {
                instr = Instr::aluImm(*alu, *rd, *rn, *v);
            } else {
                return fail(mnem + ": bad second source");
            }
        } else {
            return fail("unknown mnemonic '" + mnem + "'");
        }

        if (!q.eof())
            return fail("trailing garbage");
        instr.transient = transient;
        result.program.push(instr);
    }

    for (const Pending &f : fixups) {
        auto it = labels.find(f.label);
        if (it == labels.end()) {
            std::ostringstream err;
            err << "line " << f.line << ": undefined label '" << f.label
                << "'";
            result.error = err.str();
            return result;
        }
        result.program[f.instrIdx].target = it->second;
    }

    std::string v = result.program.validate();
    if (!v.empty())
        result.error = "validation: " + v;
    return result;
}

} // namespace scamv::bir
