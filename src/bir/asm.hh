/**
 * @file
 * Textual assembler for the BIR-like IR.
 *
 * This plays the role of the HolBA binary transpiler front-end in the
 * original pipeline: it lets examples and tests define programs in a
 * compact, ARM-flavoured syntax and round-trips with
 * Program::toString().
 *
 * Grammar (one instruction per line, `;` or `//` comments):
 *
 *     label:                     ; any identifier followed by ':'
 *     ldr xD, [xN]               ; load, zero offset
 *     ldr xD, [xN, xM]           ; load, register offset
 *     ldr xD, [xN, #imm]         ; load, immediate offset
 *     str xD, [xN, ...]          ; store (same addressing forms)
 *     add|sub|and|orr|eor|lsl|lsr|asr|mul xD, xN, xM|#imm
 *     mov xD, #imm
 *     b.eq|ne|lt|le|gt|ge|ltu|leu|gtu|geu xN, xM|#imm, label
 *     b label                    ; unconditional direct jump
 *     ret                        ; halt
 *
 * A leading `@t` marks a transient (shadow) instruction; the
 * assembler accepts it so instrumented programs also round-trip.
 */

#ifndef SCAMV_BIR_ASM_HH
#define SCAMV_BIR_ASM_HH

#include <optional>
#include <string>

#include "bir/bir.hh"

namespace scamv::bir {

/** Result of assembling a source string. */
struct AsmResult {
    Program program;
    std::string error; ///< empty on success, else "line N: message"

    bool ok() const { return error.empty(); }
};

/** Assemble source text into a Program. */
AsmResult assemble(const std::string &source,
                   const std::string &name = "asm");

} // namespace scamv::bir

#endif // SCAMV_BIR_ASM_HH
