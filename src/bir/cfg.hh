/**
 * @file
 * Control-flow graph over BIR programs.
 *
 * Used by the speculative instrumentation transform to find the
 * mutually-exclusive branch blocks of Section 4.2.2, and by tests to
 * check structural properties of generated programs.
 */

#ifndef SCAMV_BIR_CFG_HH
#define SCAMV_BIR_CFG_HH

#include <vector>

#include "bir/bir.hh"

namespace scamv::bir {

/** A basic block: instructions [first, last] inclusive. */
struct BasicBlock {
    int first = 0;
    int last = 0;
    /** Successor block ids (0, 1 or 2 entries). */
    std::vector<int> succs;
};

/** Control-flow graph of a program. */
class Cfg
{
  public:
    /** Build the CFG of p (p must validate()). */
    explicit Cfg(const Program &p);

    const std::vector<BasicBlock> &blocks() const { return bbs; }

    /** @return block id containing instruction idx (-1 if none). */
    int blockAt(int idx) const;

    /** @return id of the block whose first instruction is idx (-1). */
    int blockStartingAt(int idx) const;

    /** @return true if the CFG has no cycles (templates are acyclic). */
    bool acyclic() const;

    /** @return number of distinct paths entry -> exit (acyclic only). */
    std::uint64_t pathCount() const;

  private:
    std::vector<BasicBlock> bbs;
    int nInstr;
};

} // namespace scamv::bir

#endif // SCAMV_BIR_CFG_HH
