#include "bir/cfg.hh"

#include <algorithm>
#include <functional>
#include <set>

#include "support/logging.hh"

namespace scamv::bir {

Cfg::Cfg(const Program &p)
{
    nInstr = static_cast<int>(p.size());
    SCAMV_ASSERT(nInstr > 0, "CFG of empty program");

    std::set<int> leaders;
    leaders.insert(0);
    for (int i = 0; i < nInstr; ++i) {
        const Instr &ins = p[i];
        if (ins.kind == InstrKind::Branch || ins.kind == InstrKind::Jump) {
            if (ins.target < nInstr)
                leaders.insert(ins.target);
            if (i + 1 < nInstr)
                leaders.insert(i + 1);
        }
    }

    std::vector<int> sorted(leaders.begin(), leaders.end());
    for (std::size_t b = 0; b < sorted.size(); ++b) {
        BasicBlock bb;
        bb.first = sorted[b];
        bb.last = (b + 1 < sorted.size() ? sorted[b + 1] : nInstr) - 1;
        bbs.push_back(bb);
    }

    auto blockOfLeader = [&](int idx) {
        auto it = std::lower_bound(sorted.begin(), sorted.end(), idx);
        if (it == sorted.end() || *it != idx)
            return -1;
        return static_cast<int>(it - sorted.begin());
    };

    for (std::size_t b = 0; b < bbs.size(); ++b) {
        const Instr &last = p[bbs[b].last];
        switch (last.kind) {
          case InstrKind::Branch:
            if (last.target < nInstr)
                bbs[b].succs.push_back(blockOfLeader(last.target));
            if (bbs[b].last + 1 < nInstr)
                bbs[b].succs.push_back(blockOfLeader(bbs[b].last + 1));
            break;
          case InstrKind::Jump:
            if (last.target < nInstr)
                bbs[b].succs.push_back(blockOfLeader(last.target));
            break;
          case InstrKind::Halt:
            break;
          default:
            // Fallthrough into the next block.
            if (bbs[b].last + 1 < nInstr)
                bbs[b].succs.push_back(blockOfLeader(bbs[b].last + 1));
            break;
        }
    }
}

int
Cfg::blockAt(int idx) const
{
    for (std::size_t b = 0; b < bbs.size(); ++b)
        if (idx >= bbs[b].first && idx <= bbs[b].last)
            return static_cast<int>(b);
    return -1;
}

int
Cfg::blockStartingAt(int idx) const
{
    for (std::size_t b = 0; b < bbs.size(); ++b)
        if (bbs[b].first == idx)
            return static_cast<int>(b);
    return -1;
}

bool
Cfg::acyclic() const
{
    enum { White, Grey, Black };
    std::vector<int> color(bbs.size(), White);
    bool cycle = false;
    std::function<void(int)> dfs = [&](int b) {
        color[b] = Grey;
        for (int s : bbs[b].succs) {
            if (s < 0)
                continue;
            if (color[s] == Grey)
                cycle = true;
            else if (color[s] == White)
                dfs(s);
        }
        color[b] = Black;
    };
    dfs(0);
    return !cycle;
}

std::uint64_t
Cfg::pathCount() const
{
    if (!acyclic())
        return 0;
    std::vector<std::uint64_t> memo(bbs.size(), 0);
    std::vector<bool> done(bbs.size(), false);
    std::function<std::uint64_t(int)> count = [&](int b) -> std::uint64_t {
        if (done[b])
            return memo[b];
        done[b] = true;
        if (bbs[b].succs.empty()) {
            memo[b] = 1;
            return 1;
        }
        std::uint64_t n = 0;
        for (int s : bbs[b].succs)
            if (s >= 0)
                n += count(s);
        memo[b] = n ? n : 1;
        return memo[b];
    };
    return count(0);
}

} // namespace scamv::bir
