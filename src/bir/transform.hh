/**
 * @file
 * Speculative-instrumentation program transforms (Sections 4.2.2, 6.5).
 *
 * `instrumentSpeculation` implements the shadow-statement inlining of
 * Fig. 4: for every conditional branch with mutually-exclusive blocks
 * A (taken) and B (fall-through), the statements of B are prepended to
 * A as *transient* instructions and vice versa.  Transient
 * instructions operate on a shadow copy of the register file (the
 * symbolic executor and the hardware model both implement this
 * semantics), so the transform itself only copies instructions and
 * sets their `transient` flag.
 *
 * `rewriteJumpsToCondBranches` implements the Mspec' trick of
 * Section 6.5: unconditional direct jumps become tautologically-true
 * conditional branches so the same instrumentation also exposes
 * straight-line speculation.
 */

#ifndef SCAMV_BIR_TRANSFORM_HH
#define SCAMV_BIR_TRANSFORM_HH

#include "bir/bir.hh"

namespace scamv::bir {

/** Options bounding what may be speculated (Section 5.1). */
struct SpecInstrumentOptions {
    /** Maximum shadow instructions copied per branch side. */
    int maxShadowInstrs = 16;
    /** If true, shadow stores are copied too (their address observed). */
    bool includeStores = true;
};

/**
 * Add shadow (transient) instructions for every conditional branch.
 *
 * The input program must validate() and be acyclic.  The result
 * contains the original instructions in order, with shadow blocks
 * inserted at each branch destination and fall-through point; all
 * branch targets are re-resolved.
 */
Program instrumentSpeculation(const Program &p,
                              const SpecInstrumentOptions &opts = {});

/**
 * Rewrite `b label` into `b.eq x0, x0, label` (always taken).
 * Used to build Mspec' for straight-line speculation experiments.
 */
Program rewriteJumpsToCondBranches(const Program &p);

} // namespace scamv::bir

#endif // SCAMV_BIR_TRANSFORM_HH
