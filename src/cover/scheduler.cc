#include "cover/scheduler.hh"

#include <algorithm>

namespace scamv::cover {

namespace {

/** splitmix64 finalizer — the same avalanche as deriveProgramSeed
 *  and the fault injector, so tie-breaks are seed-stable but
 *  uncorrelated with either stream. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
tieBreak(std::uint64_t seed, int round, int cls)
{
    return mix(seed ^ (static_cast<std::uint64_t>(round) << 32) ^
               static_cast<std::uint64_t>(cls));
}

/** A class is exhausted when it keeps drawing unsat: enough draws,
 *  never a hit. */
bool
exhausted(const ClassStats &s, const SchedulerConfig &cfg)
{
    return s.hits == 0 && s.draws >= cfg.maxClassDraws;
}

/** Universe for a template cell: what the ledger recorded, else the
 *  campaign geometry. */
std::uint64_t
universeOf(const TemplateCoverage &cell, std::uint64_t numSets)
{
    return cell.universe ? cell.universe : numSets;
}

bool
saturatedFor(const TemplateCoverage &cell, std::uint64_t numSets,
             const SchedulerConfig &cfg)
{
    std::uint64_t universe = universeOf(cell, numSets);
    if (universe == 0)
        return false;
    for (std::uint64_t cls = 0; cls < universe; ++cls) {
        auto it = cell.classes.find(static_cast<int>(cls));
        if (it == cell.classes.end())
            return false; // never drawn: neither covered nor exhausted
        if (it->second.hits == 0 && !exhausted(it->second, cfg))
            return false;
    }
    return true;
}

} // namespace

RoundPlan
planRound(const Snapshot &snap, const std::string &templ,
          std::uint64_t campaign_seed, int round, std::uint64_t numSets,
          const SchedulerConfig &cfg)
{
    RoundPlan plan;
    if (numSets == 0)
        return plan;

    static const TemplateCoverage kEmpty;
    auto it = snap.templates.find(templ);
    const TemplateCoverage &cell =
        it == snap.templates.end() ? kEmpty : it->second;
    std::uint64_t universe = universeOf(cell, numSets);

    struct Key {
        int cls;
        std::int64_t hits;
        std::int64_t draws;
        std::uint64_t tie;
    };
    std::vector<Key> keys;
    keys.reserve(universe);
    for (std::uint64_t u = 0; u < universe; ++u) {
        int cls = static_cast<int>(u);
        ClassStats stats;
        auto c = cell.classes.find(cls);
        if (c != cell.classes.end())
            stats = c->second;
        if (exhausted(stats, cfg))
            continue;
        keys.push_back({cls, stats.hits, stats.draws,
                        tieBreak(campaign_seed, round, cls)});
    }
    std::sort(keys.begin(), keys.end(), [](const Key &a, const Key &b) {
        if (a.hits != b.hits)
            return a.hits < b.hits;
        if (a.draws != b.draws)
            return a.draws < b.draws;
        if (a.tie != b.tie)
            return a.tie < b.tie;
        return a.cls < b.cls;
    });
    plan.classOrder.reserve(keys.size());
    for (const Key &k : keys)
        plan.classOrder.push_back(k.cls);
    plan.saturated = saturatedFor(cell, numSets, cfg);
    return plan;
}

int
planClass(const RoundPlan &plan, int slot, int draw, int stride)
{
    if (plan.classOrder.empty())
        return -1;
    if (stride < 1)
        stride = 1;
    std::size_t n = plan.classOrder.size();
    std::size_t idx = (static_cast<std::size_t>(slot) +
                       static_cast<std::size_t>(draw) *
                           static_cast<std::size_t>(stride)) % n;
    return plan.classOrder[idx];
}

int
planClassAllowed(const RoundPlan &plan, int slot, int &draw, int stride,
                 const std::vector<bool> &allowed, std::int64_t *skipped)
{
    // One lap of the class order is enough: planClass cycles with
    // period <= classOrder.size() for any (slot, stride).
    const std::size_t lap = plan.classOrder.size();
    for (std::size_t i = 0; i < lap; ++i) {
        const int cls = planClass(plan, slot, draw, stride);
        if (cls < 0)
            break;
        const bool ok =
            cls < static_cast<int>(allowed.size()) &&
            allowed[static_cast<std::size_t>(cls)];
        if (ok) {
            ++draw;
            return cls;
        }
        ++draw;
        if (skipped)
            ++*skipped;
    }
    // No reachable class in the plan: fall back to one unfiltered
    // draw so the caller's behaviour matches the unscreened path.
    return planClass(plan, slot, draw++, stride);
}

std::vector<double>
templateWeights(const Snapshot &snap,
                const std::vector<std::string> &templates,
                std::uint64_t numSets, const SchedulerConfig &cfg)
{
    std::vector<double> weights;
    weights.reserve(templates.size());
    for (const std::string &templ : templates) {
        auto it = snap.templates.find(templ);
        if (it == snap.templates.end()) {
            // Nothing known: maximum urgency.
            weights.push_back(2.0);
            continue;
        }
        const TemplateCoverage &cell = it->second;
        std::uint64_t universe = universeOf(cell, numSets);
        bool decided = false;
        for (const auto &[model, v] : cell.models)
            decided |= v.counterexamples > 0;
        if (universe && saturatedFor(cell, numSets, cfg)) {
            // Class universe saturated: only worth revisiting while
            // the validation question is still open.
            weights.push_back(decided ? 0.0 : cfg.decidedWeight);
            continue;
        }
        double uncovered = 1.0;
        if (universe) {
            uncovered = static_cast<double>(
                            static_cast<std::int64_t>(universe) -
                            cell.coveredClasses()) /
                        static_cast<double>(universe);
            if (uncovered < 0.0)
                uncovered = 0.0;
        }
        double w = 1.0 + uncovered;
        if (decided)
            w *= cfg.decidedWeight;
        weights.push_back(w);
    }
    return weights;
}

std::vector<int>
weightedAssignment(const std::vector<double> &weights, int slots)
{
    std::vector<int> order;
    if (weights.empty() || slots <= 0)
        return order;

    double total = 0.0;
    for (double w : weights)
        total += w > 0.0 ? w : 0.0;
    std::vector<double> quota(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        quota[i] = total > 0.0
                       ? slots * (weights[i] > 0.0 ? weights[i] : 0.0) /
                             total
                       : static_cast<double>(slots) / weights.size();
    }

    // Largest-remainder apportionment, ties to the lower index.
    std::vector<int> count(weights.size());
    int assigned = 0;
    for (std::size_t i = 0; i < quota.size(); ++i) {
        count[i] = static_cast<int>(quota[i]);
        assigned += count[i];
    }
    std::vector<std::size_t> by_rem(quota.size());
    for (std::size_t i = 0; i < by_rem.size(); ++i)
        by_rem[i] = i;
    std::stable_sort(by_rem.begin(), by_rem.end(),
                     [&](std::size_t a, std::size_t b) {
                         return quota[a] - count[a] > quota[b] - count[b];
                     });
    for (std::size_t k = 0; assigned < slots; k = (k + 1) % by_rem.size()) {
        ++count[by_rem[k]];
        ++assigned;
    }

    // Interleave round-robin so no prefix of the round is
    // single-template.
    order.reserve(slots);
    while (static_cast<int>(order.size()) < slots) {
        for (std::size_t i = 0; i < count.size(); ++i) {
            if (count[i] > 0) {
                --count[i];
                order.push_back(static_cast<int>(i));
            }
        }
    }
    return order;
}

int
roundSizeFor(int programs)
{
    // Replan every few programs on small campaigns, amortize planning
    // on big ones.  Thread count must never appear here: the round
    // partition is part of the deterministic schedule.
    int size = programs / 5;
    if (size < 2)
        size = 2;
    if (size > 16)
        size = 16;
    return size;
}

} // namespace scamv::cover
