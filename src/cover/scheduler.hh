/**
 * @file
 * Adaptive campaign scheduler: deterministic round planning over
 * coverage-ledger snapshots.
 *
 * With `SCAMV_SCHEDULE=adaptive` the pipeline spends its program
 * budget in rounds instead of one uniform batch.  Before each round
 * the scheduler reads the ledger and builds a `RoundPlan` per
 * template:
 *
 *  - **Least-covered-first class order.**  The `Mline` redraw list is
 *    every non-exhausted class of the universe sorted by (hits asc,
 *    draws asc, seeded tie-break): the classes the campaign has seen
 *    least come first, replacing the uniform random draw.  Ties are
 *    broken by a splitmix64 hash of (campaign seed, round, class), so
 *    the order is a pure function of campaign coordinates —
 *    byte-identical for any thread count — while still varying across
 *    rounds.
 *  - **Saturation early-stop.**  A class is *exhausted* after
 *    `maxClassDraws` hitless draws (its constraint keeps coming back
 *    unsatisfiable for this template's relations).  When every class
 *    of the universe is covered or exhausted the plan is `saturated`
 *    and the pipeline stops spending programs on the template.
 *  - **Template weighting.**  For multi-template campaigns,
 *    `templateWeights` steers the remaining budget toward templates
 *    that are undecided (no counterexample yet) and low-coverage;
 *    saturated-and-decided templates get zero weight.
 *    `weightedAssignment` turns the weights into a deterministic
 *    per-slot template choice (largest-remainder apportionment).
 *
 * Program tasks consume a plan through `planClass`: slot `s`'s `k`-th
 * draw walks the class order stratified by slot, so concurrent
 * programs of one round target *different* least-covered classes
 * instead of piling onto the same one.  Everything here is a pure
 * function of (snapshot, seed, round); no RNG state is shared with
 * the program tasks, which is what keeps adaptive campaigns
 * deterministic (see DESIGN.md §10).
 */

#ifndef SCAMV_COVER_SCHEDULER_HH
#define SCAMV_COVER_SCHEDULER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cover/ledger.hh"

namespace scamv::cover {

/** Scheduler tunables. */
struct SchedulerConfig {
    /** Hitless draws before a class counts as exhausted. */
    std::int64_t maxClassDraws = 3;
    /** Weight multiplier for templates that already found a
     *  counterexample (decided: budget is better spent elsewhere). */
    double decidedWeight = 0.25;
};

/** One round's class-selection plan for one template. */
struct RoundPlan {
    /** Redraw list, least-covered-first; empty when the template has
     *  no Mline universe (Pc-only) or everything is exhausted. */
    std::vector<int> classOrder;
    /** Every class of the universe is covered or exhausted. */
    bool saturated = false;
};

/**
 * Plan one round for `templ` from a ledger snapshot.  Pure function
 * of its arguments; `numSets` is the class universe (0 disables line
 * planning and never saturates).
 */
RoundPlan planRound(const Snapshot &snap, const std::string &templ,
                    std::uint64_t campaign_seed, int round,
                    std::uint64_t numSets,
                    const SchedulerConfig &cfg = {});

/**
 * The class slot `slot`'s `draw`-th coverage draw should target:
 * walks `plan.classOrder` starting at `slot`, striding by `stride`
 * (the round size), so the programs of one round fan out over
 * distinct least-covered classes.  @return -1 on an empty plan.
 */
int planClass(const RoundPlan &plan, int slot, int draw, int stride);

/**
 * `planClass`, filtered by the triage pre-screen's class mask: walks
 * up to one full lap of `plan.classOrder` (advancing `draw` past the
 * skipped candidates) and @return the first planned class `allowed`,
 * so classes a program provably cannot touch don't consume its
 * coverage draws.  Skipped candidates are tallied into `*skipped`
 * (when non-null).  When no allowed class exists in the order — or the
 * mask is empty — falls back to a single unfiltered `planClass` draw,
 * so the caller always observes `draw` advance by at least one.
 */
int planClassAllowed(const RoundPlan &plan, int slot, int &draw,
                     int stride, const std::vector<bool> &allowed,
                     std::int64_t *skipped);

/**
 * Per-template budget weights for the next round, in `templates`
 * order: 1 + uncovered-fraction for undecided templates, scaled by
 * `cfg.decidedWeight` once a template has a counterexample, zero once
 * it is saturated (covered or exhausted universe).  Templates absent
 * from the snapshot get the maximum weight (nothing known yet).
 */
std::vector<double> templateWeights(const Snapshot &snap,
                                    const std::vector<std::string> &templates,
                                    std::uint64_t numSets,
                                    const SchedulerConfig &cfg = {});

/**
 * Apportion `slots` round slots over `weights` deterministically
 * (largest remainder, ties to the lower index) and @return the
 * template index for each slot, interleaved round-robin so no prefix
 * of the round is single-template.  All-zero weights fall back to
 * uniform weights.
 */
std::vector<int> weightedAssignment(const std::vector<double> &weights,
                                    int slots);

/**
 * Round size for a campaign of `programs` programs: a pure function
 * of the budget (never of the thread count — the round partition must
 * be identical for any SCAMV_THREADS).  Small campaigns plan every
 * few programs; large ones amortize planning over bigger rounds.
 */
int roundSizeFor(int programs);

} // namespace scamv::cover

#endif // SCAMV_COVER_SCHEDULER_HH
