#include "cover/ledger.hh"

#include <cstdio>
#include <fstream>

#include "support/faults.hh"

namespace scamv::cover {

std::int64_t
TemplateCoverage::coveredClasses() const
{
    std::int64_t n = 0;
    for (const auto &[cls, stats] : classes)
        n += stats.hits > 0;
    return n;
}

bool
ProgramDelta::empty() const
{
    return classes.empty() && pathPairs.empty() &&
           verdicts == VerdictCounts{};
}

void
ProgramDelta::countDraw(int cls)
{
    if (cls >= 0)
        ++classes[cls].draws;
}

void
ProgramDelta::countHit(int cls)
{
    if (cls >= 0)
        ++classes[cls].hits;
}

void
ProgramDelta::chargeSolver(int cls, double seconds)
{
    if (cls >= 0)
        classes[cls].solverSeconds += seconds;
}

bool
CoverageLedger::merge(const ProgramDelta &delta)
{
    // Nothing to account (e.g. a failed program task): trivially ok,
    // and no fault attempt is spent on it.
    if (delta.empty())
        return true;
    // Injected accounting failure: the delta is lost before it
    // reaches the ledger, as if a shared store rejected the update.
    if (faults::maybeInject(faults::Site::CoverLedgerMerge))
        return false;
    std::lock_guard<std::mutex> lock(m);
    TemplateCoverage &cell = state.templates[delta.templ];
    if (delta.universe > cell.universe)
        cell.universe = delta.universe;
    for (const auto &[cls, stats] : delta.classes) {
        ClassStats &into = cell.classes[cls];
        into.hits += stats.hits;
        into.draws += stats.draws;
        into.solverSeconds += stats.solverSeconds;
    }
    for (const auto &[id, n] : delta.pathPairs)
        cell.pathPairs[id] += n;
    VerdictCounts &v = cell.models[delta.model];
    v.experiments += delta.verdicts.experiments;
    v.counterexamples += delta.verdicts.counterexamples;
    v.inconclusive += delta.verdicts.inconclusive;
    v.indistinguishable += delta.verdicts.indistinguishable;
    return true;
}

Snapshot
CoverageLedger::snapshot() const
{
    std::lock_guard<std::mutex> lock(m);
    return state;
}

void
CoverageLedger::clear()
{
    std::lock_guard<std::mutex> lock(m);
    state = Snapshot{};
}

namespace {

std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonString(const std::string &s)
{
    // Template/model/path-id names never contain characters needing
    // escapes beyond quotes and backslashes; handle those two anyway.
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

std::string
toJson(const Snapshot &snap)
{
    std::string out;
    out += "{\n  \"schema\": \"scamv-coverage-v1\",\n";
    out += "  \"templates\": {";
    std::size_t t_i = 0;
    for (const auto &[templ, cell] : snap.templates) {
        out += t_i++ ? ",\n    " : "\n    ";
        out += jsonString(templ) + ": {\n";
        out += "      \"universe\": " + std::to_string(cell.universe) +
               ",\n";
        out += "      \"covered\": " +
               std::to_string(cell.coveredClasses()) + ",\n";

        out += "      \"classes\": {";
        std::size_t i = 0;
        for (const auto &[cls, stats] : cell.classes) {
            out += i++ ? ",\n        " : "\n        ";
            out += '"';
            out += std::to_string(cls);
            out += "\": {\"hits\": " + std::to_string(stats.hits) +
                   ", \"draws\": " + std::to_string(stats.draws) +
                   ", \"solver_s\": " + jsonDouble(stats.solverSeconds) +
                   "}";
        }
        out += cell.classes.empty() ? "},\n" : "\n      },\n";

        out += "      \"path_pairs\": {";
        i = 0;
        for (const auto &[id, n] : cell.pathPairs) {
            out += i++ ? ",\n        " : "\n        ";
            out += jsonString(id) + ": " + std::to_string(n);
        }
        out += cell.pathPairs.empty() ? "},\n" : "\n      },\n";

        out += "      \"models\": {";
        i = 0;
        for (const auto &[model, v] : cell.models) {
            out += i++ ? ",\n        " : "\n        ";
            out += jsonString(model) + ": {\"experiments\": " +
                   std::to_string(v.experiments) +
                   ", \"counterexamples\": " +
                   std::to_string(v.counterexamples) +
                   ", \"inconclusive\": " +
                   std::to_string(v.inconclusive) +
                   ", \"indistinguishable\": " +
                   std::to_string(v.indistinguishable) + "}";
        }
        out += cell.models.empty() ? "}\n" : "\n      }\n";
        out += "    }";
    }
    out += snap.templates.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
writeJson(const Snapshot &snap, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson(snap);
    return static_cast<bool>(out);
}

} // namespace scamv::cover
