/**
 * @file
 * Campaign-wide coverage ledger.
 *
 * The supporting models Mpc/Mline (Sections 4.1, 5.4) exist to *drive
 * coverage* — of path pairs and of cache-set-index classes — but the
 * pipeline consumes them one test at a time and nothing used to
 * accumulate campaign-wide: the budget was spent uniformly no matter
 * what was already covered.  The ledger closes that loop.  It accounts
 * coverage *atoms*:
 *
 *  - path pairs exercised per template (how often each structurally
 *    compatible (p1, p2) pair produced an executed experiment);
 *  - `Mline` cache-set classes hit, against the geometry's universe of
 *    `numSets` classes, plus the draws spent targeting each class
 *    (including unsatisfiable redraws) — the per-atom cost;
 *  - template x model verdict outcomes (experiments, counterexamples,
 *    inconclusive, indistinguishable);
 *  - per-atom solver cost in seconds (registry-clock time of the SMT
 *    stage attributed to the drawn classes, so it is deterministic
 *    under the metrics registry's deterministic clock).
 *
 * Determinism contract (mirrors support/metrics and core/expdb): each
 * program task fills a private ProgramDelta; the pipeline merges the
 * deltas **in program-index order** on the merge thread, so the ledger
 * — and its exported JSON — is byte-identical for any thread count.
 * `merge()` is nevertheless internally synchronized so tests and
 * benches may also feed a shared ledger directly.
 *
 * Export: `toJson` renders a snapshot with schema "scamv-coverage-v1"
 * (sorted keys, `%.17g` doubles — structurally equal snapshots render
 * to byte-identical strings); the pipeline writes it to the path in
 * the `SCAMV_COVERAGE_FILE` environment variable after each campaign.
 *
 * Failure model: `merge()` is a fault-injection site
 * ("cover.ledger_merge", see support/faults.hh).  An injected merge
 * failure drops the delta and returns false; the adaptive scheduler
 * reacts by degrading to uniform scheduling for the rest of the
 * campaign (counted as `cover.degraded`) instead of planning rounds
 * from a ledger it can no longer trust.
 */

#ifndef SCAMV_COVER_LEDGER_HH
#define SCAMV_COVER_LEDGER_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace scamv::cover {

/** Accounting of one Mline set-index class (one coverage atom). */
struct ClassStats {
    /** Executed experiments with this class pinned. */
    std::int64_t hits = 0;
    /** Coverage-constraint draws targeting the class (incl. unsat
     *  redraws) — the tests spent on the atom. */
    std::int64_t draws = 0;
    /** SMT-stage seconds attributed to the class (registry clock). */
    double solverSeconds = 0.0;

    bool operator==(const ClassStats &) const = default;
};

/** Verdict tally of one template x model cell. */
struct VerdictCounts {
    std::int64_t experiments = 0;
    std::int64_t counterexamples = 0;
    std::int64_t inconclusive = 0;
    std::int64_t indistinguishable = 0;

    bool operator==(const VerdictCounts &) const = default;
};

/** All coverage atoms of one template. */
struct TemplateCoverage {
    /** Mline class universe (geometry numSets; 0 = Pc-only campaign,
     *  no line tracking). */
    std::uint64_t universe = 0;
    /** Class id -> stats, only ids that were ever drawn. */
    std::map<int, ClassStats> classes;
    /** "pathId1|pathId2" -> executed experiments of that pair. */
    std::map<std::string, std::int64_t> pathPairs;
    /** Model name -> verdict outcomes. */
    std::map<std::string, VerdictCounts> models;

    /** @return distinct classes with at least one hit. */
    std::int64_t coveredClasses() const;

    bool operator==(const TemplateCoverage &) const = default;
};

/** Plain-data copy of the ledger: sorted maps, comparable. */
struct Snapshot {
    std::map<std::string, TemplateCoverage> templates;

    bool operator==(const Snapshot &) const = default;
};

/**
 * One program task's coverage contribution.  Pure output of the task
 * (like core ProgramOutcome); the merge thread folds deltas in
 * program-index order.  Cache-line aligned: the deltas live in one
 * per-campaign array indexed by program, so padding keeps a worker
 * writing its delta from false-sharing with the neighbouring tasks'
 * slots.
 */
struct alignas(64) ProgramDelta {
    std::string templ; ///< template name ("Template A", "Stride", ...)
    std::string model; ///< model under validation ("Mct", ...)
    std::uint64_t universe = 0;
    std::map<int, ClassStats> classes;
    std::map<std::string, std::int64_t> pathPairs;
    VerdictCounts verdicts;

    bool operator==(const ProgramDelta &) const = default;

    bool empty() const;

    /** Count one coverage-constraint draw of `cls`. */
    void countDraw(int cls);
    /** Count one executed experiment pinned to `cls`. */
    void countHit(int cls);
    /** Charge `seconds` of SMT time to `cls`. */
    void chargeSolver(int cls, double seconds);
};

/** The campaign-wide coverage ledger. */
class CoverageLedger
{
  public:
    /**
     * Fold one program's delta into the ledger (thread-safe).
     * @return false when the write is dropped by an injected
     *         "cover.ledger_merge" fault (see support/faults.hh); the
     *         delta is lost and the caller should degrade adaptive
     *         scheduling to uniform.
     */
    bool merge(const ProgramDelta &delta);

    /** Copy out the current state (thread-safe). */
    Snapshot snapshot() const;

    /** Drop everything (for reuse across campaigns in tests). */
    void clear();

  private:
    mutable std::mutex m;
    Snapshot state;
};

/**
 * Render a snapshot as JSON (schema "scamv-coverage-v1"): sorted
 * keys, `%.17g` doubles — structurally equal snapshots render to
 * byte-identical strings.
 */
std::string toJson(const Snapshot &snap);

/** Write toJson(snap) to a file. @return success. */
bool writeJson(const Snapshot &snap, const std::string &path);

} // namespace scamv::cover

#endif // SCAMV_COVER_LEDGER_HH
