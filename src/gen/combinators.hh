/**
 * @file
 * QuickCheck-style generator combinators (Section 5.4).
 *
 * The paper's program generators are monadic SML generators in the
 * style of QuickCheck [17] that "can be composed to generate more
 * complex programs to fit different attack scenarios".  This header
 * provides the equivalent C++ combinator set: a Gen<T> is a function
 * from an Rng to a T, composed with map/bind/pair, chosen with
 * oneOf/frequency/elements, and sized with vectorOf.
 *
 * The concrete templates in templates.cc use direct Rng calls for
 * brevity; these combinators are the extensible surface for user-
 * defined templates (see tests/test_combinators.cc for examples,
 * including a full custom program template).
 */

#ifndef SCAMV_GEN_COMBINATORS_HH
#define SCAMV_GEN_COMBINATORS_HH

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "support/logging.hh"
#include "support/rng.hh"

namespace scamv::gen {

/** A generator of T values: a sampling function over an Rng. */
template <typename T>
class Gen
{
  public:
    using Fn = std::function<T(Rng &)>;

    explicit Gen(Fn fn) : fn(std::move(fn)) {}

    /** Draw one value. */
    T
    operator()(Rng &rng) const
    {
        return fn(rng);
    }

    /** Functor map: apply f to every generated value. */
    template <typename F>
    auto
    map(F f) const -> Gen<decltype(f(std::declval<T>()))>
    {
        using U = decltype(f(std::declval<T>()));
        Fn self = fn;
        return Gen<U>([self, f](Rng &rng) { return f(self(rng)); });
    }

    /** Monadic bind: the next generator may depend on the value. */
    template <typename F>
    auto
    bind(F f) const -> decltype(f(std::declval<T>()))
    {
        using GU = decltype(f(std::declval<T>()));
        Fn self = fn;
        return GU([self, f](Rng &rng) { return f(self(rng))(rng); });
    }

    /**
     * Retry until the predicate holds (bounded; panics if the
     * predicate looks unsatisfiable).
     */
    template <typename P>
    Gen<T>
    suchThat(P pred, int max_attempts = 1000) const
    {
        Fn self = fn;
        return Gen<T>([self, pred, max_attempts](Rng &rng) {
            for (int i = 0; i < max_attempts; ++i) {
                T v = self(rng);
                if (pred(v))
                    return v;
            }
            SCAMV_PANIC("Gen::suchThat: predicate never satisfied");
        });
    }

  private:
    Fn fn;
};

/** Constant generator. */
template <typename T>
Gen<T>
pure(T value)
{
    return Gen<T>([value](Rng &) { return value; });
}

/** Uniform integer in [lo, hi] inclusive. */
inline Gen<std::uint64_t>
chooseInt(std::uint64_t lo, std::uint64_t hi)
{
    return Gen<std::uint64_t>(
        [lo, hi](Rng &rng) { return rng.range(lo, hi); });
}

/** Uniform element of a fixed list. */
template <typename T>
Gen<T>
elements(std::vector<T> choices)
{
    SCAMV_ASSERT(!choices.empty(), "elements: empty choice list");
    return Gen<T>([choices](Rng &rng) { return rng.pick(choices); });
}

/** Uniformly pick one of the given generators. */
template <typename T>
Gen<T>
oneOf(std::vector<Gen<T>> gens)
{
    SCAMV_ASSERT(!gens.empty(), "oneOf: empty generator list");
    return Gen<T>([gens](Rng &rng) {
        return gens[rng.below(gens.size())](rng);
    });
}

/** Pick a generator with the given relative weights. */
template <typename T>
Gen<T>
frequency(std::vector<std::pair<int, Gen<T>>> weighted)
{
    SCAMV_ASSERT(!weighted.empty(), "frequency: empty list");
    std::uint64_t total = 0;
    for (const auto &[w, g] : weighted) {
        SCAMV_ASSERT(w >= 0, "frequency: negative weight");
        total += w;
    }
    SCAMV_ASSERT(total > 0, "frequency: zero total weight");
    return Gen<T>([weighted, total](Rng &rng) {
        std::uint64_t roll = rng.below(total);
        for (const auto &[w, g] : weighted) {
            if (roll < static_cast<std::uint64_t>(w))
                return g(rng);
            roll -= w;
        }
        SCAMV_PANIC("frequency: unreachable");
    });
}

/** Generate a vector of n draws. */
template <typename T>
Gen<std::vector<T>>
vectorOf(int n, Gen<T> g)
{
    return Gen<std::vector<T>>([n, g](Rng &rng) {
        std::vector<T> out;
        out.reserve(n);
        for (int i = 0; i < n; ++i)
            out.push_back(g(rng));
        return out;
    });
}

/** Generate a vector whose length is drawn from [lo, hi]. */
template <typename T>
Gen<std::vector<T>>
vectorOfRange(int lo, int hi, Gen<T> g)
{
    return Gen<std::vector<T>>([lo, hi, g](Rng &rng) {
        const int n = static_cast<int>(rng.range(lo, hi));
        std::vector<T> out;
        out.reserve(n);
        for (int i = 0; i < n; ++i)
            out.push_back(g(rng));
        return out;
    });
}

/** Pair two generators. */
template <typename A, typename B>
Gen<std::pair<A, B>>
pairOf(Gen<A> ga, Gen<B> gb)
{
    return Gen<std::pair<A, B>>([ga, gb](Rng &rng) {
        A a = ga(rng);
        B b = gb(rng);
        return std::make_pair(std::move(a), std::move(b));
    });
}

/** True with probability num/den. */
inline Gen<bool>
chance(double p)
{
    return Gen<bool>([p](Rng &rng) { return rng.chance(p); });
}

} // namespace scamv::gen

#endif // SCAMV_GEN_COMBINATORS_HH
