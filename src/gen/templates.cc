#include "gen/templates.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scamv::gen {

using bir::CmpOp;
using bir::Instr;
using bir::Program;
using bir::Reg;

const char *
templateName(TemplateKind kind)
{
    switch (kind) {
      case TemplateKind::Stride: return "Stride";
      case TemplateKind::A: return "Template A";
      case TemplateKind::B: return "Template B";
      case TemplateKind::C: return "Template C";
      case TemplateKind::D: return "Template D";
    }
    return "?";
}

std::optional<TemplateKind>
templateFromName(std::string_view name)
{
    for (TemplateKind kind : allTemplates())
        if (name == templateName(kind))
            return kind;
    return std::nullopt;
}

const std::vector<TemplateKind> &
allTemplates()
{
    static const std::vector<TemplateKind> kinds{
        TemplateKind::Stride, TemplateKind::A, TemplateKind::B,
        TemplateKind::C, TemplateKind::D};
    return kinds;
}

ProgramGenerator::ProgramGenerator(TemplateKind kind, std::uint64_t seed,
                                   const GeneratorConfig &config)
    : templateKind(kind), cfg(config), rng(seed)
{
    SCAMV_ASSERT(cfg.poolSize >= 6 && cfg.poolSize <= bir::kNumRegs,
                 "register pool size out of range");
}

Reg
ProgramGenerator::pickReg()
{
    return static_cast<Reg>(rng.below(cfg.poolSize));
}

Reg
ProgramGenerator::pickRegExcept(const std::vector<Reg> &excluded)
{
    for (int attempt = 0; attempt < 256; ++attempt) {
        const Reg r = pickReg();
        if (std::find(excluded.begin(), excluded.end(), r) ==
            excluded.end())
            return r;
    }
    SCAMV_PANIC("register pool exhausted");
}

CmpOp
ProgramGenerator::pickCmp()
{
    static const CmpOp all[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Ult,
                                CmpOp::Ule, CmpOp::Ugt, CmpOp::Uge,
                                CmpOp::Slt, CmpOp::Sle, CmpOp::Sgt,
                                CmpOp::Sge};
    return all[rng.below(std::size(all))];
}

Program
ProgramGenerator::next()
{
    Program p;
    switch (templateKind) {
      case TemplateKind::Stride: p = genStride(); break;
      case TemplateKind::A: p = genA(); break;
      case TemplateKind::B: p = genB(); break;
      case TemplateKind::C: p = genC(); break;
      case TemplateKind::D: p = genD(); break;
    }
    p.setName(std::string(templateName(templateKind)) + "#" +
              std::to_string(counter++));
    SCAMV_ASSERT(p.validate().empty(), "generator produced invalid program");
    return p;
}

Program
ProgramGenerator::genStride()
{
    Program p;
    const int loads = 3 + static_cast<int>(rng.below(3)); // 3..5
    const std::uint64_t distance =
        cfg.lineBytes * (1 + rng.below(4)); // 1..4 lines apart
    const Reg base = pickReg();

    std::vector<Reg> dests{base};
    for (int k = 0; k < loads; ++k) {
        const Reg dst = pickRegExcept({base});
        dests.push_back(dst);
        p.push(Instr::loadImm(dst, base, k * distance));
    }
    // Optional pointer-chasing load through one of the loaded values:
    // its address depends on memory content, exercising the
    // memory-initialization support of Section 5.4.
    if (rng.chance(0.3)) {
        const Reg through = dests[1 + rng.below(dests.size() - 1)];
        const Reg dst = pickRegExcept({base});
        p.push(Instr::loadImm(dst, through, 0));
    }
    p.push(Instr::halt());
    return p;
}

Program
ProgramGenerator::genA()
{
    Program p;
    const Reg r0 = pickReg();
    const Reg r1 = pickReg();
    const Reg r2 = pickRegExcept({r1});
    const Reg r4 = pickRegExcept({r1, r2});
    const Reg r5 = pickReg(); // may alias anything (incl. r0/r1: the
    const Reg r6 = pickReg(); // subclass unguided testing can find)

    p.push(Instr::load(r2, r0, r1));
    // Fall into the body when r1 == r4; otherwise skip to the end.
    const int branch_idx = p.push(Instr::branch(CmpOp::Ne, r1, r4, -1));
    p.push(Instr::load(r6, r5, r2));
    const int end = p.push(Instr::halt());
    p[branch_idx].target = end;
    return p;
}

Program
ProgramGenerator::genB()
{
    Program p;
    const int pre_loads = static_cast<int>(rng.below(3));  // 0..2
    const int body_loads = 1 + static_cast<int>(rng.below(2)); // 1..2

    for (int k = 0; k < pre_loads; ++k)
        p.push(Instr::load(pickReg(), pickReg(), pickReg()));

    const int branch_idx =
        p.push(Instr::branch(pickCmp(), pickReg(), pickReg(), -1));
    for (int k = 0; k < body_loads; ++k)
        p.push(Instr::load(pickReg(), pickReg(), pickReg()));
    const int end = p.push(Instr::halt());
    p[branch_idx].target = end;
    return p;
}

Program
ProgramGenerator::genC()
{
    Program p;
    // Optional pre-branch load (the #A-size load of Spectre-PHT).
    if (rng.chance(0.5))
        p.push(Instr::load(pickReg(), pickReg(), pickReg()));

    const Reg r3 = pickReg();
    const Reg r5 = pickReg();
    const Reg r6 = pickRegExcept({r3, r5});
    const Reg r7 = pickRegExcept({r6});
    const Reg r8 = pickReg();

    const int branch_idx =
        p.push(Instr::branch(pickCmp(), pickReg(), pickReg(), -1));
    p.push(Instr::load(r6, r5, r3));
    if (rng.chance(0.5)) // interleaved arithmetic keeps the dependency
        p.push(Instr::aluImm(bir::AluOp::Add, r6, r6,
                             8 * (1 + rng.below(8))));
    p.push(Instr::load(r8, r7, r6)); // causally dependent on r6
    const int end = p.push(Instr::halt());
    p[branch_idx].target = end;
    return p;
}

Program
ProgramGenerator::genD()
{
    Program p;
    const int pre_loads = static_cast<int>(rng.below(3)); // 0..2
    for (int k = 0; k < pre_loads; ++k)
        p.push(Instr::load(pickReg(), pickReg(), pickReg()));

    const int jump_idx = p.push(Instr::jump(-1));
    // Dead code: executes only under straight-line speculation.
    p.push(Instr::load(pickReg(), pickReg(), pickReg()));
    if (rng.chance(0.5))
        p.push(Instr::load(pickReg(), pickReg(), pickReg()));
    const int end = p.push(Instr::halt());
    p[jump_idx].target = end;
    return p;
}

} // namespace scamv::gen
