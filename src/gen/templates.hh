/**
 * @file
 * Grammar-driven random program generators (Section 5.4, Fig. 5/7).
 *
 * Re-implements the paper's SML QuickCheck-style generators for the
 * five evaluation templates:
 *
 *  - `Stride`    (Mpart, 6.2): three to five loads from base r0 at a
 *                constant line-multiple distance v, dest registers
 *                distinct from r0; optionally a final pointer-chasing
 *                load through one of the loaded values (this is the
 *                "observations depend on previous loads" program class
 *                that required the memory-initialization extension of
 *                Section 5.4).
 *  - `A`         (Mct, 6.3): one load before a conditional branch and
 *                one load, indexed by the first load's result, in the
 *                branch body; side constraints r2 != r1,
 *                r4 not in {r1, r2}; all other registers may alias.
 *  - `B`         (Mct/Mspec1, 6.3/6.5): zero to two loads before the
 *                branch, one or two loads in the body, random
 *                comparison predicate, unconstrained (possibly
 *                aliasing) register allocation.
 *  - `C`         (Mct/Mspec1, 6.5): two causally dependent loads in
 *                the body, optionally interleaved with an arithmetic
 *                instruction (the Spectre-PHT gadget shape).
 *  - `D`         (Mct/Mspec', 6.5): loads placed after an
 *                unconditional direct jump — straight-line-speculation
 *                bait that never executes architecturally.
 */

#ifndef SCAMV_GEN_TEMPLATES_HH
#define SCAMV_GEN_TEMPLATES_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bir/bir.hh"
#include "support/rng.hh"

namespace scamv::gen {

/** The evaluation templates of Fig. 5 and Fig. 7. */
enum class TemplateKind { Stride, A, B, C, D };

/** @return the paper's name ("Stride", "Template A", ...). */
const char *templateName(TemplateKind kind);

/** @return the template with the given paper name, if any. */
std::optional<TemplateKind> templateFromName(std::string_view name);

/** @return every template, in enum order. */
const std::vector<TemplateKind> &allTemplates();

/** Generator configuration. */
struct GeneratorConfig {
    /** Registers are drawn from x0..x(poolSize-1). */
    int poolSize = 12;
    /** Cache line size (stride distances are multiples of it). */
    std::uint64_t lineBytes = 64;
};

/** Seedable random program generator for one template. */
class ProgramGenerator
{
  public:
    ProgramGenerator(TemplateKind kind, std::uint64_t seed,
                     const GeneratorConfig &config = {});

    /** Generate the next random program (always validates). */
    bir::Program next();

    TemplateKind kind() const { return templateKind; }

    /**
     * Override the program-name counter.  The parallel pipeline
     * creates one independently seeded generator per program index;
     * setting the counter to that index keeps program names
     * ("Template A#<i>") unique and identical to a sequential run.
     */
    void setCounter(int c) { counter = c; }

  private:
    bir::Reg pickReg();
    bir::Reg pickRegExcept(const std::vector<bir::Reg> &excluded);
    bir::CmpOp pickCmp();

    bir::Program genStride();
    bir::Program genA();
    bir::Program genB();
    bir::Program genC();
    bir::Program genD();

    TemplateKind templateKind;
    GeneratorConfig cfg;
    Rng rng;
    int counter = 0;
};

} // namespace scamv::gen

#endif // SCAMV_GEN_TEMPLATES_HH
