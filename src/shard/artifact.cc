/**
 * @file
 * The "scamv-shard-v1" transfer artifact: lossless text serialization
 * of a campaign slice's per-program outcomes.
 *
 * Format conventions follow the qcache checkpoint ("scamv-qcache-v1",
 * support/qcache): line-oriented, space-separated fields, every line
 * ending in an fnv1a checksum over the line's prefix; string fields
 * are percent-escaped so names with spaces ("Template A#3") and
 * multi-line program text survive.  A *program group* — the P line
 * and everything up to the next P line — is the unit of damage: any
 * invalid line drops the whole group (a partial outcome would corrupt
 * the merge), mirroring qcache's drop-and-count record handling.
 *
 * Workers serialize raw per-program data, never aggregates: the
 * coordinator re-folds outcomes in program-index order through the
 * same merge tail a single-process run uses, which is what makes the
 * merged campaign artifacts byte-identical (doubles are shipped as
 * %.17g, which round-trips binary64 exactly).
 */

#include "shard/shard.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/qcache/canon.hh"

namespace scamv::shard {
namespace {

constexpr const char *kHeader = "scamv-shard-v1";
constexpr const char *kQcacheHeader = "scamv-qcache-v1";

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Percent-escape a field: no spaces, no newlines, never empty. */
std::string
esc(std::string_view s)
{
    if (s.empty())
        return "-";
    if (s == "-")
        return "%2D";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (c == '%' || c == ' ' || u < 0x20) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02X", u);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::optional<std::string>
unesc(std::string_view s)
{
    if (s == "-")
        return std::string();
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            return std::nullopt;
        const int hi = hexNibble(s[i + 1]);
        const int lo = hexNibble(s[i + 2]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
    }
    return out;
}

/** Append `line` with its trailing fnv1a checksum field. */
void
pushLine(std::string &out, const std::string &line)
{
    out += line;
    out += ' ';
    out += hex16(qcache::fnv1a(line));
    out += '\n';
}

/**
 * Validate a line's trailing checksum and strip it.
 * @return the line's prefix, or nullopt when the checksum field is
 * missing or does not match.
 */
std::optional<std::string_view>
checkLine(std::string_view line)
{
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos ||
        line.size() - space - 1 != 16)
        return std::nullopt;
    const std::string_view prefix = line.substr(0, space);
    std::uint64_t sum = 0;
    for (char c : line.substr(space + 1)) {
        const int nib = hexNibble(c);
        if (nib < 0)
            return std::nullopt;
        sum = sum * 16 + static_cast<std::uint64_t>(nib);
    }
    if (sum != qcache::fnv1a(prefix))
        return std::nullopt;
    return prefix;
}

std::vector<std::string_view>
splitFields(std::string_view s)
{
    std::vector<std::string_view> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t space = s.find(' ', pos);
        if (space == std::string_view::npos) {
            out.push_back(s.substr(pos));
            break;
        }
        out.push_back(s.substr(pos, space - pos));
        pos = space + 1;
    }
    return out;
}

bool
parseU64(std::string_view s, std::uint64_t &out, int base = 10)
{
    if (s.empty() || s.size() > 20)
        return false;
    char buf[24];
    s.copy(buf, s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtoull(buf, &end, base);
    return end == buf + s.size();
}

bool
parseI64(std::string_view s, std::int64_t &out)
{
    if (s.empty() || s.size() > 20)
        return false;
    char buf[24];
    s.copy(buf, s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtoll(buf, &end, 10);
    return end == buf + s.size();
}

bool
parseInt(std::string_view s, int &out)
{
    std::int64_t v = 0;
    if (!parseI64(s, v) || v < INT32_MIN || v > INT32_MAX)
        return false;
    out = static_cast<int>(v);
    return true;
}

bool
parseDouble(std::string_view s, double &out)
{
    if (s.empty() || s.size() > 40)
        return false;
    char buf[48];
    s.copy(buf, s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + s.size();
}

/** Sparse register list: "i:hex,i:hex" over non-zero regs, "-" if
 *  none (the array is zero-initialized, so sparse is lossless). */
std::string
encodeRegs(const hw::ArchState &regs)
{
    std::string out;
    for (std::size_t i = 0; i < regs.regs.size(); ++i) {
        if (!regs.regs[i])
            continue;
        if (!out.empty())
            out += ',';
        char buf[40];
        std::snprintf(buf, sizeof buf, "%zu:%" PRIx64, i, regs.regs[i]);
        out += buf;
    }
    return out.empty() ? "-" : out;
}

bool
decodeRegs(std::string_view s, hw::ArchState &out)
{
    out = hw::ArchState{};
    if (s == "-")
        return true;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string_view::npos)
            comma = s.size();
        const std::string_view item = s.substr(pos, comma - pos);
        const std::size_t colon = item.find(':');
        if (colon == std::string_view::npos)
            return false;
        std::uint64_t idx = 0, val = 0;
        if (!parseU64(item.substr(0, colon), idx) ||
            !parseU64(item.substr(colon + 1), val, 16) ||
            idx >= out.regs.size())
            return false;
        out.regs[idx] = val;
        pos = comma + 1;
    }
    return true;
}

/** Memory init list: "addr:word,addr:word" in vector order (order is
 *  part of the test case and must survive the round trip). */
std::string
encodeMem(const harness::MemInit &mem)
{
    std::string out;
    for (const auto &[addr, word] : mem) {
        if (!out.empty())
            out += ',';
        char buf[48];
        std::snprintf(buf, sizeof buf, "%" PRIx64 ":%" PRIx64, addr,
                      word);
        out += buf;
    }
    return out.empty() ? "-" : out;
}

bool
decodeMem(std::string_view s, harness::MemInit &out)
{
    out.clear();
    if (s == "-")
        return true;
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string_view::npos)
            comma = s.size();
        const std::string_view item = s.substr(pos, comma - pos);
        const std::size_t colon = item.find(':');
        if (colon == std::string_view::npos)
            return false;
        std::uint64_t addr = 0, word = 0;
        if (!parseU64(item.substr(0, colon), addr, 16) ||
            !parseU64(item.substr(colon + 1), word, 16))
            return false;
        out.emplace_back(addr, word);
        pos = comma + 1;
    }
    return true;
}

void
encodeOutcome(std::string &out, int k,
              const core::ProgramOutcome &o)
{
    const unsigned flags = (o.hasCex ? 1u : 0u) |
                           (o.failed ? 2u : 0u) |
                           (o.quarantined ? 4u : 0u);
    pushLine(out, "P " + std::to_string(k) + ' ' +
                      std::to_string(flags) + ' ' + esc(o.name) + ' ' +
                      fmtDouble(o.firstCexOffsetSeconds) + ' ' +
                      fmtDouble(o.taskSeconds));
    for (const auto &[key, val] : o.metrics.counters)
        pushLine(out, "C " + esc(key) + ' ' + std::to_string(val));
    for (const auto &[key, val] : o.metrics.gauges)
        pushLine(out, "G " + esc(key) + ' ' + fmtDouble(val));
    for (const auto &[key, h] : o.metrics.histograms) {
        std::string line = "H " + esc(key) + ' ' +
                           std::to_string(h.bounds.size());
        for (double b : h.bounds)
            line += ' ' + fmtDouble(b);
        line += ' ' + std::to_string(h.counts.size());
        for (std::uint64_t c : h.counts)
            line += ' ' + std::to_string(c);
        line += ' ' + std::to_string(h.count) + ' ' + fmtDouble(h.sum);
        pushLine(out, line);
    }
    const cover::ProgramDelta &d = o.coverDelta;
    if (!d.templ.empty()) {
        pushLine(out,
                 "V " + esc(d.templ) + ' ' + esc(d.model) + ' ' +
                     std::to_string(d.universe) + ' ' +
                     std::to_string(d.verdicts.experiments) + ' ' +
                     std::to_string(d.verdicts.counterexamples) + ' ' +
                     std::to_string(d.verdicts.inconclusive) + ' ' +
                     std::to_string(d.verdicts.indistinguishable));
        for (const auto &[cls, st] : d.classes)
            pushLine(out, "K " + std::to_string(cls) + ' ' +
                              std::to_string(st.hits) + ' ' +
                              std::to_string(st.draws) + ' ' +
                              fmtDouble(st.solverSeconds));
        for (const auto &[pair, n] : d.pathPairs)
            pushLine(out,
                     "Q " + esc(pair) + ' ' + std::to_string(n));
    }
    for (const core::ExperimentRecord &r : o.records) {
        pushLine(out,
                 "R " + esc(r.programName) + ' ' +
                     esc(r.programText) + ' ' + esc(r.pathId) + ' ' +
                     std::string(r.trained ? "1" : "0") + ' ' +
                     std::to_string(r.lineClass1) + ' ' +
                     std::to_string(r.lineClass2) + ' ' +
                     std::to_string(static_cast<int>(r.verdict)) +
                     ' ' + std::to_string(r.differingReps) + ' ' +
                     std::to_string(r.totalReps) + ' ' +
                     encodeRegs(r.testCase.s1.regs) + ' ' +
                     encodeMem(r.testCase.s1.mem) + ' ' +
                     encodeRegs(r.testCase.s2.regs) + ' ' +
                     encodeMem(r.testCase.s2.mem));
    }
    for (const triage::Finding &fd : o.findings) {
        pushLine(out,
                 "F " + std::to_string(fd.progIndex) + ' ' +
                     esc(fd.program) + ' ' + esc(fd.mechanism) + ' ' +
                     esc(fd.signature) + ' ' +
                     std::string(fd.minimized ? "1" : "0") + ' ' +
                     std::string(fd.degraded ? "1" : "0") + ' ' +
                     std::to_string(fd.instrsBefore) + ' ' +
                     std::to_string(fd.instrsAfter) + ' ' +
                     std::to_string(fd.stateBitsBefore) + ' ' +
                     std::to_string(fd.stateBitsAfter) + ' ' +
                     esc(fd.core) + ' ' + encodeRegs(fd.tc.s1.regs) +
                     ' ' + encodeMem(fd.tc.s1.mem) + ' ' +
                     encodeRegs(fd.tc.s2.regs) + ' ' +
                     encodeMem(fd.tc.s2.mem));
    }
}

/** One group's accumulated lines, committed only when fully valid. */
struct GroupParse {
    int k = -1;
    core::ProgramOutcome outcome;
    bool bad = false;
};

bool
parseGroupLine(std::string_view prefix, GroupParse &group)
{
    const std::vector<std::string_view> f = splitFields(prefix);
    if (f.empty())
        return false;
    core::ProgramOutcome &o = group.outcome;
    if (f[0] == "C") {
        std::uint64_t val = 0;
        auto key = f.size() == 3 ? unesc(f[1]) : std::nullopt;
        if (!key || !parseU64(f[2], val))
            return false;
        o.metrics.counters[*key] = val;
        return true;
    }
    if (f[0] == "G") {
        double val = 0;
        auto key = f.size() == 3 ? unesc(f[1]) : std::nullopt;
        if (!key || !parseDouble(f[2], val))
            return false;
        o.metrics.gauges[*key] = val;
        return true;
    }
    if (f[0] == "H") {
        if (f.size() < 5)
            return false;
        auto key = unesc(f[1]);
        std::uint64_t nb = 0;
        if (!key || !parseU64(f[2], nb) || nb > 4096 ||
            f.size() < 3 + nb + 1)
            return false;
        metrics::HistogramData h;
        h.bounds.resize(nb);
        std::size_t at = 3;
        for (std::uint64_t i = 0; i < nb; ++i)
            if (!parseDouble(f[at++], h.bounds[i]))
                return false;
        std::uint64_t nc = 0;
        if (!parseU64(f[at++], nc) || nc != nb + 1 ||
            f.size() != at + nc + 2)
            return false;
        h.counts.resize(nc);
        for (std::uint64_t i = 0; i < nc; ++i)
            if (!parseU64(f[at++], h.counts[i]))
                return false;
        if (!parseU64(f[at++], h.count) ||
            !parseDouble(f[at++], h.sum))
            return false;
        o.metrics.histograms[*key] = std::move(h);
        return true;
    }
    if (f[0] == "V") {
        if (f.size() != 8)
            return false;
        auto templ = unesc(f[1]);
        auto model = unesc(f[2]);
        cover::ProgramDelta &d = o.coverDelta;
        if (!templ || templ->empty() || !model ||
            !parseU64(f[3], d.universe) ||
            !parseI64(f[4], d.verdicts.experiments) ||
            !parseI64(f[5], d.verdicts.counterexamples) ||
            !parseI64(f[6], d.verdicts.inconclusive) ||
            !parseI64(f[7], d.verdicts.indistinguishable))
            return false;
        d.templ = *templ;
        d.model = *model;
        return true;
    }
    if (f[0] == "K") {
        if (f.size() != 5 || o.coverDelta.templ.empty())
            return false;
        int cls = 0;
        cover::ClassStats st;
        if (!parseInt(f[1], cls) || !parseI64(f[2], st.hits) ||
            !parseI64(f[3], st.draws) ||
            !parseDouble(f[4], st.solverSeconds))
            return false;
        o.coverDelta.classes[cls] = st;
        return true;
    }
    if (f[0] == "Q") {
        if (f.size() != 3 || o.coverDelta.templ.empty())
            return false;
        auto pair = unesc(f[1]);
        std::int64_t n = 0;
        if (!pair || !parseI64(f[2], n))
            return false;
        o.coverDelta.pathPairs[*pair] = n;
        return true;
    }
    if (f[0] == "R") {
        if (f.size() != 14)
            return false;
        core::ExperimentRecord r;
        auto name = unesc(f[1]);
        auto text = unesc(f[2]);
        auto path = unesc(f[3]);
        int verdict = 0;
        if (!name || !text || !path || (f[4] != "0" && f[4] != "1") ||
            !parseInt(f[5], r.lineClass1) ||
            !parseInt(f[6], r.lineClass2) ||
            !parseInt(f[7], verdict) || verdict < 0 || verdict > 2 ||
            !parseInt(f[8], r.differingReps) ||
            !parseInt(f[9], r.totalReps) ||
            !decodeRegs(f[10], r.testCase.s1.regs) ||
            !decodeMem(f[11], r.testCase.s1.mem) ||
            !decodeRegs(f[12], r.testCase.s2.regs) ||
            !decodeMem(f[13], r.testCase.s2.mem))
            return false;
        r.programName = std::move(*name);
        r.programText = std::move(*text);
        r.pathId = std::move(*path);
        r.trained = f[4] == "1";
        r.verdict = static_cast<harness::Verdict>(verdict);
        o.records.push_back(std::move(r));
        return true;
    }
    if (f[0] == "F") {
        if (f.size() != 16)
            return false;
        triage::Finding fd;
        auto program = unesc(f[2]);
        auto mechanism = unesc(f[3]);
        auto signature = unesc(f[4]);
        auto core_text = unesc(f[11]);
        if (!parseInt(f[1], fd.progIndex) || !program || !mechanism ||
            !signature || (f[5] != "0" && f[5] != "1") ||
            (f[6] != "0" && f[6] != "1") ||
            !parseInt(f[7], fd.instrsBefore) ||
            !parseInt(f[8], fd.instrsAfter) ||
            !parseInt(f[9], fd.stateBitsBefore) ||
            !parseInt(f[10], fd.stateBitsAfter) || !core_text ||
            !decodeRegs(f[12], fd.tc.s1.regs) ||
            !decodeMem(f[13], fd.tc.s1.mem) ||
            !decodeRegs(f[14], fd.tc.s2.regs) ||
            !decodeMem(f[15], fd.tc.s2.mem))
            return false;
        fd.program = std::move(*program);
        fd.mechanism = std::move(*mechanism);
        fd.signature = std::move(*signature);
        fd.minimized = f[5] == "1";
        fd.degraded = f[6] == "1";
        fd.core = std::move(*core_text);
        o.findings.push_back(std::move(fd));
        return true;
    }
    return false;
}

} // namespace

std::string
encodeSlice(const core::CampaignSlice &slice, const ShardSpec &spec,
            const core::PipelineConfig &cfg)
{
    std::string out;
    pushLine(out, std::string(kHeader) + ' ' +
                      std::to_string(spec.index) + ' ' +
                      std::to_string(spec.count) + ' ' +
                      hex16(cfg.seed) + ' ' +
                      std::to_string(cfg.programs) + ' ' +
                      std::to_string(slice.first) + ' ' +
                      std::to_string(slice.count) + ' ' +
                      std::to_string(slice.earlyStopped) + ' ' +
                      std::string(slice.scheduleLocal ? "1" : "0"));
    for (int k = 0; k < slice.count; ++k)
        encodeOutcome(out, k,
                      slice.outcomes[static_cast<std::size_t>(k)]);
    return out;
}

std::optional<DecodedSlice>
decodeSlice(std::string_view text)
{
    std::size_t pos = 0;
    const auto nextLine = [&]() -> std::optional<std::string_view> {
        if (pos >= text.size())
            return std::nullopt;
        std::size_t nl = text.find('\n', pos);
        if (nl == std::string_view::npos)
            nl = text.size();
        const std::string_view line = text.substr(pos, nl - pos);
        pos = nl + 1;
        return line;
    };

    const auto header_line = nextLine();
    if (!header_line)
        return std::nullopt;
    const auto header = checkLine(*header_line);
    if (!header)
        return std::nullopt;
    const std::vector<std::string_view> hf = splitFields(*header);
    DecodedSlice out;
    std::uint64_t seed = 0;
    if (hf.size() != 9 || hf[0] != kHeader ||
        !parseInt(hf[1], out.spec.index) ||
        !parseInt(hf[2], out.spec.count) || !parseU64(hf[3], seed, 16) ||
        !parseInt(hf[4], out.programs) ||
        !parseInt(hf[5], out.slice.first) ||
        !parseInt(hf[6], out.slice.count) ||
        !parseInt(hf[7], out.slice.earlyStopped) ||
        (hf[8] != "0" && hf[8] != "1"))
        return std::nullopt;
    out.seed = seed;
    out.slice.scheduleLocal = hf[8] == "1";
    if (out.slice.count < 0 || out.slice.count > (1 << 24))
        return std::nullopt;
    out.slice.outcomes.resize(
        static_cast<std::size_t>(out.slice.count));
    out.present.assign(static_cast<std::size_t>(out.slice.count),
                       false);

    GroupParse group;
    const auto commit = [&]() {
        if (group.k >= 0 && !group.bad) {
            out.slice.outcomes[static_cast<std::size_t>(group.k)] =
                std::move(group.outcome);
            out.present[static_cast<std::size_t>(group.k)] = true;
        }
        group = GroupParse{};
    };

    while (const auto line = nextLine()) {
        if (line->empty())
            continue;
        const auto prefix = checkLine(*line);
        if (prefix && !prefix->empty() && prefix->front() == 'P') {
            commit();
            const std::vector<std::string_view> f =
                splitFields(*prefix);
            int k = -1;
            std::uint64_t flags = 0;
            double cex = 0, task = 0;
            auto name = f.size() == 6 ? unesc(f[3]) : std::nullopt;
            if (f[0] != "P" || !name || !parseInt(f[1], k) || k < 0 ||
                k >= out.slice.count ||
                out.present[static_cast<std::size_t>(k)] ||
                !parseU64(f[2], flags) || flags > 7 ||
                !parseDouble(f[4], cex) || !parseDouble(f[5], task)) {
                // A damaged or duplicate P line loses its whole
                // group; the body lines that follow are swallowed
                // until the next P line (group.k stays -1).
                continue;
            }
            group.k = k;
            group.outcome.hasCex = flags & 1;
            group.outcome.failed = flags & 2;
            group.outcome.quarantined = flags & 4;
            group.outcome.name = std::move(*name);
            group.outcome.firstCexOffsetSeconds = cex;
            group.outcome.taskSeconds = task;
            // The artifact-corruption fault site: damage surfaces at
            // group granularity, exactly like a checksum failure.
            if (faults::maybeInject(
                    faults::Site::ShardArtifactCorrupt))
                group.bad = true;
            continue;
        }
        if (group.k < 0 || group.bad)
            continue; // inside a dropped (or no) group
        if (!prefix || !parseGroupLine(*prefix, group))
            group.bad = true;
    }
    commit();
    // Every slot without an intact group — corrupted, injected,
    // duplicated or truncated away — is one dropped group.
    for (int k = 0; k < out.slice.count; ++k)
        if (!out.present[static_cast<std::size_t>(k)])
            ++out.droppedGroups;
    return out;
}

std::optional<std::uint64_t>
mergeQcacheFiles(const std::vector<std::string> &inputs,
                 const std::string &out_path)
{
    metrics::Counter &dropped =
        metrics::Registry::global().counter("shard.load_dropped");
    std::string out = std::string(kQcacheHeader) + "\n";
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    std::uint64_t written = 0;
    for (const std::string &path : inputs) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            continue; // cache disabled on that shard
        std::string line;
        if (!std::getline(in, line) || line != kQcacheHeader) {
            warn("shard: foreign qcache checkpoint " + path +
                 ", skipping");
            dropped.inc();
            continue;
        }
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            // Validate like qcache load: checksum over the prefix
            // before the final space (qcache writes unpadded %llx
            // hex, so the field width varies), 7 non-empty fields,
            // hex key.
            const std::string_view lv = line;
            const std::size_t space = lv.rfind(' ');
            bool ok = space != std::string_view::npos;
            std::uint64_t sum = 0, hi = 0, lo = 0;
            ok = ok && parseU64(lv.substr(space + 1), sum, 16) &&
                 sum == qcache::fnv1a(lv.substr(0, space));
            if (ok) {
                const std::vector<std::string_view> f =
                    splitFields(lv.substr(0, space));
                ok = f.size() == 6 && parseU64(f[0], hi, 16) &&
                     parseU64(f[1], lo, 16);
                for (const std::string_view &field : f)
                    ok = ok && !field.empty();
            }
            if (!ok) {
                dropped.inc();
                continue;
            }
            if (!seen.emplace(hi, lo).second)
                continue; // keep-first, as QueryCache::store does
            out += line;
            out += '\n';
            ++written;
        }
    }
    std::ofstream os(out_path, std::ios::binary | std::ios::trunc);
    if (!os || !(os << out) || !os.flush())
        return std::nullopt;
    return written;
}

bool
writeCampaignArtifacts(const core::RunStats &stats,
                       const core::ExperimentDb *db,
                       const std::string &dir)
{
    const auto write_text = [](const std::string &path,
                               const std::string &text) {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        if (!os || !(os << text) || !os.flush()) {
            warn("shard: cannot write " + path);
            return false;
        }
        return true;
    };

    bool ok = metrics::writeJson(stats.metrics,
                                 dir + "/" + kMetricsFile);
    if (!ok)
        warn("shard: cannot write " + dir + "/" + kMetricsFile);
    if (stats.coverageTracked)
        ok = cover::writeJson(stats.coverage,
                              dir + "/" + kCoverageFile) &&
             ok;
    if (db)
        ok = db->exportCsv(dir + "/" + kDbFile) && ok;

    // stats.json: the headline RunStats counters in fixed key order.
    // Wall-clock fields (ttc, gen/exe seconds) are excluded so the
    // file is byte-comparable across runs and shards.
    std::ostringstream js;
    js << "{\n  \"schema\": \"scamv-shard-stats-v1\",\n";
    const auto field = [&js](const char *key, std::int64_t val,
                             bool last = false) {
        js << "  \"" << key << "\": " << val << (last ? "\n" : ",\n");
    };
    field("programs", stats.programs);
    field("programs_with_cex", stats.programsWithCex);
    field("experiments", stats.experiments);
    field("counterexamples", stats.counterexamples);
    field("inconclusive", stats.inconclusive);
    field("generation_failures", stats.generationFailures);
    field("faults_injected", stats.faultsInjected);
    field("retry_attempts", stats.retryAttempts);
    field("quarantined", stats.quarantined);
    field("degraded", stats.degraded);
    field("program_failures", stats.programFailures);
    field("db_write_drops", stats.dbWriteDrops);
    field("coverage_tracked", stats.coverageTracked ? 1 : 0);
    field("covered_classes", stats.coveredClasses);
    field("class_universe",
          static_cast<std::int64_t>(stats.classUniverse));
    field("early_stopped", stats.earlyStopped);
    field("ledger_merge_drops", stats.ledgerMergeDrops);
    field("scheduler_degraded", stats.schedulerDegraded ? 1 : 0, true);
    js << "}\n";
    return write_text(dir + "/" + kStatsFile, js.str()) && ok;
}

} // namespace scamv::shard
