/**
 * @file
 * Sharded multi-process campaigns: planner, worker, coordinator.
 *
 * A campaign's program budget is embarrassingly parallel (see
 * DESIGN.md, "Concurrency model"), so it can be split across worker
 * *processes* just as PR 1 split it across threads: the planner
 * partitions the program-index range [0, programs) into contiguous
 * slices as a pure function of (seed, shardCount, shardIndex) — any
 * worker can compute its own slice from the campaign config alone —
 * each worker runs its slice through the existing pipeline machinery
 * (`core::runCampaignSlice`) and serializes the per-program outcomes
 * into a checksummed text artifact ("scamv-shard-v1"), and the
 * coordinator (`mergeCampaign`) folds N shard outputs in
 * program-index order through the same merge tail a single-process
 * run uses (`core::mergeCampaignOutcomes`).
 *
 * Determinism contract (ARCHITECTURE.md, invariant 8): under the
 * Uniform schedule the merged campaign artifacts — metrics JSON,
 * coverage JSON, qcache checkpoint, ExperimentDb CSV — are
 * byte-identical to a 1-process, 1-thread run of the same config, for
 * any shard count.  Workers ship raw per-program outcomes, never
 * pre-merged aggregates: metric folding is associative but not
 * commutative over doubles, so only the coordinator folds, in
 * program-index order, with fresh per-program fault injectors whose
 * decisions replay exactly (attempt counters restart at 0 per
 * program, as in the single-process tail).  The Adaptive schedule
 * degrades deterministically to *per-shard* round planning (each
 * worker plans rounds from a shard-local ledger over its own budget;
 * recorded as `shard.schedule_local` in the global registry) — the
 * merge is still deterministic for a fixed partition, but not
 * bit-equal to a global adaptive run.
 *
 * Failure model: shard artifacts are validated like qcache
 * checkpoints — every line carries an fnv1a checksum, a corrupt or
 * truncated program group is dropped and counted
 * (`shard.load_dropped` in the global registry), and the
 * `shard_artifact_corrupt` fault site (support/faults.hh) injects
 * exactly such damage.  The coordinator either completes with the
 * lost programs recorded as a coverage gap (`MergeResult::
 * missingPrograms`) or re-executes them (`rerunMissing`) — re-runs
 * are pure functions of (cfg, program index), so a recovered
 * campaign is byte-identical to an undamaged one.
 */

#ifndef SCAMV_SHARD_SHARD_HH
#define SCAMV_SHARD_SHARD_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.hh"

namespace scamv::shard {

/** Which shard of how many ("i/N"). */
struct ShardSpec {
    int index = 0;
    int count = 1;

    bool operator==(const ShardSpec &) const = default;
};

/** Contiguous program-index slice owned by one shard. */
struct Slice {
    int first = 0;
    int count = 0;

    bool operator==(const Slice &) const = default;
};

/**
 * Parse a "i/N" shard spec (0 <= i < N, N >= 1).
 * @return nullopt on malformed input.
 */
std::optional<ShardSpec> parseShardSpec(std::string_view spec);

/**
 * Shard spec from the `SCAMV_SHARD` environment variable ("i/N").
 * @return nullopt when unset; malformed values warn and count as
 * unset.
 */
std::optional<ShardSpec> specFromEnv();

/** `SCAMV_SHARD_DIR` environment variable, or `fallback` if unset. */
std::string dirFromEnv(const std::string &fallback);

/**
 * Deterministic partition of [0, programs) into `shard_count`
 * contiguous slices.  Pure function of the arguments: every worker
 * computes its own slice without coordination, and the slices are
 * exhaustive and non-overlapping for any input (ctest proves it).
 * The remainder programs are distributed by a seed-derived rotation,
 * so which shards carry an extra program is campaign-specific but
 * reproducible.
 */
Slice planShard(std::uint64_t seed, int programs, int shard_count,
                int shard_index);

/** @return the shard directory `<root>/shard-<index>`. */
std::string shardDir(const std::string &root, int shard_index);

/** Artifact file names inside a shard (or campaign root) directory. */
inline constexpr const char *kOutcomesFile = "outcomes.shard";
inline constexpr const char *kMetricsFile = "metrics.json";
inline constexpr const char *kCoverageFile = "coverage.json";
inline constexpr const char *kDbFile = "db.csv";
inline constexpr const char *kStatsFile = "stats.json";
inline constexpr const char *kQcacheFile = "qcache.txt";

/**
 * Serialize a campaign slice as a "scamv-shard-v1" artifact: a header
 * line binding the shard coordinates to the campaign config (seed,
 * program budget, slice bounds, early-stop and local-planning flags)
 * followed by one checksummed record group per slice slot — outcome
 * flags, the task's full metrics snapshot, its coverage delta and its
 * buffered experiment records.  Every line ends in an fnv1a checksum
 * over the line's prefix (the qcache checkpoint convention), and
 * string fields are percent-escaped, so the format survives program
 * names with spaces and multi-line program text.
 */
std::string encodeSlice(const core::CampaignSlice &slice,
                        const ShardSpec &spec,
                        const core::PipelineConfig &cfg);

/** A decoded shard artifact. */
struct DecodedSlice {
    ShardSpec spec;
    std::uint64_t seed = 0;
    int programs = 0;
    core::CampaignSlice slice;
    /** present[k]: slot k's record group loaded intact.  A corrupt or
     *  truncated group is dropped whole (drop-and-count, like qcache
     *  load) and its slot left empty. */
    std::vector<bool> present;
    /** Record groups dropped by checksum/parse failure or an injected
     *  shard_artifact_corrupt fault. */
    std::uint64_t droppedGroups = 0;
};

/**
 * Parse a "scamv-shard-v1" artifact.  Checksum-validates every line;
 * a damaged line drops its whole program group (never a partial
 * outcome).  Fires the `shard_artifact_corrupt` fault site once per
 * group when an injector is installed, mirroring qcache's load-time
 * injection.  @return nullopt when the header itself is missing,
 * foreign or damaged (the whole artifact is unusable).
 */
std::optional<DecodedSlice> decodeSlice(std::string_view text);

/**
 * Merge shard qcache checkpoint files into `out_path`: the header
 * plus every checksum-valid record, concatenated in shard order with
 * keep-first deduplication by cache key — the same keep-first rule
 * `QueryCache::store` applies, which is what makes the merged file
 * byte-identical to a 1-process checkpoint (contiguous ascending
 * slices append their records in program-index order; duplicate
 * cross-shard solves are byte-identical and dropped).  Invalid
 * records are dropped and counted (`shard.load_dropped`); inputs
 * that do not exist are skipped.
 * @return number of records written, or nullopt when `out_path`
 * cannot be written.
 */
std::optional<std::uint64_t>
mergeQcacheFiles(const std::vector<std::string> &inputs,
                 const std::string &out_path);

/**
 * Write the standard campaign artifact set into `dir`: metrics.json
 * (scamv-metrics-v1), coverage.json (scamv-coverage-v1, only when
 * coverage was tracked), db.csv (when `db` is given) and stats.json
 * (scamv-shard-stats-v1 — the RunStats counters; wall-clock fields
 * are excluded so the file is byte-comparable across runs).
 * @return success of every write.
 */
bool writeCampaignArtifacts(const core::RunStats &stats,
                            const core::ExperimentDb *db,
                            const std::string &dir);

/** What a worker run produced. */
struct WorkerResult {
    /** Shard-local stats (the slice folded through the merge tail). */
    core::RunStats stats;
    /** Slice bounds this worker owned. */
    Slice slice;
    /** Every artifact write succeeded. */
    bool ok = false;
};

/**
 * Run one shard of the campaign and emit its artifacts into `dir`:
 * outcomes.shard (the transfer format the coordinator consumes),
 * plus the shard-local metrics.json / coverage.json / db.csv /
 * stats.json and — when SCAMV_QCACHE_MB enables caching and no cache
 * was configured — a per-shard qcache checkpoint qcache.txt.
 * `cfg` is resolved internally (`core::resolveCampaignEnv`); the
 * slice is computed with `planShard`.  Thread-safe against other
 * workers in the same process (shard state is all local).
 */
WorkerResult runWorker(core::PipelineConfig cfg, const ShardSpec &spec,
                       const std::string &dir);

/** Coordinator options. */
struct MergeOptions {
    /** Re-execute lost programs instead of recording a gap.  Re-runs
     *  are deterministic, so recovery is byte-identical. */
    bool rerunMissing = false;
    /** Fail (`MergeResult::ok = false`) when any shard dropped
     *  database writes or programs stayed missing. */
    bool strict = false;
};

/** What the coordinator produced. */
struct MergeResult {
    core::RunStats stats;
    /** Strict verdict (always true when !MergeOptions::strict). */
    bool ok = true;
    /** Programs with no usable outcome (empty after a successful
     *  rerunMissing recovery). */
    std::vector<int> missingPrograms;
    /** Programs re-executed by rerunMissing. */
    std::vector<int> rerunPrograms;
    /** Shard artifact files that were missing or foreign. */
    std::uint64_t droppedShards = 0;
    /** Record groups dropped across all shard artifacts. */
    std::uint64_t droppedGroups = 0;
    /** Database-write drops of the merged flush attributed to the
     *  shard that produced each program (index = shard). */
    std::vector<std::int64_t> shardDbWriteDrops;
};

/**
 * Fold `shard_count` shard outputs under `root` (see shardDir) into
 * campaign-level artifacts written to `root`, byte-identical under
 * the Uniform schedule to a 1-process, 1-thread run — same merge
 * tail, same per-program injector coordinates, same export writers.
 * Artifact damage is handled like qcache load: checksum-validate,
 * drop-and-count (`shard.load_dropped`), then either record the gap
 * or re-dispatch the lost programs (`MergeOptions::rerunMissing`).
 * The campaign qcache checkpoint is rebuilt from the per-shard
 * checkpoint files with `mergeQcacheFiles`.
 */
MergeResult mergeCampaign(core::PipelineConfig cfg, int shard_count,
                          const std::string &root,
                          const MergeOptions &opts = {});

/**
 * The small deterministic campaign the scamv_worker / scamv_merge
 * binaries and bench_shard share: Stride template, Mpart validated
 * against refined MpartRefined, attacker-visible set window 61..127,
 * deterministic metrics clock, single worker thread per process.
 * `line` selects Mline coverage (PcAndLine) instead of the default
 * path-pair coverage whose Canonical/Pc enumeration exercises the
 * query cache.
 */
core::PipelineConfig defaultWorkload(int programs, int tests,
                                     std::uint64_t seed, bool adaptive,
                                     bool line);

/**
 * The deterministic corpus campaign: like defaultWorkload but the
 * programs are the compiled `.sc` kernels of `corpus_dir` (sorted by
 * filename) instead of generated Stride programs, validating the
 * cacheless Mpc model refined by the constant-time Mct model — the
 * refinement that makes secret-dependent addresses "interesting".
 * The whole cache-set window is attacker-visible so address leaks are
 * observable wherever the kernel's arrays land.  Corpus programs use
 * Pc coverage (their ledger bucket is "corpus:<name>").
 */
core::PipelineConfig corpusWorkload(int programs, int tests,
                                    std::uint64_t seed, bool adaptive,
                                    const std::string &corpus_dir);

} // namespace scamv::shard

#endif // SCAMV_SHARD_SHARD_HH
