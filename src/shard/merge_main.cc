/**
 * @file
 * scamv_merge: fold N shard outputs into campaign artifacts.
 *
 *   scamv_merge --shards N --dir DIR [--rerun-missing] [--strict]
 *               [workload flags]
 *
 * Reads DIR/shard-<i>/ for i in [0, N), writes the campaign-level
 * metrics.json / coverage.json / db.csv / stats.json / qcache.txt
 * into DIR.  Workload flags must match the worker invocations.
 * Exit status: 0 on success; 1 when --strict found dropped database
 * writes or unrecovered missing programs (or artifacts could not be
 * written).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "shard/shard.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --shards N [--dir DIR] [--rerun-missing] "
        "[--strict]\n"
        "          [--programs N] [--tests N] [--seed S]\n"
        "          [--adaptive] [--line] [--corpus DIR]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scamv;

    int programs = 24;
    int tests = 6;
    std::uint64_t seed = 99;
    bool adaptive = false;
    bool line = false;
    std::string corpus;
    int shards = 0;
    std::string dir;
    shard::MergeOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--shards") {
            const char *v = next();
            if (!v || (shards = std::atoi(v)) < 1)
                return usage(argv[0]);
        } else if (arg == "--dir") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            dir = v;
        } else if (arg == "--programs") {
            const char *v = next();
            if (!v || (programs = std::atoi(v)) < 1)
                return usage(argv[0]);
        } else if (arg == "--tests") {
            const char *v = next();
            if (!v || (tests = std::atoi(v)) < 1)
                return usage(argv[0]);
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            seed = std::strtoull(v, nullptr, 0);
        } else if (arg == "--adaptive") {
            adaptive = true;
        } else if (arg == "--line") {
            line = true;
        } else if (arg == "--corpus") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            corpus = v;
        } else if (arg == "--rerun-missing") {
            opts.rerunMissing = true;
        } else if (arg == "--strict") {
            opts.strict = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (!shards)
        return usage(argv[0]);
    if (dir.empty())
        dir = shard::dirFromEnv(".");

    core::PipelineConfig cfg =
        corpus.empty()
            ? shard::defaultWorkload(programs, tests, seed, adaptive,
                                     line)
            : shard::corpusWorkload(programs, tests, seed, adaptive,
                                    corpus);
    cover::CoverageLedger ledger;
    cfg.coverageLedger = &ledger;
    core::ExperimentDb db;
    cfg.database = &db;

    const shard::MergeResult res =
        shard::mergeCampaign(cfg, shards, dir, opts);

    std::printf("scamv_merge: %d shards -> %d programs, %lld "
                "experiments, %lld cex, %d quarantined\n",
                shards, res.stats.programs,
                static_cast<long long>(res.stats.experiments),
                static_cast<long long>(res.stats.counterexamples),
                res.stats.quarantined);
    if (res.droppedShards || res.droppedGroups)
        std::printf("scamv_merge: dropped %llu shard artifacts, "
                    "%llu record groups\n",
                    static_cast<unsigned long long>(res.droppedShards),
                    static_cast<unsigned long long>(
                        res.droppedGroups));
    if (!res.rerunPrograms.empty())
        std::printf("scamv_merge: re-dispatched %zu lost programs\n",
                    res.rerunPrograms.size());
    if (!res.missingPrograms.empty())
        std::printf("scamv_merge: %zu programs missing (coverage "
                    "gap; use --rerun-missing to re-dispatch)\n",
                    res.missingPrograms.size());
    for (std::size_t sh = 0; sh < res.shardDbWriteDrops.size(); ++sh)
        if (res.shardDbWriteDrops[sh])
            std::printf("scamv_merge: shard %zu dropped %lld "
                        "database writes\n",
                        sh,
                        static_cast<long long>(
                            res.shardDbWriteDrops[sh]));
    if (!res.ok)
        std::printf("scamv_merge: --strict failure\n");
    return res.ok ? 0 : 1;
}
