/**
 * @file
 * Shard planner: deterministic partition of the program-index range.
 */

#include "shard/shard.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "support/qcache/canon.hh"

namespace scamv::shard {

std::optional<ShardSpec>
parseShardSpec(std::string_view spec)
{
    const std::size_t slash = spec.find('/');
    if (slash == std::string_view::npos || slash == 0 ||
        slash + 1 >= spec.size())
        return std::nullopt;
    const auto digits = [](std::string_view s) {
        if (s.empty())
            return false;
        for (char c : s)
            if (c < '0' || c > '9')
                return false;
        return true;
    };
    const std::string_view idx = spec.substr(0, slash);
    const std::string_view cnt = spec.substr(slash + 1);
    // Reject non-digits (including signs) and absurd widths.
    if (!digits(idx) || !digits(cnt) || idx.size() > 9 || cnt.size() > 9)
        return std::nullopt;
    ShardSpec out;
    out.index = std::atoi(std::string(idx).c_str());
    out.count = std::atoi(std::string(cnt).c_str());
    if (out.count < 1 || out.index < 0 || out.index >= out.count)
        return std::nullopt;
    return out;
}

std::optional<ShardSpec>
specFromEnv()
{
    const char *env = std::getenv("SCAMV_SHARD");
    if (!env || !*env)
        return std::nullopt;
    std::optional<ShardSpec> spec = parseShardSpec(env);
    if (!spec)
        warn("shard: invalid SCAMV_SHARD \"" + std::string(env) +
             "\" (want \"i/N\" with 0 <= i < N), ignoring");
    return spec;
}

std::string
dirFromEnv(const std::string &fallback)
{
    const char *env = std::getenv("SCAMV_SHARD_DIR");
    return env && *env ? std::string(env) : fallback;
}

Slice
planShard(std::uint64_t seed, int programs, int shard_count,
          int shard_index)
{
    if (programs < 0)
        programs = 0;
    if (shard_count < 1)
        shard_count = 1;
    if (shard_index < 0 || shard_index >= shard_count)
        return {};
    const int base = programs / shard_count;
    const int rem = programs % shard_count;
    // The remainder programs go to `rem` consecutive shards starting
    // at a seed-derived rotation, so which shards carry an extra
    // program varies per campaign but every worker computes the same
    // partition.
    const int rot = static_cast<int>(
        qcache::splitmix64(seed ^ 0x5a4dc0de5eedULL) %
        static_cast<std::uint64_t>(shard_count));
    const auto extra = [&](int i) {
        return ((i + shard_count - rot) % shard_count) < rem ? 1 : 0;
    };
    Slice out;
    for (int i = 0; i < shard_index; ++i)
        out.first += base + extra(i);
    out.count = base + extra(shard_index);
    return out;
}

std::string
shardDir(const std::string &root, int shard_index)
{
    return root + "/shard-" + std::to_string(shard_index);
}

} // namespace scamv::shard
