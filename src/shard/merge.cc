/**
 * @file
 * Shard coordinator: fold N shard outputs into campaign artifacts
 * byte-identical (Uniform schedule) to a 1-process, 1-thread run.
 */

#include "shard/shard.hh"

#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/qcache/qcache.hh"

namespace scamv::shard {
namespace {

/**
 * Replay the merged flush's db-write fault decisions for one program
 * against a scratch injector: same coordinates (campaign seed,
 * program index, DbWrite site, attempt), same delta-gated retry
 * break, so the count matches the drops the real flush will take —
 * and the drops the owning shard's local flush already took.
 */
std::int64_t
simulateDbDrops(const core::PipelineConfig &cfg, int prog_i,
                std::size_t records)
{
    faults::Injector injector(cfg.faultPlan, cfg.seed, prog_i);
    std::int64_t drops = 0;
    for (std::size_t r = 0; r < records; ++r) {
        bool written = false;
        for (int attempt = 0;; ++attempt) {
            written = !injector.fire(faults::Site::DbWrite);
            if (written || attempt >= cfg.retryMax)
                break;
        }
        if (!written)
            ++drops;
    }
    return drops;
}

std::string
readWhole(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return in ? ss.str() : std::string();
}

} // namespace

MergeResult
mergeCampaign(core::PipelineConfig cfg, int shard_count,
              const std::string &root, const MergeOptions &opts)
{
    MergeResult res;
    cfg = core::resolveCampaignEnv(std::move(cfg));
    // The coordinator never latches the shared environment cache:
    // that would append rerun solves to the very checkpoint the merge
    // is about to rebuild from the per-shard files.  Re-dispatched
    // programs instead run against a private warm cache seeded from
    // the shard checkpoints (see the rerun block below) so their
    // metrics replay exactly what the worker recorded.
    cfg.queryCache = nullptr;
    // The merged flush — and db.csv — need a database even when the
    // caller wired none (a 1-process reference run logs too).
    core::ExperimentDb local_db;
    if (!cfg.database)
        cfg.database = &local_db;

    if (shard_count < 1)
        shard_count = 1;
    const int programs = cfg.programs > 0 ? cfg.programs : 0;
    metrics::Registry &global = metrics::Registry::global();
    const bool inject_load =
        cfg.faultPlan.enabled() &&
        cfg.faultPlan.covers(faults::Site::ShardArtifactCorrupt);

    std::vector<core::ProgramOutcome> slots(
        static_cast<std::size_t>(programs));
    std::vector<bool> present(static_cast<std::size_t>(programs),
                              false);
    std::vector<int> owner(static_cast<std::size_t>(programs), -1);
    std::vector<Slice> plan(static_cast<std::size_t>(shard_count));
    // Per-shard early-stop contribution (-1: artifact unusable, the
    // count is unknown until a re-dispatch replays the slice).
    std::vector<int> early(static_cast<std::size_t>(shard_count), -1);
    std::vector<bool> local_sched(
        static_cast<std::size_t>(shard_count), false);

    for (int sh = 0; sh < shard_count; ++sh) {
        const Slice sl = planShard(cfg.seed, programs, shard_count, sh);
        plan[static_cast<std::size_t>(sh)] = sl;
        for (int k = 0; k < sl.count; ++k)
            owner[static_cast<std::size_t>(sl.first + k)] = sh;

        const std::string path = shardDir(root, sh) + "/" +
                                 kOutcomesFile;
        std::optional<DecodedSlice> dec;
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            // Load-time injection mirrors qcache: one decision per
            // record group, deterministic in (seed, shard's first
            // program, site, group ordinal).  Injected-fault tallies
            // go to a scratch registry so the campaign snapshot
            // stays byte-identical to a 1-process run.
            faults::Injector injector(cfg.faultPlan, cfg.seed,
                                      sl.first);
            std::optional<faults::ScopedInjector> inj_scope;
            metrics::Registry scratch(
                metrics::ClockMode::Deterministic);
            metrics::ScopedRegistry reg_scope(scratch);
            if (inject_load)
                inj_scope.emplace(injector);
            dec = decodeSlice(ss.str());
        }
        const ShardSpec want{sh, shard_count};
        if (!dec || dec->spec != want || dec->seed != cfg.seed ||
            dec->programs != programs || dec->slice.first != sl.first ||
            dec->slice.count != sl.count) {
            warn("shard: unusable shard artifact " + path +
                 " (missing, foreign or damaged header)");
            ++res.droppedShards;
            res.droppedGroups +=
                static_cast<std::uint64_t>(sl.count);
            global.counter("shard.load_dropped")
                .add(static_cast<std::uint64_t>(sl.count));
            continue;
        }
        res.droppedGroups += dec->droppedGroups;
        if (dec->droppedGroups)
            global.counter("shard.load_dropped")
                .add(dec->droppedGroups);
        early[static_cast<std::size_t>(sh)] =
            dec->slice.earlyStopped;
        local_sched[static_cast<std::size_t>(sh)] =
            dec->slice.scheduleLocal;
        for (int k = 0; k < sl.count; ++k) {
            if (!dec->present[static_cast<std::size_t>(k)])
                continue;
            slots[static_cast<std::size_t>(sl.first + k)] = std::move(
                dec->slice.outcomes[static_cast<std::size_t>(k)]);
            present[static_cast<std::size_t>(sl.first + k)] = true;
        }
    }

    const auto collect_missing = [&]() {
        res.missingPrograms.clear();
        for (int i = 0; i < programs; ++i)
            if (!present[static_cast<std::size_t>(i)])
                res.missingPrograms.push_back(i);
    };
    collect_missing();

    // Per-shard contribution to the merged qcache checkpoint: the
    // worker's own file when it exists, else the segment
    // reconstructed during that shard's re-dispatch below.
    std::vector<std::string> qcontrib;
    for (int sh = 0; sh < shard_count; ++sh)
        qcontrib.push_back(shardDir(root, sh) + "/" + kQcacheFile);
    bool any_qcache = false;
    {
        std::error_code qec;
        for (const std::string &q : qcontrib)
            any_qcache =
                any_qcache || std::filesystem::exists(q, qec);
    }

    if (opts.rerunMissing && !res.missingPrograms.empty()) {
        const core::Schedule sched =
            cfg.schedule.value_or(core::Schedule::Uniform);
        std::vector<gen::TemplateKind> templates = cfg.templateKinds;
        if (templates.empty())
            templates.push_back(cfg.templateKind);
        const bool track = core::coverageTracked(cfg);
        // Workers that found no explicit cache attach a private one
        // when the environment enables it; a rerun must replay under
        // the same regime or the deterministic-clock solver metrics
        // diverge (cache hits replay the captured delta — cold and
        // warm runs agree, cached and uncached runs do not).
        // Fault-plan campaigns bypass the cache entirely
        // (resolveCampaignEnv), so their workers ran uncached and a
        // byte-identical rerun must too.
        const qcache::CacheConfig qenv =
            qcache::QueryCache::configFromEnv();
        const bool use_cache =
            qenv.maxBytes > 0 && !cfg.faultPlan.enabled();
        const std::string seed_path = root + "/.qcache.rerun";

        for (int sh = 0; sh < shard_count; ++sh) {
            const Slice sl = plan[static_cast<std::size_t>(sh)];
            bool needs = false;
            for (int k = 0; k < sl.count && !needs; ++k)
                needs = !present[static_cast<std::size_t>(sl.first +
                                                          k)];
            if (!needs)
                continue;

            // Warm the rerun cache with every entry the campaign
            // first produced before or inside this shard: queries the
            // worker solved replay their captured deltas, queries the
            // worker itself missed re-solve identically.  Entries
            // from later shards must NOT be visible, or a lost
            // shard's reconstructed checkpoint segment would drop
            // entries that first occurred here.
            std::optional<qcache::QueryCache> cache;
            std::string seed_text;
            std::error_code ec;
            const bool own_file = std::filesystem::exists(
                qcontrib[static_cast<std::size_t>(sh)], ec);
            if (use_cache) {
                const std::vector<std::string> seeds(
                    qcontrib.begin(),
                    qcontrib.begin() + static_cast<std::ptrdiff_t>(
                                           sh + 1));
                mergeQcacheFiles(seeds, seed_path);
                seed_text = readWhole(seed_path);
                qcache::CacheConfig qc = qenv;
                qc.filePath = seed_path;
                cache.emplace(qc);
                cfg.queryCache = &*cache;
            }

            if (sched == core::Schedule::Uniform) {
                // Uniform tasks are pure functions of the global
                // program index: re-dispatch exactly the lost
                // programs, in index order.
                for (int k = 0; k < sl.count; ++k) {
                    const int i = sl.first + k;
                    if (present[static_cast<std::size_t>(i)])
                        continue;
                    core::ProgramTask task;
                    task.prog_i = i;
                    task.templ =
                        templates[static_cast<std::size_t>(i) %
                                  templates.size()];
                    task.collectCover = track;
                    slots[static_cast<std::size_t>(i)] =
                        core::runProgramTask(cfg, task);
                    present[static_cast<std::size_t>(i)] = true;
                    res.rerunPrograms.push_back(i);
                }
            } else {
                // Adaptive round planning is slice-local: a partial
                // rerun cannot reproduce the worker's template
                // assignment, so re-dispatch the whole slice and keep
                // only the lost slots (the rest replay identically).
                core::CampaignSlice again =
                    core::runCampaignSlice(cfg, sl.first, sl.count);
                early[static_cast<std::size_t>(sh)] =
                    again.earlyStopped;
                local_sched[static_cast<std::size_t>(sh)] =
                    again.scheduleLocal;
                for (int k = 0; k < sl.count; ++k) {
                    const std::size_t at =
                        static_cast<std::size_t>(sl.first + k);
                    if (present[at])
                        continue;
                    slots[at] = std::move(
                        again.outcomes[static_cast<std::size_t>(k)]);
                    present[at] = true;
                    res.rerunPrograms.push_back(sl.first + k);
                }
            }

            if (use_cache) {
                cache.reset(); // flush appended solves to seed_path
                cfg.queryCache = nullptr;
                if (!own_file) {
                    // The shard lost its checkpoint along with its
                    // outcomes: the entries appended past the seed
                    // are exactly the queries the campaign first
                    // produced in this shard, in program order —
                    // its reconstructed checkpoint segment.
                    const std::string full = readWhole(seed_path);
                    const std::string seg_path =
                        shardDir(root, sh) + "/qcache.rerun";
                    std::filesystem::create_directories(
                        shardDir(root, sh), ec);
                    std::ofstream seg(seg_path, std::ios::binary |
                                                    std::ios::trunc);
                    if (seg &&
                        (seg << "scamv-qcache-v1\n"
                             << full.substr(std::min(
                                    seed_text.size(), full.size())))) {
                        qcontrib[static_cast<std::size_t>(sh)] =
                            seg_path;
                        any_qcache = true;
                    }
                }
                std::filesystem::remove(seed_path, ec);
            }
        }
        if (!res.rerunPrograms.empty())
            global.counter("shard.rerun_programs")
                .add(static_cast<std::uint64_t>(
                    res.rerunPrograms.size()));
        collect_missing();
    }

    int early_total = 0;
    for (int sh = 0; sh < shard_count; ++sh) {
        if (early[static_cast<std::size_t>(sh)] > 0)
            early_total += early[static_cast<std::size_t>(sh)];
        if (local_sched[static_cast<std::size_t>(sh)])
            global.counter("shard.schedule_local").inc();
    }

    // Attribute the merged flush's injected db-write drops to the
    // shard that produced each program (same decision coordinates as
    // both the real flush below and the shard's own local flush).
    res.shardDbWriteDrops.assign(
        static_cast<std::size_t>(shard_count), 0);
    if (cfg.faultPlan.enabled() &&
        cfg.faultPlan.covers(faults::Site::DbWrite)) {
        metrics::Registry scratch(metrics::ClockMode::Deterministic);
        metrics::ScopedRegistry reg_scope(scratch);
        for (int i = 0; i < programs; ++i) {
            const std::size_t n =
                slots[static_cast<std::size_t>(i)].records.size();
            if (!n)
                continue;
            const std::int64_t drops = simulateDbDrops(cfg, i, n);
            if (drops && owner[static_cast<std::size_t>(i)] >= 0)
                res.shardDbWriteDrops[static_cast<std::size_t>(
                    owner[static_cast<std::size_t>(i)])] += drops;
        }
        for (int sh = 0; sh < shard_count; ++sh)
            if (res.shardDbWriteDrops[static_cast<std::size_t>(sh)])
                global
                    .counter("shard.db_write_drops." +
                             std::to_string(sh))
                    .add(static_cast<std::uint64_t>(
                        res.shardDbWriteDrops[
                            static_cast<std::size_t>(sh)]));
    }

    // The authoritative fold: the exact merge tail of a 1-process
    // run, over full-length slots in program-index order.
    core::MergeTailOptions topts;
    topts.earlyStopped = early_total;
    topts.honorEnvExports = true;
    res.stats = core::mergeCampaignOutcomes(cfg, slots, topts);

    std::error_code ec;
    std::filesystem::create_directories(root, ec);
    bool artifacts_ok =
        writeCampaignArtifacts(res.stats, cfg.database, root);

    // Campaign qcache checkpoint, rebuilt from the per-shard files —
    // reconstructed segments standing in for lost ones — in shard
    // order (skip entirely when no shard persisted a cache).
    if (any_qcache &&
        !mergeQcacheFiles(qcontrib, root + "/" + kQcacheFile)) {
        warn("shard: cannot write merged qcache checkpoint under " +
             root);
        artifacts_ok = false;
    }

    res.ok = true;
    if (opts.strict) {
        for (const std::int64_t drops : res.shardDbWriteDrops)
            if (drops > 0)
                res.ok = false;
        if (!res.missingPrograms.empty() || !artifacts_ok)
            res.ok = false;
    }
    return res;
}

} // namespace scamv::shard
