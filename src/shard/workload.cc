/**
 * @file
 * The deterministic campaign workload shared by the scamv_worker and
 * scamv_merge binaries and bench_shard.
 */

#include "shard/shard.hh"

namespace scamv::shard {

core::PipelineConfig
defaultWorkload(int programs, int tests, std::uint64_t seed,
                bool adaptive, bool line)
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage =
        line ? core::Coverage::PcAndLine : core::Coverage::Pc;
    cfg.programs = programs;
    cfg.testsPerProgram = tests;
    cfg.seed = seed;
    // One worker thread per process: shard-level parallelism comes
    // from running N worker processes, and the byte-identity
    // reference is the 1-process, 1-thread run.
    cfg.threads = 1;
    // Artifacts are diffed byte-for-byte across process counts, so
    // every duration must come from the deterministic clock.
    cfg.deterministicMetricsTiming = true;
    // Pin the schedule explicitly: workers and coordinator must
    // answer the uniform/adaptive question identically even if their
    // environments diverge.
    cfg.schedule =
        adaptive ? core::Schedule::Adaptive : core::Schedule::Uniform;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    return cfg;
}

core::PipelineConfig
corpusWorkload(int programs, int tests, std::uint64_t seed,
               bool adaptive, const std::string &corpus_dir)
{
    core::PipelineConfig cfg =
        defaultWorkload(programs, tests, seed, adaptive, /*line=*/false);
    // Validate the cacheless model refined by the ct model: the
    // refinement disequality asks for two low-equivalent states whose
    // *addresses* differ — exactly what a secret-indexed table lookup
    // provides and a constant-time kernel cannot.
    cfg.model = obs::ModelKind::Mpc;
    cfg.refinement = obs::ModelKind::Mct;
    // Mline support coverage: unguided canonical models make the two
    // states' addresses differ by a few bytes — same cache line, so
    // the platform cannot distinguish them (the paper's "too similar"
    // enumeration).  Pinning per-test set-index classes spreads the
    // states across lines, which is what flushes out the S-box leak.
    cfg.coverage = core::Coverage::PcAndLine;
    // Corpus arrays span the whole region; make every set observable.
    cfg.modelParams.attacker.loSet = 0;
    cfg.platform.visibleLoSet = 0;

    front::CompileOptions fopts;
    fopts.arrayBase = cfg.region.base;
    fopts.arrayLimit = cfg.region.base + cfg.region.size;
    std::vector<front::CompiledProgram> loaded =
        front::loadCorpusDir(corpus_dir, fopts);
    cfg.corpus = std::make_shared<
        const std::vector<front::CompiledProgram>>(std::move(loaded));
    return cfg;
}

} // namespace scamv::shard
