/**
 * @file
 * The deterministic campaign workload shared by the scamv_worker and
 * scamv_merge binaries and bench_shard.
 */

#include "shard/shard.hh"

namespace scamv::shard {

core::PipelineConfig
defaultWorkload(int programs, int tests, std::uint64_t seed,
                bool adaptive, bool line)
{
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::Stride;
    cfg.model = obs::ModelKind::Mpart;
    cfg.refinement = obs::ModelKind::MpartRefined;
    cfg.coverage =
        line ? core::Coverage::PcAndLine : core::Coverage::Pc;
    cfg.programs = programs;
    cfg.testsPerProgram = tests;
    cfg.seed = seed;
    // One worker thread per process: shard-level parallelism comes
    // from running N worker processes, and the byte-identity
    // reference is the 1-process, 1-thread run.
    cfg.threads = 1;
    // Artifacts are diffed byte-for-byte across process counts, so
    // every duration must come from the deterministic clock.
    cfg.deterministicMetricsTiming = true;
    // Pin the schedule explicitly: workers and coordinator must
    // answer the uniform/adaptive question identically even if their
    // environments diverge.
    cfg.schedule =
        adaptive ? core::Schedule::Adaptive : core::Schedule::Uniform;
    cfg.modelParams.attacker.loSet = 61;
    cfg.platform.visibleLoSet = 61;
    cfg.platform.visibleHiSet = 127;
    return cfg;
}

} // namespace scamv::shard
