/**
 * @file
 * scamv_worker: run one shard of a campaign (or the 1-process
 * reference run) and emit its artifacts.
 *
 *   scamv_worker --shard i/N --dir DIR [workload flags]
 *   scamv_worker --single   --dir DIR [workload flags]
 *
 * The shard spec and campaign root may also come from the
 * SCAMV_SHARD ("i/N") and SCAMV_SHARD_DIR environment variables, so
 * a CI matrix can fan the same command line out over shard indices.
 * Worker artifacts land in DIR/shard-<i>/; --single writes the
 * campaign-level reference artifacts directly into DIR.  Workload
 * flags (--programs, --tests, --seed, --adaptive, --line) must match
 * across every worker and the final scamv_merge invocation.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "core/pipeline.hh"
#include "shard/shard.hh"
#include "support/qcache/qcache.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--shard i/N | --single] [--dir DIR]\n"
        "          [--programs N] [--tests N] [--seed S]\n"
        "          [--adaptive] [--line] [--corpus DIR]\n"
        "Defaults: SCAMV_SHARD / SCAMV_SHARD_DIR from the "
        "environment.\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scamv;

    int programs = 24;
    int tests = 6;
    std::uint64_t seed = 99;
    bool adaptive = false;
    bool line = false;
    bool single = false;
    std::string corpus;
    std::string dir;
    std::optional<shard::ShardSpec> spec;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--shard") {
            const char *v = next();
            spec = v ? shard::parseShardSpec(v) : std::nullopt;
            if (!spec)
                return usage(argv[0]);
        } else if (arg == "--dir") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            dir = v;
        } else if (arg == "--programs") {
            const char *v = next();
            if (!v || (programs = std::atoi(v)) < 1)
                return usage(argv[0]);
        } else if (arg == "--tests") {
            const char *v = next();
            if (!v || (tests = std::atoi(v)) < 1)
                return usage(argv[0]);
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            seed = std::strtoull(v, nullptr, 0);
        } else if (arg == "--adaptive") {
            adaptive = true;
        } else if (arg == "--line") {
            line = true;
        } else if (arg == "--corpus") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            corpus = v;
        } else if (arg == "--single") {
            single = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (dir.empty())
        dir = shard::dirFromEnv(".");
    if (!single && !spec) {
        spec = shard::specFromEnv();
        if (!spec)
            return usage(argv[0]);
    }

    core::PipelineConfig cfg =
        corpus.empty()
            ? shard::defaultWorkload(programs, tests, seed, adaptive,
                                     line)
            : shard::corpusWorkload(programs, tests, seed, adaptive,
                                    corpus);
    cover::CoverageLedger ledger;
    cfg.coverageLedger = &ledger;

    if (single) {
        // The byte-identity reference: one process, one thread, same
        // artifact writers, campaign qcache checkpoint in DIR.
        std::error_code ec;
        std::filesystem::create_directories(dir, ec);
        core::ExperimentDb db;
        cfg.database = &db;
        std::unique_ptr<qcache::QueryCache> cache;
        qcache::CacheConfig qcfg = qcache::QueryCache::configFromEnv();
        if (qcfg.maxBytes > 0) {
            qcfg.filePath = dir + "/" + shard::kQcacheFile;
            cache = std::make_unique<qcache::QueryCache>(qcfg);
            cfg.queryCache = cache.get();
        }
        core::Pipeline pipeline(cfg);
        const core::RunStats stats = pipeline.run();
        const bool ok =
            shard::writeCampaignArtifacts(stats, &db, dir);
        std::printf("scamv_worker --single: %d programs, %lld "
                    "experiments, %lld cex -> %s\n",
                    stats.programs,
                    static_cast<long long>(stats.experiments),
                    static_cast<long long>(stats.counterexamples),
                    dir.c_str());
        return ok ? 0 : 1;
    }

    const std::string shard_dir = shard::shardDir(dir, spec->index);
    const shard::WorkerResult res =
        shard::runWorker(cfg, *spec, shard_dir);
    std::printf("scamv_worker %d/%d: programs [%d, %d), %lld "
                "experiments, %lld cex -> %s\n",
                spec->index, spec->count, res.slice.first,
                res.slice.first + res.slice.count,
                static_cast<long long>(res.stats.experiments),
                static_cast<long long>(res.stats.counterexamples),
                shard_dir.c_str());
    return res.ok ? 0 : 1;
}
