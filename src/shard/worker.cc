/**
 * @file
 * Shard worker: run one slice of the campaign and emit its artifacts.
 */

#include "shard/shard.hh"

#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>

#include "support/logging.hh"
#include "support/qcache/qcache.hh"

namespace scamv::shard {

WorkerResult
runWorker(core::PipelineConfig cfg, const ShardSpec &spec,
          const std::string &dir)
{
    WorkerResult res;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    // Per-shard qcache checkpoint: when the environment enables
    // caching and the caller wired no cache, point a private one at
    // the shard directory so the coordinator can rebuild the campaign
    // checkpoint from the per-shard files.  Must happen before
    // resolveCampaignEnv, which would otherwise latch the process-wide
    // shared cache on the campaign-level SCAMV_QCACHE_FILE.
    std::unique_ptr<qcache::QueryCache> cache;
    if (!cfg.queryCache) {
        qcache::CacheConfig qcfg = qcache::QueryCache::configFromEnv();
        if (qcfg.maxBytes > 0) {
            qcfg.filePath = dir + "/" + kQcacheFile;
            cache = std::make_unique<qcache::QueryCache>(qcfg);
            cfg.queryCache = cache.get();
        }
    }
    cfg = core::resolveCampaignEnv(std::move(cfg));

    const Slice sl =
        planShard(cfg.seed, cfg.programs, spec.count, spec.index);
    res.slice = sl;

    // The slice buffers experiment records even when the caller wired
    // no database — the coordinator's merged flush needs them — and
    // the shard-local merge tail folds into shard-local state, so
    // concurrent workers in one process never share mutable state.
    core::ExperimentDb shard_db;
    cover::CoverageLedger shard_ledger;
    core::PipelineConfig run_cfg = cfg;
    run_cfg.database = &shard_db;
    if (core::coverageTracked(cfg))
        run_cfg.coverageLedger = &shard_ledger;

    core::CampaignSlice slice =
        core::runCampaignSlice(run_cfg, sl.first, sl.count);

    // Serialize the transfer artifact before the merge tail consumes
    // the buffered records.
    const std::string text = encodeSlice(slice, spec, cfg);
    {
        const std::string path = dir + "/" + kOutcomesFile;
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        res.ok = os && (os << text) && os.flush();
        if (!res.ok)
            warn("shard: cannot write " + path);
    }

    // Shard-local campaign artifacts: place the slice into a
    // full-length slot array so the merge tail's per-program fault
    // injectors keep their *global* program coordinates (empty slots
    // fold as no-ops).
    std::vector<core::ProgramOutcome> slots(
        static_cast<std::size_t>(cfg.programs));
    for (int k = 0; k < slice.count; ++k)
        slots[static_cast<std::size_t>(sl.first + k)] =
            std::move(slice.outcomes[static_cast<std::size_t>(k)]);
    core::MergeTailOptions topts;
    topts.earlyStopped = slice.earlyStopped;
    topts.honorEnvExports = false;
    res.stats = core::mergeCampaignOutcomes(run_cfg, slots, topts);

    res.ok =
        writeCampaignArtifacts(res.stats, &shard_db, dir) && res.ok;
    return res;
}

} // namespace scamv::shard
