#include "harness/platform.hh"

#include "support/env.hh"
#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::harness {

ProgramInput
inputFromAssignment(const expr::Assignment &a, const std::string &suffix)
{
    ProgramInput input;
    for (int r = 0; r < bir::kNumRegs; ++r) {
        auto it = a.bvVars.find("x" + std::to_string(r) + suffix);
        input.regs.regs[r] = it == a.bvVars.end() ? 0 : it->second;
    }
    auto mit = a.mems.find("mem" + suffix);
    if (mit != a.mems.end())
        for (const auto &[addr, val] : mit->second.entries())
            input.mem.emplace_back(addr, val);
    return input;
}

Platform::Platform(const PlatformConfig &config, std::uint64_t noise_seed)
    : cfg(config), noiseRng(noise_seed),
      batched(config.simBatch >= 0
                  ? config.simBatch != 0
                  : envLong("SCAMV_SIM_BATCH", 0, 1)
                            .value_or(1) != 0)
{}

void
Platform::prepare(hw::Core &core, const bir::Program &program,
                  const ProgramInput &input)
{
    (void)program;
    // The platform module clears the cache (and thereby the stride
    // detector) before every execution and installs the test case's
    // initial memory words.
    core.cache().reset();
    core.tlb().reset();
    core.prefetcher().reset();
    core.memory().clear();
    for (const auto &[addr, val] : input.mem)
        core.memory().store(addr, val);
}

Platform::Measurement
Platform::measure(hw::Core &core, const bir::Program &program,
                  const ProgramInput &input)
{
    prepare(core, program, input);

    const int shift = cfg.core.geom.lineShift();
    const std::uint64_t set_bits = cfg.core.geom.setShift();
    const std::uint64_t sets = cfg.core.geom.numSets;

    if (cfg.channel == Channel::PrimeProbe) {
        // Prime: fill every visible set with the attacker's lines.
        for (std::uint64_t set = cfg.visibleLoSet;
             set <= cfg.visibleHiSet; ++set) {
            for (std::uint64_t way = 0; way < cfg.core.geom.ways;
                 ++way) {
                const std::uint64_t addr =
                    cfg.attackerArrayBase +
                    way * (sets << shift) + (set << shift);
                core.cache().access(addr);
            }
        }
    }

    core.run(program, input.regs, runScratch);

    // System interference: a stray access to a random line.
    if (cfg.noiseProbability > 0.0 &&
        noiseRng.chance(cfg.noiseProbability)) {
        metrics::current().counter("platform.noise_injections").inc();
        const std::uint64_t set =
            cfg.visibleLoSet +
            noiseRng.below(cfg.visibleHiSet - cfg.visibleLoSet + 1);
        const std::uint64_t tag = 0x7fffULL + noiseRng.below(16);
        const std::uint64_t addr =
            (tag << (shift + set_bits)) | (set << shift);
        core.cache().access(addr);
    }

    // Injected measurement flake: a stray access indistinguishable
    // from system interference, forced by the fault plan rather than
    // drawn from the noise probability.
    if (faults::maybeInject(faults::Site::HwFlake)) {
        const std::uint64_t set =
            cfg.visibleLoSet +
            noiseRng.below(cfg.visibleHiSet - cfg.visibleLoSet + 1);
        const std::uint64_t tag = 0x6eefULL + noiseRng.below(16);
        const std::uint64_t addr =
            (tag << (shift + set_bits)) | (set << shift);
        core.cache().access(addr);
    }

    Measurement m;
    if (cfg.channel == Channel::TlbSnapshot) {
        m.tlb = core.tlb().snapshot();
    } else if (cfg.channel == Channel::PrimeProbe) {
        // Probe: time a reload of every primed line (PMC cycles).
        // Victim activity in a set evicted attacker ways, turning
        // probe hits into misses.
        m.probeLatencies.reserve(cfg.visibleHiSet - cfg.visibleLoSet +
                                 1);
        for (std::uint64_t set = cfg.visibleLoSet;
             set <= cfg.visibleHiSet; ++set) {
            // Probe in reverse prime order: refreshing the most-
            // recently primed way first avoids evicting the ways
            // still to be probed (the standard anti-thrashing trick).
            std::uint64_t total = 0;
            for (std::uint64_t way = cfg.core.geom.ways; way > 0;
                 --way) {
                const std::uint64_t addr =
                    cfg.attackerArrayBase +
                    (way - 1) * (sets << shift) + (set << shift);
                total += core.timedLoad(addr);
            }
            m.probeLatencies.push_back(total);
        }
    } else {
        m.cache = core.cache().snapshot(cfg.visibleLoSet,
                                        cfg.visibleHiSet);
    }
    return m;
}

ExperimentResult
Platform::runExperiment(const bir::Program &program, const TestCase &tc,
                        const std::optional<ProgramInput> &training)
{
    SCAMV_ASSERT(cfg.repeats > 0, "repeats must be positive");
    metrics::Registry &reg = metrics::current();
    reg.counter("platform.experiments").inc();
    reg.counter("platform.repetitions")
        .add(static_cast<std::uint64_t>(cfg.repeats));
    reg.counter("platform.training_runs")
        .add(static_cast<std::uint64_t>(cfg.repeats) *
             static_cast<std::uint64_t>(cfg.trainingRuns));
    ExperimentResult result;
    result.totalReps = cfg.repeats;
    int clean_differing = 0;

    // Batched path: one arena-backed core for all repetitions, reset
    // in place per repetition.  The rebuild order (destroy the old
    // core, rewind the arena, reconstruct) keeps arena usage bounded
    // by one core's footprint; the arena keeps its blocks, so
    // steady-state experiments allocate nothing.
    std::optional<hw::Core> local;
    if (batched) {
        batchCore.reset();
        simArena.reset();
        batchCore =
            std::make_unique<hw::Core>(cfg.core, cfg.boardSeed, &simArena);
    }

    for (int rep = 0; rep < cfg.repeats; ++rep) {
        const std::uint64_t faults_before = faults::injectedCount();
        hw::Core *core_p;
        if (batched) {
            batchCore->resetMicroarch();
            core_p = batchCore.get();
        } else {
            local.emplace(cfg.core, cfg.boardSeed);
            local->predictor().reset();
            core_p = &*local;
        }
        hw::Core &core = *core_p;

        // Branch-predictor conditioning.  With a mistraining input
        // (Section 5.3) the PHT is driven toward the *other* path so
        // the measured runs mispredict.  Without one, the predictor is
        // warmed with s1 itself so both measured runs are predicted
        // correctly: the paper does not test the asymmetric case where
        // only one of the two executions mispredicts.
        const ProgramInput &warmup = training ? *training : tc.s1;
        for (int t = 0; t < cfg.trainingRuns; ++t) {
            core.cache().reset();
            core.prefetcher().reset();
            core.memory().clear();
            for (const auto &[addr, val] : warmup.mem)
                core.memory().store(addr, val);
            core.run(program, warmup.regs, runScratch);
        }

        const Measurement m1 = measure(core, program, tc.s1);
        const Measurement m2 = measure(core, program, tc.s2);
        const bool flaked = faults::injectedCount() != faults_before;
        if (flaked)
            ++result.flakedReps;
        if (!(m1 == m2)) {
            ++result.differingReps;
            if (!flaked)
                ++clean_differing;
        }
    }

    if (result.flakedReps == 0) {
        if (result.differingReps == 0)
            result.verdict = Verdict::Indistinguishable;
        else if (result.differingReps == result.totalReps)
            result.verdict = Verdict::Counterexample;
        else
            result.verdict = Verdict::Inconclusive;
    } else {
        // Flaked repetitions carry injected measurement noise, so they
        // can never certify agreement: the experiment is at best
        // inconclusive, and remains a counterexample only when every
        // clean repetition still distinguishes the two states.
        const int clean = result.totalReps - result.flakedReps;
        if (clean > 0 && clean_differing == clean)
            result.verdict = Verdict::Counterexample;
        else
            result.verdict = Verdict::Inconclusive;
    }
    return result;
}

hw::CacheState
Platform::measureOnce(const bir::Program &program,
                      const ProgramInput &input)
{
    hw::Core core(cfg.core, cfg.boardSeed);
    return measure(core, program, input).cache;
}

std::vector<std::uint64_t>
Platform::probeOnce(const bir::Program &program,
                    const ProgramInput &input)
{
    SCAMV_ASSERT(cfg.channel == Channel::PrimeProbe,
                 "probeOnce requires the PrimeProbe channel");
    hw::Core core(cfg.core, cfg.boardSeed);
    return measure(core, program, input).probeLatencies;
}

} // namespace scamv::harness
