/**
 * @file
 * Experiment platform: the stand-in for the paper's TrustZone-resident
 * bare-metal module (Section 6.1).
 *
 * For each experiment it (1) clears the data cache and resets the
 * prefetcher, (2) initializes memory from the test case, (3) trains
 * the branch predictor with extra inputs that take the other path
 * (Section 5.3), (4) runs the program from each of the two test-case
 * states, (5) inspects the final data-cache state restricted to the
 * attacker-visible set range, and (6) repeats everything `repeats`
 * times (the paper uses 10), classifying the experiment as
 * *inconclusive* unless all repetitions agree.
 *
 * Optional measurement noise (a stray access to a random line with a
 * configurable probability per run) reproduces the real platform's
 * inconclusive outcomes.
 */

#ifndef SCAMV_HARNESS_PLATFORM_HH
#define SCAMV_HARNESS_PLATFORM_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "expr/eval.hh"
#include "hw/core.hh"
#include "support/arena.hh"
#include "support/rng.hh"

namespace scamv::harness {

/** Initial memory contents of one state: (address, word) pairs. */
using MemInit = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/** One program input: registers + initial memory words. */
struct ProgramInput {
    hw::ArchState regs;
    MemInit mem;

    bool operator==(const ProgramInput &) const = default;
};

/** A relational test case: the two equivalent states (Section 2.3). */
struct TestCase {
    ProgramInput s1;
    ProgramInput s2;

    bool operator==(const TestCase &) const = default;
};

/**
 * Convert a solver model into the ProgramInput for one state: register
 * variables named "x<i><suffix>" and memory variable "mem<suffix>".
 */
ProgramInput inputFromAssignment(const expr::Assignment &a,
                                 const std::string &suffix);

/** Experiment classification (Section 2.3 / 6.1). */
enum class Verdict {
    Indistinguishable, ///< same cache state in every repetition
    Counterexample,    ///< distinguishable in every repetition
    Inconclusive       ///< repetitions disagreed (noise)
};

/**
 * How the side channel is measured (Section 6.1).
 *
 * `TrustZoneSnapshot` models the paper's privileged platform module:
 * the final data-cache state (per-set tag sets) is inspected directly
 * with debug instructions.  `PrimeProbe` models the paper's "more
 * realistic setting": an attacker primes the visible sets with his
 * own lines before the victim runs and afterwards times a reload of
 * every primed line with the PMC cycle counter; victim activity in a
 * set evicts attacker ways and shows up as added latency.
 */
enum class Channel {
    TrustZoneSnapshot,
    PrimeProbe,
    /** Inspect the final data-TLB state (resident page numbers). */
    TlbSnapshot
};

/** Platform configuration. */
struct PlatformConfig {
    hw::CoreConfig core;
    /** Attacker-visible cache set range (inclusive). */
    std::uint64_t visibleLoSet = 0;
    std::uint64_t visibleHiSet = 127;
    /** Repetitions per experiment. */
    int repeats = 10;
    /** Predictor-training runs per repetition (Section 5.3). */
    int trainingRuns = 4;
    /** Probability of a stray cache access per measured run. */
    double noiseProbability = 0.0;
    /** Board seed (junk memory fill). */
    std::uint64_t boardSeed = 0xb0a2dULL;
    /** Side-channel measurement mechanism. */
    Channel channel = Channel::TrustZoneSnapshot;
    /** Base address of the attacker's prime array (PrimeProbe). */
    std::uint64_t attackerArrayBase = 0x4000000;
    /**
     * Batched simulation: reuse one arena-backed core across all
     * repetitions of an experiment (per-repetition state reset in
     * place) instead of constructing a fresh core per repetition.
     * Behaviourally identical either way — every microarchitectural
     * structure's reset() restores its constructor state.
     * -1 = resolve from SCAMV_SIM_BATCH (default on), 0 = off, 1 = on.
     */
    int simBatch = -1;
};

/** Details of one experiment execution. */
struct ExperimentResult {
    Verdict verdict = Verdict::Indistinguishable;
    /** Repetitions in which the two snapshots differed. */
    int differingReps = 0;
    int totalReps = 0;
    /** Repetitions polluted by an injected measurement fault. */
    int flakedReps = 0;
};

/** The experiment executor. */
class Platform
{
  public:
    Platform(const PlatformConfig &config, std::uint64_t noise_seed = 1);

    /**
     * Run one relational experiment.
     * @param program  the original (uninstrumented) program
     * @param tc       the two observationally-equivalent inputs
     * @param training optional input taking a different path, used to
     *                 mistrain the branch predictor before measuring
     */
    ExperimentResult runExperiment(
        const bir::Program &program, const TestCase &tc,
        const std::optional<ProgramInput> &training = std::nullopt);

    /**
     * Run a single input and @return the visible cache snapshot
     * (exposed for tests and the attack demos).
     */
    hw::CacheState measureOnce(const bir::Program &program,
                               const ProgramInput &input);

    /**
     * Run a single input under the Prime+Probe channel and @return
     * the per-visible-set probe latencies in cycles.
     */
    std::vector<std::uint64_t> probeOnce(const bir::Program &program,
                                         const ProgramInput &input);

    const PlatformConfig &config() const { return cfg; }

  private:
    /** One channel measurement: snapshot or probe latencies. */
    struct Measurement {
        hw::CacheState cache;
        std::vector<std::uint64_t> probeLatencies;
        hw::TlbState tlb;

        bool operator==(const Measurement &) const = default;
    };

    void prepare(hw::Core &core, const bir::Program &program,
                 const ProgramInput &input);
    Measurement measure(hw::Core &core, const bir::Program &program,
                        const ProgramInput &input);

    PlatformConfig cfg;
    Rng noiseRng;

    // Batched-simulation state.  The arena is declared before the
    // core so the core (whose containers live in the arena) is
    // destroyed first; runExperiment rebuilds the core per experiment
    // in the order destroy -> arena reset -> reconstruct, which keeps
    // arena usage bounded by a single core's footprint.
    support::Arena simArena;
    std::unique_ptr<hw::Core> batchCore;
    /** Reused run-result buffer (trace capacity persists). */
    hw::RunResult runScratch;
    bool batched;
};

} // namespace scamv::harness

#endif // SCAMV_HARNESS_PLATFORM_HH
