#include "harness/flush_reload.hh"

namespace scamv::harness {

void
FlushReloadAttacker::flush(hw::Core &core) const
{
    for (int i = 0; i < lines; ++i)
        core.cache().flushLine(base + i * lineBytes);
}

std::vector<std::uint64_t>
FlushReloadAttacker::reload(hw::Core &core) const
{
    std::vector<std::uint64_t> latencies;
    latencies.reserve(lines);
    for (int i = 0; i < lines; ++i)
        latencies.push_back(core.timedLoad(base + i * lineBytes));
    return latencies;
}

std::vector<int>
FlushReloadAttacker::hotLines(hw::Core &core) const
{
    const std::uint64_t threshold =
        (core.config().hitLatency + core.config().missLatency) / 2;
    std::vector<int> hot;
    // Reloading a line inserts it, which cannot evict other monitored
    // lines out from under us here because probe order is fixed and
    // the monitored array maps to distinct sets when lines <= numSets.
    const std::vector<std::uint64_t> lat = reload(core);
    for (int i = 0; i < static_cast<int>(lat.size()); ++i)
        if (lat[i] < threshold)
            hot.push_back(i);
    return hot;
}

} // namespace scamv::harness
