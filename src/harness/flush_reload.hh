/**
 * @file
 * Flush+Reload attacker (Section 2.1), used by the SiSCloak attack
 * demonstration of Section 6.4.
 *
 * The attacker shares an array with the victim, flushes its lines,
 * lets the victim run, then times a reload of every line using the
 * cycle counter (PMC): lines the victim touched — architecturally or
 * transiently — reload fast.
 */

#ifndef SCAMV_HARNESS_FLUSH_RELOAD_HH
#define SCAMV_HARNESS_FLUSH_RELOAD_HH

#include <cstdint>
#include <vector>

#include "hw/core.hh"

namespace scamv::harness {

/** Flush+Reload probe over a contiguous array of cache lines. */
class FlushReloadAttacker
{
  public:
    /**
     * @param base        first byte of the monitored array
     * @param lines       number of consecutive cache lines monitored
     * @param line_bytes  line size
     */
    FlushReloadAttacker(std::uint64_t base, int lines,
                        std::uint64_t line_bytes = 64)
        : base(base), lines(lines), lineBytes(line_bytes)
    {}

    /** Flush every monitored line from the core's cache. */
    void flush(hw::Core &core) const;

    /**
     * Time a reload of every monitored line.
     * @return per-line latencies in cycles.
     */
    std::vector<std::uint64_t> reload(hw::Core &core) const;

    /**
     * @return indexes of lines classified as cached (latency below
     * the hit/miss midpoint of the core's latency model).
     */
    std::vector<int> hotLines(hw::Core &core) const;

  private:
    std::uint64_t base;
    int lines;
    std::uint64_t lineBytes;
};

} // namespace scamv::harness

#endif // SCAMV_HARNESS_FLUSH_RELOAD_HH
