#include "rel/relation.hh"

#include "support/logging.hh"

namespace scamv::rel {

using expr::Expr;
using expr::ExprContext;
using sym::Obs;
using sym::ObsTag;
using sym::PathResult;

namespace {

/**
 * Structural compatibility of two observation lists: equal length and
 * no pair of constants that differ.  @return false if no states can
 * make the lists equal.
 */
bool
canBeEqual(const std::vector<Obs> &a, const std::vector<Obs> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Expr x = a[i].value;
        const Expr y = b[i].value;
        if (x->isConst() && y->isConst() && x->value != y->value)
            return false;
    }
    return true;
}

/** Conjunction of elementwise equalities. */
Expr
listsEqual(ExprContext &ctx, const std::vector<Obs> &a,
           const std::vector<Obs> &b)
{
    SCAMV_ASSERT(a.size() == b.size(), "listsEqual: length mismatch");
    Expr acc = ctx.tru();
    for (std::size_t i = 0; i < a.size(); ++i)
        acc = ctx.land(acc, ctx.eq(a[i].value, b[i].value));
    return acc;
}

/** Disjunction of elementwise disequalities (lists differ somewhere). */
Expr
listsDiffer(ExprContext &ctx, const std::vector<Obs> &a,
            const std::vector<Obs> &b)
{
    if (a.size() != b.size())
        return ctx.tru();
    Expr acc = ctx.fls();
    for (std::size_t i = 0; i < a.size(); ++i)
        acc = ctx.lor(acc, ctx.neq(a[i].value, b[i].value));
    return acc;
}

} // namespace

RelationSynthesizer::RelationSynthesizer(ExprContext &ctx,
                                         std::vector<PathResult> paths1,
                                         std::vector<PathResult> paths2,
                                         const RelationConfig &config)
    : ctx(ctx), p1(std::move(paths1)), p2(std::move(paths2)), cfg(config)
{
    for (int i = 0; i < static_cast<int>(p1.size()); ++i) {
        for (int j = 0; j < static_cast<int>(p2.size()); ++j) {
            const auto base1 = p1[i].project(ObsTag::Base);
            const auto base2 = p2[j].project(ObsTag::Base);
            if (!canBeEqual(base1, base2))
                continue;
            PathPair pair;
            pair.idx1 = i;
            pair.idx2 = j;
            if (cfg.refine) {
                const auto ref1 = p1[i].project(ObsTag::RefinedOnly);
                const auto ref2 = p2[j].project(ObsTag::RefinedOnly);
                if (ref1.size() != ref2.size()) {
                    pair.refinedTriviallyDiffer = true;
                } else if (ref1.empty()) {
                    // No refined observations at all: the refinement
                    // constraint (lists differ) is unsatisfiable —
                    // this pair cannot yield "interesting" states.
                    continue;
                }
            }
            compatible.push_back(pair);
        }
    }
}

Expr
RelationSynthesizer::regionConstraints(const PathResult &p) const
{
    Expr acc = ctx.tru();
    if (cfg.constrainArchAddrs)
        for (Expr addr : p.memAddrs)
            acc = ctx.land(acc, cfg.region.containsExpr(ctx, addr));
    if (cfg.constrainTransientAddrs)
        for (Expr addr : p.transientLoadAddrs)
            acc = ctx.land(acc, cfg.region.containsExpr(ctx, addr));
    return acc;
}

Expr
RelationSynthesizer::formulaFor(const PathPair &pair) const
{
    const PathResult &a = p1[pair.idx1];
    const PathResult &b = p2[pair.idx2];

    Expr f = ctx.land(a.cond, b.cond);
    f = ctx.land(f, listsEqual(ctx, a.project(ObsTag::Base),
                               b.project(ObsTag::Base)));
    if (cfg.refine && !pair.refinedTriviallyDiffer)
        f = ctx.land(f, listsDiffer(ctx, a.project(ObsTag::RefinedOnly),
                                    b.project(ObsTag::RefinedOnly)));
    f = ctx.land(f, regionConstraints(a));
    f = ctx.land(f, regionConstraints(b));
    // Corpus security contract: pin declared-low inputs equal between
    // the two states, so a satisfying assignment can only blame the
    // secrets for the observation difference.
    for (bir::Reg r : cfg.lowRegs) {
        const std::string name = "x" + std::to_string(r);
        f = ctx.land(f, ctx.eq(ctx.bvVar(name + cfg.suffix1),
                               ctx.bvVar(name + cfg.suffix2)));
    }
    if (!cfg.lowMemAddrs.empty()) {
        Expr mem1 = ctx.memVar("mem" + cfg.suffix1);
        Expr mem2 = ctx.memVar("mem" + cfg.suffix2);
        for (std::uint64_t addr : cfg.lowMemAddrs) {
            Expr a_e = ctx.bv(addr);
            f = ctx.land(f, ctx.eq(ctx.read(mem1, a_e),
                                   ctx.read(mem2, a_e)));
        }
    }
    return f;
}

std::optional<LineCoverageDraw>
RelationSynthesizer::lineCoverageConstraint(const PathPair &pair,
                                            Rng &rng) const
{
    const PathResult &a = p1[pair.idx1];
    const PathResult &b = p2[pair.idx2];
    if (a.memAddrs.empty() && b.memAddrs.empty())
        return std::nullopt;
    // Draw order (s1 first, each state only when it accesses memory)
    // is load-bearing: it keeps the rng sequence — and hence every
    // pre-existing campaign — byte-identical.
    int cls1 = -1, cls2 = -1;
    if (!a.memAddrs.empty())
        cls1 = static_cast<int>(rng.below(cfg.geom.numSets));
    if (!b.memAddrs.empty())
        cls2 = static_cast<int>(rng.below(cfg.geom.numSets));
    return lineCoverageConstraintFor(pair, cls1, cls2);
}

std::optional<LineCoverageDraw>
RelationSynthesizer::lineCoverageConstraintFor(const PathPair &pair,
                                               int cls1, int cls2) const
{
    const PathResult &a = p1[pair.idx1];
    const PathResult &b = p2[pair.idx2];
    if (a.memAddrs.empty() && b.memAddrs.empty())
        return std::nullopt;
    LineCoverageDraw draw;
    draw.constraint = ctx.tru();
    if (!a.memAddrs.empty() && cls1 >= 0) {
        draw.class1 = cls1;
        draw.constraint = ctx.land(
            draw.constraint,
            ctx.eq(cfg.geom.setExpr(ctx, a.memAddrs[0]),
                   ctx.bv(static_cast<std::uint64_t>(cls1))));
    }
    if (!b.memAddrs.empty() && cls2 >= 0) {
        draw.class2 = cls2;
        draw.constraint = ctx.land(
            draw.constraint,
            ctx.eq(cfg.geom.setExpr(ctx, b.memAddrs[0]),
                   ctx.bv(static_cast<std::uint64_t>(cls2))));
    }
    return draw;
}

std::optional<Expr>
RelationSynthesizer::trainingFormula(
    ExprContext &ctx, const std::vector<PathResult> &training_paths,
    const PathResult &tested_path, const RelationConfig &config)
{
    if (tested_path.decisions.empty())
        return std::nullopt;
    const bool tested_first = tested_path.decisions.front();
    for (const PathResult &p : training_paths) {
        if (p.decisions.empty() || p.decisions.front() == tested_first)
            continue;
        Expr f = p.cond;
        if (config.constrainArchAddrs)
            for (Expr addr : p.memAddrs)
                f = ctx.land(f, config.region.containsExpr(ctx, addr));
        return f;
    }
    return std::nullopt;
}

Expr
fullEquivalenceRelation(ExprContext &ctx, const std::vector<PathResult> &p1,
                        const std::vector<PathResult> &p2)
{
    Expr acc = ctx.tru();
    for (const PathResult &a : p1) {
        for (const PathResult &b : p2) {
            const auto base1 = a.project(ObsTag::Base);
            const auto base2 = b.project(ObsTag::Base);
            Expr both = ctx.land(a.cond, b.cond);
            Expr eq = base1.size() == base2.size()
                          ? listsEqual(ctx, base1, base2)
                          : ctx.fls();
            acc = ctx.land(acc, ctx.implies(both, eq));
        }
    }
    return acc;
}

} // namespace scamv::rel
