/**
 * @file
 * Observational-equivalence relation synthesis (Sections 2.3, 3, 5.2).
 *
 * Given the symbolic paths of a program executed for state s1
 * (variables suffixed "_1") and state s2 (suffixed "_2"), this module
 * builds, per pair of execution paths, the formula
 *
 *     pc1(s1) && pc2(s2) && baseObs(s1) == baseObs(s2)
 *         [ && refinedObs(s1) != refinedObs(s2) ]      (refinement)
 *         [ && region/alignment constraints ]           (platform)
 *
 * following the per-path-pair splitting optimization of Section 5.4:
 * pairs whose base observation lists cannot match structurally
 * (different lengths, or constant observations that differ — e.g. the
 * program-counter observations of two different paths) are discarded
 * up front, and the surviving relations are explored round-robin.
 *
 * The module also synthesizes branch-misprediction training inputs
 * (Section 5.3): a state st satisfying a path condition different from
 * the tested pair's path.
 */

#ifndef SCAMV_REL_RELATION_HH
#define SCAMV_REL_RELATION_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bir/bir.hh"
#include "expr/expr.hh"
#include "obs/layout.hh"
#include "support/rng.hh"
#include "sym/symexec.hh"

namespace scamv::rel {

/** A structurally compatible pair of execution paths. */
struct PathPair {
    int idx1 = 0; ///< index into the s1 path list
    int idx2 = 0; ///< index into the s2 path list
    /**
     * True when the refined observation lists cannot be equal for any
     * states (different lengths): the refinement constraint is then
     * vacuously satisfied and no disequality needs to be asserted.
     */
    bool refinedTriviallyDiffer = false;
};

/** One Mline coverage draw: the constraint plus the classes it pins. */
struct LineCoverageDraw {
    expr::Expr constraint = nullptr;
    int class1 = -1; ///< set-index class pinned for s1 (-1: no access)
    int class2 = -1; ///< set-index class pinned for s2 (-1: no access)
};

/** Synthesis options. */
struct RelationConfig {
    /** Assert that RefinedOnly observations differ (Section 3). */
    bool refine = false;
    /** Constrain every architectural access address into the region. */
    obs::MemoryRegion region;
    bool constrainArchAddrs = true;
    /** Constrain transient load addresses into the region too. */
    bool constrainTransientAddrs = true;
    /** Geometry for line-coverage constraints. */
    obs::CacheGeometry geom;

    /**
     * Low (public) inputs of the program under test, used by corpus
     * campaigns where the frontend's `secret`/`public` qualifiers fix
     * the security contract.  Registers listed here are conjoined
     * equal between the two states (x<r>_1 == x<r>_2) and each listed
     * memory address has its 8-byte word pinned equal
     * (read(mem_1, a) == read(mem_2, a)); everything NOT listed —
     * the secrets — stays free to differ.  Empty lists (generated
     * workloads) leave the relation exactly as before.
     */
    std::vector<bir::Reg> lowRegs;
    std::vector<std::uint64_t> lowMemAddrs;
    /** Variable suffixes of the two compared states. */
    std::string suffix1 = "_1";
    std::string suffix2 = "_2";
};

/** Relation synthesizer for one program's two symbolic executions. */
class RelationSynthesizer
{
  public:
    RelationSynthesizer(expr::ExprContext &ctx,
                        std::vector<sym::PathResult> paths1,
                        std::vector<sym::PathResult> paths2,
                        const RelationConfig &config);

    /** Structurally compatible path pairs (Section 5.4). */
    const std::vector<PathPair> &pairs() const { return compatible; }

    /** The relation formula for one pair. */
    expr::Expr formulaFor(const PathPair &pair) const;

    /**
     * Mline support-model constraint (Section 4.1.2): pins the cache
     * set index of the first architectural access of each state to a
     * randomly drawn coverage class.  The drawn class ids are returned
     * alongside the constraint so callers can account them
     * campaign-wide (src/cover).  @return nullopt if the pair's paths
     * perform no memory access.
     */
    std::optional<LineCoverageDraw>
    lineCoverageConstraint(const PathPair &pair, Rng &rng) const;

    /**
     * Like lineCoverageConstraint, but pinning explicitly chosen
     * classes (`cls1` for s1, `cls2` for s2) instead of drawing
     * randomly — the adaptive scheduler's least-covered-first path.
     * A negative class leaves that state unconstrained.
     */
    std::optional<LineCoverageDraw>
    lineCoverageConstraintFor(const PathPair &pair, int cls1,
                              int cls2) const;

    /**
     * Training-state formula (Section 5.3): the path condition, over
     * variables suffixed `training_suffix`, of a path whose *first*
     * branch decision differs from pair's s1-path.  Requires a third
     * symbolic execution of the program with that suffix.
     * @return nullopt if every path starts with the same decision.
     */
    static std::optional<expr::Expr> trainingFormula(
        expr::ExprContext &ctx,
        const std::vector<sym::PathResult> &training_paths,
        const sym::PathResult &tested_path,
        const RelationConfig &config);

    const std::vector<sym::PathResult> &paths1() const { return p1; }
    const std::vector<sym::PathResult> &paths2() const { return p2; }

  private:
    expr::Expr regionConstraints(const sym::PathResult &p) const;

    expr::ExprContext &ctx;
    std::vector<sym::PathResult> p1;
    std::vector<sym::PathResult> p2;
    RelationConfig cfg;
    std::vector<PathPair> compatible;
};

/**
 * Full observational-equivalence relation, Equation 1: the conjunction
 * over all path pairs of (pc1 && pc2 => obs equal).  Exposed for the
 * quickstart example and tests; the pipeline uses the per-pair split.
 */
expr::Expr fullEquivalenceRelation(expr::ExprContext &ctx,
                                   const std::vector<sym::PathResult> &p1,
                                   const std::vector<sym::PathResult> &p2);

} // namespace scamv::rel

#endif // SCAMV_REL_RELATION_HH
