/**
 * @file
 * scamvd: a long-running campaign service with a shared
 * cross-campaign query cache.
 *
 * PRs 1-8 built a deterministic campaign engine that still only runs
 * one-shot CLI campaigns.  This module adds the serving leg of the
 * roadmap's north star: a daemon (`scamvd`) that accepts many
 * campaign submissions over a local stream socket, orders them in a
 * FIFO-with-priority queue, multiplexes them over a bounded worker
 * fleet running the existing shard machinery (`shard::planShard` +
 * `shard::runWorker` + `shard::mergeCampaign`), and streams
 * per-campaign progress back to attached clients.
 *
 * The service owns a shared qcache checkpoint that acts as a
 * cross-campaign memo table: each dispatched campaign's shard
 * directories are seeded with a copy of the current checkpoint (the
 * worker's private cache loads it warm, see shard/worker.cc), and
 * after the coordinator merge the campaign's rebuilt checkpoint is
 * folded back into the service checkpoint *in submission order*
 * (keep-first dedup, `shard::mergeQcacheFiles`).  Because warm and
 * cold campaigns are byte-identical (ARCHITECTURE.md, invariant 5),
 * a campaign run through the service produces metrics / coverage /
 * db / stats / findings artifacts byte-identical to the same
 * campaign run standalone — invariant 10, proven by
 * tests/test_svc.cc across {1,2} concurrent submissions x
 * {cold, warm} x fault-plan-all.
 *
 * Wire protocol ("scamv-rpc-v1"): length-prefixed text frames with
 * the shard-artifact codec discipline — space-separated
 * percent-escaped fields, a trailing fnv1a checksum per frame — so
 * a damaged or truncated frame is detected, never half-parsed.  See
 * OPERATIONS.md for the operator's view (env vars, lifecycle,
 * drain/restart runbook).
 */

#ifndef SCAMV_SVC_SVC_HH
#define SCAMV_SVC_SVC_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pipeline.hh"

namespace scamv::svc {

/*
 * ------------------------------------------------------------------
 * scamv-rpc-v1 frame codec
 * ------------------------------------------------------------------
 */

/** Protocol version token exchanged in HELLO frames. */
inline constexpr const char *kRpcVersion = "scamv-rpc-v1";

/** Upper bound on a frame payload (a frame is one request line). */
inline constexpr std::size_t kMaxFrameBytes = std::size_t(1) << 20;

/** One protocol frame: a type tag plus string arguments. */
struct Frame {
    std::string type;
    std::vector<std::string> args;

    bool operator==(const Frame &) const = default;
};

/**
 * Encode a frame payload: space-separated percent-escaped fields
 * (type first) ending in an fnv1a checksum field — one line, no
 * trailing newline, the shard-artifact line discipline.
 */
std::string encodePayload(const Frame &frame);

/**
 * Decode a frame payload.  Checksum-validates the line and
 * percent-unescapes every field.
 * @return nullopt when the checksum is missing/wrong or a field is
 * malformed (the frame is dropped whole, never half-parsed).
 */
std::optional<Frame> decodePayload(std::string_view payload);

/**
 * Encode a wire frame: an 8-hex-digit payload length plus '\n',
 * followed by the payload bytes.
 */
std::string encodeFrame(const Frame &frame);

/** Incremental wire-decode outcome. */
enum class FrameStatus {
    Ok,       ///< a frame was decoded; `consumed` bytes were used
    NeedMore, ///< the buffer holds a frame prefix; read more bytes
    Bad,      ///< the stream is damaged (bad prefix, length or body)
};

/**
 * Decode one wire frame from the front of `buf`.
 * @param out the decoded frame (valid only on Ok).
 * @param consumed bytes to drop from the buffer (valid only on Ok).
 */
FrameStatus decodeFrame(std::string_view buf, Frame &out,
                        std::size_t &consumed);

/*
 * ------------------------------------------------------------------
 * Submissions
 * ------------------------------------------------------------------
 */

/**
 * One campaign submission: the `shard::defaultWorkload` family
 * (the same campaign shape the scamv_worker / scamv_merge CLI and
 * bench_shard run) plus failure-model and triage knobs.
 */
struct SubmissionSpec {
    int programs = 8;
    int tests = 3;
    std::uint64_t seed = 7;
    bool adaptive = false;
    bool line = false;
    /** Higher dispatches first; FIFO within a priority. */
    int priority = 0;
    /** Worker slices for this campaign (0: service default). */
    int shards = 0;
    /** Fault plan (0 rate: disabled; sites as in SCAMV_FAULT_PLAN). */
    double faultRate = 0.0;
    std::string faultSites;
    /** Stage retries after injected faults (-1: SCAMV_RETRY_MAX). */
    int retryMax = -1;
    bool triage = false;
    bool minimize = false;
    /**
     * Corpus campaign: compile the `.sc` kernels of this directory
     * (src/front) and validate them with shard::corpusWorkload
     * instead of the generated default workload.  Empty: generated
     * workload.  `line` is ignored for corpus campaigns (they use
     * Mline support coverage unconditionally).
     */
    std::string corpusDir;

    bool operator==(const SubmissionSpec &) const = default;
};

/** Serialize a spec as SUBMIT frame arguments ("key=value" fields). */
std::vector<std::string> specToArgs(const SubmissionSpec &spec);

/**
 * Parse SUBMIT frame arguments.  Strict: unknown keys, malformed
 * values and out-of-range settings are rejected.
 * @return nullopt with `error` set on rejection.
 */
std::optional<SubmissionSpec>
specFromArgs(const std::vector<std::string> &args, std::string &error);

/** @return the spec's fault plan (disabled when rate is 0). */
faults::FaultPlan faultPlanFor(const SubmissionSpec &spec);

/**
 * The pipeline config a submission runs: `shard::defaultWorkload`
 * with the spec's failure-model and triage knobs applied.  Both the
 * service fleet and a standalone reference run build campaigns
 * through this one function — which is what makes the byte-identity
 * invariant testable (tests/test_svc.cc, CI svc-equivalence).
 */
core::PipelineConfig campaignConfig(const SubmissionSpec &spec);

/** Submission lifecycle states (OPERATIONS.md state machine). */
enum class SubmissionState {
    Queued,  ///< accepted, waiting for fleet capacity
    Running, ///< shard slices executing on the fleet
    Merging, ///< coordinator fold + checkpoint fold
    Done,    ///< artifacts written, delta folded
    Failed,  ///< isolated failure; daemon and queue unaffected
};

/** @return the canonical lowercase state name. */
const char *stateName(SubmissionState state);

/*
 * ------------------------------------------------------------------
 * Submission queue
 * ------------------------------------------------------------------
 */

/**
 * FIFO-with-priority queue of submission ids: `pop` returns the
 * highest priority first and FIFO (ascending id) within a priority.
 * Deterministic: the pop order is a pure function of the push
 * sequence.  Not thread-safe; the service guards it with its own
 * mutex.
 */
class SubmissionQueue
{
  public:
    void push(std::uint64_t id, int priority);

    /** Remove and return the next id, or nullopt when empty. */
    std::optional<std::uint64_t> pop();

    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

  private:
    struct Entry {
        std::uint64_t id;
        int priority;
    };
    std::vector<Entry> entries;
};

/*
 * ------------------------------------------------------------------
 * Service
 * ------------------------------------------------------------------
 */

/** Service configuration (see OPERATIONS.md for the env table). */
struct ServiceConfig {
    /** Service state root: campaign dirs + the shared checkpoint. */
    std::string dir = "scamv-svc";
    /** Listening socket path (socket front-end only). */
    std::string socketPath = "scamv-svc/scamvd.sock";
    /** Worker fleet size (concurrent shard slices). */
    int workers = 2;
    /** Default shard count per campaign. */
    int shards = 2;
    /** Max queued-or-running submissions before accept rejects. */
    int queueMax = 64;

    /**
     * Config from SCAMV_SVC_DIR / SCAMV_SVC_SOCKET /
     * SCAMV_SVC_WORKERS / SCAMV_SVC_SHARDS / SCAMV_SVC_QUEUE_MAX
     * (validated via support/env; unset keeps the defaults above).
     */
    static ServiceConfig fromEnv();
};

/** Accept verdict for one submission. */
struct SubmitResult {
    bool accepted = false;
    std::uint64_t id = 0;
    std::string error;
};

/** Point-in-time view of one submission (STATUS/PROGRESS frames). */
struct SubmissionStatus {
    SubmissionState state = SubmissionState::Queued;
    int programsDone = 0;
    int programsTotal = 0;
    /** Post-merge campaign results (0 until Done). */
    std::int64_t counterexamples = 0;
    std::int64_t coveredClasses = 0;
    std::int64_t findings = 0;
    std::string dir;
    std::string error;
};

/**
 * The campaign service.  Usable as a library (tests, bench) or
 * behind the socket front-end (`serveLoop`, scamvd).  Construction
 * starts the worker fleet and the merge/fold thread; destruction
 * stops accepting, waits for in-flight campaigns and joins the
 * threads.
 *
 * Concurrency: `submit`/`status`/`wait`/`drain` are thread-safe.
 * Campaign artifacts never share mutable state across submissions
 * (the shard machinery's per-task registries and shard-local state),
 * so concurrent campaigns cannot perturb each other's bytes; the
 * only cross-campaign state is the shared checkpoint, mutated only
 * by the merge thread's submission-ordered folds.
 */
class Service
{
  public:
    explicit Service(const ServiceConfig &config);
    ~Service();

    Service(const Service &) = delete;
    Service &operator=(const Service &) = delete;

    /**
     * Accept a submission: validate the spec, fire the
     * `svc_accept_drop` fault site (retried up to the spec's retry
     * budget; a drop on every attempt rejects, counted
     * `svc.accept_drop`), enqueue and return the assigned id.
     */
    SubmitResult submit(const SubmissionSpec &spec);

    /** @return the submission's current view, if the id exists. */
    std::optional<SubmissionStatus> status(std::uint64_t id) const;

    /**
     * Block until the submission reaches a terminal state.
     * @return true when it finished Done.
     */
    bool wait(std::uint64_t id);

    /**
     * Graceful drain: stop accepting, then block until every
     * accepted submission is terminal.  Idempotent.
     */
    void drain();

    /** @return the service state root directory. */
    const std::string &dir() const { return cfg.dir; }

    /** @return the campaign directory for submission `id`. */
    std::string campaignDir(std::uint64_t id) const;

    /** @return the shared qcache checkpoint path. */
    std::string checkpointPath() const;

  private:
    struct Impl;
    ServiceConfig cfg;
    std::unique_ptr<Impl> impl;
};

/*
 * ------------------------------------------------------------------
 * Socket front-end
 * ------------------------------------------------------------------
 */

/**
 * Serve `service` on a Unix stream socket until `stop` becomes true
 * (SIGTERM sets it in scamvd) or a client completes a DRAIN request
 * (which drains the service, then sets `stop` itself).  Each
 * connection is handled on its own thread; a damaged frame closes
 * its connection (counted `svc.rpc_bad_frames`), never the daemon.
 * @return false when the socket cannot be created or bound.
 */
bool serveLoop(Service &service, const std::string &socket_path,
               std::atomic<bool> &stop);

/**
 * Minimal client for scamv-submit and tests: connect, exchange
 * frames.  Not thread-safe.
 */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect and HELLO-handshake.  @return success. */
    bool connectTo(const std::string &socket_path);

    /** Send one frame.  @return success. */
    bool send(const Frame &frame);

    /** Receive one frame (blocking). */
    std::optional<Frame> recv();

    /** send + recv. */
    std::optional<Frame> call(const Frame &frame);

    void close();

  private:
    int fd = -1;
    std::string buf;
};

} // namespace scamv::svc

#endif // SCAMV_SVC_SVC_HH
