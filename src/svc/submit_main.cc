/**
 * @file
 * scamv-submit: submit campaigns to a running scamvd and follow
 * their progress.
 *
 *   scamv-submit --socket PATH submit [workload flags] [--watch]
 *   scamv-submit --socket PATH status ID
 *   scamv-submit --socket PATH watch ID
 *   scamv-submit --socket PATH drain
 *   scamv-submit --socket PATH ping
 *
 * Workload flags: --programs N --tests N --seed S [--adaptive]
 * [--line] [--corpus DIR] [--priority P] [--shards K]
 * [--fault-rate R] [--fault-plan SITES] [--retry-max N] [--triage]
 * [--minimize].
 *
 * Output is line-oriented `key=value` pairs (submit prints `id=N`;
 * status/watch print the submission's state and counters), so shell
 * scripts and the CI svc-equivalence job can parse it with `cut`.
 * Exit status: 0 on success (for watch: the submission finished
 * Done), 1 on a service-reported error, 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "svc/svc.hh"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH COMMAND\n"
        "  submit [--programs N] [--tests N] [--seed S]\n"
        "         [--adaptive] [--line] [--priority P] [--shards K]\n"
        "         [--fault-rate R] [--fault-plan SITES]\n"
        "         [--retry-max N] [--triage] [--minimize]\n"
        "         [--corpus DIR] [--watch]\n"
        "  status ID | watch ID | drain | ping\n",
        argv0);
    return 2;
}

void
printStatusLine(const char *tag, const scamv::svc::Frame &frame)
{
    // OK/PROGRESS/DONE status payload:
    //   id state done total cex classes findings dir [error]
    const auto &a = frame.args;
    if (a.size() < 8) {
        std::printf("%s\n", tag);
        return;
    }
    std::printf("%s id=%s state=%s done=%s total=%s cex=%s "
                "classes=%s findings=%s dir=%s%s%s\n",
                tag, a[0].c_str(), a[1].c_str(), a[2].c_str(),
                a[3].c_str(), a[4].c_str(), a[5].c_str(),
                a[6].c_str(), a[7].c_str(),
                a.size() > 8 ? " error=" : "",
                a.size() > 8 ? a[8].c_str() : "");
}

int
runWatch(scamv::svc::Client &client, const std::string &id)
{
    using scamv::svc::Frame;
    if (!client.send(Frame{"WATCH", {id}})) {
        std::fprintf(stderr, "scamv-submit: send failed\n");
        return 1;
    }
    for (;;) {
        const std::optional<Frame> frame = client.recv();
        if (!frame) {
            std::fprintf(stderr,
                         "scamv-submit: connection lost\n");
            return 1;
        }
        if (frame->type == "PROGRESS") {
            printStatusLine("progress", *frame);
        } else if (frame->type == "DONE") {
            printStatusLine("done", *frame);
            return frame->args.size() > 1 &&
                           frame->args[1] == "done"
                       ? 0
                       : 1;
        } else if (frame->type == "ERR") {
            std::fprintf(stderr, "scamv-submit: %s\n",
                         frame->args.empty()
                             ? "error"
                             : frame->args[0].c_str());
            return 1;
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scamv::svc;

    std::string socket_path;
    if (const char *sock = std::getenv("SCAMV_SVC_SOCKET");
        sock && *sock)
        socket_path = sock;
    int i = 1;
    if (i + 1 < argc && std::strcmp(argv[i], "--socket") == 0) {
        socket_path = argv[i + 1];
        i += 2;
    }
    if (i >= argc || socket_path.empty())
        return usage(argv[0]);
    const std::string command = argv[i++];

    Client client;
    if (!client.connectTo(socket_path)) {
        std::fprintf(stderr,
                     "scamv-submit: cannot connect to %s\n",
                     socket_path.c_str());
        return 1;
    }

    if (command == "ping") {
        const std::optional<Frame> res =
            client.call(Frame{"PING", {}});
        if (!res || res->type != "OK")
            return 1;
        std::printf("pong\n");
        return 0;
    }

    if (command == "drain") {
        const std::optional<Frame> res =
            client.call(Frame{"DRAIN", {}});
        if (!res || res->type != "OK") {
            std::fprintf(stderr, "scamv-submit: drain failed\n");
            return 1;
        }
        std::printf("drained\n");
        return 0;
    }

    if (command == "status" || command == "watch") {
        if (i >= argc)
            return usage(argv[0]);
        const std::string id = argv[i];
        if (command == "watch")
            return runWatch(client, id);
        const std::optional<Frame> res =
            client.call(Frame{"STATUS", {id}});
        if (!res || res->type != "OK") {
            std::fprintf(stderr, "scamv-submit: %s\n",
                         res && !res->args.empty()
                             ? res->args[0].c_str()
                             : "status failed");
            return 1;
        }
        printStatusLine("status", *res);
        return 0;
    }

    if (command != "submit")
        return usage(argv[0]);

    SubmissionSpec spec;
    bool watch = false;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--programs" && val) {
            spec.programs = std::atoi(val);
            ++i;
        } else if (arg == "--tests" && val) {
            spec.tests = std::atoi(val);
            ++i;
        } else if (arg == "--seed" && val) {
            spec.seed = std::strtoull(val, nullptr, 10);
            ++i;
        } else if (arg == "--adaptive") {
            spec.adaptive = true;
        } else if (arg == "--line") {
            spec.line = true;
        } else if (arg == "--priority" && val) {
            spec.priority = std::atoi(val);
            ++i;
        } else if (arg == "--shards" && val) {
            spec.shards = std::atoi(val);
            ++i;
        } else if (arg == "--fault-rate" && val) {
            spec.faultRate = std::atof(val);
            ++i;
        } else if (arg == "--fault-plan" && val) {
            spec.faultSites = val;
            ++i;
        } else if (arg == "--retry-max" && val) {
            spec.retryMax = std::atoi(val);
            ++i;
        } else if (arg == "--triage") {
            spec.triage = true;
        } else if (arg == "--minimize") {
            spec.minimize = true;
        } else if (arg == "--corpus" && val) {
            spec.corpusDir = val;
            ++i;
        } else if (arg == "--watch") {
            watch = true;
        } else {
            return usage(argv[0]);
        }
    }

    const std::optional<Frame> res =
        client.call(Frame{"SUBMIT", specToArgs(spec)});
    if (!res || res->type != "OK" || res->args.empty()) {
        std::fprintf(stderr, "scamv-submit: %s\n",
                     res && !res->args.empty()
                         ? res->args[0].c_str()
                         : "submit failed");
        return 1;
    }
    std::printf("id=%s\n", res->args[0].c_str());
    std::fflush(stdout);
    if (watch)
        return runWatch(client, res->args[0]);
    return 0;
}
