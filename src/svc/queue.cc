/**
 * @file
 * FIFO-with-priority submission queue.
 *
 * Kept deliberately simple: a linear scan over pending entries.  The
 * queue holds submission *ids* (small), is bounded by
 * SCAMV_SVC_QUEUE_MAX, and pops at campaign granularity, so the scan
 * is never the hot path.  The payoff is an obviously deterministic
 * order — highest priority first, ascending id (= submission order)
 * within a priority — which tests/test_svc.cc pins down.
 */

#include "svc/svc.hh"

namespace scamv::svc {

void
SubmissionQueue::push(std::uint64_t id, int priority)
{
    entries.push_back(Entry{id, priority});
}

std::optional<std::uint64_t>
SubmissionQueue::pop()
{
    if (entries.empty())
        return std::nullopt;
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries.size(); ++i) {
        // Strict '>' keeps equal priorities FIFO: ids ascend in push
        // order, and a later entry never displaces an earlier equal.
        if (entries[i].priority > entries[best].priority)
            best = i;
    }
    const std::uint64_t id = entries[best].id;
    entries.erase(entries.begin() +
                  static_cast<std::ptrdiff_t>(best));
    return id;
}

} // namespace scamv::svc
