/**
 * @file
 * scamvd: the long-running campaign daemon.
 *
 *   scamvd [--socket PATH] [--dir DIR] [--workers N] [--shards N]
 *          [--queue-max N]
 *
 * Flags override the SCAMV_SVC_* environment (see OPERATIONS.md for
 * the full tuning table and runbook).  SIGTERM/SIGINT trigger a
 * graceful drain: stop accepting, finish every in-flight campaign,
 * fold its checkpoint delta, then exit 0.  A client DRAIN request
 * does the same.  Campaign knobs that are env-resolved per process
 * (SCAMV_QCACHE_MB for the shared checkpoint, SCAMV_RETRY_MAX, ...)
 * are read from the daemon's environment; export-path variables
 * (SCAMV_METRICS, SCAMV_COVERAGE_FILE) should stay unset — each
 * campaign writes its own artifact set under its campaign directory.
 */

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/logging.hh"
#include "svc/svc.hh"

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--socket PATH] [--dir DIR]\n"
                 "          [--workers N] [--shards N] "
                 "[--queue-max N]\n"
                 "Defaults: SCAMV_SVC_* from the environment "
                 "(OPERATIONS.md).\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace scamv;

    svc::ServiceConfig cfg = svc::ServiceConfig::fromEnv();
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *val = i + 1 < argc ? argv[i + 1] : nullptr;
        if (arg == "--socket" && val) {
            cfg.socketPath = val;
            ++i;
        } else if (arg == "--dir" && val) {
            cfg.dir = val;
            ++i;
        } else if (arg == "--workers" && val) {
            cfg.workers = std::atoi(val);
            ++i;
        } else if (arg == "--shards" && val) {
            cfg.shards = std::atoi(val);
            ++i;
        } else if (arg == "--queue-max" && val) {
            cfg.queueMax = std::atoi(val);
            ++i;
        } else {
            return usage(argv[0]);
        }
    }
    if (cfg.workers < 1 || cfg.shards < 1 || cfg.queueMax < 1)
        return usage(argv[0]);

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
#ifdef SIGPIPE
    // A client vanishing mid-stream is its problem, not the fleet's.
    std::signal(SIGPIPE, SIG_IGN);
#endif

    svc::Service service(cfg);
    if (!svc::serveLoop(service, cfg.socketPath, g_stop))
        return 1;
    // The loop exits on SIGTERM/SIGINT or a DRAIN request; finish
    // whatever is still in flight before the Service destructor
    // stops the fleet.
    service.drain();
    inform("scamvd: drained, exiting");
    return 0;
}
