/**
 * @file
 * Unix-socket front-end: the scamvd serve loop and the scamv-submit
 * client.
 *
 * One thread per connection, frames decoded incrementally with
 * `decodeFrame`.  The failure discipline mirrors the artifact
 * codecs: a damaged frame (bad length prefix, bad checksum) closes
 * that connection — counted `svc.rpc_bad_frames` — and never
 * disturbs the daemon or other connections.  The serve loop polls
 * its listening socket with a short timeout so a SIGTERM-driven stop
 * flag is honored promptly; DRAIN drains the service inline, replies
 * OK, then raises the same stop flag (the scamvd runbook's graceful
 * shutdown, OPERATIONS.md).
 */

#include "svc/svc.hh"

#include <chrono>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::svc {

namespace {

bool
sendAll(int fd, const std::string &bytes)
{
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::send(fd, bytes.data() + off, bytes.size() - off,
#ifdef MSG_NOSIGNAL
                   MSG_NOSIGNAL
#else
                   0
#endif
            );
        if (n <= 0)
            return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendFrame(int fd, const Frame &frame)
{
    return sendAll(fd, encodeFrame(frame));
}

/**
 * Receive one frame.  Polls so the stop flag can interrupt an idle
 * connection.  @return nullopt on EOF, damage or stop.
 */
std::optional<Frame>
recvFrame(int fd, std::string &buf, const std::atomic<bool> &stop)
{
    for (;;) {
        Frame frame;
        std::size_t consumed = 0;
        const FrameStatus st = decodeFrame(buf, frame, consumed);
        if (st == FrameStatus::Ok) {
            buf.erase(0, consumed);
            return frame;
        }
        if (st == FrameStatus::Bad) {
            metrics::Registry::global()
                .counter("svc.rpc_bad_frames")
                .inc();
            return std::nullopt;
        }
        struct pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (stop.load(std::memory_order_relaxed))
            return std::nullopt;
        if (pr < 0)
            return std::nullopt;
        if (pr == 0)
            continue;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return std::nullopt;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
}

Frame
okFrame(std::vector<std::string> args)
{
    return Frame{"OK", std::move(args)};
}

Frame
errFrame(const std::string &msg)
{
    return Frame{"ERR", {msg}};
}

std::vector<std::string>
statusArgs(std::uint64_t id, const SubmissionStatus &st)
{
    return {std::to_string(id),
            stateName(st.state),
            std::to_string(st.programsDone),
            std::to_string(st.programsTotal),
            std::to_string(st.counterexamples),
            std::to_string(st.coveredClasses),
            std::to_string(st.findings),
            st.dir};
}

/**
 * Stream PROGRESS frames for one submission until it is terminal,
 * then a final DONE frame.  Polled at 50ms; a frame goes out only
 * when the visible state advances, so an idle queue position costs
 * no traffic.
 */
bool
streamWatch(int fd, Service &service, std::uint64_t id,
            const std::atomic<bool> &stop)
{
    int last_done = -1;
    std::string last_state;
    for (;;) {
        const std::optional<SubmissionStatus> st = service.status(id);
        if (!st)
            return sendFrame(fd, errFrame("unknown submission id"));
        const bool terminal =
            st->state == SubmissionState::Done ||
            st->state == SubmissionState::Failed;
        if (terminal) {
            Frame done{"DONE", statusArgs(id, *st)};
            if (!st->error.empty())
                done.args.push_back(st->error);
            return sendFrame(fd, done);
        }
        if (st->programsDone != last_done ||
            stateName(st->state) != last_state) {
            last_done = st->programsDone;
            last_state = stateName(st->state);
            if (!sendFrame(fd,
                           Frame{"PROGRESS", statusArgs(id, *st)}))
                return false;
        }
        if (stop.load(std::memory_order_relaxed))
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

void
handleConnection(int fd, Service &service, std::atomic<bool> &stop)
{
    std::string buf;
    for (;;) {
        const std::optional<Frame> req = recvFrame(fd, buf, stop);
        if (!req)
            break;
        if (req->type == "HELLO") {
            if (req->args.size() != 1 ||
                req->args[0] != kRpcVersion) {
                sendFrame(fd, errFrame("protocol mismatch"));
                break;
            }
            if (!sendFrame(fd, okFrame({kRpcVersion})))
                break;
        } else if (req->type == "PING") {
            if (!sendFrame(fd, okFrame({"pong"})))
                break;
        } else if (req->type == "SUBMIT") {
            std::string err;
            const std::optional<SubmissionSpec> spec =
                specFromArgs(req->args, err);
            if (!spec) {
                if (!sendFrame(fd, errFrame(err)))
                    break;
                continue;
            }
            const SubmitResult res = service.submit(*spec);
            if (!res.accepted) {
                if (!sendFrame(fd, errFrame(res.error)))
                    break;
                continue;
            }
            if (!sendFrame(fd,
                           okFrame({std::to_string(res.id)})))
                break;
        } else if (req->type == "STATUS" &&
                   req->args.size() == 1) {
            std::uint64_t id = 0;
            try {
                id = std::stoull(req->args[0]);
            } catch (...) {
                id = 0;
            }
            const std::optional<SubmissionStatus> st =
                service.status(id);
            if (!st) {
                if (!sendFrame(fd,
                               errFrame("unknown submission id")))
                    break;
                continue;
            }
            if (!sendFrame(fd, okFrame(statusArgs(id, *st))))
                break;
        } else if (req->type == "WATCH" && req->args.size() == 1) {
            std::uint64_t id = 0;
            try {
                id = std::stoull(req->args[0]);
            } catch (...) {
                id = 0;
            }
            if (!streamWatch(fd, service, id, stop))
                break;
        } else if (req->type == "DRAIN") {
            service.drain();
            sendFrame(fd, okFrame({"drained"}));
            stop.store(true, std::memory_order_relaxed);
            break;
        } else {
            if (!sendFrame(fd, errFrame("unknown request '" +
                                        req->type + "'")))
                break;
        }
    }
    ::close(fd);
}

} // namespace

bool
serveLoop(Service &service, const std::string &socket_path,
          std::atomic<bool> &stop)
{
    const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listener < 0) {
        warn("svc: cannot create socket");
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        warn("svc: socket path too long: " + socket_path);
        ::close(listener);
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    ::unlink(socket_path.c_str());
    if (::bind(listener, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(listener, 64) != 0) {
        warn("svc: cannot bind/listen on " + socket_path);
        ::close(listener);
        return false;
    }
    inform("scamvd: serving on " + socket_path);

    std::vector<std::thread> handlers;
    while (!stop.load(std::memory_order_relaxed)) {
        struct pollfd pfd{listener, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr <= 0)
            continue;
        const int fd = ::accept(listener, nullptr, nullptr);
        if (fd < 0)
            continue;
        metrics::Registry::global()
            .counter("svc.connections")
            .inc();
        handlers.emplace_back([fd, &service, &stop] {
            handleConnection(fd, service, stop);
        });
    }
    ::close(listener);
    ::unlink(socket_path.c_str());
    for (std::thread &t : handlers)
        t.join();
    return true;
}

Client::~Client()
{
    close();
}

void
Client::close()
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
    buf.clear();
}

bool
Client::connectTo(const std::string &socket_path)
{
    close();
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof addr.sun_path) {
        close();
        return false;
    }
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        close();
        return false;
    }
    const std::optional<Frame> hello =
        call(Frame{"HELLO", {kRpcVersion}});
    if (!hello || hello->type != "OK") {
        close();
        return false;
    }
    return true;
}

bool
Client::send(const Frame &frame)
{
    return fd >= 0 && sendFrame(fd, frame);
}

std::optional<Frame>
Client::recv()
{
    if (fd < 0)
        return std::nullopt;
    for (;;) {
        Frame frame;
        std::size_t consumed = 0;
        const FrameStatus st = decodeFrame(buf, frame, consumed);
        if (st == FrameStatus::Ok) {
            buf.erase(0, consumed);
            return frame;
        }
        if (st == FrameStatus::Bad)
            return std::nullopt;
        char chunk[4096];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0)
            return std::nullopt;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
}

std::optional<Frame>
Client::call(const Frame &frame)
{
    if (!send(frame))
        return std::nullopt;
    return recv();
}

} // namespace scamv::svc
