/**
 * @file
 * The campaign service: queue, worker fleet, ordered merge/fold.
 *
 * Thread layout: `submit()` runs on the caller (library user or a
 * connection handler); `workers` threads pull (campaign, shard)
 * slice tasks and run `shard::runWorker`; one merger thread folds
 * finished campaigns through `shard::mergeCampaign` *in submission
 * order* and then folds each campaign's rebuilt qcache checkpoint
 * into the service checkpoint.  The submission-ordered fold is what
 * keeps the shared checkpoint deterministic even when campaigns
 * execute concurrently and finish out of order: the fold sequence —
 * and with keep-first dedup therefore every checkpoint byte — is a
 * pure function of the submission sequence.
 *
 * Byte-identity (ARCHITECTURE.md, invariant 10): a campaign's
 * artifacts are produced by exactly the code path a standalone
 * scamv_worker/scamv_merge run uses, under a config built by the
 * same `campaignConfig`; the service only adds (a) scheduling, which
 * per-task registries and shard-local state make invisible, and (b)
 * checkpoint seeding, which invariant 5 (warm == cold) makes
 * invisible to everything except the qcache checkpoint itself.
 *
 * Failure model: a worker or merge failure marks that submission
 * Failed and the daemon keeps serving (per-campaign isolation).  The
 * `svc_accept_drop` site drops submissions at accept (retried up to
 * the retry budget); `svc_worker_lost` deletes a finished shard's
 * artifacts — simulating a worker process dying before handoff —
 * which the always-on `rerunMissing` merge path recovers
 * byte-identically (PR 7's recovery proof).
 */

#include "svc/svc.hh"

#include <condition_variable>
#include <deque>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "shard/shard.hh"
#include "support/env.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/qcache/qcache.hh"

namespace fs = std::filesystem;

namespace scamv::svc {

namespace {

/** Accept-time retry budget, mirroring resolveCampaignEnv's. */
int
acceptRetryMax(const SubmissionSpec &spec)
{
    if (spec.retryMax >= 0)
        return spec.retryMax;
    return static_cast<int>(
        envLong("SCAMV_RETRY_MAX", 0, 64).value_or(2));
}

} // namespace

ServiceConfig
ServiceConfig::fromEnv()
{
    ServiceConfig cfg;
    if (const char *dir = std::getenv("SCAMV_SVC_DIR"); dir && *dir)
        cfg.dir = dir;
    cfg.socketPath = cfg.dir + "/scamvd.sock";
    if (const char *sock = std::getenv("SCAMV_SVC_SOCKET");
        sock && *sock)
        cfg.socketPath = sock;
    cfg.workers = static_cast<int>(
        envLong("SCAMV_SVC_WORKERS", 1, 64).value_or(2));
    cfg.shards = static_cast<int>(
        envLong("SCAMV_SVC_SHARDS", 1, 16).value_or(2));
    cfg.queueMax = static_cast<int>(
        envLong("SCAMV_SVC_QUEUE_MAX", 1, 4096).value_or(64));
    return cfg;
}

/** One accepted submission's full lifecycle state. */
struct Submission {
    std::uint64_t id = 0;
    SubmissionSpec spec;
    std::string dir;
    int shards = 1;
    SubmissionState state = SubmissionState::Queued;
    /** Programs completed, bumped by the pipeline progress hook
     *  from fleet threads (read lock-free by status()). */
    std::atomic<int> done{0};
    int total = 0;
    /** Shard slices still executing (guarded by the service mutex). */
    int shardsLeft = 0;
    /** Post-merge results (guarded; 0 until Done). */
    std::int64_t counterexamples = 0;
    std::int64_t coveredClasses = 0;
    std::int64_t findingsCount = 0;
    std::string error;
};

struct Service::Impl {
    ServiceConfig cfg;
    mutable std::mutex mu;
    std::condition_variable cv;
    bool stop = false;
    bool draining = false;
    /** Shared qcache checkpoint active (SCAMV_QCACHE_MB set). */
    bool cacheEnabled = false;
    std::uint64_t nextId = 1;
    /** Next submission id the merger may fold (submission order). */
    std::uint64_t nextMerge = 1;
    /** Non-terminal submissions (queueMax bound). */
    int live = 0;
    std::map<std::uint64_t, std::unique_ptr<Submission>> subs;
    SubmissionQueue pending;
    struct SliceTask {
        Submission *sub = nullptr;
        int shard = 0;
    };
    std::deque<SliceTask> slices;
    /** Campaigns whose shards all finished, awaiting their fold turn. */
    std::set<std::uint64_t> mergeReady;
    std::vector<std::thread> fleet;
    std::thread merger;

    std::string
    checkpointPath() const
    {
        // Deliberately not shard::kQcacheFile: the service root holds
        // campaign-<id>/ dirs whose own qcache.txt is a per-campaign
        // artifact; the distinct name keeps operators from confusing
        // the shared checkpoint with a campaign cache.
        return cfg.dir + "/qcache.ckpt";
    }

    std::string
    campaignDir(std::uint64_t id) const
    {
        return cfg.dir + "/campaign-" + std::to_string(id);
    }

    /**
     * Move a popped submission onto the fleet: create its campaign
     * and shard directories and seed every shard with the current
     * service checkpoint (the worker's private cache loads it warm).
     * Seeding is skipped for fault-plan campaigns — those bypass the
     * cache entirely (resolveCampaignEnv) — and when the environment
     * never enabled caching.  Called with the mutex held: staging
     * must see the checkpoint between folds, never mid-fold.
     */
    void
    stageLocked(std::uint64_t id)
    {
        Submission *sub = subs.at(id).get();
        std::error_code ec;
        fs::create_directories(sub->dir, ec);
        const bool seed = cacheEnabled &&
                          !faultPlanFor(sub->spec).enabled();
        const std::string ckpt = checkpointPath();
        for (int i = 0; i < sub->shards; ++i) {
            const std::string sdir = shard::shardDir(sub->dir, i);
            fs::create_directories(sdir, ec);
            if (seed && fs::exists(ckpt, ec)) {
                fs::copy_file(
                    ckpt, sdir + "/" + shard::kQcacheFile,
                    fs::copy_options::overwrite_existing, ec);
                if (ec)
                    warn("svc: cannot seed checkpoint into " + sdir);
            }
        }
        for (int i = 0; i < sub->shards; ++i)
            slices.push_back(SliceTask{sub, i});
        metrics::Registry::global().counter("svc.staged").inc();
    }

    /** Run one shard slice on a fleet thread (mutex not held). */
    void
    runSlice(Submission *sub, int shard)
    {
        metrics::Registry &global = metrics::Registry::global();
        core::PipelineConfig cfg_c = campaignConfig(sub->spec);
        cover::CoverageLedger ledger;
        cfg_c.coverageLedger = &ledger;
        cfg_c.progressHook = [sub](int) {
            sub->done.fetch_add(1, std::memory_order_relaxed);
        };
        const std::string sdir = shard::shardDir(sub->dir, shard);
        bool ok = false;
        try {
            const shard::WorkerResult res = shard::runWorker(
                cfg_c, shard::ShardSpec{shard, sub->shards}, sdir);
            ok = res.ok;
        } catch (const std::exception &e) {
            warn("svc: worker for campaign " +
                 std::to_string(sub->id) + " shard " +
                 std::to_string(shard) + " died: " + e.what());
        } catch (...) {
            warn("svc: worker for campaign " +
                 std::to_string(sub->id) + " shard " +
                 std::to_string(shard) + " died");
        }
        global.counter("svc.shards_run").inc();
        if (!ok)
            global.counter("svc.shards_failed").inc();

        // svc_worker_lost: the worker "process" dies after running
        // its slice but before handing its artifacts over.  The
        // decision is keyed like every per-program fault — (campaign
        // seed, slice's first program, site, attempt) — so a plan
        // replays identically; the merge below recovers the lost
        // programs through its always-on rerunMissing path.
        if (cfg_c.faultPlan.enabled() &&
            cfg_c.faultPlan.covers(faults::Site::SvcWorkerLost)) {
            const shard::Slice sl = shard::planShard(
                cfg_c.seed, cfg_c.programs, sub->shards, shard);
            faults::Injector inj(cfg_c.faultPlan, cfg_c.seed,
                                 sl.first);
            if (inj.fire(faults::Site::SvcWorkerLost)) {
                std::error_code ec;
                fs::remove(sdir + "/" + shard::kOutcomesFile, ec);
                fs::remove(sdir + "/" + shard::kQcacheFile, ec);
                global.counter("svc.worker_lost").inc();
            }
        }
    }

    /** Coordinator merge for one campaign (mutex not held). */
    bool
    mergeOne(Submission *sub)
    {
        core::PipelineConfig cfg_c = campaignConfig(sub->spec);
        cover::CoverageLedger ledger;
        core::ExperimentDb db;
        cfg_c.coverageLedger = &ledger;
        cfg_c.database = &db;
        if (sub->spec.minimize)
            cfg_c.findingsFile = sub->dir + "/findings.json";
        shard::MergeOptions mopts;
        mopts.rerunMissing = true;
        try {
            const shard::MergeResult res = shard::mergeCampaign(
                cfg_c, sub->shards, sub->dir, mopts);
            std::lock_guard<std::mutex> lk(mu);
            sub->counterexamples = res.stats.counterexamples;
            sub->coveredClasses = res.stats.coveredClasses;
            sub->findingsCount = static_cast<std::int64_t>(
                res.stats.findings.size());
            if (!res.missingPrograms.empty()) {
                sub->error = "merge left " +
                             std::to_string(
                                 res.missingPrograms.size()) +
                             " programs missing";
                return false;
            }
            return true;
        } catch (const std::exception &e) {
            std::lock_guard<std::mutex> lk(mu);
            sub->error = std::string("merge died: ") + e.what();
            return false;
        } catch (...) {
            std::lock_guard<std::mutex> lk(mu);
            sub->error = "merge died";
            return false;
        }
    }

    /**
     * Fold a finished campaign's rebuilt checkpoint into the service
     * checkpoint (keep-first, so replayed entries dedup away).
     * Called with the mutex held, strictly in submission order.
     */
    void
    foldLocked(Submission *sub)
    {
        if (!cacheEnabled || faultPlanFor(sub->spec).enabled())
            return;
        const std::string campaign_q =
            sub->dir + "/" + shard::kQcacheFile;
        std::error_code ec;
        if (!fs::exists(campaign_q, ec))
            return;
        const std::string ckpt = checkpointPath();
        const std::string tmp = ckpt + ".tmp";
        std::vector<std::string> inputs;
        if (fs::exists(ckpt, ec))
            inputs.push_back(ckpt);
        inputs.push_back(campaign_q);
        if (!shard::mergeQcacheFiles(inputs, tmp)) {
            warn("svc: cannot fold checkpoint for campaign " +
                 std::to_string(sub->id));
            return;
        }
        fs::rename(tmp, ckpt, ec);
        if (ec)
            warn("svc: cannot install folded checkpoint");
        else
            metrics::Registry::global()
                .counter("svc.checkpoint_folds")
                .inc();
    }

    void
    workerLoop()
    {
        for (;;) {
            SliceTask task;
            {
                std::unique_lock<std::mutex> lk(mu);
                for (;;) {
                    if (!slices.empty()) {
                        task = slices.front();
                        slices.pop_front();
                        break;
                    }
                    if (const std::optional<std::uint64_t> id =
                            pending.pop()) {
                        stageLocked(*id);
                        continue;
                    }
                    if (stop)
                        return;
                    cv.wait(lk);
                }
                if (task.sub->state == SubmissionState::Queued) {
                    task.sub->state = SubmissionState::Running;
                    cv.notify_all();
                }
            }
            runSlice(task.sub, task.shard);
            {
                std::lock_guard<std::mutex> lk(mu);
                if (--task.sub->shardsLeft == 0)
                    mergeReady.insert(task.sub->id);
                cv.notify_all();
            }
        }
    }

    void
    mergerLoop()
    {
        for (;;) {
            Submission *sub = nullptr;
            {
                std::unique_lock<std::mutex> lk(mu);
                for (;;) {
                    if (mergeReady.count(nextMerge)) {
                        mergeReady.erase(nextMerge);
                        sub = subs.at(nextMerge).get();
                        break;
                    }
                    if (stop && nextMerge == nextId)
                        return;
                    cv.wait(lk);
                }
                sub->state = SubmissionState::Merging;
                cv.notify_all();
            }
            const bool ok = mergeOne(sub);
            {
                std::lock_guard<std::mutex> lk(mu);
                if (ok)
                    foldLocked(sub);
                sub->state = ok ? SubmissionState::Done
                                : SubmissionState::Failed;
                metrics::Registry::global()
                    .counter(ok ? "svc.campaigns_done"
                                : "svc.campaigns_failed")
                    .inc();
                --live;
                ++nextMerge;
                cv.notify_all();
            }
        }
    }
};

Service::Service(const ServiceConfig &config)
    : cfg(config), impl(std::make_unique<Impl>())
{
    if (cfg.workers < 1)
        cfg.workers = 1;
    if (cfg.shards < 1)
        cfg.shards = 1;
    if (cfg.queueMax < 1)
        cfg.queueMax = 1;
    impl->cfg = cfg;
    impl->cacheEnabled =
        qcache::QueryCache::configFromEnv().maxBytes > 0;
    std::error_code ec;
    fs::create_directories(cfg.dir, ec);
    if (ec)
        warn("svc: cannot create service directory " + cfg.dir);
    for (int i = 0; i < cfg.workers; ++i)
        impl->fleet.emplace_back([this] { impl->workerLoop(); });
    impl->merger = std::thread([this] { impl->mergerLoop(); });
}

Service::~Service()
{
    {
        std::lock_guard<std::mutex> lk(impl->mu);
        impl->stop = true;
        impl->draining = true;
        impl->cv.notify_all();
    }
    for (std::thread &t : impl->fleet)
        t.join();
    impl->merger.join();
}

SubmitResult
Service::submit(const SubmissionSpec &spec)
{
    metrics::Registry &global = metrics::Registry::global();

    // One validator for every entry path: round-trip the spec
    // through the frame marshalling so library and socket
    // submissions are held to identical bounds.
    std::string err;
    if (!specFromArgs(specToArgs(spec), err)) {
        global.counter("svc.rejected").inc();
        return SubmitResult{false, 0, err};
    }

    // svc_accept_drop: the accept path loses the submission (a
    // connection reset, an overloaded accept thread).  Deterministic
    // in (spec seed, site, attempt); retried with the campaign's
    // retry budget, so a drop on every attempt rejects.
    const faults::FaultPlan plan = faultPlanFor(spec);
    if (plan.enabled() &&
        plan.covers(faults::Site::SvcAcceptDrop)) {
        faults::Injector inj(plan, spec.seed, /*prog_i=*/-1);
        const int retry_max = acceptRetryMax(spec);
        bool dropped = true;
        for (int attempt = 0; attempt <= retry_max; ++attempt) {
            dropped = inj.fire(faults::Site::SvcAcceptDrop);
            if (!dropped)
                break;
            global.counter("svc.accept_retries").inc();
        }
        if (dropped) {
            global.counter("svc.accept_drop").inc();
            global.counter("svc.rejected").inc();
            return SubmitResult{
                false, 0, "accept_drop: submission lost at accept"};
        }
    }

    std::lock_guard<std::mutex> lk(impl->mu);
    if (impl->draining || impl->stop) {
        global.counter("svc.rejected").inc();
        return SubmitResult{false, 0, "service is draining"};
    }
    if (impl->live >= cfg.queueMax) {
        global.counter("svc.rejected").inc();
        return SubmitResult{false, 0, "queue full"};
    }
    const std::uint64_t id = impl->nextId++;
    auto sub = std::make_unique<Submission>();
    sub->id = id;
    sub->spec = spec;
    sub->dir = impl->campaignDir(id);
    sub->shards = spec.shards > 0 ? spec.shards : cfg.shards;
    sub->total = spec.programs;
    sub->shardsLeft = sub->shards;
    impl->subs.emplace(id, std::move(sub));
    impl->pending.push(id, spec.priority);
    ++impl->live;
    global.counter("svc.submitted").inc();
    impl->cv.notify_all();
    return SubmitResult{true, id, ""};
}

std::optional<SubmissionStatus>
Service::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lk(impl->mu);
    const auto it = impl->subs.find(id);
    if (it == impl->subs.end())
        return std::nullopt;
    const Submission &sub = *it->second;
    SubmissionStatus st;
    st.state = sub.state;
    st.programsDone = sub.done.load(std::memory_order_relaxed);
    st.programsTotal = sub.total;
    st.counterexamples = sub.counterexamples;
    st.coveredClasses = sub.coveredClasses;
    st.findings = sub.findingsCount;
    st.dir = sub.dir;
    st.error = sub.error;
    return st;
}

bool
Service::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(impl->mu);
    const auto it = impl->subs.find(id);
    if (it == impl->subs.end())
        return false;
    Submission *sub = it->second.get();
    impl->cv.wait(lk, [&] {
        return sub->state == SubmissionState::Done ||
               sub->state == SubmissionState::Failed;
    });
    return sub->state == SubmissionState::Done;
}

void
Service::drain()
{
    std::unique_lock<std::mutex> lk(impl->mu);
    impl->draining = true;
    impl->cv.wait(lk,
                  [&] { return impl->nextMerge == impl->nextId; });
}

std::string
Service::campaignDir(std::uint64_t id) const
{
    return impl->campaignDir(id);
}

std::string
Service::checkpointPath() const
{
    return impl->checkpointPath();
}

} // namespace scamv::svc
