/**
 * @file
 * "scamv-rpc-v1" frame codec and submission-spec marshalling.
 *
 * A frame payload is one line in the shard-artifact discipline
 * (shard/artifact.cc): space-separated fields, percent-escaped so
 * fields with spaces or control bytes survive, ending in an fnv1a
 * checksum over the line's prefix.  On the wire each payload is
 * preceded by an 8-hex-digit byte length plus '\n', so a reader can
 * frame the stream without scanning for terminators and a truncated
 * connection is detected as NeedMore, never a short parse.  Damage
 * handling mirrors the qcache/shard codecs: a bad checksum or
 * malformed field drops the whole frame.
 */

#include "svc/svc.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "shard/shard.hh"
#include "support/qcache/canon.hh"

namespace scamv::svc {
namespace {

std::string
hex16(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
    return buf;
}

/** Percent-escape a field: no spaces, no newlines, never empty. */
std::string
esc(std::string_view s)
{
    if (s.empty())
        return "-";
    if (s == "-")
        return "%2D";
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        const unsigned char u = static_cast<unsigned char>(c);
        if (c == '%' || c == ' ' || u < 0x20) {
            char buf[4];
            std::snprintf(buf, sizeof buf, "%%%02X", u);
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::optional<std::string>
unesc(std::string_view s)
{
    if (s == "-")
        return std::string();
    std::string out;
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out += s[i];
            continue;
        }
        if (i + 2 >= s.size())
            return std::nullopt;
        const int hi = hexNibble(s[i + 1]);
        const int lo = hexNibble(s[i + 2]);
        if (hi < 0 || lo < 0)
            return std::nullopt;
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
    }
    return out;
}

bool
parseU64(std::string_view s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 20)
        return false;
    char buf[24];
    s.copy(buf, s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtoull(buf, &end, 10);
    return end == buf + s.size();
}

bool
parseI64(std::string_view s, std::int64_t &out)
{
    if (s.empty() || s.size() > 20)
        return false;
    char buf[24];
    s.copy(buf, s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtoll(buf, &end, 10);
    return end == buf + s.size();
}

bool
parseDouble(std::string_view s, double &out)
{
    if (s.empty() || s.size() > 40)
        return false;
    char buf[48];
    s.copy(buf, s.size());
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + s.size();
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

std::string
encodePayload(const Frame &frame)
{
    std::string line = esc(frame.type);
    for (const std::string &arg : frame.args) {
        line += ' ';
        line += esc(arg);
    }
    line += ' ';
    line += hex16(qcache::fnv1a(
        std::string_view(line.data(), line.size() - 1)));
    return line;
}

std::optional<Frame>
decodePayload(std::string_view payload)
{
    // Validate and strip the trailing checksum field.
    const std::size_t space = payload.rfind(' ');
    if (space == std::string_view::npos ||
        payload.size() - space - 1 != 16)
        return std::nullopt;
    std::uint64_t sum = 0;
    for (char c : payload.substr(space + 1)) {
        const int nib = hexNibble(c);
        if (nib < 0)
            return std::nullopt;
        sum = sum * 16 + static_cast<std::uint64_t>(nib);
    }
    const std::string_view prefix = payload.substr(0, space);
    if (sum != qcache::fnv1a(prefix))
        return std::nullopt;

    Frame frame;
    std::size_t pos = 0;
    bool first = true;
    while (pos <= prefix.size()) {
        const std::size_t next = prefix.find(' ', pos);
        const std::string_view field =
            next == std::string_view::npos
                ? prefix.substr(pos)
                : prefix.substr(pos, next - pos);
        const std::optional<std::string> plain = unesc(field);
        if (!plain)
            return std::nullopt;
        if (first) {
            if (plain->empty())
                return std::nullopt;
            frame.type = *plain;
            first = false;
        } else {
            frame.args.push_back(*plain);
        }
        if (next == std::string_view::npos)
            break;
        pos = next + 1;
    }
    if (first)
        return std::nullopt;
    return frame;
}

std::string
encodeFrame(const Frame &frame)
{
    const std::string payload = encodePayload(frame);
    char prefix[16];
    std::snprintf(prefix, sizeof prefix, "%08zx\n", payload.size());
    return prefix + payload;
}

FrameStatus
decodeFrame(std::string_view buf, Frame &out, std::size_t &consumed)
{
    if (buf.size() < 9)
        return FrameStatus::NeedMore;
    std::uint64_t len = 0;
    for (int i = 0; i < 8; ++i) {
        const int nib = hexNibble(buf[static_cast<std::size_t>(i)]);
        if (nib < 0)
            return FrameStatus::Bad;
        len = len * 16 + static_cast<std::uint64_t>(nib);
    }
    if (buf[8] != '\n' || len > kMaxFrameBytes)
        return FrameStatus::Bad;
    if (buf.size() < 9 + len)
        return FrameStatus::NeedMore;
    const std::optional<Frame> frame =
        decodePayload(buf.substr(9, len));
    if (!frame)
        return FrameStatus::Bad;
    out = *frame;
    consumed = 9 + len;
    return FrameStatus::Ok;
}

std::vector<std::string>
specToArgs(const SubmissionSpec &spec)
{
    std::vector<std::string> args;
    args.push_back("programs=" + std::to_string(spec.programs));
    args.push_back("tests=" + std::to_string(spec.tests));
    args.push_back("seed=" + std::to_string(spec.seed));
    args.push_back("adaptive=" + std::to_string(spec.adaptive ? 1 : 0));
    args.push_back("line=" + std::to_string(spec.line ? 1 : 0));
    args.push_back("priority=" + std::to_string(spec.priority));
    args.push_back("shards=" + std::to_string(spec.shards));
    args.push_back(std::string("fault_rate=") +
                   fmtDouble(spec.faultRate));
    args.push_back("fault_plan=" + (spec.faultSites.empty()
                                        ? std::string("-")
                                        : spec.faultSites));
    args.push_back("retry_max=" + std::to_string(spec.retryMax));
    args.push_back("triage=" + std::to_string(spec.triage ? 1 : 0));
    args.push_back("minimize=" +
                   std::to_string(spec.minimize ? 1 : 0));
    args.push_back("corpus=" + (spec.corpusDir.empty()
                                    ? std::string("-")
                                    : spec.corpusDir));
    return args;
}

std::optional<SubmissionSpec>
specFromArgs(const std::vector<std::string> &args, std::string &error)
{
    SubmissionSpec spec;
    for (const std::string &arg : args) {
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
            error = "malformed submission field '" + arg + "'";
            return std::nullopt;
        }
        const std::string_view key(arg.data(), eq);
        const std::string_view val(arg.data() + eq + 1,
                                   arg.size() - eq - 1);
        std::int64_t i = 0;
        std::uint64_t u = 0;
        double d = 0.0;
        if (key == "programs" && parseI64(val, i) && i >= 1 &&
            i <= 100000) {
            spec.programs = static_cast<int>(i);
        } else if (key == "tests" && parseI64(val, i) && i >= 1 &&
                   i <= 10000) {
            spec.tests = static_cast<int>(i);
        } else if (key == "seed" && parseU64(val, u)) {
            spec.seed = u;
        } else if (key == "adaptive" && parseI64(val, i) &&
                   (i == 0 || i == 1)) {
            spec.adaptive = i != 0;
        } else if (key == "line" && parseI64(val, i) &&
                   (i == 0 || i == 1)) {
            spec.line = i != 0;
        } else if (key == "priority" && parseI64(val, i) &&
                   i >= -100 && i <= 100) {
            spec.priority = static_cast<int>(i);
        } else if (key == "shards" && parseI64(val, i) && i >= 0 &&
                   i <= 64) {
            spec.shards = static_cast<int>(i);
        } else if (key == "fault_rate" && parseDouble(val, d) &&
                   d >= 0.0 && d <= 1.0) {
            spec.faultRate = d;
        } else if (key == "fault_plan") {
            spec.faultSites = val == "-" ? "" : std::string(val);
        } else if (key == "retry_max" && parseI64(val, i) &&
                   i >= -1 && i <= 64) {
            spec.retryMax = static_cast<int>(i);
        } else if (key == "triage" && parseI64(val, i) &&
                   (i == 0 || i == 1)) {
            spec.triage = i != 0;
        } else if (key == "minimize" && parseI64(val, i) &&
                   (i == 0 || i == 1)) {
            spec.minimize = i != 0;
        } else if (key == "corpus") {
            spec.corpusDir = val == "-" ? "" : std::string(val);
        } else {
            error = "invalid submission field '" + arg + "'";
            return std::nullopt;
        }
    }
    return spec;
}

faults::FaultPlan
faultPlanFor(const SubmissionSpec &spec)
{
    faults::FaultPlan plan;
    if (spec.faultRate <= 0.0)
        return plan;
    plan.rate = spec.faultRate;
    if (spec.faultSites.empty()) {
        plan.mask = faults::FaultPlan::maskAll();
        return plan;
    }
    std::string_view rest(spec.faultSites);
    while (!rest.empty()) {
        const std::size_t split = rest.find_first_of(", \t");
        const std::string_view token = rest.substr(0, split);
        rest = split == std::string_view::npos
                   ? std::string_view()
                   : rest.substr(split + 1);
        if (token.empty())
            continue;
        if (token == "all")
            plan.mask = faults::FaultPlan::maskAll();
        else if (auto site = faults::siteFromName(token))
            plan.mask |= 1u << static_cast<int>(*site);
    }
    if (plan.mask == 0)
        plan.rate = 0.0;
    return plan;
}

core::PipelineConfig
campaignConfig(const SubmissionSpec &spec)
{
    core::PipelineConfig cfg =
        spec.corpusDir.empty()
            ? shard::defaultWorkload(spec.programs, spec.tests,
                                     spec.seed, spec.adaptive,
                                     spec.line)
            : shard::corpusWorkload(spec.programs, spec.tests,
                                    spec.seed, spec.adaptive,
                                    spec.corpusDir);
    if (spec.faultRate > 0.0)
        cfg.faultPlan = faultPlanFor(spec);
    if (spec.retryMax >= 0)
        cfg.retryMax = spec.retryMax;
    if (spec.triage)
        cfg.triageScreen = 1;
    if (spec.minimize)
        cfg.triageMinimize = 1;
    return cfg;
}

const char *
stateName(SubmissionState state)
{
    switch (state) {
      case SubmissionState::Queued: return "queued";
      case SubmissionState::Running: return "running";
      case SubmissionState::Merging: return "merging";
      case SubmissionState::Done: return "done";
      case SubmissionState::Failed: return "failed";
    }
    return "?";
}

} // namespace scamv::svc
