/**
 * @file
 * Randomized repair sampler: a stochastic-local-search model finder.
 *
 * The CDCL path produces canonical models; this sampler produces
 * *diverse* models quickly by starting from a random assignment and
 * repairing violated conjuncts with pattern-directed moves (make two
 * terms equal, force a term into the memory region, flip a memory
 * word, ...).  It is sound — a returned assignment is re-checked
 * against the whole formula — but incomplete: failure after the
 * iteration budget does not imply unsatisfiability, so callers fall
 * back to the CDCL solver.
 *
 * Used by the pipeline's "random" test-generation strategy and by the
 * ablation bench comparing search strategies.
 */

#ifndef SCAMV_SMT_SAMPLER_HH
#define SCAMV_SMT_SAMPLER_HH

#include <functional>
#include <optional>
#include <vector>

#include "expr/eval.hh"
#include "expr/expr.hh"
#include "support/rng.hh"

namespace scamv::smt {

/** Tuning knobs for the repair sampler. */
struct SamplerConfig {
    /** Repair iterations before giving up. */
    int maxIters = 600;
    /** Fresh restarts of the initial assignment. */
    int maxRestarts = 3;
    /** Address-like values are drawn from this region with this bias. */
    std::uint64_t regionBase = 0x80000;
    std::uint64_t regionLimit = 0x100000;
    double regionBias = 0.85;
    /**
     * Optional model source consulted before the stochastic search:
     * given the formula, return a candidate assignment (e.g. a cached
     * solver model for a semantically equal formula) or nullopt.  A
     * returned candidate is re-validated against the formula before
     * use — an invalid one is counted (`smt.sampler.seed_rejected`)
     * and the normal search runs.  The hook keeps smt/ free of a
     * dependency on the query cache: the cache layer supplies the
     * closure (see qcache::samplerSeedOracle).
     */
    std::function<std::optional<expr::Assignment>(expr::Expr)>
        seedOracle;
};

/** Stochastic model finder for one formula. */
class RepairSampler
{
  public:
    RepairSampler(expr::ExprContext &ctx, expr::Expr formula, Rng &rng,
                  const SamplerConfig &config = {});

    /**
     * Attempt to find a satisfying assignment.
     * @return a model, or nullopt if the budget was exhausted.
     */
    std::optional<expr::Assignment> sample();

  private:
    std::uint64_t randomValue();
    void initAssignment(expr::Assignment &a);
    void seedMemoryCells(expr::Assignment &a);
    bool trySatisfy(expr::Expr e, bool want, expr::Assignment &a,
                    int depth);
    bool forceValue(expr::Expr term, std::uint64_t value,
                    expr::Assignment &a);
    void mutateSomething(expr::Expr e, expr::Assignment &a);

    expr::ExprContext &ctx;
    expr::Expr formula;
    std::vector<expr::Expr> conjuncts;
    std::vector<expr::Expr> bvVars;
    Rng &rng;
    SamplerConfig config;
};

} // namespace scamv::smt

#endif // SCAMV_SMT_SAMPLER_HH
