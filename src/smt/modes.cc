#include "smt/modes.hh"

#include <cstdlib>
#include <string>

#include "support/logging.hh"

namespace scamv::smt {

const char *
solverModeName(SolverMode mode)
{
    switch (mode) {
      case SolverMode::Oneshot: return "oneshot";
      case SolverMode::Incremental: return "incremental";
      case SolverMode::Portfolio: return "portfolio";
    }
    SCAMV_PANIC("unknown solver mode");
}

SolverMode
solverModeFromEnv()
{
    const char *raw = std::getenv("SCAMV_SOLVER");
    if (!raw || !*raw)
        return SolverMode::Incremental;
    const std::string v(raw);
    if (v == "oneshot")
        return SolverMode::Oneshot;
    if (v == "incremental")
        return SolverMode::Incremental;
    if (v == "portfolio")
        return SolverMode::Portfolio;
    warn("SCAMV_SOLVER: unknown mode \"" + v +
         "\" (expected oneshot|incremental|portfolio); using "
         "incremental");
    return SolverMode::Incremental;
}

} // namespace scamv::smt
