/**
 * @file
 * SMT-lite solver facade over the bit-blaster and CDCL core.
 *
 * Plays the role of Z3 in the Scam-V pipeline (Section 5.2): given a
 * boolean constraint over 64-bit register variables and memory reads,
 * it produces a concrete test-case valuation (registers + initial
 * memory words), or reports unsatisfiability.
 *
 * Memory handling: read-over-write chains are lowered to ite-chains
 * over reads of base memory variables, then every distinct
 * read(mem, addr) is Ackermannized into a fresh bitvector variable
 * with pairwise functional-consistency constraints.  Model extraction
 * maps each read back to a concrete (address, value) pair, yielding
 * the initial memory contents for the experiment platform.
 *
 * Model diversity: `blockCurrentModel` adds a clause forcing at least
 * one observable input bit to change, mimicking the enumeration of
 * distinct test cases from one relation.  With default (canonical)
 * phases the solver produces minimal, near-identical models — the
 * behaviour of unguided Z3-driven search that observation refinement
 * is designed to overcome; `randomizePhases` switches to uniformly
 * random model sampling instead.
 */

#ifndef SCAMV_SMT_SOLVER_HH
#define SCAMV_SMT_SOLVER_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bv/bitblast.hh"
#include "expr/eval.hh"
#include "expr/expr.hh"
#include "support/rng.hh"

namespace scamv::smt {

/** Solve outcome. */
enum class Outcome { Sat, Unsat, Unknown };

/** Aggregated solver statistics (exposed for benches). */
struct SolverStats {
    std::uint64_t satCalls = 0;
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
};

/**
 * One-shot incremental solver instance for a fixed base constraint.
 *
 * Usage: construct with the relation formula, then repeatedly call
 * solve() / blockCurrentModel() to enumerate distinct test cases.
 * Additional constraints (coverage classes) can be asserted between
 * calls with `require`.
 */
class SmtSolver
{
  public:
    /**
     * @param ctx   expression context the formula lives in
     * @param formula boolean constraint to satisfy
     */
    SmtSolver(expr::ExprContext &ctx, expr::Expr formula);
    ~SmtSolver();

    SmtSolver(const SmtSolver &) = delete;
    SmtSolver &operator=(const SmtSolver &) = delete;

    /** Assert an additional constraint (conjoined permanently). */
    void require(expr::Expr constraint);

    /**
     * Solve the accumulated constraints.
     * @param conflict_budget CDCL conflict limit (-1 = unlimited).
     */
    Outcome solve(std::int64_t conflict_budget = 200000);

    /**
     * solve() without the SmtUnknown fault-injection gate.  The query
     * cache owns exactly one gate per logical query and must not
     * re-fire it when solving a miss or replaying a cached prefix to
     * materialize an incremental solver; everything else (metrics
     * tallying, outcomes) is identical to solve().
     */
    Outcome solveNoInject(std::int64_t conflict_budget = 200000);

    /**
     * Solve under a temporary constraint that is *not* kept for later
     * calls (used for round-robin coverage classes).
     */
    Outcome solveWith(expr::Expr temporary,
                      std::int64_t conflict_budget = 200000);

    /**
     * Lower and bit-blast `temporary` without solving, exactly as
     * solveWith would before handing it to the SAT core.  Exposed for
     * op-log replay (oneshot solver mode): a solveWith call whose
     * search was cut short by an injected SAT timeout has already
     * blasted its constraint into the solver, and rebuilding that
     * state must reproduce the blasting but not the search.
     * Idempotent — blasting is memoized per expression.
     */
    void prepareTemporary(expr::Expr temporary);

    /**
     * Extract the model as a concrete Assignment: every bitvector /
     * boolean variable in the formula plus per-memory-variable initial
     * words for all Ackermannized reads.  Only valid after Sat.
     */
    expr::Assignment model();

    /**
     * Add a blocking clause: at least one of the low `bits` bits of
     * the given variables (bv vars) or of any memory-read value must
     * differ from the current model.
     *
     * Restricting to the low bits makes successive canonical models
     * "too similar to each other" — precisely the unguided-search
     * behaviour of Section 1 that refinement is designed to overcome.
     * @return false if the instance became unsat.
     */
    bool blockCurrentModel(const std::vector<expr::Expr> &vars,
                           int bits = bv::kWidth);

    /** Use uniformly random decision polarities from now on. */
    void randomizePhases(Rng &rng);

    /** Statistics of the underlying CDCL solver. */
    SolverStats stats() const;

  private:
    expr::Expr lowerAndAckermannize(expr::Expr e);
    expr::Expr lowerReads(expr::Expr e);

    expr::ExprContext &ctx;
    sat::Solver sat;
    bv::BitBlaster blaster;

    /** Variables appearing in asserted formulas (deduplicated). */
    std::vector<expr::Expr> seenVars;
    std::unordered_map<expr::Expr, bool> seenVarSet;

    struct ReadInfo {
        expr::Expr memVar;   ///< base memory variable
        expr::Expr addr;     ///< lowered address expression
        expr::Expr fresh;    ///< replacement bv variable
    };
    std::vector<ReadInfo> reads;
    std::unordered_map<expr::Expr, expr::Expr> readCache;
    std::unordered_map<expr::Expr, expr::Expr> lowerCache;
    int freshCounter = 0;
};

/**
 * Convenience helper: one-shot satisfiability check of a formula.
 */
Outcome checkSat(expr::ExprContext &ctx, expr::Expr formula,
                 std::int64_t conflict_budget = 200000);

/**
 * Tally one query outcome into metrics::current() exactly as solve()
 * does (smt.queries / smt.{sat,unsat,unknown} counters plus the
 * smt.solve_seconds histogram).  Exposed for wrappers that answer a
 * query without reaching the solver — a fault-injected Unknown in the
 * query cache, for instance — so the metric stream stays identical to
 * the uncached path.  @return `outcome`, for tail calls.
 */
Outcome tallyQuery(Outcome outcome, double start_time);

} // namespace scamv::smt

#endif // SCAMV_SMT_SOLVER_HH
