#include "smt/solver.hh"

#include <functional>

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::smt {

using expr::Expr;
using expr::ExprContext;
using expr::Kind;

SmtSolver::SmtSolver(ExprContext &ctx, Expr formula)
    : ctx(ctx), blaster(sat)
{
    require(formula);
}

SmtSolver::~SmtSolver() = default;

Expr
SmtSolver::lowerReads(Expr e)
{
    auto hit = lowerCache.find(e);
    if (hit != lowerCache.end())
        return hit->second;

    Expr result;
    if (e->kids.empty()) {
        result = e;
    } else {
        std::vector<Expr> ks;
        ks.reserve(e->kids.size());
        for (Expr k : e->kids)
            ks.push_back(lowerReads(k));

        if (e->kind == Kind::Read) {
            // Expand read-over-write chains into ite cascades so that
            // every remaining Read has a MemVar base.
            Expr addr = ks[1];
            std::function<Expr(Expr)> chain = [&](Expr m) -> Expr {
                if (m->kind == Kind::Store) {
                    Expr hit_val = m->kids[2];
                    Expr rest = chain(m->kids[0]);
                    return ctx.ite(ctx.eq(m->kids[1], addr), hit_val,
                                   rest);
                }
                SCAMV_ASSERT(m->kind == Kind::MemVar,
                             "read chain must end in a memory variable");
                return ctx.read(m, addr);
            };
            result = chain(ks[0]);
        } else {
            std::unordered_map<Expr, Expr> noop;
            // Rebuild with lowered children via substitute on a
            // single-level basis: construct directly.
            // (substitute() would re-walk; build by kind instead.)
            switch (e->kind) {
              case Kind::Add: result = ctx.add(ks[0], ks[1]); break;
              case Kind::Sub: result = ctx.sub(ks[0], ks[1]); break;
              case Kind::Mul: result = ctx.mul(ks[0], ks[1]); break;
              case Kind::BvAnd: result = ctx.bvAnd(ks[0], ks[1]); break;
              case Kind::BvOr: result = ctx.bvOr(ks[0], ks[1]); break;
              case Kind::BvXor: result = ctx.bvXor(ks[0], ks[1]); break;
              case Kind::BvNot: result = ctx.bvNot(ks[0]); break;
              case Kind::Neg: result = ctx.neg(ks[0]); break;
              case Kind::Shl: result = ctx.shl(ks[0], ks[1]); break;
              case Kind::Lshr: result = ctx.lshr(ks[0], ks[1]); break;
              case Kind::Ashr: result = ctx.ashr(ks[0], ks[1]); break;
              case Kind::Ite:
                result = ctx.ite(ks[0], ks[1], ks[2]);
                break;
              case Kind::Store:
                result = ctx.store(ks[0], ks[1], ks[2]);
                break;
              case Kind::Eq: result = ctx.eq(ks[0], ks[1]); break;
              case Kind::Ult: result = ctx.ult(ks[0], ks[1]); break;
              case Kind::Ule: result = ctx.ule(ks[0], ks[1]); break;
              case Kind::Slt: result = ctx.slt(ks[0], ks[1]); break;
              case Kind::Sle: result = ctx.sle(ks[0], ks[1]); break;
              case Kind::And: result = ctx.land(ks[0], ks[1]); break;
              case Kind::Or: result = ctx.lor(ks[0], ks[1]); break;
              case Kind::Not: result = ctx.lnot(ks[0]); break;
              case Kind::Implies:
                result = ctx.implies(ks[0], ks[1]);
                break;
              default:
                SCAMV_PANIC("lowerReads: unexpected kind");
            }
        }
    }
    lowerCache.emplace(e, result);
    return result;
}

Expr
SmtSolver::lowerAndAckermannize(Expr e)
{
    Expr lowered = lowerReads(e);

    // Bottom-up replacement of read(MemVar, addr) by fresh variables.
    std::function<Expr(Expr)> ack = [&](Expr n) -> Expr {
        auto hit = readCache.find(n);
        if (hit != readCache.end())
            return hit->second;
        Expr result;
        if (n->kids.empty()) {
            result = n;
        } else {
            std::vector<Expr> ks;
            bool changed = false;
            for (Expr k : n->kids) {
                Expr nk = ack(k);
                changed |= nk != k;
                ks.push_back(nk);
            }
            Expr rebuilt = n;
            if (changed) {
                std::unordered_map<Expr, Expr> map;
                for (std::size_t i = 0; i < ks.size(); ++i)
                    map.emplace(n->kids[i], ks[i]);
                rebuilt = expr::substitute(ctx, n, map);
            }
            if (rebuilt->kind == Kind::Read) {
                Expr mem = rebuilt->kids[0];
                Expr addr = rebuilt->kids[1];
                Expr fresh = ctx.bvVar(mem->name + "!rd" +
                                       std::to_string(freshCounter++));
                // Functional consistency with all previous reads of
                // the same memory.
                for (const ReadInfo &prev : reads) {
                    if (prev.memVar != mem)
                        continue;
                    blaster.assertTrue(ctx.implies(
                        ctx.eq(prev.addr, addr),
                        ctx.eq(prev.fresh, fresh)));
                }
                reads.push_back({mem, addr, fresh});
                result = fresh;
            } else {
                result = rebuilt;
            }
        }
        readCache.emplace(n, result);
        return result;
    };
    return ack(lowered);
}

void
SmtSolver::require(Expr constraint)
{
    SCAMV_ASSERT(constraint->sort == expr::Sort::Bool,
                 "require: non-boolean constraint");
    for (Expr v : expr::collectVars(constraint)) {
        if (v->kind == Kind::MemVar)
            continue;
        if (!seenVarSet.count(v)) {
            seenVarSet.emplace(v, true);
            seenVars.push_back(v);
        }
    }
    blaster.assertTrue(lowerAndAckermannize(constraint));
}

Outcome
tallyQuery(Outcome outcome, double start_time)
{
    metrics::Registry &reg = metrics::current();
    reg.histogram("smt.solve_seconds").observe(reg.now() - start_time);
    reg.counter("smt.queries").inc();
    switch (outcome) {
      case Outcome::Sat: reg.counter("smt.sat").inc(); break;
      case Outcome::Unsat: reg.counter("smt.unsat").inc(); break;
      case Outcome::Unknown: reg.counter("smt.unknown").inc(); break;
    }
    return outcome;
}

Outcome
SmtSolver::solve(std::int64_t conflict_budget)
{
    const double t0 = metrics::current().now();
    // Injected solver timeout: report Unknown without searching.
    if (faults::maybeInject(faults::Site::SmtUnknown))
        return tallyQuery(Outcome::Unknown, t0);
    switch (sat.solve(conflict_budget)) {
      case sat::Result::Sat: return tallyQuery(Outcome::Sat, t0);
      case sat::Result::Unsat: return tallyQuery(Outcome::Unsat, t0);
      case sat::Result::Unknown: return tallyQuery(Outcome::Unknown, t0);
    }
    return tallyQuery(Outcome::Unknown, t0);
}

Outcome
SmtSolver::solveNoInject(std::int64_t conflict_budget)
{
    const double t0 = metrics::current().now();
    switch (sat.solve(conflict_budget)) {
      case sat::Result::Sat: return tallyQuery(Outcome::Sat, t0);
      case sat::Result::Unsat: return tallyQuery(Outcome::Unsat, t0);
      case sat::Result::Unknown: return tallyQuery(Outcome::Unknown, t0);
    }
    return tallyQuery(Outcome::Unknown, t0);
}

Outcome
SmtSolver::solveWith(Expr temporary, std::int64_t conflict_budget)
{
    SCAMV_ASSERT(temporary->sort == expr::Sort::Bool,
                 "solveWith: non-boolean constraint");
    const double t0 = metrics::current().now();
    // Injected solver timeout: report Unknown without searching.
    if (faults::maybeInject(faults::Site::SmtUnknown))
        return tallyQuery(Outcome::Unknown, t0);
    const sat::Lit l = blaster.boolLit(lowerAndAckermannize(temporary));
    switch (sat.solveAssuming({l}, conflict_budget)) {
      case sat::Result::Sat: return tallyQuery(Outcome::Sat, t0);
      case sat::Result::Unsat: return tallyQuery(Outcome::Unsat, t0);
      case sat::Result::Unknown: return tallyQuery(Outcome::Unknown, t0);
    }
    return tallyQuery(Outcome::Unknown, t0);
}

void
SmtSolver::prepareTemporary(Expr temporary)
{
    SCAMV_ASSERT(temporary->sort == expr::Sort::Bool,
                 "prepareTemporary: non-boolean constraint");
    blaster.boolLit(lowerAndAckermannize(temporary));
}

expr::Assignment
SmtSolver::model()
{
    expr::Assignment a;
    for (Expr v : seenVars) {
        if (v->kind == Kind::BvVar)
            a.bvVars[v->name] = blaster.bvModel(v);
        else if (v->kind == Kind::BoolVar)
            a.boolVars[v->name] = blaster.boolModel(v);
    }
    for (const ReadInfo &r : reads) {
        const std::uint64_t addr = blaster.bvModel(r.addr);
        const std::uint64_t val = blaster.bvModel(r.fresh);
        a.mems[r.memVar->name].storeWord(addr, val);
    }
    return a;
}

bool
SmtSolver::blockCurrentModel(const std::vector<Expr> &vars, int bits)
{
    SCAMV_ASSERT(bits > 0 && bits <= bv::kWidth,
                 "blockCurrentModel: bad bit count");
    std::vector<sat::Lit> clause;
    auto block_bits = [&](Expr v) {
        const auto &lits = blaster.bvBits(v);
        for (int i = 0; i < bits; ++i) {
            const sat::Lit l = lits[i];
            bool value = sat.modelValue(sat::var(l));
            if (sat::sign(l))
                value = !value;
            clause.push_back(value ? ~l : l);
        }
    };
    for (Expr v : vars) {
        SCAMV_ASSERT(v->kind == Kind::BvVar, "block on non-bv-var");
        block_bits(v);
    }
    for (const ReadInfo &r : reads)
        block_bits(r.fresh);
    return sat.addClause(std::move(clause));
}

void
SmtSolver::randomizePhases(Rng &rng)
{
    sat.randomizePhases(rng);
}

SolverStats
SmtSolver::stats() const
{
    SolverStats s;
    s.satCalls = 0;
    s.conflicts = sat.conflicts();
    s.decisions = sat.decisions();
    return s;
}

Outcome
checkSat(ExprContext &ctx, Expr formula, std::int64_t conflict_budget)
{
    SmtSolver s(ctx, formula);
    return s.solve(conflict_budget);
}

} // namespace scamv::smt
