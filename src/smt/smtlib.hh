/**
 * @file
 * SMT-LIB 2 export of relation formulas.
 *
 * The original Scam-V hands its relations to Z3; this repository
 * solves them with the built-in SMT-lite stack.  For interoperability
 * and debugging, this module renders any formula as a standalone
 * SMT-LIB 2 script (logic QF_ABV, 64-bit words, memories as
 * `(Array (_ BitVec 64) (_ BitVec 64))`) so it can be cross-checked
 * with an external solver:
 *
 *     ./quickstart --dump | z3 -in
 */

#ifndef SCAMV_SMT_SMTLIB_HH
#define SCAMV_SMT_SMTLIB_HH

#include <string>

#include "expr/expr.hh"

namespace scamv::smt {

/**
 * Render `formula` as a complete SMT-LIB 2 script: declarations for
 * every free variable, one `(assert ...)`, and `(check-sat)`.
 */
std::string toSmtLib(expr::Expr formula);

/** Render a single term (no declarations) in SMT-LIB 2 syntax. */
std::string termToSmtLib(expr::Expr term);

} // namespace scamv::smt

#endif // SCAMV_SMT_SMTLIB_HH
