/**
 * @file
 * Solver execution modes for the per-pair SMT enumeration.
 *
 * The pipeline's canonical enumeration issues a sequence of solver
 * calls per test pair (coverage-pinned `solveWith` probes, plain
 * `solve`, model-blocking clauses).  Three modes run that sequence:
 *
 *  - `Incremental` (default): one live SmtSolver per pair; every call
 *    reuses the solver's clause database — consecutive canonical
 *    queries differ only in assumption literals (the bit-blaster
 *    memoizes the temporary constraint's selector literal, so a
 *    repeated `solveWith` is a pure `solveAssuming`).
 *  - `Oneshot`: the pre-incremental behaviour — a fresh solver per
 *    test, brought up to date by replaying the pair's recorded op
 *    log.  Kept as the benchmark baseline and as a cross-check that
 *    incremental state reuse does not change any result.
 *  - `Portfolio`: incremental solving, plus a repair-sampler scout
 *    that attempts to rescue *genuine* Unknown outcomes (budget
 *    exhaustion, never injected faults).  Arbitration is by fixed
 *    order — the CDCL verdict is authoritative for Sat/Unsat and the
 *    scout only runs after it — so the winner never depends on
 *    wall-clock.
 *
 * All three modes produce byte-identical campaign artifacts (metrics
 * JSON, coverage JSON, ExperimentDb CSV) on workloads where the scout
 * is never consulted; ctest enforces this (see ARCHITECTURE.md,
 * determinism invariants).
 */

#ifndef SCAMV_SMT_MODES_HH
#define SCAMV_SMT_MODES_HH

namespace scamv::smt {

/** How the pipeline drives the SMT solver per test pair. */
enum class SolverMode {
    Oneshot,     ///< fresh solver per test, op-log replay
    Incremental, ///< live solver reused across the pair's tests
    Portfolio    ///< incremental + repair-sampler rescue of Unknowns
};

/** @return the mode's SCAMV_SOLVER spelling. */
const char *solverModeName(SolverMode mode);

/**
 * Resolve the mode from `SCAMV_SOLVER`
 * (`oneshot|incremental|portfolio`).  Unset → Incremental; an
 * unrecognized value warns and falls back to Incremental.
 */
SolverMode solverModeFromEnv();

} // namespace scamv::smt

#endif // SCAMV_SMT_MODES_HH
