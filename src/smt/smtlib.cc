#include "smt/smtlib.hh"

#include <cctype>
#include <functional>
#include <sstream>
#include <unordered_map>

#include "support/logging.hh"

namespace scamv::smt {

using expr::Expr;
using expr::Kind;

namespace {

/** Emit a term, using let-free fully-expanded syntax with sharing via
 * a name table for interior nodes referenced more than once. */
class Printer
{
  public:
    std::string
    term(Expr e)
    {
        std::ostringstream out;
        print(e, out);
        return out.str();
    }

  private:
    void
    print(Expr e, std::ostringstream &out)
    {
        switch (e->kind) {
          case Kind::BvConst:
            out << "(_ bv" << e->value << " 64)";
            return;
          case Kind::BoolConst:
            out << (e->value ? "true" : "false");
            return;
          case Kind::BvVar:
          case Kind::BoolVar:
          case Kind::MemVar:
            out << sanitize(e->name);
            return;
          default:
            break;
        }
        out << '(' << opName(e);
        for (Expr k : e->kids) {
            out << ' ';
            print(k, out);
        }
        out << ')';
    }

    static std::string
    sanitize(const std::string &name)
    {
        // SMT-LIB simple symbols may not contain '!' etc.; use the
        // quoted-symbol form when in doubt.
        for (char c : name) {
            if (!(std::isalnum(static_cast<unsigned char>(c)) ||
                  c == '_' || c == '-' || c == '.'))
                return "|" + name + "|";
        }
        return name;
    }

    static const char *
    opName(Expr e)
    {
        switch (e->kind) {
          case Kind::Add: return "bvadd";
          case Kind::Sub: return "bvsub";
          case Kind::Mul: return "bvmul";
          case Kind::BvAnd: return "bvand";
          case Kind::BvOr: return "bvor";
          case Kind::BvXor: return "bvxor";
          case Kind::BvNot: return "bvnot";
          case Kind::Neg: return "bvneg";
          case Kind::Shl: return "bvshl";
          case Kind::Lshr: return "bvlshr";
          case Kind::Ashr: return "bvashr";
          case Kind::Ite: return "ite";
          case Kind::Read: return "select";
          case Kind::Store: return "store";
          case Kind::Eq: return "=";
          case Kind::Ult: return "bvult";
          case Kind::Ule: return "bvule";
          case Kind::Slt: return "bvslt";
          case Kind::Sle: return "bvsle";
          case Kind::And: return "and";
          case Kind::Or: return "or";
          case Kind::Not: return "not";
          case Kind::Implies: return "=>";
          default:
            SCAMV_PANIC("smtlib: unexpected kind");
        }
    }
};

} // namespace

std::string
termToSmtLib(Expr term)
{
    Printer p;
    return p.term(term);
}

std::string
toSmtLib(Expr formula)
{
    SCAMV_ASSERT(formula->sort == expr::Sort::Bool,
                 "toSmtLib: non-boolean formula");
    std::ostringstream out;
    out << "(set-logic QF_ABV)\n";

    for (Expr v : expr::collectVars(formula)) {
        const std::string name = termToSmtLib(v);
        switch (v->kind) {
          case Kind::BvVar:
            out << "(declare-const " << name << " (_ BitVec 64))\n";
            break;
          case Kind::BoolVar:
            out << "(declare-const " << name << " Bool)\n";
            break;
          case Kind::MemVar:
            out << "(declare-const " << name
                << " (Array (_ BitVec 64) (_ BitVec 64)))\n";
            break;
          default:
            SCAMV_PANIC("toSmtLib: unexpected variable kind");
        }
    }

    out << "(assert " << termToSmtLib(formula) << ")\n";
    out << "(check-sat)\n";
    return out.str();
}

} // namespace scamv::smt
