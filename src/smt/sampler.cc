#include "smt/sampler.hh"

#include <functional>

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::smt {

using expr::Assignment;
using expr::Expr;
using expr::Kind;

namespace {

/** Flatten an And-tree into conjuncts. */
void
flattenAnd(Expr e, std::vector<Expr> &out)
{
    if (e->kind == Kind::And) {
        flattenAnd(e->kids[0], out);
        flattenAnd(e->kids[1], out);
    } else {
        out.push_back(e);
    }
}

} // namespace

RepairSampler::RepairSampler(expr::ExprContext &ctx, Expr formula,
                             Rng &rng, const SamplerConfig &config)
    : ctx(ctx), formula(formula), rng(rng), config(config)
{
    SCAMV_ASSERT(formula->sort == expr::Sort::Bool,
                 "sampler: non-boolean formula");
    flattenAnd(formula, conjuncts);
    for (Expr v : expr::collectVars(formula))
        if (v->kind == Kind::BvVar)
            bvVars.push_back(v);
}

std::uint64_t
RepairSampler::randomValue()
{
    if (rng.chance(config.regionBias)) {
        const std::uint64_t span =
            (config.regionLimit - config.regionBase) / 8;
        return config.regionBase + rng.below(span) * 8;
    }
    return rng.next();
}

void
RepairSampler::initAssignment(Assignment &a)
{
    a.bvVars.clear();
    a.boolVars.clear();
    a.mems.clear();
    for (Expr v : bvVars)
        a.bvVars[v->name] = randomValue();
}

void
RepairSampler::seedMemoryCells(Assignment &a)
{
    // Two passes cover reads whose address depends on another read.
    for (int pass = 0; pass < 2; ++pass) {
        for (Expr c : conjuncts) {
            for (Expr r : expr::collectReads(c)) {
                Expr mem = r->kids[0];
                while (mem->kind == Kind::Store)
                    mem = mem->kids[0];
                const std::uint64_t addr = expr::evalBv(r->kids[1], a);
                auto &m = a.mems[mem->name];
                if (!m.contains(addr))
                    m.storeWord(addr, randomValue());
            }
        }
    }
}

bool
RepairSampler::forceValue(Expr term, std::uint64_t value, Assignment &a)
{
    switch (term->kind) {
      case Kind::BvVar:
        a.bvVars[term->name] = value;
        return true;
      case Kind::Add: {
        // Solve for whichever side is forcible.
        const std::uint64_t rhs = expr::evalBv(term->kids[1], a);
        if (forceValue(term->kids[0], value - rhs, a))
            return true;
        const std::uint64_t lhs = expr::evalBv(term->kids[0], a);
        return forceValue(term->kids[1], value - lhs, a);
      }
      case Kind::Sub: {
        const std::uint64_t rhs = expr::evalBv(term->kids[1], a);
        if (forceValue(term->kids[0], value + rhs, a))
            return true;
        const std::uint64_t lhs = expr::evalBv(term->kids[0], a);
        return forceValue(term->kids[1], lhs - value, a);
      }
      case Kind::Read: {
        Expr mem = term->kids[0];
        while (mem->kind == Kind::Store)
            mem = mem->kids[0];
        const std::uint64_t addr = expr::evalBv(term->kids[1], a);
        a.mems[mem->name].storeWord(addr, value);
        return true;
      }
      case Kind::Ite: {
        // Force the branch that is currently selected.
        const bool sel = expr::evalBool(term->kids[0], a);
        return forceValue(term->kids[sel ? 1 : 2], value, a);
      }
      case Kind::Lshr: {
        // (t >> c) == v: keep t's low bits, replace the high part.
        if (term->kids[1]->kind != Kind::BvConst)
            return false;
        const std::uint64_t c = term->kids[1]->value & 63;
        if (c == 0)
            return forceValue(term->kids[0], value, a);
        if (value >> (64 - c)) // value does not fit
            return false;
        const std::uint64_t low =
            expr::evalBv(term->kids[0], a) & ((1ULL << c) - 1);
        return forceValue(term->kids[0], (value << c) | low, a);
      }
      case Kind::BvAnd: {
        // (t & m) == v for constant m: patch only the masked bits.
        if (term->kids[1]->kind != Kind::BvConst)
            return false;
        const std::uint64_t m = term->kids[1]->value;
        if (value & ~m)
            return false;
        const std::uint64_t rest = expr::evalBv(term->kids[0], a) & ~m;
        return forceValue(term->kids[0], rest | value, a);
      }
      default:
        return false;
    }
}

void
RepairSampler::mutateSomething(Expr e, Assignment &a)
{
    std::vector<Expr> vars;
    for (Expr v : expr::collectVars(e))
        if (v->kind == Kind::BvVar)
            vars.push_back(v);
    std::vector<Expr> cells = expr::collectReads(e);

    const bool pick_cell =
        !cells.empty() && (vars.empty() || rng.chance(0.4));
    if (pick_cell) {
        Expr r = rng.pick(cells);
        forceValue(r, randomValue(), a);
    } else if (!vars.empty()) {
        Expr v = rng.pick(vars);
        switch (rng.below(3)) {
          case 0:
            a.bvVars[v->name] = randomValue();
            break;
          case 1:
            a.bvVars[v->name] ^= 1ULL << rng.below(16);
            break;
          default:
            // Copy another variable's value (creates equalities).
            a.bvVars[v->name] = a.bv(rng.pick(vars)->name);
            break;
        }
    }
}

bool
RepairSampler::trySatisfy(Expr e, bool want, Assignment &a, int depth)
{
    if (depth > 12) {
        mutateSomething(e, a);
        return false;
    }
    switch (e->kind) {
      case Kind::BoolConst:
        return (e->value != 0) == want;
      case Kind::BoolVar:
        a.boolVars[e->name] = want;
        return true;
      case Kind::Not:
        return trySatisfy(e->kids[0], !want, a, depth + 1);
      case Kind::And: {
        if (want) {
            bool ok = true;
            for (Expr k : e->kids)
                if (!expr::evalBool(k, a))
                    ok = trySatisfy(k, true, a, depth + 1) && ok;
            return ok;
        }
        return trySatisfy(e->kids[rng.below(2)], false, a, depth + 1);
      }
      case Kind::Or: {
        if (want)
            return trySatisfy(e->kids[rng.below(2)], true, a,
                              depth + 1);
        bool ok = true;
        for (Expr k : e->kids)
            if (expr::evalBool(k, a))
                ok = trySatisfy(k, false, a, depth + 1) && ok;
        return ok;
      }
      case Kind::Implies:
        // ctx.implies builds Or(Not a, b); kept for completeness.
        if (want)
            return rng.chance(0.5)
                       ? trySatisfy(e->kids[0], false, a, depth + 1)
                       : trySatisfy(e->kids[1], true, a, depth + 1);
        return trySatisfy(e->kids[0], true, a, depth + 1) &&
               trySatisfy(e->kids[1], false, a, depth + 1);
      case Kind::Eq: {
        if (e->kids[0]->sort != expr::Sort::Bv) {
            mutateSomething(e, a);
            return false;
        }
        if (want) {
            // Make both sides equal: force one side to the other's
            // current value.
            const bool left_first = rng.chance(0.5);
            Expr dst = e->kids[left_first ? 0 : 1];
            Expr src = e->kids[left_first ? 1 : 0];
            const std::uint64_t v = expr::evalBv(src, a);
            if (forceValue(dst, v, a))
                return true;
            return forceValue(src, expr::evalBv(dst, a), a);
        }
        // Make them differ: randomize a forcible side.
        Expr dst = e->kids[rng.below(2)];
        std::uint64_t v = randomValue();
        if (v == expr::evalBv(dst == e->kids[0] ? e->kids[1]
                                                : e->kids[0], a))
            v ^= 0x40; // nudge into a different cache line
        if (forceValue(dst, v, a))
            return true;
        mutateSomething(e, a);
        return false;
      }
      case Kind::Ult:
      case Kind::Ule:
      case Kind::Slt:
      case Kind::Sle: {
        // Adjust one side.  Use unsigned reasoning; the formulas in
        // this pipeline compare addresses and small indices.
        Expr lhs = e->kids[0];
        Expr rhs = e->kids[1];
        const std::uint64_t rv = expr::evalBv(rhs, a);
        const std::uint64_t lv = expr::evalBv(lhs, a);
        const bool strict = e->kind == Kind::Ult || e->kind == Kind::Slt;
        if (want) {
            // lhs (<|<=) rhs
            if (rv > 0 || !strict) {
                const std::uint64_t hi = strict ? rv - 1 : rv;
                if (forceValue(lhs, rng.range(0, hi), a))
                    return true;
            }
            if (lv < UINT64_MAX - 257 &&
                forceValue(rhs, lv + (strict ? 1 + rng.below(256)
                                             : rng.below(256)), a))
                return true;
        } else {
            // lhs (>=|>) rhs
            if (rv < UINT64_MAX - 257 &&
                forceValue(lhs, rv + (strict ? rng.below(256)
                                             : 1 + rng.below(256)), a))
                return true;
            if ((lv > 0 || strict) &&
                forceValue(rhs, rng.range(0, strict ? lv : lv - 1), a))
                return true;
        }
        mutateSomething(e, a);
        return false;
      }
      default:
        mutateSomething(e, a);
        return false;
    }
}

std::optional<Assignment>
RepairSampler::sample()
{
    metrics::Registry &reg = metrics::current();
    reg.counter("smt.sampler.calls").inc();
    const double t0 = reg.now();
    // Injected budget exhaustion: give up immediately, exactly as a
    // sampler that burned through its restarts would.
    if (faults::maybeInject(faults::Site::SamplerExhaust)) {
        reg.counter("smt.sampler.failures").inc();
        reg.histogram("smt.sampler.seconds").observe(reg.now() - t0);
        return std::nullopt;
    }
    if (config.seedOracle) {
        if (auto seed = config.seedOracle(formula)) {
            // Never trust an external model blindly: the oracle may
            // hand back a stale or mistranslated assignment.
            if (expr::evalBool(formula, *seed)) {
                reg.counter("smt.sampler.seeded").inc();
                reg.counter("smt.sampler.models").inc();
                reg.histogram("smt.sampler.seconds")
                    .observe(reg.now() - t0);
                return seed;
            }
            reg.counter("smt.sampler.seed_rejected").inc();
        }
    }
    Assignment a;
    for (int restart = 0; restart < config.maxRestarts; ++restart) {
        if (restart > 0)
            reg.counter("smt.sampler.restarts").inc();
        initAssignment(a);
        seedMemoryCells(a);
        for (int iter = 0; iter < config.maxIters; ++iter) {
            seedMemoryCells(a);
            std::vector<Expr> violated;
            for (Expr c : conjuncts)
                if (!expr::evalBool(c, a))
                    violated.push_back(c);
            if (violated.empty()) {
                if (expr::evalBool(formula, a)) {
                    reg.counter("smt.sampler.models").inc();
                    reg.histogram("smt.sampler.seconds")
                        .observe(reg.now() - t0);
                    return a;
                }
                SCAMV_PANIC("sampler: conjunct/formula disagreement");
            }
            Expr target = rng.pick(violated);
            trySatisfy(target, true, a, 0);
        }
    }
    // Budget exhausted: the caller falls back to the CDCL solver.
    reg.counter("smt.sampler.failures").inc();
    reg.histogram("smt.sampler.seconds").observe(reg.now() - t0);
    return std::nullopt;
}

} // namespace scamv::smt
