/**
 * @file
 * Concrete evaluation of expression DAGs under a variable assignment.
 *
 * Used by the randomized repair sampler, by model checking (verifying
 * that an extracted SMT model really satisfies the relation) and by
 * tests that cross-check symbolic execution against the concrete
 * hardware-level machine.
 */

#ifndef SCAMV_EXPR_EVAL_HH
#define SCAMV_EXPR_EVAL_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "expr/expr.hh"

namespace scamv::expr {

/** Sparse concrete memory: address -> 64-bit word, default-filled. */
class ConcreteMemory
{
  public:
    /** Word returned for addresses never written. */
    std::uint64_t defaultValue = 0;

    /** @return word stored at addr (defaultValue if untouched). */
    std::uint64_t
    load(std::uint64_t addr) const
    {
        auto it = words.find(addr);
        return it == words.end() ? defaultValue : it->second;
    }

    /** Store a word at addr. */
    void storeWord(std::uint64_t addr, std::uint64_t val)
    {
        words[addr] = val;
    }

    /** @return true iff addr has an explicit entry. */
    bool contains(std::uint64_t addr) const { return words.count(addr); }

    /** Underlying sparse map (iteration for experiment setup). */
    const std::unordered_map<std::uint64_t, std::uint64_t> &
    entries() const
    {
        return words;
    }

    void clear() { words.clear(); }

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> words;
};

/**
 * Concrete valuation of variables: bitvector and boolean variables by
 * name, memory variables by name to a ConcreteMemory.
 */
struct Assignment {
    std::unordered_map<std::string, std::uint64_t> bvVars;
    std::unordered_map<std::string, bool> boolVars;
    std::unordered_map<std::string, ConcreteMemory> mems;

    /** @return value of a named bv var (0 if unset). */
    std::uint64_t
    bv(const std::string &name) const
    {
        auto it = bvVars.find(name);
        return it == bvVars.end() ? 0 : it->second;
    }
};

/** Result of evaluating a node: a 64-bit word (bools are 0/1). */
std::uint64_t evalBv(Expr e, const Assignment &a);

/** Evaluate a boolean-sorted expression. */
bool evalBool(Expr e, const Assignment &a);

} // namespace scamv::expr

#endif // SCAMV_EXPR_EVAL_HH
