/**
 * @file
 * Hash-consed expression DAG for 64-bit bitvectors, booleans and
 * functional-array memories.
 *
 * All terms are created through an ExprContext, which interns
 * structurally identical nodes so that pointer equality implies
 * structural equality.  Builder functions perform light rewriting
 * (constant folding, neutral elements, read-over-write), which keeps
 * the formulas produced by symbolic execution small before they reach
 * the SMT layer.
 *
 * Bitvectors are fixed at 64 bits: the modelled ISA is a 64-bit
 * RISC-like machine and cache-index extraction is expressed with
 * shift/mask operations.
 */

#ifndef SCAMV_EXPR_EXPR_HH
#define SCAMV_EXPR_EXPR_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace scamv::expr {

/** Sort (type) of a term. */
enum class Sort : std::uint8_t {
    Bv,   ///< 64-bit bitvector
    Bool, ///< boolean
    Mem   ///< memory: array from 64-bit address to 64-bit word
};

/** Operator/leaf kind of a node. */
enum class Kind : std::uint8_t {
    // Leaves
    BvConst,   ///< 64-bit constant (value in Node::value)
    BvVar,     ///< named bitvector variable
    BoolConst, ///< boolean constant (value 0/1)
    BoolVar,   ///< named boolean variable
    MemVar,    ///< named memory variable

    // Bitvector operators
    Add, Sub, Mul,
    BvAnd, BvOr, BvXor, BvNot, Neg,
    Shl, Lshr, Ashr,
    Ite,  ///< (cond : Bool, then : Bv, else : Bv)
    Read, ///< (mem, addr) -> Bv

    // Memory operators
    Store, ///< (mem, addr, val) -> Mem

    // Boolean operators over bitvectors
    Eq,  ///< bitvector equality
    Ult, Ule, Slt, Sle,

    // Boolean connectives
    And, Or, Not, Implies
};

/** @return a short mnemonic for a kind (for printing). */
const char *kindName(Kind k);

class ExprContext;

/**
 * Immutable, interned expression node.  Nodes are owned by their
 * ExprContext; user code holds `const Node *` handles (aliased as
 * Expr below).
 */
class Node
{
  public:
    Kind kind;
    Sort sort;
    /** Creation-order id: deterministic operand canonicalization. */
    std::uint64_t id;
    /** Constant value or unused (vars carry their name instead). */
    std::uint64_t value;
    /** Variable name (empty for non-leaf nodes). */
    std::string name;
    std::vector<const Node *> kids;

    /** @return true if this is a BvConst/BoolConst. */
    bool isConst() const
    {
        return kind == Kind::BvConst || kind == Kind::BoolConst;
    }

  private:
    friend class ExprContext;
    Node() = default;
};

/** Handle type used throughout the framework. */
using Expr = const Node *;

/**
 * Owning context for expression nodes.
 *
 * Not thread-safe; each pipeline owns one context.
 */
class ExprContext
{
  public:
    ExprContext();
    ExprContext(const ExprContext &) = delete;
    ExprContext &operator=(const ExprContext &) = delete;

    // ---- Leaves -------------------------------------------------------
    Expr bv(std::uint64_t v);
    Expr boolConst(bool v);
    Expr tru() { return cachedTrue; }
    Expr fls() { return cachedFalse; }
    Expr zero() { return cachedZero; }
    /** Named 64-bit variable; same name returns the same node. */
    Expr bvVar(const std::string &name);
    /** Named boolean variable. */
    Expr boolVar(const std::string &name);
    /** Named memory variable. */
    Expr memVar(const std::string &name);

    // ---- Bitvector operators -----------------------------------------
    Expr add(Expr a, Expr b);
    Expr sub(Expr a, Expr b);
    Expr mul(Expr a, Expr b);
    Expr bvAnd(Expr a, Expr b);
    Expr bvOr(Expr a, Expr b);
    Expr bvXor(Expr a, Expr b);
    Expr bvNot(Expr a);
    Expr neg(Expr a);
    /** Logical shift left by b (b taken mod 64 like hardware). */
    Expr shl(Expr a, Expr b);
    Expr lshr(Expr a, Expr b);
    Expr ashr(Expr a, Expr b);
    Expr ite(Expr cond, Expr then_e, Expr else_e);
    Expr read(Expr mem, Expr addr);
    Expr store(Expr mem, Expr addr, Expr val);

    // ---- Predicates ---------------------------------------------------
    Expr eq(Expr a, Expr b);
    Expr neq(Expr a, Expr b) { return lnot(eq(a, b)); }
    Expr ult(Expr a, Expr b);
    Expr ule(Expr a, Expr b);
    Expr slt(Expr a, Expr b);
    Expr sle(Expr a, Expr b);

    // ---- Boolean connectives -----------------------------------------
    Expr land(Expr a, Expr b);
    Expr lor(Expr a, Expr b);
    Expr lnot(Expr a);
    Expr implies(Expr a, Expr b);
    /** Conjunction of a list (true for empty list). */
    Expr conj(const std::vector<Expr> &es);
    /** Disjunction of a list (false for empty list). */
    Expr disj(const std::vector<Expr> &es);

    /** @return number of interned nodes (for tests/statistics). */
    std::size_t size() const { return nodes.size(); }

  private:
    Expr intern(Kind kind, Sort sort, std::uint64_t value,
                std::string name, std::vector<Expr> kids);

    struct NodeHash {
        std::size_t operator()(const Node *n) const;
    };
    struct NodeEq {
        bool operator()(const Node *a, const Node *b) const;
    };

    std::deque<std::unique_ptr<Node>> nodes;
    std::unordered_set<const Node *, NodeHash, NodeEq> interned;
    Expr cachedTrue = nullptr;
    Expr cachedFalse = nullptr;
    Expr cachedZero = nullptr;
};

/** Collect all variable leaves (Bv/Bool/Mem vars) reachable from e. */
std::vector<Expr> collectVars(Expr e);

/** Collect variables of several roots, deduplicated. */
std::vector<Expr> collectVars(const std::vector<Expr> &roots);

/** Collect all Read nodes reachable from e (deduplicated, pre-order). */
std::vector<Expr> collectReads(Expr e);

/** Render e as an s-expression (for debugging and error messages). */
std::string toString(Expr e);

/**
 * Substitute variables by replacement terms (simultaneous), rebuilding
 * through ctx so the result stays interned and simplified.
 */
Expr substitute(ExprContext &ctx, Expr e,
                const std::unordered_map<Expr, Expr> &map);

/** Count DAG nodes reachable from e (each shared node counted once). */
std::size_t dagSize(Expr e);

} // namespace scamv::expr

#endif // SCAMV_EXPR_EXPR_HH
