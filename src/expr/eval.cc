#include "expr/eval.hh"

#include <functional>

#include "support/logging.hh"

namespace scamv::expr {

namespace {

/**
 * Evaluate a memory-sorted expression to a (base memory, overlay)
 * view, then read.  Store chains are short in practice, so we resolve
 * reads by walking the chain with concretized addresses.
 */
std::uint64_t
evalRead(Expr mem, std::uint64_t addr, const Assignment &a,
         std::unordered_map<Expr, std::uint64_t> &memo);

std::uint64_t
evalRec(Expr e, const Assignment &a,
        std::unordered_map<Expr, std::uint64_t> &memo)
{
    auto hit = memo.find(e);
    if (hit != memo.end())
        return hit->second;

    auto kid = [&](int i) { return evalRec(e->kids[i], a, memo); };
    std::uint64_t v = 0;
    switch (e->kind) {
      case Kind::BvConst:
      case Kind::BoolConst:
        v = e->value;
        break;
      case Kind::BvVar: {
        auto it = a.bvVars.find(e->name);
        v = it == a.bvVars.end() ? 0 : it->second;
        break;
      }
      case Kind::BoolVar: {
        auto it = a.boolVars.find(e->name);
        v = (it != a.boolVars.end() && it->second) ? 1 : 0;
        break;
      }
      case Kind::MemVar:
        SCAMV_PANIC("cannot evaluate a memory-sorted term to a word");
      case Kind::Add: v = kid(0) + kid(1); break;
      case Kind::Sub: v = kid(0) - kid(1); break;
      case Kind::Mul: v = kid(0) * kid(1); break;
      case Kind::BvAnd: v = kid(0) & kid(1); break;
      case Kind::BvOr: v = kid(0) | kid(1); break;
      case Kind::BvXor: v = kid(0) ^ kid(1); break;
      case Kind::BvNot: v = ~kid(0); break;
      case Kind::Neg: v = ~kid(0) + 1; break;
      case Kind::Shl: v = kid(0) << (kid(1) & 63); break;
      case Kind::Lshr: v = kid(0) >> (kid(1) & 63); break;
      case Kind::Ashr:
        v = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(kid(0)) >> (kid(1) & 63));
        break;
      case Kind::Ite: v = kid(0) ? kid(1) : kid(2); break;
      case Kind::Read:
        v = evalRead(e->kids[0], kid(1), a, memo);
        break;
      case Kind::Store:
        SCAMV_PANIC("cannot evaluate a memory-sorted term to a word");
      case Kind::Eq: {
        if (e->kids[0]->sort == Sort::Mem)
            SCAMV_PANIC("memory equality is not evaluable");
        v = kid(0) == kid(1);
        break;
      }
      case Kind::Ult: v = kid(0) < kid(1); break;
      case Kind::Ule: v = kid(0) <= kid(1); break;
      case Kind::Slt:
        v = static_cast<std::int64_t>(kid(0)) <
            static_cast<std::int64_t>(kid(1));
        break;
      case Kind::Sle:
        v = static_cast<std::int64_t>(kid(0)) <=
            static_cast<std::int64_t>(kid(1));
        break;
      case Kind::And: v = kid(0) && kid(1); break;
      case Kind::Or: v = kid(0) || kid(1); break;
      case Kind::Not: v = !kid(0); break;
      case Kind::Implies: v = !kid(0) || kid(1); break;
    }
    memo.emplace(e, v);
    return v;
}

std::uint64_t
evalRead(Expr mem, std::uint64_t addr, const Assignment &a,
         std::unordered_map<Expr, std::uint64_t> &memo)
{
    Expr m = mem;
    while (m->kind == Kind::Store) {
        const std::uint64_t waddr = evalRec(m->kids[1], a, memo);
        if (waddr == addr)
            return evalRec(m->kids[2], a, memo);
        m = m->kids[0];
    }
    SCAMV_ASSERT(m->kind == Kind::MemVar, "memory chain must end in var");
    auto it = a.mems.find(m->name);
    if (it == a.mems.end())
        return 0;
    return it->second.load(addr);
}

} // namespace

std::uint64_t
evalBv(Expr e, const Assignment &a)
{
    std::unordered_map<Expr, std::uint64_t> memo;
    return evalRec(e, a, memo);
}

bool
evalBool(Expr e, const Assignment &a)
{
    SCAMV_ASSERT(e->sort == Sort::Bool, "evalBool on non-bool");
    std::unordered_map<Expr, std::uint64_t> memo;
    return evalRec(e, a, memo) != 0;
}

} // namespace scamv::expr
