#include "expr/expr.hh"

#include <functional>
#include <sstream>

#include "support/logging.hh"

namespace scamv::expr {

const char *
kindName(Kind k)
{
    switch (k) {
      case Kind::BvConst: return "const";
      case Kind::BvVar: return "var";
      case Kind::BoolConst: return "bconst";
      case Kind::BoolVar: return "bvar";
      case Kind::MemVar: return "mem";
      case Kind::Add: return "add";
      case Kind::Sub: return "sub";
      case Kind::Mul: return "mul";
      case Kind::BvAnd: return "bvand";
      case Kind::BvOr: return "bvor";
      case Kind::BvXor: return "bvxor";
      case Kind::BvNot: return "bvnot";
      case Kind::Neg: return "neg";
      case Kind::Shl: return "shl";
      case Kind::Lshr: return "lshr";
      case Kind::Ashr: return "ashr";
      case Kind::Ite: return "ite";
      case Kind::Read: return "read";
      case Kind::Store: return "store";
      case Kind::Eq: return "=";
      case Kind::Ult: return "ult";
      case Kind::Ule: return "ule";
      case Kind::Slt: return "slt";
      case Kind::Sle: return "sle";
      case Kind::And: return "and";
      case Kind::Or: return "or";
      case Kind::Not: return "not";
      case Kind::Implies: return "=>";
    }
    return "?";
}

std::size_t
ExprContext::NodeHash::operator()(const Node *n) const
{
    std::size_t h = std::hash<int>()(static_cast<int>(n->kind));
    auto mix = [&h](std::size_t v) {
        h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    };
    mix(std::hash<std::uint64_t>()(n->value));
    mix(std::hash<std::string>()(n->name));
    for (const Node *k : n->kids)
        mix(std::hash<const void *>()(k));
    return h;
}

bool
ExprContext::NodeEq::operator()(const Node *a, const Node *b) const
{
    return a->kind == b->kind && a->value == b->value &&
           a->name == b->name && a->kids == b->kids;
}

ExprContext::ExprContext()
{
    cachedTrue = intern(Kind::BoolConst, Sort::Bool, 1, "", {});
    cachedFalse = intern(Kind::BoolConst, Sort::Bool, 0, "", {});
    cachedZero = intern(Kind::BvConst, Sort::Bv, 0, "", {});
}

Expr
ExprContext::intern(Kind kind, Sort sort, std::uint64_t value,
                    std::string name, std::vector<Expr> kids)
{
    auto node = std::unique_ptr<Node>(new Node());
    node->kind = kind;
    node->sort = sort;
    node->value = value;
    node->name = std::move(name);
    node->kids = std::move(kids);
    auto it = interned.find(node.get());
    if (it != interned.end())
        return *it;
    node->id = nodes.size();
    Expr result = node.get();
    nodes.push_back(std::move(node));
    interned.insert(result);
    return result;
}

Expr
ExprContext::bv(std::uint64_t v)
{
    if (v == 0)
        return cachedZero;
    return intern(Kind::BvConst, Sort::Bv, v, "", {});
}

Expr
ExprContext::boolConst(bool v)
{
    return v ? cachedTrue : cachedFalse;
}

Expr
ExprContext::bvVar(const std::string &name)
{
    return intern(Kind::BvVar, Sort::Bv, 0, name, {});
}

Expr
ExprContext::boolVar(const std::string &name)
{
    return intern(Kind::BoolVar, Sort::Bool, 0, name, {});
}

Expr
ExprContext::memVar(const std::string &name)
{
    return intern(Kind::MemVar, Sort::Mem, 0, name, {});
}

namespace {

bool
bothConst(Expr a, Expr b)
{
    return a->kind == Kind::BvConst && b->kind == Kind::BvConst;
}

} // namespace

Expr
ExprContext::add(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value + b->value);
    if (a->kind == Kind::BvConst && a->value == 0)
        return b;
    if (b->kind == Kind::BvConst && b->value == 0)
        return a;
    // Canonicalize constant to the right for interning stability.
    if (a->kind == Kind::BvConst)
        std::swap(a, b);
    return intern(Kind::Add, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::sub(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value - b->value);
    if (b->kind == Kind::BvConst && b->value == 0)
        return a;
    if (a == b)
        return zero();
    return intern(Kind::Sub, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::mul(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value * b->value);
    if (a->kind == Kind::BvConst)
        std::swap(a, b);
    if (b->kind == Kind::BvConst) {
        if (b->value == 0)
            return zero();
        if (b->value == 1)
            return a;
    }
    return intern(Kind::Mul, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::bvAnd(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value & b->value);
    if (a->kind == Kind::BvConst)
        std::swap(a, b);
    if (b->kind == Kind::BvConst) {
        if (b->value == 0)
            return zero();
        if (b->value == UINT64_MAX)
            return a;
    }
    if (a == b)
        return a;
    return intern(Kind::BvAnd, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::bvOr(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value | b->value);
    if (a->kind == Kind::BvConst)
        std::swap(a, b);
    if (b->kind == Kind::BvConst) {
        if (b->value == 0)
            return a;
        if (b->value == UINT64_MAX)
            return bv(UINT64_MAX);
    }
    if (a == b)
        return a;
    return intern(Kind::BvOr, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::bvXor(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value ^ b->value);
    if (a->kind == Kind::BvConst)
        std::swap(a, b);
    if (b->kind == Kind::BvConst && b->value == 0)
        return a;
    if (a == b)
        return zero();
    return intern(Kind::BvXor, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::bvNot(Expr a)
{
    if (a->kind == Kind::BvConst)
        return bv(~a->value);
    if (a->kind == Kind::BvNot)
        return a->kids[0];
    return intern(Kind::BvNot, Sort::Bv, 0, "", {a});
}

Expr
ExprContext::neg(Expr a)
{
    if (a->kind == Kind::BvConst)
        return bv(~a->value + 1);
    if (a->kind == Kind::Neg)
        return a->kids[0];
    return intern(Kind::Neg, Sort::Bv, 0, "", {a});
}

Expr
ExprContext::shl(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value << (b->value & 63));
    if (b->kind == Kind::BvConst && (b->value & 63) == 0)
        return a;
    return intern(Kind::Shl, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::lshr(Expr a, Expr b)
{
    if (bothConst(a, b))
        return bv(a->value >> (b->value & 63));
    if (b->kind == Kind::BvConst && (b->value & 63) == 0)
        return a;
    return intern(Kind::Lshr, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::ashr(Expr a, Expr b)
{
    if (bothConst(a, b)) {
        const auto sa = static_cast<std::int64_t>(a->value);
        return bv(static_cast<std::uint64_t>(sa >> (b->value & 63)));
    }
    if (b->kind == Kind::BvConst && (b->value & 63) == 0)
        return a;
    return intern(Kind::Ashr, Sort::Bv, 0, "", {a, b});
}

Expr
ExprContext::ite(Expr cond, Expr then_e, Expr else_e)
{
    SCAMV_ASSERT(cond->sort == Sort::Bool, "ite condition must be Bool");
    if (cond->kind == Kind::BoolConst)
        return cond->value ? then_e : else_e;
    if (then_e == else_e)
        return then_e;
    return intern(Kind::Ite, Sort::Bv, 0, "", {cond, then_e, else_e});
}

Expr
ExprContext::read(Expr mem, Expr addr)
{
    SCAMV_ASSERT(mem->sort == Sort::Mem, "read from non-memory");
    // Read-over-write: walk the store chain while addresses are
    // syntactically decidable.
    Expr m = mem;
    while (m->kind == Kind::Store) {
        Expr waddr = m->kids[1];
        if (waddr == addr)
            return m->kids[2];
        if (bothConst(waddr, addr) && waddr->value != addr->value) {
            m = m->kids[0];
            continue;
        }
        break; // cannot decide aliasing syntactically
    }
    return intern(Kind::Read, Sort::Bv, 0, "", {m, addr});
}

Expr
ExprContext::store(Expr mem, Expr addr, Expr val)
{
    SCAMV_ASSERT(mem->sort == Sort::Mem, "store to non-memory");
    // store(store(m, a, v1), a, v2) == store(m, a, v2)
    if (mem->kind == Kind::Store && mem->kids[1] == addr)
        return intern(Kind::Store, Sort::Mem, 0, "",
                      {mem->kids[0], addr, val});
    return intern(Kind::Store, Sort::Mem, 0, "", {mem, addr, val});
}

Expr
ExprContext::eq(Expr a, Expr b)
{
    SCAMV_ASSERT(a->sort == b->sort, "eq on mismatched sorts");
    if (a == b)
        return tru();
    if (a->sort == Sort::Bv && bothConst(a, b))
        return boolConst(a->value == b->value);
    if (a->sort == Sort::Bool && a->kind == Kind::BoolConst &&
        b->kind == Kind::BoolConst)
        return boolConst(a->value == b->value);
    if (a->id > b->id) // canonical, heap-layout-independent order
        std::swap(a, b);
    return intern(Kind::Eq, Sort::Bool, 0, "", {a, b});
}

Expr
ExprContext::ult(Expr a, Expr b)
{
    if (bothConst(a, b))
        return boolConst(a->value < b->value);
    if (a == b)
        return fls();
    return intern(Kind::Ult, Sort::Bool, 0, "", {a, b});
}

Expr
ExprContext::ule(Expr a, Expr b)
{
    if (bothConst(a, b))
        return boolConst(a->value <= b->value);
    if (a == b)
        return tru();
    return intern(Kind::Ule, Sort::Bool, 0, "", {a, b});
}

Expr
ExprContext::slt(Expr a, Expr b)
{
    if (bothConst(a, b))
        return boolConst(static_cast<std::int64_t>(a->value) <
                         static_cast<std::int64_t>(b->value));
    if (a == b)
        return fls();
    return intern(Kind::Slt, Sort::Bool, 0, "", {a, b});
}

Expr
ExprContext::sle(Expr a, Expr b)
{
    if (bothConst(a, b))
        return boolConst(static_cast<std::int64_t>(a->value) <=
                         static_cast<std::int64_t>(b->value));
    if (a == b)
        return tru();
    return intern(Kind::Sle, Sort::Bool, 0, "", {a, b});
}

namespace {

/** @return true iff a is syntactically the negation of b. */
bool
complementary(Expr a, Expr b)
{
    return (a->kind == Kind::Not && a->kids[0] == b) ||
           (b->kind == Kind::Not && b->kids[0] == a);
}

} // namespace

Expr
ExprContext::land(Expr a, Expr b)
{
    if (a->kind == Kind::BoolConst)
        return a->value ? b : fls();
    if (b->kind == Kind::BoolConst)
        return b->value ? a : fls();
    if (a == b)
        return a;
    if (complementary(a, b))
        return fls();
    if (a->id > b->id)
        std::swap(a, b);
    return intern(Kind::And, Sort::Bool, 0, "", {a, b});
}

Expr
ExprContext::lor(Expr a, Expr b)
{
    if (a->kind == Kind::BoolConst)
        return a->value ? tru() : b;
    if (b->kind == Kind::BoolConst)
        return b->value ? tru() : a;
    if (a == b)
        return a;
    if (complementary(a, b))
        return tru();
    if (a->id > b->id)
        std::swap(a, b);
    return intern(Kind::Or, Sort::Bool, 0, "", {a, b});
}

Expr
ExprContext::lnot(Expr a)
{
    if (a->kind == Kind::BoolConst)
        return boolConst(!a->value);
    if (a->kind == Kind::Not)
        return a->kids[0];
    return intern(Kind::Not, Sort::Bool, 0, "", {a});
}

Expr
ExprContext::implies(Expr a, Expr b)
{
    return lor(lnot(a), b);
}

Expr
ExprContext::conj(const std::vector<Expr> &es)
{
    Expr acc = tru();
    for (Expr e : es)
        acc = land(acc, e);
    return acc;
}

Expr
ExprContext::disj(const std::vector<Expr> &es)
{
    Expr acc = fls();
    for (Expr e : es)
        acc = lor(acc, e);
    return acc;
}

namespace {

void
walk(Expr e, std::unordered_set<Expr> &seen,
     const std::function<void(Expr)> &visit)
{
    if (!seen.insert(e).second)
        return;
    visit(e);
    for (Expr k : e->kids)
        walk(k, seen, visit);
}

} // namespace

std::vector<Expr>
collectVars(Expr e)
{
    return collectVars(std::vector<Expr>{e});
}

std::vector<Expr>
collectVars(const std::vector<Expr> &roots)
{
    std::unordered_set<Expr> seen;
    std::vector<Expr> vars;
    for (Expr r : roots) {
        walk(r, seen, [&vars](Expr n) {
            if (n->kind == Kind::BvVar || n->kind == Kind::BoolVar ||
                n->kind == Kind::MemVar)
                vars.push_back(n);
        });
    }
    return vars;
}

std::vector<Expr>
collectReads(Expr e)
{
    std::unordered_set<Expr> seen;
    std::vector<Expr> reads;
    walk(e, seen, [&reads](Expr n) {
        if (n->kind == Kind::Read)
            reads.push_back(n);
    });
    return reads;
}

std::string
toString(Expr e)
{
    std::ostringstream out;
    std::function<void(Expr)> pp = [&](Expr n) {
        switch (n->kind) {
          case Kind::BvConst:
            out << "0x" << std::hex << n->value << std::dec;
            return;
          case Kind::BoolConst:
            out << (n->value ? "true" : "false");
            return;
          case Kind::BvVar:
          case Kind::BoolVar:
          case Kind::MemVar:
            out << n->name;
            return;
          default:
            break;
        }
        out << '(' << kindName(n->kind);
        for (Expr k : n->kids) {
            out << ' ';
            pp(k);
        }
        out << ')';
    };
    pp(e);
    return out.str();
}

Expr
substitute(ExprContext &ctx, Expr e,
           const std::unordered_map<Expr, Expr> &map)
{
    std::unordered_map<Expr, Expr> memo;
    std::function<Expr(Expr)> go = [&](Expr n) -> Expr {
        auto hit = memo.find(n);
        if (hit != memo.end())
            return hit->second;
        Expr result;
        auto direct = map.find(n);
        if (direct != map.end()) {
            result = direct->second;
        } else if (n->kids.empty()) {
            result = n;
        } else {
            std::vector<Expr> ks;
            ks.reserve(n->kids.size());
            bool changed = false;
            for (Expr k : n->kids) {
                Expr nk = go(k);
                changed |= (nk != k);
                ks.push_back(nk);
            }
            if (!changed) {
                result = n;
            } else {
                switch (n->kind) {
                  case Kind::Add: result = ctx.add(ks[0], ks[1]); break;
                  case Kind::Sub: result = ctx.sub(ks[0], ks[1]); break;
                  case Kind::Mul: result = ctx.mul(ks[0], ks[1]); break;
                  case Kind::BvAnd: result = ctx.bvAnd(ks[0], ks[1]); break;
                  case Kind::BvOr: result = ctx.bvOr(ks[0], ks[1]); break;
                  case Kind::BvXor: result = ctx.bvXor(ks[0], ks[1]); break;
                  case Kind::BvNot: result = ctx.bvNot(ks[0]); break;
                  case Kind::Neg: result = ctx.neg(ks[0]); break;
                  case Kind::Shl: result = ctx.shl(ks[0], ks[1]); break;
                  case Kind::Lshr: result = ctx.lshr(ks[0], ks[1]); break;
                  case Kind::Ashr: result = ctx.ashr(ks[0], ks[1]); break;
                  case Kind::Ite:
                    result = ctx.ite(ks[0], ks[1], ks[2]);
                    break;
                  case Kind::Read: result = ctx.read(ks[0], ks[1]); break;
                  case Kind::Store:
                    result = ctx.store(ks[0], ks[1], ks[2]);
                    break;
                  case Kind::Eq: result = ctx.eq(ks[0], ks[1]); break;
                  case Kind::Ult: result = ctx.ult(ks[0], ks[1]); break;
                  case Kind::Ule: result = ctx.ule(ks[0], ks[1]); break;
                  case Kind::Slt: result = ctx.slt(ks[0], ks[1]); break;
                  case Kind::Sle: result = ctx.sle(ks[0], ks[1]); break;
                  case Kind::And: result = ctx.land(ks[0], ks[1]); break;
                  case Kind::Or: result = ctx.lor(ks[0], ks[1]); break;
                  case Kind::Not: result = ctx.lnot(ks[0]); break;
                  case Kind::Implies:
                    result = ctx.implies(ks[0], ks[1]);
                    break;
                  default:
                    SCAMV_PANIC("substitute: unexpected kind");
                }
            }
        }
        memo.emplace(n, result);
        return result;
    };
    return go(e);
}

std::size_t
dagSize(Expr e)
{
    std::unordered_set<Expr> seen;
    walk(e, seen, [](Expr) {});
    return seen.size();
}

} // namespace scamv::expr
