/**
 * @file
 * Stride-based hardware data prefetcher.
 *
 * Models the Cortex-A53 L1D prefetcher as documented in Section 6.1:
 * it activates once a stride of at least `trigger` (default 3) loads
 * accesses equidistant addresses, prefetching `degree` further lines
 * along the stride, and it does not prefetch across a 4 KiB page
 * boundary — the property that makes page-aligned cache coloring safe
 * (Section 6.2).
 */

#ifndef SCAMV_HW_PREFETCHER_HH
#define SCAMV_HW_PREFETCHER_HH

#include <cstdint>
#include <vector>

namespace scamv::hw {

class Cache;

/** Prefetcher configuration. */
struct PrefetcherConfig {
    bool enabled = true;
    /** Equidistant accesses needed to activate (default A53: 3). */
    int trigger = 3;
    /** Lines prefetched ahead once active. */
    int degree = 1;
    /** Page size; prefetches never cross a page boundary. */
    std::uint64_t pageBytes = 4096;
    /** Allow crossing pages (ablation switch; real A53: false). */
    bool crossPageBoundary = false;
};

/** Reference stream stride detector + line prefetcher. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherConfig &config = {});

    /** Clear detector state (between experiment runs). */
    void reset();

    /**
     * Observe a demand access and possibly issue prefetches into the
     * cache.  @return number of lines prefetched by this call.
     */
    int observe(std::uint64_t addr, Cache &cache);

    /** Addresses prefetched over the object's lifetime (testing). */
    const std::vector<std::uint64_t> &issued() const { return issuedAddrs; }

    const PrefetcherConfig &config() const { return cfg; }

  private:
    PrefetcherConfig cfg;
    std::uint64_t lastAddr = 0;
    std::int64_t lastDelta = 0;
    int streak = 0; ///< count of consecutive accesses with equal delta
    bool haveLast = false;
    std::vector<std::uint64_t> issuedAddrs;
};

} // namespace scamv::hw

#endif // SCAMV_HW_PREFETCHER_HH
