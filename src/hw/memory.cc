#include "hw/memory.hh"

namespace scamv::hw {

std::uint64_t
Memory::junk(std::uint64_t addr) const
{
    // splitmix64-style mix of (addr, boardSeed).
    std::uint64_t z = (addr & ~7ULL) + boardSeed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
Memory::load(std::uint64_t addr) const
{
    const std::uint64_t key = addr & ~7ULL;
    auto it = words.find(key);
    return it == words.end() ? junk(key) : it->second;
}

void
Memory::store(std::uint64_t addr, std::uint64_t value)
{
    words[addr & ~7ULL] = value;
}

} // namespace scamv::hw
