#include "hw/core.hh"

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::hw {

using bir::Instr;
using bir::InstrKind;

Core::Core(const CoreConfig &config, std::uint64_t board_seed,
           support::Arena *arena)
    : cfg(config), dcache(config.geom, arena), dtlb(config.tlb, arena),
      pf(config.prefetcher), bpred(config.predictor, arena),
      mem(board_seed)
{}

void
Core::resetMicroarch()
{
    dcache.reset();
    dtlb.reset();
    pf.reset();
    bpred.reset();
    mem.clear();
}

std::uint64_t
Core::aluOp(bir::AluOp op, std::uint64_t a, std::uint64_t b) const
{
    using bir::AluOp;
    switch (op) {
      case AluOp::Add: return a + b;
      case AluOp::Sub: return a - b;
      case AluOp::And: return a & b;
      case AluOp::Orr: return a | b;
      case AluOp::Eor: return a ^ b;
      case AluOp::Lsl: return a << (b & 63);
      case AluOp::Lsr: return a >> (b & 63);
      case AluOp::Asr:
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(a) >>
                                          (b & 63));
      case AluOp::Mul: return a * b;
    }
    SCAMV_PANIC("unknown ALU op");
}

bool
Core::cmpOp(bir::CmpOp op, std::uint64_t a, std::uint64_t b) const
{
    using bir::CmpOp;
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      case CmpOp::Ult: return a < b;
      case CmpOp::Ule: return a <= b;
      case CmpOp::Ugt: return a > b;
      case CmpOp::Uge: return a >= b;
      case CmpOp::Slt: return sa < sb;
      case CmpOp::Sle: return sa <= sb;
      case CmpOp::Sgt: return sa > sb;
      case CmpOp::Sge: return sa >= sb;
    }
    SCAMV_PANIC("unknown comparison");
}

void
Core::speculate(const bir::Program &program, int wrong_pc,
                const std::array<std::uint64_t, bir::kNumRegs> &regs,
                RunResult &result)
{
    // Shadow copy of the register file at prediction time.
    std::array<std::uint64_t, bir::kNumRegs> shadow = regs;
    std::array<bool, bir::kNumRegs> transient_written{};

    const int n = static_cast<int>(program.size());
    int pc = wrong_pc;
    for (int step = 0; step < cfg.transientWindow && pc < n; ++pc) {
        const Instr &ins = program[pc];
        if (ins.transient)
            continue; // shadow statements are model-side only
        // The transient window ends at any control transfer: the A53
        // resolves the mispredicted branch before a nested prediction
        // could commit further wrong-path memory accesses.
        if (ins.kind == InstrKind::Branch || ins.kind == InstrKind::Jump ||
            ins.kind == InstrKind::Halt)
            break;
        ++step;

        auto ready = [&](const Instr &i) {
            if (cfg.forwardTransientResults)
                return true;
            for (bir::Reg r : i.sourceRegs())
                if (transient_written[r])
                    return false;
            return true;
        };
        const std::uint64_t op2 =
            ins.useImm ? ins.imm : shadow[ins.rm];

        switch (ins.kind) {
          case InstrKind::Alu:
            shadow[ins.rd] = aluOp(ins.aluOp, shadow[ins.rn], op2);
            transient_written[ins.rd] = true;
            break;
          case InstrKind::MovImm:
            shadow[ins.rd] = ins.imm;
            transient_written[ins.rd] = true;
            break;
          case InstrKind::Load: {
            if (!ready(ins)) {
                ++result.transientLoadsBlocked;
                transient_written[ins.rd] = true;
                break;
            }
            const std::uint64_t addr = shadow[ins.rn] + op2;
            // Address translation precedes the squash: speculative
            // loads fill the TLB (the TLB side channel).
            if (!dtlb.access(addr))
                ++result.tlbMisses;
            dcache.access(addr);
            if (cfg.transientTrainsPrefetcher)
                result.prefetches += pf.observe(addr, dcache);
            shadow[ins.rd] = mem.load(addr);
            transient_written[ins.rd] = true;
            ++result.transientLoadsIssued;
            result.transientTrace.push_back(addr);
            break;
          }
          case InstrKind::Store:
            // Speculative stores wait in the store buffer and are
            // squashed: no cache or memory effect.
            break;
          case InstrKind::Branch:
          case InstrKind::Jump:
          case InstrKind::Halt:
            break; // unreachable (handled above)
        }
    }
}

RunResult
Core::run(const bir::Program &program, const ArchState &init)
{
    RunResult result;
    run(program, init, result);
    return result;
}

void
Core::run(const bir::Program &program, const ArchState &init,
          RunResult &out)
{
    SCAMV_ASSERT(program.validate().empty(), "core: invalid program");
    out.reset();
    RunResult &result = out;
    const std::uint64_t cache_hits0 = dcache.hits();
    const std::uint64_t cache_misses0 = dcache.misses();
    std::array<std::uint64_t, bir::kNumRegs> regs = init.regs;

    const int n = static_cast<int>(program.size());
    int pc = 0;
    while (pc < n) {
        SCAMV_ASSERT(result.instructions < cfg.maxInstructions,
                     "core: instruction limit exceeded (loop?)");
        const Instr &ins = program[pc];
        if (ins.transient) {
            // Shadow statements exist only for the symbolic models;
            // hardware fetches the original instruction stream.
            ++pc;
            continue;
        }
        ++result.instructions;
        const std::uint64_t op2 = ins.useImm ? ins.imm : regs[ins.rm];

        switch (ins.kind) {
          case InstrKind::Alu:
            regs[ins.rd] = aluOp(ins.aluOp, regs[ins.rn], op2);
            result.cycles += cfg.aluLatency;
            ++pc;
            break;
          case InstrKind::MovImm:
            regs[ins.rd] = ins.imm;
            result.cycles += cfg.aluLatency;
            ++pc;
            break;
          case InstrKind::Load: {
            const std::uint64_t addr = regs[ins.rn] + op2;
            if (!dtlb.access(addr)) {
                ++result.tlbMisses;
                result.cycles += cfg.tlbMissLatency;
            }
            const bool hit = dcache.access(addr);
            result.prefetches += pf.observe(addr, dcache);
            regs[ins.rd] = mem.load(addr);
            result.memTrace.push_back(addr);
            result.cycles += hit ? cfg.hitLatency : cfg.missLatency;
            ++pc;
            break;
          }
          case InstrKind::Store: {
            const std::uint64_t addr = regs[ins.rn] + op2;
            if (!dtlb.access(addr)) {
                ++result.tlbMisses;
                result.cycles += cfg.tlbMissLatency;
            }
            const bool hit = dcache.access(addr);
            result.prefetches += pf.observe(addr, dcache);
            mem.store(addr, regs[ins.rd]);
            result.memTrace.push_back(addr);
            result.cycles += hit ? cfg.hitLatency : cfg.missLatency;
            ++pc;
            break;
          }
          case InstrKind::Branch: {
            const bool taken = cmpOp(ins.cmpOp, regs[ins.rn], op2);
            const bool predicted = bpred.predict(pc);
            if (predicted != taken) {
                bpred.noteMispredict();
                ++result.mispredicts;
                result.cycles += cfg.mispredictPenalty;
                // Transiently execute the wrongly predicted path.
                const int wrong_pc = predicted ? ins.target : pc + 1;
                speculate(program, wrong_pc, regs, result);
            }
            bpred.update(pc, taken);
            result.cycles += cfg.aluLatency;
            pc = taken ? ins.target : pc + 1;
            break;
          }
          case InstrKind::Jump:
            if (cfg.straightLineSpeculation)
                speculate(program, pc + 1, regs, result);
            result.cycles += cfg.aluLatency;
            pc = ins.target;
            break;
          case InstrKind::Halt:
            result.cycles += cfg.aluLatency;
            pc = n;
            break;
        }
    }
    result.finalState.regs = regs;

    // Flush this run's microarchitectural activity into the current
    // metrics registry (per-program inside a pipeline task, global
    // otherwise).  One batch per run keeps the per-access paths free
    // of registry lookups.
    metrics::Registry &reg = metrics::current();
    reg.counter("hw.runs").inc();
    reg.counter("hw.instructions").add(result.instructions);
    reg.counter("hw.cycles").add(result.cycles);
    reg.counter("hw.cache.hits").add(dcache.hits() - cache_hits0);
    reg.counter("hw.cache.misses").add(dcache.misses() - cache_misses0);
    reg.counter("hw.prefetch.issued").add(result.prefetches);
    reg.counter("hw.branch.mispredicts").add(result.mispredicts);
    reg.counter("hw.tlb.misses").add(result.tlbMisses);
    reg.counter("hw.transient_loads.issued")
        .add(result.transientLoadsIssued);
    reg.counter("hw.transient_loads.blocked")
        .add(result.transientLoadsBlocked);
}

std::uint64_t
Core::timedLoad(std::uint64_t addr)
{
    const bool hit = dcache.access(addr);
    metrics::current()
        .counter(hit ? "hw.probe.hits" : "hw.probe.misses")
        .inc();
    std::uint64_t latency = hit ? cfg.hitLatency : cfg.missLatency;
    // Injected probe jitter: a DRAM-refresh-style latency spike on
    // top of whatever the cache state dictates.
    if (faults::maybeInject(faults::Site::HwProbeJitter))
        latency += cfg.missLatency;
    return latency;
}

} // namespace scamv::hw
