#include "hw/prefetcher.hh"

#include "hw/cache.hh"

namespace scamv::hw {

StridePrefetcher::StridePrefetcher(const PrefetcherConfig &config)
    : cfg(config)
{}

void
StridePrefetcher::reset()
{
    lastAddr = 0;
    lastDelta = 0;
    streak = 0;
    haveLast = false;
    issuedAddrs.clear();
}

int
StridePrefetcher::observe(std::uint64_t addr, Cache &cache)
{
    if (!cfg.enabled)
        return 0;

    int prefetched = 0;
    if (haveLast) {
        const std::int64_t delta =
            static_cast<std::int64_t>(addr - lastAddr);
        if (delta != 0 && delta == lastDelta) {
            ++streak;
        } else {
            lastDelta = delta;
            streak = delta != 0 ? 1 : 0;
        }
        // `streak` equal deltas means streak+1 equidistant accesses.
        if (streak + 1 >= cfg.trigger && lastDelta != 0) {
            std::uint64_t next = addr;
            for (int d = 0; d < cfg.degree; ++d) {
                const std::uint64_t target = next + lastDelta;
                const bool crosses =
                    (target / cfg.pageBytes) != (addr / cfg.pageBytes);
                if (crosses && !cfg.crossPageBoundary)
                    break;
                cache.access(target);
                issuedAddrs.push_back(target);
                ++prefetched;
                next = target;
            }
        }
    }
    lastAddr = addr;
    haveLast = true;
    return prefetched;
}

} // namespace scamv::hw
