#include "hw/tlb.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scamv::hw {

Tlb::Tlb(const TlbConfig &config, support::Arena *arena)
    : cfg(config), table(support::ArenaAllocator<Entry>(arena))
{
    SCAMV_ASSERT(cfg.entries > 0, "TLB needs at least one entry");
    table.resize(cfg.entries);
}

void
Tlb::reset()
{
    for (Entry &e : table)
        e = Entry{};
    lruClock = 0;
}

bool
Tlb::access(std::uint64_t addr)
{
    const std::uint64_t vpn = vpnOf(addr);
    ++lruClock;
    for (Entry &e : table) {
        if (e.valid && e.vpn == vpn) {
            e.lru = lruClock;
            ++nHits;
            return true;
        }
    }
    ++nMisses;
    Entry *victim = &table[0];
    for (Entry &e : table) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.lru < victim->lru)
            victim = &e;
    }
    victim->valid = true;
    victim->vpn = vpn;
    victim->lru = lruClock;
    return false;
}

bool
Tlb::probe(std::uint64_t addr) const
{
    const std::uint64_t vpn = vpnOf(addr);
    for (const Entry &e : table)
        if (e.valid && e.vpn == vpn)
            return true;
    return false;
}

TlbState
Tlb::snapshot() const
{
    TlbState vpns;
    for (const Entry &e : table)
        if (e.valid)
            vpns.push_back(e.vpn);
    std::sort(vpns.begin(), vpns.end());
    return vpns;
}

} // namespace scamv::hw
