/**
 * @file
 * Sparse 64-bit main memory with deterministic "junk" fill.
 *
 * Cells never written hold an arbitrary-but-fixed value derived from
 * the address and a board seed — like real DRAM contents on the
 * evaluation board, identical across the two measured runs of a test
 * case but not all-zero (all-zero defaults would accidentally make
 * distinct speculative reads alias).
 */

#ifndef SCAMV_HW_MEMORY_HH
#define SCAMV_HW_MEMORY_HH

#include <cstdint>
#include <unordered_map>

namespace scamv::hw {

/** Word-addressed (8-byte) sparse memory. */
class Memory
{
  public:
    explicit Memory(std::uint64_t board_seed = 0xb0a2dULL)
        : boardSeed(board_seed)
    {}

    /** Remove all explicit writes (junk fill persists). */
    void clear() { words.clear(); }

    /** @return the word containing addr (addr rounded down to 8). */
    std::uint64_t load(std::uint64_t addr) const;

    /** Store a word at addr (rounded down to 8). */
    void store(std::uint64_t addr, std::uint64_t value);

    /** @return true iff the cell was explicitly written. */
    bool written(std::uint64_t addr) const
    {
        return words.count(addr & ~7ULL) != 0;
    }

  private:
    std::uint64_t junk(std::uint64_t addr) const;

    std::uint64_t boardSeed;
    std::unordered_map<std::uint64_t, std::uint64_t> words;
};

} // namespace scamv::hw

#endif // SCAMV_HW_MEMORY_HH
