#include "hw/predictor.hh"

#include "support/logging.hh"

namespace scamv::hw {

BranchPredictor::BranchPredictor(const PredictorConfig &config,
                                 support::Arena *arena)
    : cfg(config),
      table(support::ArenaAllocator<std::uint8_t>(arena))
{
    SCAMV_ASSERT((cfg.entries & (cfg.entries - 1)) == 0,
                 "PHT entries must be a power of two");
    reset();
}

void
BranchPredictor::reset()
{
    table.assign(cfg.entries, cfg.initialCounter);
}

std::uint32_t
BranchPredictor::indexOf(std::uint64_t pc) const
{
    // Simple multiplicative hash; the low bits of small instruction
    // indexes would otherwise all alias entry 0..n.
    return static_cast<std::uint32_t>((pc * 0x9e3779b97f4a7c15ULL) >> 32) &
           (cfg.entries - 1);
}

bool
BranchPredictor::predict(std::uint64_t pc) const
{
    return table[indexOf(pc)] >= 2;
}

void
BranchPredictor::update(std::uint64_t pc, bool taken)
{
    std::uint8_t &c = table[indexOf(pc)];
    if (taken) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

} // namespace scamv::hw
