/**
 * @file
 * Data TLB model.
 *
 * Section 2.3 notes that Scam-V supports side channels beyond the
 * data cache — "e.g., caused by TLB state" — by adding an observation
 * module and extending the executor's measurement.  This TLB is the
 * hardware half of that extension: a small fully-associative LRU
 * translation cache over 4 KiB virtual page numbers, filled by every
 * demand access *and by transient loads* (address translation happens
 * before a speculative access can be squashed — the property that
 * makes the TLB a speculative side channel too).
 */

#ifndef SCAMV_HW_TLB_HH
#define SCAMV_HW_TLB_HH

#include <cstdint>
#include <vector>

#include "support/arena.hh"

namespace scamv::hw {

/** TLB configuration. */
struct TlbConfig {
    /** Number of entries (Cortex-A53 micro-TLB: 10; we default 16). */
    int entries = 16;
    /** Page size in bytes. */
    std::uint64_t pageBytes = 4096;
};

/** Snapshot: sorted resident virtual page numbers. */
using TlbState = std::vector<std::uint64_t>;

/** Fully-associative LRU TLB. */
class Tlb
{
  public:
    /** @param arena optional backing arena for the entry table (see
     * Cache); must outlive the TLB. */
    explicit Tlb(const TlbConfig &config = {},
                 support::Arena *arena = nullptr);

    /** Invalidate all entries. */
    void reset();

    /**
     * Translate an access to addr (filling on miss).
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Presence check without LRU update or fill. */
    bool probe(std::uint64_t addr) const;

    /** @return sorted resident page numbers. */
    TlbState snapshot() const;

    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }

    const TlbConfig &config() const { return cfg; }

  private:
    struct Entry {
        bool valid = false;
        std::uint64_t vpn = 0;
        std::uint64_t lru = 0;
    };

    std::uint64_t vpnOf(std::uint64_t addr) const
    {
        return addr / cfg.pageBytes;
    }

    TlbConfig cfg;
    std::vector<Entry, support::ArenaAllocator<Entry>> table;
    std::uint64_t lruClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

} // namespace scamv::hw

#endif // SCAMV_HW_TLB_HH
