/**
 * @file
 * Set-associative L1 data cache with LRU replacement.
 *
 * Models the Cortex-A53 L1D of the evaluation platform (32 KiB,
 * 4-way, 64-byte lines, 128 set indexes).  The experiment harness
 * snapshots the final cache state the way the paper's TrustZone
 * platform module inspects it with privileged debug instructions:
 * per set, the set of valid line tags.
 */

#ifndef SCAMV_HW_CACHE_HH
#define SCAMV_HW_CACHE_HH

#include <cstdint>
#include <vector>

#include "obs/layout.hh"
#include "support/arena.hh"

namespace scamv::hw {

/** Per-set snapshot: sorted valid tags. */
using CacheSetState = std::vector<std::uint64_t>;

/** Full-cache snapshot: one CacheSetState per set index. */
using CacheState = std::vector<CacheSetState>;

/** LRU set-associative cache. */
class Cache
{
  public:
    /**
     * @param arena optional backing arena for the line array (batched
     * simulation); null means ordinary heap allocation.  The arena
     * must outlive the cache and must not be reset while the cache is
     * alive.
     */
    explicit Cache(const obs::CacheGeometry &geom = {},
                   support::Arena *arena = nullptr);

    /** Invalidate every line (the platform clears before each run). */
    void reset();

    /**
     * Demand access (read or write, read-allocate policy).
     * @return true on hit.
     */
    bool access(std::uint64_t addr);

    /** Non-allocating presence check (no LRU update). */
    bool probe(std::uint64_t addr) const;

    /** Invalidate the line containing addr if present. */
    void flushLine(std::uint64_t addr);

    /** @return snapshot of sets [lo_set, hi_set] inclusive. */
    CacheState snapshot(std::uint64_t lo_set, std::uint64_t hi_set) const;

    /** @return snapshot of the whole cache. */
    CacheState snapshot() const { return snapshot(0, geom.numSets - 1); }

    const obs::CacheGeometry &geometry() const { return geom; }

    /** Statistics. */
    std::uint64_t hits() const { return nHits; }
    std::uint64_t misses() const { return nMisses; }

  private:
    struct Line {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; ///< higher = more recently used
    };

    Line &line(std::uint64_t set, std::uint64_t way)
    {
        return lines[set * geom.ways + way];
    }
    const Line &line(std::uint64_t set, std::uint64_t way) const
    {
        return lines[set * geom.ways + way];
    }

    obs::CacheGeometry geom;
    /** Flat set-major line array: index `set * ways + way`.  A single
     * contiguous allocation (arena-backed in batch mode) instead of
     * one vector per set — the hot access() scan walks `ways`
     * adjacent elements. */
    std::vector<Line, support::ArenaAllocator<Line>> lines;
    std::uint64_t lruClock = 0;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
};

/** @return true iff the two snapshots are identical. */
bool sameCacheState(const CacheState &a, const CacheState &b);

} // namespace scamv::hw

#endif // SCAMV_HW_CACHE_HH
