/**
 * @file
 * In-order core model with bounded transient execution
 * (Cortex-A53-like, Section 6.1).
 *
 * Architectural semantics follow the BIR definition exactly; the
 * microarchitectural side effects are:
 *
 *  - every demand load/store allocates in the L1D cache and trains the
 *    stride prefetcher;
 *  - conditional branches consult the PHT predictor; on a
 *    misprediction the core *transiently* executes up to
 *    `transientWindow` instructions of the wrong path before the
 *    squash.  Transient loads issue real memory requests (allocating
 *    cache lines — the Spectre/SiSCloak channel) **only if no source
 *    register was produced by an earlier transient instruction**: the
 *    A53 has no register renaming and a short pipeline, so a
 *    speculated result never forwards (Section 6.4).  This single rule
 *    reproduces all three findings of Section 6.5: single-load leakage
 *    (SiSCloak), multiple *independent* transient loads, and no
 *    dependent (Spectre-PHT-style) transient load.
 *  - transient stores stay in the store buffer: no cache effect;
 *  - direct unconditional jumps do not trigger straight-line
 *    speculation (ARM's claim, validated in Section 6.5); a config
 *    switch enables it for ablation;
 *  - a cycle counter (PMC) accumulates rough latencies, enough for
 *    Flush+Reload timing decisions.
 */

#ifndef SCAMV_HW_CORE_HH
#define SCAMV_HW_CORE_HH

#include <array>
#include <cstdint>

#include "bir/bir.hh"
#include "hw/cache.hh"
#include "hw/memory.hh"
#include "hw/predictor.hh"
#include "hw/prefetcher.hh"
#include "hw/tlb.hh"

namespace scamv::hw {

/** Initial architectural register file of a run. */
struct ArchState {
    std::array<std::uint64_t, bir::kNumRegs> regs{};

    bool operator==(const ArchState &) const = default;
};

/** Core configuration (latencies and speculation behaviour). */
struct CoreConfig {
    obs::CacheGeometry geom;
    PrefetcherConfig prefetcher;
    PredictorConfig predictor;
    TlbConfig tlb;

    /** Max transient instructions executed after a misprediction. */
    int transientWindow = 8;
    /**
     * Allow a transient instruction to consume results produced by
     * earlier transient instructions (real A53: false).
     */
    bool forwardTransientResults = false;
    /** Speculate past direct unconditional jumps (real A53: false). */
    bool straightLineSpeculation = false;
    /** Transient loads train the prefetcher too. */
    bool transientTrainsPrefetcher = true;

    // Latency model (cycles).
    std::uint64_t aluLatency = 1;
    std::uint64_t hitLatency = 4;
    std::uint64_t missLatency = 150;
    std::uint64_t mispredictPenalty = 8;
    std::uint64_t tlbMissLatency = 20;

    /** Safety limit on architecturally executed instructions. */
    std::uint64_t maxInstructions = 100000;
};

/** Counters produced by one program run. */
struct RunResult {
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t transientLoadsIssued = 0;
    std::uint64_t transientLoadsBlocked = 0;
    std::uint64_t prefetches = 0;
    std::uint64_t tlbMisses = 0;
    /** Final architectural registers. */
    ArchState finalState;
    /** Architectural memory-access addresses, in program order. */
    std::vector<std::uint64_t> memTrace;
    /** Transient load addresses actually issued, in order. */
    std::vector<std::uint64_t> transientTrace;

    /**
     * Zero the counters and clear (but keep the capacity of) the
     * trace vectors, so a long-lived result buffer can be reused
     * across batched runs without reallocating.
     */
    void
    reset()
    {
        cycles = instructions = mispredicts = 0;
        transientLoadsIssued = transientLoadsBlocked = 0;
        prefetches = tlbMisses = 0;
        finalState = ArchState{};
        memTrace.clear();
        transientTrace.clear();
    }
};

/** The processor: core + cache + prefetcher + predictor + memory. */
class Core
{
  public:
    /**
     * @param arena optional backing arena for the cache lines, TLB
     * entries and predictor PHT (batched simulation).  The arena must
     * outlive the core and must only be reset after the core is
     * destroyed (harness::Platform rebuilds its batch core per
     * experiment: destroy → arena reset → reconstruct).
     */
    explicit Core(const CoreConfig &config = {},
                  std::uint64_t board_seed = 0xb0a2dULL,
                  support::Arena *arena = nullptr);

    /** Run a program from an initial register state. */
    RunResult run(const bir::Program &program, const ArchState &init);

    /**
     * Allocation-free variant: resets `out` (keeping its trace
     * capacity) and runs into it.  Behaviourally identical to the
     * returning overload.
     */
    void run(const bir::Program &program, const ArchState &init,
             RunResult &out);

    /**
     * Restore every microarchitectural structure to its
     * post-construction state in place: cache, TLB, prefetcher and
     * predictor reset, memory cleared.  Equivalent to constructing a
     * fresh Core with the same config and board seed (each
     * component's reset() restores exactly its constructor state, and
     * Memory junk fill is a pure function of address and board seed),
     * but without any allocation — the batched simulation path calls
     * this once per repetition.
     */
    void resetMicroarch();

    /**
     * Timed single load, as an attacker's measured reload: accesses
     * addr and @return the latency in cycles (Flush+Reload probe).
     */
    std::uint64_t timedLoad(std::uint64_t addr);

    Cache &cache() { return dcache; }
    Tlb &tlb() { return dtlb; }
    Memory &memory() { return mem; }
    BranchPredictor &predictor() { return bpred; }
    StridePrefetcher &prefetcher() { return pf; }
    const CoreConfig &config() const { return cfg; }

  private:
    /** Transiently execute the wrong path starting at wrong_pc. */
    void speculate(const bir::Program &program, int wrong_pc,
                   const std::array<std::uint64_t, bir::kNumRegs> &regs,
                   RunResult &result);

    std::uint64_t aluOp(bir::AluOp op, std::uint64_t a,
                        std::uint64_t b) const;
    bool cmpOp(bir::CmpOp op, std::uint64_t a, std::uint64_t b) const;

    CoreConfig cfg;
    Cache dcache;
    Tlb dtlb;
    StridePrefetcher pf;
    BranchPredictor bpred;
    Memory mem;
};

} // namespace scamv::hw

#endif // SCAMV_HW_CORE_HH
