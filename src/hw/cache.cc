#include "hw/cache.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scamv::hw {

Cache::Cache(const obs::CacheGeometry &geom, support::Arena *arena)
    : geom(geom), lines(support::ArenaAllocator<Line>(arena))
{
    lines.assign(static_cast<std::size_t>(geom.numSets) * geom.ways,
                 Line{});
}

void
Cache::reset()
{
    for (Line &l : lines)
        l = Line{};
    lruClock = 0;
}

bool
Cache::access(std::uint64_t addr)
{
    const std::uint64_t set_idx = geom.setOf(addr);
    const std::uint64_t tag = geom.tagOf(addr);
    Line *const set = &line(set_idx, 0);
    ++lruClock;

    for (std::uint64_t w = 0; w < geom.ways; ++w) {
        Line &l = set[w];
        if (l.valid && l.tag == tag) {
            l.lru = lruClock;
            ++nHits;
            return true;
        }
    }
    ++nMisses;
    // Allocate: pick an invalid way, else the LRU way.
    Line *victim = &set[0];
    for (std::uint64_t w = 0; w < geom.ways; ++w) {
        Line &l = set[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lru < victim->lru)
            victim = &l;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = lruClock;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t set_idx = geom.setOf(addr);
    const std::uint64_t tag = geom.tagOf(addr);
    for (std::uint64_t w = 0; w < geom.ways; ++w) {
        const Line &l = line(set_idx, w);
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

void
Cache::flushLine(std::uint64_t addr)
{
    const std::uint64_t set_idx = geom.setOf(addr);
    const std::uint64_t tag = geom.tagOf(addr);
    for (std::uint64_t w = 0; w < geom.ways; ++w) {
        Line &l = line(set_idx, w);
        if (l.valid && l.tag == tag)
            l = Line{};
    }
}

CacheState
Cache::snapshot(std::uint64_t lo_set, std::uint64_t hi_set) const
{
    SCAMV_ASSERT(lo_set <= hi_set && hi_set < geom.numSets,
                 "snapshot range out of bounds");
    CacheState state;
    state.reserve(hi_set - lo_set + 1);
    for (std::uint64_t s = lo_set; s <= hi_set; ++s) {
        CacheSetState tags;
        for (std::uint64_t w = 0; w < geom.ways; ++w) {
            const Line &l = line(s, w);
            if (l.valid)
                tags.push_back(l.tag);
        }
        std::sort(tags.begin(), tags.end());
        state.push_back(std::move(tags));
    }
    return state;
}

bool
sameCacheState(const CacheState &a, const CacheState &b)
{
    return a == b;
}

} // namespace scamv::hw
