#include "hw/cache.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scamv::hw {

Cache::Cache(const obs::CacheGeometry &geom) : geom(geom)
{
    sets.assign(geom.numSets, std::vector<Line>(geom.ways));
}

void
Cache::reset()
{
    for (auto &set : sets)
        for (Line &line : set)
            line = Line{};
    lruClock = 0;
}

bool
Cache::access(std::uint64_t addr)
{
    const std::uint64_t set_idx = geom.setOf(addr);
    const std::uint64_t tag = geom.tagOf(addr);
    auto &set = sets[set_idx];
    ++lruClock;

    for (Line &line : set) {
        if (line.valid && line.tag == tag) {
            line.lru = lruClock;
            ++nHits;
            return true;
        }
    }
    ++nMisses;
    // Allocate: pick an invalid way, else the LRU way.
    Line *victim = &set[0];
    for (Line &line : set) {
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lru < victim->lru)
            victim = &line;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = lruClock;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t set_idx = geom.setOf(addr);
    const std::uint64_t tag = geom.tagOf(addr);
    for (const Line &line : sets[set_idx])
        if (line.valid && line.tag == tag)
            return true;
    return false;
}

void
Cache::flushLine(std::uint64_t addr)
{
    const std::uint64_t set_idx = geom.setOf(addr);
    const std::uint64_t tag = geom.tagOf(addr);
    for (Line &line : sets[set_idx])
        if (line.valid && line.tag == tag)
            line = Line{};
}

CacheState
Cache::snapshot(std::uint64_t lo_set, std::uint64_t hi_set) const
{
    SCAMV_ASSERT(lo_set <= hi_set && hi_set < geom.numSets,
                 "snapshot range out of bounds");
    CacheState state;
    state.reserve(hi_set - lo_set + 1);
    for (std::uint64_t s = lo_set; s <= hi_set; ++s) {
        CacheSetState tags;
        for (const Line &line : sets[s])
            if (line.valid)
                tags.push_back(line.tag);
        std::sort(tags.begin(), tags.end());
        state.push_back(std::move(tags));
    }
    return state;
}

bool
sameCacheState(const CacheState &a, const CacheState &b)
{
    return a == b;
}

} // namespace scamv::hw
