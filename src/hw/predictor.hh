/**
 * @file
 * Pattern-history-table branch predictor.
 *
 * Two-bit saturating counters indexed by (hashed) program counter —
 * the prediction mechanism Spectre-PHT and SiSCloak exploit
 * (Sections 4.2.2, 6.3).  The table persists across program runs
 * within one experiment, which is what makes the harness's training
 * phase (Section 5.3) effective.
 */

#ifndef SCAMV_HW_PREDICTOR_HH
#define SCAMV_HW_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "support/arena.hh"

namespace scamv::hw {

/** Branch predictor configuration. */
struct PredictorConfig {
    /** Number of PHT entries (power of two). */
    std::uint32_t entries = 256;
    /** Initial counter value (0..3); 1 = weakly not-taken. */
    std::uint8_t initialCounter = 1;
};

/** 2-bit-counter PHT. */
class BranchPredictor
{
  public:
    /** @param arena optional backing arena for the PHT (see Cache);
     * must outlive the predictor. */
    explicit BranchPredictor(const PredictorConfig &config = {},
                             support::Arena *arena = nullptr);

    /** Reset all counters to the initial value. */
    void reset();

    /** @return predicted direction for the branch at pc. */
    bool predict(std::uint64_t pc) const;

    /** Update the counter with the resolved direction. */
    void update(std::uint64_t pc, bool taken);

    std::uint64_t mispredicts() const { return nMispredicts; }

    /** Record a misprediction (bookkeeping by the core). */
    void noteMispredict() { ++nMispredicts; }

  private:
    std::uint32_t indexOf(std::uint64_t pc) const;

    PredictorConfig cfg;
    std::vector<std::uint8_t, support::ArenaAllocator<std::uint8_t>> table;
    std::uint64_t nMispredicts = 0;
};

} // namespace scamv::hw

#endif // SCAMV_HW_PREDICTOR_HH
