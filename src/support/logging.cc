#include "support/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace scamv {

namespace {
// Read from pipeline worker threads while e.g. a bench main thread may
// call setVerbose: must be atomic.  The mutex keeps concurrent
// warn/inform lines from interleaving mid-line.
std::atomic<bool> gVerbose{true};
std::mutex gOutputMutex;
} // namespace

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(gOutputMutex);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string &msg)
{
    if (!gVerbose.load(std::memory_order_relaxed))
        return;
    std::lock_guard<std::mutex> lock(gOutputMutex);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
setVerbose(bool verbose)
{
    gVerbose.store(verbose, std::memory_order_relaxed);
}

bool
verbose()
{
    return gVerbose.load(std::memory_order_relaxed);
}

} // namespace scamv
