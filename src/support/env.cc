#include "support/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <string>

#include "support/logging.hh"

namespace scamv {

namespace {

/** @return the trimmed-length check: all of `s` consumed by strto*. */
bool
consumedWhole(const char *s, const char *end)
{
    if (end == s)
        return false;
    while (*end == ' ' || *end == '\t')
        ++end;
    return *end == '\0';
}

} // namespace

std::optional<double>
envDouble(const char *name)
{
    const char *env = std::getenv(name);
    if (!env)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const double v = std::strtod(env, &end);
    if (!consumedWhole(env, end)) {
        warn(std::string(name) + "='" + env +
             "' is not a number; using the default");
        return std::nullopt;
    }
    if (errno == ERANGE || !std::isfinite(v)) {
        warn(std::string(name) + "='" + env +
             "' is out of range; using the default");
        return std::nullopt;
    }
    return v;
}

std::optional<double>
envDouble(const char *name, double lo, double hi)
{
    const auto v = envDouble(name);
    if (!v)
        return std::nullopt;
    if (*v < lo || *v > hi) {
        warn(std::string(name) + "=" + std::to_string(*v) +
             " is outside [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "]; using the default");
        return std::nullopt;
    }
    return v;
}

std::optional<long>
envLong(const char *name)
{
    const char *env = std::getenv(name);
    if (!env)
        return std::nullopt;
    char *end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (!consumedWhole(env, end)) {
        warn(std::string(name) + "='" + env +
             "' is not an integer; using the default");
        return std::nullopt;
    }
    if (errno == ERANGE) {
        warn(std::string(name) + "='" + env +
             "' is out of range; using the default");
        return std::nullopt;
    }
    return v;
}

std::optional<long>
envLong(const char *name, long lo, long hi)
{
    const auto v = envLong(name);
    if (!v)
        return std::nullopt;
    if (*v < lo || *v > hi) {
        warn(std::string(name) + "=" + std::to_string(*v) +
             " is outside [" + std::to_string(lo) + ", " +
             std::to_string(hi) + "]; using the default");
        return std::nullopt;
    }
    return v;
}

} // namespace scamv
