/**
 * @file
 * Error reporting and logging primitives.
 *
 * Follows the gem5 convention: panic() for internal invariant
 * violations (framework bugs), fatal() for unrecoverable user errors
 * (bad configuration), warn()/inform() for status messages.  The
 * library does not use C++ exceptions.
 *
 * All entry points are thread-safe: the verbosity flag is atomic and
 * warn()/inform() lines are serialized, so messages from pipeline
 * worker threads never interleave mid-line.
 */

#ifndef SCAMV_SUPPORT_LOGGING_HH
#define SCAMV_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace scamv {

/** Print formatted message and abort; use for internal bugs. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print formatted message and exit(1); use for user errors. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warn(const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

/** Globally enable/disable inform() output (benches silence it). */
void setVerbose(bool verbose);

/** @return whether inform() output is enabled. */
bool verbose();

} // namespace scamv

#define SCAMV_PANIC(msg) ::scamv::panicImpl(__FILE__, __LINE__, (msg))
#define SCAMV_FATAL(msg) ::scamv::fatalImpl(__FILE__, __LINE__, (msg))

/** Always-on assertion; unlike assert() it survives NDEBUG builds. */
#define SCAMV_ASSERT(cond, msg)                                          \
    do {                                                                 \
        if (!(cond))                                                     \
            SCAMV_PANIC(std::string("assertion failed: ") + #cond +      \
                        " — " + (msg));                                  \
    } while (0)

#endif // SCAMV_SUPPORT_LOGGING_HH
