#include "support/rng.hh"

namespace scamv {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &w : s)
        w = splitmix64(x);
    // Avoid the (astronomically unlikely) all-zero state.
    if (!(s[0] | s[1] | s[2] | s[3]))
        s[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    const std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    SCAMV_ASSERT(bound != 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = bound * (UINT64_MAX / bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit && limit != 0);
    return v % bound;
}

std::uint64_t
Rng::range(std::uint64_t lo, std::uint64_t hi)
{
    SCAMV_ASSERT(lo <= hi, "Rng::range with lo > hi");
    const std::uint64_t span = hi - lo;
    if (span == UINT64_MAX)
        return next();
    return lo + below(span + 1);
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

double
Rng::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

Rng
Rng::split()
{
    Rng child(0);
    child.s[0] = next();
    child.s[1] = next();
    child.s[2] = next();
    child.s[3] = next();
    if (!(child.s[0] | child.s[1] | child.s[2] | child.s[3]))
        child.s[0] = 1;
    return child;
}

} // namespace scamv
