/**
 * @file
 * Validated environment-variable parsing.
 *
 * `std::atof`-style parsing silently turns malformed values into 0,
 * which then masquerades as "fall back to the default" without any
 * indication that the user's setting was dropped.  These helpers
 * parse strictly — the whole value must be consumed (trailing
 * garbage like `SCAMV_THREADS=4x` is rejected, not truncated to 4)
 * and out-of-range magnitudes (strtol/strtod ERANGE saturation) are
 * rejected too — and warn once, naming the offending variable, so a
 * bad setting is an observable user error rather than a silent no-op.
 */

#ifndef SCAMV_SUPPORT_ENV_HH
#define SCAMV_SUPPORT_ENV_HH

#include <cstdint>
#include <optional>

namespace scamv {

/**
 * Parse an environment variable as a double.
 * @return the value, or nullopt when the variable is unset or does
 *         not parse as a complete finite number (a warning naming
 *         the variable is printed in the malformed case).
 */
std::optional<double> envDouble(const char *name);

/**
 * Parse an environment variable as a double constrained to
 * [lo, hi].  Values outside the range are rejected with a warning
 * that names the variable and the bounds.
 */
std::optional<double> envDouble(const char *name, double lo, double hi);

/**
 * Parse an environment variable as a long.
 * @return the value, or nullopt when unset or malformed — trailing
 *         garbage and magnitudes overflowing long are both rejected
 *         with a warning naming the variable.
 */
std::optional<long> envLong(const char *name);

/**
 * Parse an environment variable as a long constrained to [lo, hi].
 * Values outside the range are rejected with a warning that names
 * the variable and the bounds.
 */
std::optional<long> envLong(const char *name, long lo, long hi);

} // namespace scamv

#endif // SCAMV_SUPPORT_ENV_HH
