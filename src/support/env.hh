/**
 * @file
 * Validated environment-variable parsing.
 *
 * `std::atof`-style parsing silently turns malformed values into 0,
 * which then masquerades as "fall back to the default" without any
 * indication that the user's setting was dropped.  These helpers
 * parse strictly (the whole value must be consumed) and warn once on
 * malformed input, so `SCAMV_SCALE=abc` is an observable user error
 * rather than a silent no-op.
 */

#ifndef SCAMV_SUPPORT_ENV_HH
#define SCAMV_SUPPORT_ENV_HH

#include <cstdint>
#include <optional>

namespace scamv {

/**
 * Parse an environment variable as a double.
 * @return the value, or nullopt when the variable is unset or does
 *         not parse as a complete finite number (a warning is
 *         printed in the malformed case).
 */
std::optional<double> envDouble(const char *name);

/**
 * Parse an environment variable as a long.
 * @return the value, or nullopt when unset or malformed (warned).
 */
std::optional<long> envLong(const char *name);

} // namespace scamv

#endif // SCAMV_SUPPORT_ENV_HH
