/**
 * @file
 * Seedable pseudo-random number generator (xoshiro256**).
 *
 * Every stochastic component of the framework (program generators,
 * the repair sampler, platform noise) takes an explicit Rng so that
 * experiments are reproducible from a seed.
 */

#ifndef SCAMV_SUPPORT_RNG_HH
#define SCAMV_SUPPORT_RNG_HH

#include <cstdint>
#include <vector>

#include "support/logging.hh"

namespace scamv {

/** xoshiro256** generator with splitmix64 seeding. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x5ca11ab1eULL) { reseed(seed); }

    /** Re-initialize the state from a seed. */
    void reseed(std::uint64_t seed);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** @return uniform value in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /** @return true with probability p (clamped to [0,1]). */
    bool chance(double p);

    /** @return uniform double in [0,1). */
    double uniform();

    /** @return a uniformly chosen element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        SCAMV_ASSERT(!v.empty(), "pick from empty vector");
        return v[below(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i)
            std::swap(v[i - 1], v[below(i)]);
    }

    /** Fork an independent child generator (for parallel streams). */
    Rng split();

  private:
    std::uint64_t s[4];
};

} // namespace scamv

#endif // SCAMV_SUPPORT_RNG_HH
