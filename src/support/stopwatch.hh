/**
 * @file
 * Wall-clock stopwatch used for generation/execution timing metrics.
 */

#ifndef SCAMV_SUPPORT_STOPWATCH_HH
#define SCAMV_SUPPORT_STOPWATCH_HH

#include <chrono>

namespace scamv {

/** Simple monotonic stopwatch; starts on construction. */
class Stopwatch
{
  public:
    Stopwatch() { restart(); }

    /** Reset the start point to now. */
    void restart() { start = Clock::now(); }

    /** @return elapsed seconds since construction/restart. */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start).count();
    }

    /** @return elapsed milliseconds since construction/restart. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start;
};

/** Online mean/min/max accumulator for timing statistics. */
class RunningStat
{
  public:
    /** Add one sample. */
    void
    add(double x)
    {
        if (n == 0 || x < lo)
            lo = x;
        if (n == 0 || x > hi)
            hi = x;
        sum += x;
        ++n;
    }

    /** @return number of samples. */
    std::size_t count() const { return n; }
    /** @return arithmetic mean (0 if empty). */
    double mean() const { return n ? sum / n : 0.0; }
    /** @return smallest sample (0 if empty). */
    double min() const { return n ? lo : 0.0; }
    /** @return largest sample (0 if empty). */
    double max() const { return n ? hi : 0.0; }
    /** @return sum of samples. */
    double total() const { return sum; }

  private:
    std::size_t n = 0;
    double sum = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

} // namespace scamv

#endif // SCAMV_SUPPORT_STOPWATCH_HH
