#include "support/thread_pool.hh"

#include "support/env.hh"
#include "support/logging.hh"

namespace scamv {

unsigned
ThreadPool::defaultThreadCount()
{
    if (auto env = envLong("SCAMV_THREADS", 1, 4096))
        return static_cast<unsigned>(*env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreadCount();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    workReady.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        SCAMV_ASSERT(!stopping, "submit on a stopping ThreadPool");
        queue.push_back(std::move(task));
        ++unfinished;
    }
    workReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allDone.wait(lock, [this] { return unfinished == 0; });
    if (firstError) {
        std::exception_ptr err = firstError;
        firstError = nullptr;
        std::rethrow_exception(err);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            workReady.wait(lock,
                           [this] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
        }
        try {
            task();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex);
            if (!firstError)
                firstError = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex);
            if (--unfinished == 0)
                allDone.notify_all();
        }
    }
}

} // namespace scamv
