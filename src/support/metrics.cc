#include "support/metrics.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "support/logging.hh"

namespace scamv::metrics {

void
Gauge::add(double x)
{
    double cur = v.load(std::memory_order_relaxed);
    while (!v.compare_exchange_weak(cur, cur + x,
                                    std::memory_order_relaxed))
        ;
}

Histogram::Histogram(std::vector<double> bounds) : bnds(std::move(bounds))
{
    SCAMV_ASSERT(std::is_sorted(bnds.begin(), bnds.end()),
                 "histogram bounds must be ascending");
    SCAMV_ASSERT(std::adjacent_find(bnds.begin(), bnds.end()) ==
                     bnds.end(),
                 "histogram bounds must be distinct");
    counts =
        std::make_unique<std::atomic<std::uint64_t>[]>(bnds.size() + 1);
}

void
Histogram::observe(double x)
{
    // First bound >= x; everything above the last bound lands in the
    // implicit overflow bucket at index bnds.size().
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(bnds.begin(), bnds.end(), x) - bnds.begin());
    counts[i].fetch_add(1, std::memory_order_relaxed);
    n.fetch_add(1, std::memory_order_relaxed);
    double cur = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(cur, cur + x,
                                        std::memory_order_relaxed))
        ;
}

void
Histogram::accumulate(const HistogramData &data)
{
    SCAMV_ASSERT(data.bounds == bnds,
                 "histogram accumulate: bounds mismatch");
    SCAMV_ASSERT(data.counts.size() == bnds.size() + 1,
                 "histogram accumulate: bucket count mismatch");
    for (std::size_t i = 0; i < data.counts.size(); ++i)
        counts[i].fetch_add(data.counts[i], std::memory_order_relaxed);
    n.fetch_add(data.count, std::memory_order_relaxed);
    double cur = total.load(std::memory_order_relaxed);
    while (!total.compare_exchange_weak(cur, cur + data.sum,
                                        std::memory_order_relaxed))
        ;
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    SCAMV_ASSERT(i <= bnds.size(), "histogram bucket out of range");
    return counts[i].load(std::memory_order_relaxed);
}

double
HistogramData::quantile(double q) const
{
    SCAMV_ASSERT(q >= 0.0 && q <= 1.0, "quantile: q out of [0, 1]");
    if (count == 0)
        return 0.0;
    // Rank of the requested sample, 1-based; q=0 maps to rank 1.
    const double rank = q * static_cast<double>(count);
    double cum = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        const double prev = cum;
        cum += static_cast<double>(counts[i]);
        if (cum < rank || counts[i] == 0)
            continue;
        if (i >= bounds.size()) {
            // Overflow bucket has no upper bound; clamp to the last
            // finite bound (Prometheus convention).
            return bounds.empty() ? 0.0 : bounds.back();
        }
        const double lo = i == 0 ? 0.0 : bounds[i - 1];
        const double hi = bounds[i];
        const double frac =
            (rank - prev) / static_cast<double>(counts[i]);
        return lo + (hi - lo) * (frac < 0.0 ? 0.0 : frac);
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

const std::vector<double> &
latencyBounds()
{
    static const std::vector<double> bounds{1e-6, 1e-5, 1e-4, 1e-3,
                                            1e-2, 1e-1, 1.0,  10.0};
    return bounds;
}

Registry::Registry(ClockMode clock_mode) : mode(clock_mode) {}

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = counters.find(name);
    if (it == counters.end())
        it = counters
                 .emplace(std::string(name), std::make_unique<Counter>())
                 .first;
    return *it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = gauges.find(name);
    if (it == gauges.end())
        it = gauges.emplace(std::string(name), std::make_unique<Gauge>())
                 .first;
    return *it->second;
}

Histogram &
Registry::histogram(std::string_view name,
                    const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = histograms.find(name);
    if (it == histograms.end()) {
        it = histograms
                 .emplace(std::string(name),
                          std::make_unique<Histogram>(bounds))
                 .first;
    } else {
        SCAMV_ASSERT(it->second->bounds() == bounds,
                     "histogram re-registered with different bounds: " +
                         std::string(name));
    }
    return *it->second;
}

double
Registry::now()
{
    if (mode == ClockMode::Deterministic) {
        // A synthetic clock: 1 µs per call, so durations depend only
        // on the instrumented call sequence, never on the machine.
        return static_cast<double>(
                   ticks.fetch_add(1, std::memory_order_relaxed) + 1) *
               1e-6;
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(m);
    for (const auto &[name, c] : counters)
        snap.counters[name] = c->value();
    for (const auto &[name, g] : gauges)
        snap.gauges[name] = g->value();
    for (const auto &[name, h] : histograms) {
        HistogramData d;
        d.bounds = h->bounds();
        d.counts.reserve(d.bounds.size() + 1);
        for (std::size_t i = 0; i <= d.bounds.size(); ++i)
            d.counts.push_back(h->bucketCount(i));
        d.sum = h->sum();
        d.count = h->count();
        snap.histograms[name] = std::move(d);
    }
    return snap;
}

void
Registry::merge(const Snapshot &snap)
{
    for (const auto &[name, v] : snap.counters)
        counter(name).add(v);
    for (const auto &[name, v] : snap.gauges)
        gauge(name).add(v);
    for (const auto &[name, h] : snap.histograms)
        histogram(name, h.bounds).accumulate(h);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(m);
    counters.clear();
    gauges.clear();
    histograms.clear();
    ticks.store(0, std::memory_order_relaxed);
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

void
Snapshot::merge(const Snapshot &other)
{
    for (const auto &[name, v] : other.counters)
        counters[name] += v;
    for (const auto &[name, v] : other.gauges)
        gauges[name] += v;
    for (const auto &[name, h] : other.histograms) {
        auto it = histograms.find(name);
        if (it == histograms.end()) {
            histograms[name] = h;
            continue;
        }
        HistogramData &mine = it->second;
        SCAMV_ASSERT(mine.bounds == h.bounds,
                     "snapshot merge: histogram bounds mismatch: " +
                         name);
        for (std::size_t i = 0; i < mine.counts.size(); ++i)
            mine.counts[i] += h.counts[i];
        mine.sum += h.sum;
        mine.count += h.count;
    }
}

namespace {

thread_local Registry *tlsRegistry = nullptr;

/** Shortest round-trippable rendering of a double. */
std::string
jsonDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

} // namespace

Registry &
current()
{
    return tlsRegistry ? *tlsRegistry : Registry::global();
}

ScopedRegistry::ScopedRegistry(Registry &registry) : prev(tlsRegistry)
{
    tlsRegistry = &registry;
}

ScopedRegistry::~ScopedRegistry() { tlsRegistry = prev; }

PhaseTimer::PhaseTimer(Registry &registry, std::string_view phase)
    : reg(registry),
      name("phase." + std::string(phase) + "_seconds"),
      start(reg.now())
{}

PhaseTimer::PhaseTimer(std::string_view phase)
    : PhaseTimer(current(), phase)
{}

PhaseTimer::~PhaseTimer()
{
    reg.histogram(name).observe(reg.now() - start);
}

std::string
toJson(const Snapshot &snap)
{
    std::string out;
    out += "{\n  \"schema\": \"scamv-metrics-v1\",\n";

    out += "  \"counters\": {";
    std::size_t i = 0;
    for (const auto &[name, v] : snap.counters) {
        out += i++ ? ",\n    " : "\n    ";
        out += "\"" + name + "\": " + std::to_string(v);
    }
    out += snap.counters.empty() ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    i = 0;
    for (const auto &[name, v] : snap.gauges) {
        out += i++ ? ",\n    " : "\n    ";
        out += "\"" + name + "\": " + jsonDouble(v);
    }
    out += snap.gauges.empty() ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    i = 0;
    for (const auto &[name, h] : snap.histograms) {
        out += i++ ? ",\n    " : "\n    ";
        out += "\"" + name + "\": {\"bounds\": [";
        for (std::size_t k = 0; k < h.bounds.size(); ++k) {
            if (k)
                out += ", ";
            out += jsonDouble(h.bounds[k]);
        }
        out += "], \"counts\": [";
        for (std::size_t k = 0; k < h.counts.size(); ++k) {
            if (k)
                out += ", ";
            out += std::to_string(h.counts[k]);
        }
        out += "], \"sum\": " + jsonDouble(h.sum) +
               ", \"count\": " + std::to_string(h.count) +
               ", \"p50\": " + jsonDouble(h.quantile(0.5)) +
               ", \"p99\": " + jsonDouble(h.quantile(0.99)) + "}";
    }
    out += snap.histograms.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
writeJson(const Snapshot &snap, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson(snap);
    return static_cast<bool>(out);
}

TextTable
toTable(const Snapshot &snap)
{
    TextTable t;
    t.setHeader({"metric", "kind", "count", "total", "mean"});
    for (const auto &[name, v] : snap.counters)
        t.addRow({name, "counter", std::to_string(v), "", ""});
    for (const auto &[name, v] : snap.gauges)
        t.addRow({name, "gauge", "", fmtDouble(v, 6), ""});
    for (const auto &[name, h] : snap.histograms) {
        t.addRow({name, "histogram", std::to_string(h.count),
                  fmtDouble(h.sum, 6),
                  h.count ? fmtDouble(h.sum /
                                          static_cast<double>(h.count),
                                      6)
                          : "-"});
    }
    return t;
}

} // namespace scamv::metrics
