/**
 * @file
 * Thread-safe metrics registry: named counters, gauges and
 * fixed-bucket latency histograms, plus RAII phase timers.
 *
 * The campaign pipeline is instrumented with these primitives to make
 * a long-running search loop observable: where wall-clock goes
 * (generation vs. SMT solving vs. hardware simulation), how many
 * solver queries of each outcome were issued, and what the simulated
 * hardware did (cache hits/misses, prefetches, mispredictions).
 *
 * Two usage modes share one implementation:
 *
 *  - a process-global registry (`Registry::global()`), safe for
 *    concurrent increments from any thread (all hot-path mutation is
 *    on atomics);
 *  - per-task registries installed with `ScopedRegistry`: the pipeline
 *    gives each program task its own registry (accessible through the
 *    thread-local `current()`), snapshots it when the task finishes,
 *    and merges the snapshots **in program-index order** after the
 *    campaign barrier — the same invariant that makes `RunStats`
 *    bit-identical for any `SCAMV_THREADS` (see DESIGN.md,
 *    "Observability").
 *
 * Snapshots are plain sorted maps; `toJson` renders them with fixed
 * key order and `%.17g` doubles, so two structurally equal snapshots
 * produce byte-identical JSON.
 *
 * Timing sources: a registry constructed with `ClockMode::Wall` reads
 * the steady clock; `ClockMode::Deterministic` returns a synthetic
 * monotonically increasing time (one microsecond per `now()` call),
 * making every duration a pure function of the instrumented call
 * sequence.  The pipeline's determinism tests use the latter to check
 * that the merged snapshot — timings included — is byte-identical
 * across thread counts.
 */

#ifndef SCAMV_SUPPORT_METRICS_HH
#define SCAMV_SUPPORT_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/table.hh"

namespace scamv::metrics {

/**
 * Monotonically increasing event count.
 *
 * Cache-line aligned: counters from one registry are allocated
 * individually but frequently end up adjacent on the heap; padding
 * them to a line keeps a hot per-task counter from false-sharing with
 * its neighbours when several worker threads increment concurrently.
 */
class alignas(64) Counter
{
  public:
    /** Add n (relaxed; totals are read after a barrier). */
    void add(std::uint64_t n) { v.fetch_add(n, std::memory_order_relaxed); }
    /** Increment by one. */
    void inc() { add(1); }
    /** @return current value. */
    std::uint64_t value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v{0};
};

/** Settable/accumulating scalar.  Line-aligned like Counter. */
class alignas(64) Gauge
{
  public:
    /** Overwrite the value. */
    void set(double x) { v.store(x, std::memory_order_relaxed); }
    /** Atomically add x (CAS loop; no fetch_add on doubles pre-C++20 ABI). */
    void add(double x);
    /** @return current value. */
    double value() const { return v.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> v{0.0};
};

/**
 * Fixed-bucket histogram.  `bounds` are inclusive upper bounds in
 * ascending order; an implicit overflow bucket catches everything
 * above the last bound, so there are bounds.size() + 1 buckets.
 */
struct HistogramData;

class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    /** Record one sample. */
    void observe(double x);

    /**
     * Fold a plain-data histogram into this one: bucket counts, sum
     * and count add.  Bounds must agree.  Used when replaying a
     * captured metric delta (see Registry::merge).
     */
    void accumulate(const HistogramData &data);

    const std::vector<double> &bounds() const { return bnds; }
    /** @return count of bucket i (i <= bounds().size()). */
    std::uint64_t bucketCount(std::size_t i) const;
    /** @return total number of samples. */
    std::uint64_t count() const { return n.load(std::memory_order_relaxed); }
    /** @return sum of all samples. */
    double sum() const { return total.load(std::memory_order_relaxed); }

  private:
    std::vector<double> bnds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts;
    std::atomic<double> total{0.0};
    std::atomic<std::uint64_t> n{0};
};

/** Default latency bucket bounds (seconds), 1 µs .. 10 s decades. */
const std::vector<double> &latencyBounds();

/** Plain-data copy of one histogram. */
struct HistogramData {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 entries
    double sum = 0.0;
    std::uint64_t count = 0;

    /**
     * Estimate the q-th quantile (0 <= q <= 1) by cumulative bucket
     * walk with linear interpolation inside the containing bucket.
     * Samples in the overflow bucket clamp to the last bound (the
     * usual Prometheus convention); an empty histogram returns 0.
     */
    double quantile(double q) const;

    bool operator==(const HistogramData &) const = default;
};

/**
 * Plain-data copy of a registry: sorted maps, mergeable and
 * comparable.  This is what crosses task boundaries and what the
 * exporters consume.
 */
struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramData> histograms;

    /**
     * Fold `other` into this snapshot: counters, gauges, histogram
     * buckets and sums add; histogram bounds must agree.  Merging is
     * associative but *not* commutative over doubles, so callers must
     * fold in a deterministic order (the pipeline uses program-index
     * order).
     */
    void merge(const Snapshot &other);

    bool operator==(const Snapshot &) const = default;
};

/** Registry time source (see file comment). */
enum class ClockMode { Wall, Deterministic };

/** Named-metric registry; all members are thread-safe. */
class Registry
{
  public:
    explicit Registry(ClockMode clock_mode = ClockMode::Wall);

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Find or create a counter. The reference stays valid. */
    Counter &counter(std::string_view name);
    /** Find or create a gauge. */
    Gauge &gauge(std::string_view name);
    /**
     * Find or create a histogram.  `bounds` is used only on creation;
     * a later lookup with different bounds panics (one name, one
     * bucket layout).
     */
    Histogram &histogram(std::string_view name,
                         const std::vector<double> &bounds =
                             latencyBounds());

    /**
     * Current time in seconds.  Wall mode: steady clock.
     * Deterministic mode: a synthetic clock advancing 1 µs per call.
     */
    double now();

    /** Copy out all metrics (sorted by name). */
    Snapshot snapshot() const;

    /**
     * Apply a snapshot into this live registry: counters and gauges
     * add, histogram buckets/sums accumulate (bounds must agree).
     * The inverse of capturing work in a scratch registry: merging
     * the captured snapshot makes the registry look exactly as if
     * the work had run against it directly — the query cache uses
     * this to replay a cached query's solver metrics on a hit.
     */
    void merge(const Snapshot &snap);

    /**
     * Drop every metric.  Outstanding Counter/Gauge/Histogram
     * references become dangling — only use on registries with no
     * concurrent users (e.g. the global registry between tests).
     */
    void reset();

    ClockMode clockMode() const { return mode; }

    /** The process-wide default registry. */
    static Registry &global();

  private:
    struct SvHash {
        using is_transparent = void;
        std::size_t
        operator()(std::string_view s) const
        {
            return std::hash<std::string_view>{}(s);
        }
    };
    struct SvEq {
        using is_transparent = void;
        bool
        operator()(std::string_view a, std::string_view b) const
        {
            return a == b;
        }
    };
    template <class T>
    using Map =
        std::unordered_map<std::string, std::unique_ptr<T>, SvHash, SvEq>;

    mutable std::mutex m;
    ClockMode mode;
    std::atomic<std::uint64_t> ticks{0};
    Map<Counter> counters;
    Map<Gauge> gauges;
    Map<Histogram> histograms;
};

/**
 * @return the calling thread's scoped registry if one is installed,
 * otherwise the global registry.  Instrumented code (solver, hardware
 * model, platform) reports here, so the same instrumentation feeds a
 * per-program registry inside a pipeline task and the global registry
 * everywhere else.
 */
Registry &current();

/** Install a registry as the calling thread's `current()` (RAII). */
class ScopedRegistry
{
  public:
    explicit ScopedRegistry(Registry &registry);
    ~ScopedRegistry();

    ScopedRegistry(const ScopedRegistry &) = delete;
    ScopedRegistry &operator=(const ScopedRegistry &) = delete;

  private:
    Registry *prev;
};

/**
 * RAII phase timer: on destruction, records the elapsed registry time
 * into the histogram `phase.<name>_seconds`.  The histogram's `sum`
 * is the phase's total wall-clock and its buckets the per-scope
 * (typically per-program or per-test) distribution.
 */
class PhaseTimer
{
  public:
    PhaseTimer(Registry &registry, std::string_view phase);
    /** Times into `current()`. */
    explicit PhaseTimer(std::string_view phase);
    ~PhaseTimer();

    PhaseTimer(const PhaseTimer &) = delete;
    PhaseTimer &operator=(const PhaseTimer &) = delete;

  private:
    Registry &reg;
    std::string name;
    double start;
};

/**
 * Render a snapshot as JSON (schema "scamv-metrics-v1"): sorted keys,
 * `%.17g` doubles — structurally equal snapshots render to
 * byte-identical strings.
 */
std::string toJson(const Snapshot &snap);

/** Write toJson(snap) to a file. @return success. */
bool writeJson(const Snapshot &snap, const std::string &path);

/** Render a snapshot as an aligned text table (support/table). */
TextTable toTable(const Snapshot &snap);

} // namespace scamv::metrics

#endif // SCAMV_SUPPORT_METRICS_HH
