/**
 * @file
 * Deterministic fault injection for pipeline-resilience testing.
 *
 * Scam-V campaigns on real boards lose experiments to solver
 * timeouts, flaky measurements and harness hiccups; the pipeline is
 * expected to keep going and report what survived.  This module makes
 * that failure behaviour itself testable: a seeded *fault plan* can
 * inject failures at named sites threaded through the solver stack
 * (`sat`, `smt`), the measurement stack (`hw`, `harness`) and the
 * experiment log (`core/expdb`), and the pipeline's retry /
 * quarantine / degrade machinery is validated against it (see
 * DESIGN.md, "Failure model & resilience").
 *
 * Determinism: whether a fault fires at a site is a pure function of
 * (campaign seed, program index, site, attempt) — a splitmix64
 * avalanche, the same recipe as `deriveProgramSeed` — so a campaign
 * replays byte-identically for any thread count and any rerun.  Each
 * pipeline task installs an `Injector` for its program via
 * `ScopedInjector` (thread-local, mirroring `metrics::ScopedRegistry`);
 * instrumented sites ask `maybeInject(site)`, which is a single
 * thread-local pointer test when no injector is installed — zero
 * overhead in production.
 *
 * Configuration: `SCAMV_FAULT_RATE` (probability per site attempt,
 * in [0,1]) and `SCAMV_FAULT_PLAN` (comma-separated site names, or
 * "all"), parsed through the validated `support/env` layer; see
 * `FaultPlan::fromEnv`.
 */

#ifndef SCAMV_SUPPORT_FAULTS_HH
#define SCAMV_SUPPORT_FAULTS_HH

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace scamv::faults {

/**
 * Named injection sites, one per failure class the pipeline must
 * tolerate.  Keep `siteName` in sync when extending.
 */
enum class Site : int {
    SatTimeout = 0, ///< sat::Solver budget exhaustion (Result::Unknown)
    SmtUnknown,     ///< smt::SmtSolver query answers Unknown
    SamplerExhaust, ///< RepairSampler gives up without a model
    HwProbeJitter,  ///< hw::Core::timedLoad latency jitter (PMC noise)
    HwFlake,        ///< harness::Platform stray-line measurement flake
    DbWrite,        ///< ExperimentDb::add write failure
    TaskAbort,      ///< program task dies with an exception
    QcacheCorrupt,  ///< qcache::QueryCache persisted record corruption
    CoverLedgerMerge, ///< cover::CoverageLedger::merge drops a delta
    ShardArtifactCorrupt, ///< shard outcome record corrupted at load
    TriageMinimizeFlake,  ///< counterexample minimizer dies mid-shrink
    SvcAcceptDrop,        ///< svc::Service drops a submission at accept
    SvcWorkerLost,        ///< svc worker dies after finishing a slice
};

/** Number of sites (array sizing). */
constexpr int kSiteCount =
    static_cast<int>(Site::SvcWorkerLost) + 1;

/** @return the canonical (SCAMV_FAULT_PLAN) name of a site. */
const char *siteName(Site site);

/** @return the site with the given canonical name, if any. */
std::optional<Site> siteFromName(std::string_view name);

/** Which sites fire, and how often. */
struct FaultPlan {
    /** Injection probability per (site, attempt), in [0, 1]. */
    double rate = 0.0;
    /** Bitmask of enabled sites (bit = static_cast<int>(site)). */
    std::uint32_t mask = 0;

    bool enabled() const { return rate > 0.0 && mask != 0; }

    bool
    covers(Site site) const
    {
        return mask & (1u << static_cast<int>(site));
    }

    /** @return the mask enabling every site. */
    static std::uint32_t maskAll();

    /**
     * Plan from the environment: `SCAMV_FAULT_RATE` sets the rate
     * (values outside [0,1] are rejected with a warning);
     * `SCAMV_FAULT_PLAN` selects sites by canonical name
     * (comma/space separated, "all" for every site; unknown names
     * warn and are skipped), defaulting to all sites.  Unset or zero
     * rate yields a disabled plan.
     */
    static FaultPlan fromEnv();
};

/**
 * Per-program fault decision source.  `fire(site)` advances the
 * site's attempt counter and decides deterministically from
 * (campaign seed, program index, site, attempt); an injected fault
 * is tallied into `metrics::current()` as `faults.injected` plus
 * `faults.injected.<site>`.  Single-threaded by design: one injector
 * belongs to one pipeline task (or test scope).
 */
class Injector
{
  public:
    Injector(const FaultPlan &plan, std::uint64_t campaign_seed,
             int prog_i);

    /** Decide (and count) injection at `site`. */
    bool fire(Site site);

    /** @return total faults injected through this injector. */
    std::uint64_t injectedCount() const { return injected; }

    /** @return faults injected at one site (op-log gating needs to
     *  tell a pre-mutation SmtUnknown from a post-blast SatTimeout). */
    std::uint64_t
    injectedCountAt(Site site) const
    {
        return injectedPerSite[static_cast<int>(site)];
    }

  private:
    FaultPlan plan;
    std::uint64_t seed;
    int prog;
    std::array<std::uint64_t, kSiteCount> attempts{};
    std::array<std::uint64_t, kSiteCount> injectedPerSite{};
    std::uint64_t injected = 0;
};

/** @return the calling thread's installed injector, or nullptr. */
Injector *current();

/**
 * Ask the installed injector to fire at `site`.
 * @return false when no injector is installed (the production fast
 * path: one thread-local load and a null test).
 */
bool maybeInject(Site site);

/** @return injected count of the installed injector, or 0. */
std::uint64_t injectedCount();

/** @return the installed injector's injected count at `site`, or 0. */
std::uint64_t injectedCountAt(Site site);

/** Install an injector as the calling thread's `current()` (RAII). */
class ScopedInjector
{
  public:
    explicit ScopedInjector(Injector &injector);
    ~ScopedInjector();

    ScopedInjector(const ScopedInjector &) = delete;
    ScopedInjector &operator=(const ScopedInjector &) = delete;

  private:
    Injector *prev;
};

/**
 * Temporarily uninstall the calling thread's injector (RAII).  Used
 * when replaying work whose original (counted) attempt already made
 * every fault decision — e.g. the query cache re-solving a cached
 * solver prefix to materialize an incremental solver — so the replay
 * cannot fire sites a byte-identical uninterrupted run never fired.
 */
class ScopedSuppress
{
  public:
    ScopedSuppress();
    ~ScopedSuppress();

    ScopedSuppress(const ScopedSuppress &) = delete;
    ScopedSuppress &operator=(const ScopedSuppress &) = delete;

  private:
    Injector *prev;
};

/**
 * Thrown by the pipeline's TaskAbort site.  The framework itself is
 * exception-free (support/logging.hh); this models the one failure
 * mode that still reaches tasks — library code throwing mid-program
 * (e.g. std::bad_alloc) — so the campaign's task guard is testable.
 */
class InjectedTaskFault : public std::runtime_error
{
  public:
    explicit InjectedTaskFault(int prog_i)
        : std::runtime_error("injected task fault in program " +
                             std::to_string(prog_i))
    {}
};

} // namespace scamv::faults

#endif // SCAMV_SUPPORT_FAULTS_HH
