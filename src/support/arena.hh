/**
 * @file
 * Bump-pointer arena allocator for hot-path simulation state.
 *
 * The experiment platform runs the same program dozens of times per
 * test pair (repeats x (training + 2 measured runs)).  Before the
 * batched-simulation path existed, every repetition constructed a
 * fresh hw::Core, which heap-allocated the cache line array, the TLB
 * entry table and the predictor PHT each time.  The arena removes
 * that churn: the batch core's containers are carved out of one
 * arena owned by the platform, the per-run *contents* are reset in
 * place, and the arena itself is rewound (`reset()`) only when a new
 * experiment rebuilds the core — previously allocated blocks are kept
 * and reused, so steady-state experiments perform no allocation at
 * all.
 *
 * Lifecycle contract: `reset()` invalidates every object previously
 * allocated from the arena.  Callers must destroy arena-backed
 * containers *before* resetting (harness::Platform destroys its batch
 * core first, then rewinds, then rebuilds — see platform.cc).
 *
 * `ArenaAllocator<T>` adapts the arena to the standard allocator
 * interface so ordinary containers (`std::vector<T, ArenaAllocator<T>>`)
 * can live in it.  A default-constructed / null-arena allocator falls
 * back to the global heap, which keeps arena-aware types usable
 * without an arena (every hw component takes an optional `Arena *`).
 * `deallocate` on an arena is a no-op — memory is reclaimed wholesale
 * by `reset()`.
 */

#ifndef SCAMV_SUPPORT_ARENA_HH
#define SCAMV_SUPPORT_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace scamv::support {

/** Growable bump allocator; blocks survive reset() for reuse. */
class Arena
{
  public:
    /** @param block_bytes size of each backing block. */
    explicit Arena(std::size_t block_bytes = 64 * 1024);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate `bytes` with the given alignment (power of two).
     * Requests larger than the block size get a dedicated block.
     * Never returns nullptr (allocation failure panics, matching the
     * no-exceptions convention).
     */
    void *allocate(std::size_t bytes, std::size_t alignment);

    /**
     * Rewind every block to empty, keeping the backing memory for
     * reuse.  All previously allocated objects become invalid.
     */
    void reset();

    /** Total bytes handed out since construction or last reset(). */
    std::size_t used() const { return usedBytes; }

    /** Total backing-block bytes currently held. */
    std::size_t capacity() const { return capacityBytes; }

  private:
    struct Block {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t offset = 0;
    };

    Block &grow(std::size_t min_bytes);

    std::size_t blockBytes;
    std::size_t usedBytes = 0;
    std::size_t capacityBytes = 0;
    std::vector<Block> blocks;
    std::size_t active = 0; ///< blocks[0..active) may hold data
};

/**
 * Standard-allocator adapter over Arena, with heap fallback when the
 * arena pointer is null.  Deallocation into an arena is a no-op; the
 * heap fallback frees normally.
 */
template <class T>
class ArenaAllocator
{
  public:
    using value_type = T;

    ArenaAllocator() = default;
    explicit ArenaAllocator(Arena *arena) : arena(arena) {}
    template <class U>
    ArenaAllocator(const ArenaAllocator<U> &other) : arena(other.arena)
    {}

    T *
    allocate(std::size_t n)
    {
        if (arena)
            return static_cast<T *>(
                arena->allocate(n * sizeof(T), alignof(T)));
        return static_cast<T *>(
            ::operator new(n * sizeof(T), std::align_val_t(alignof(T))));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        (void)n;
        if (!arena)
            ::operator delete(p, std::align_val_t(alignof(T)));
        // Arena memory is reclaimed wholesale by Arena::reset().
    }

    bool
    operator==(const ArenaAllocator &other) const
    {
        return arena == other.arena;
    }

    Arena *arena = nullptr;
};

} // namespace scamv::support

#endif // SCAMV_SUPPORT_ARENA_HH
