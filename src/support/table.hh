/**
 * @file
 * Plain-text table rendering and CSV output for experiment reports.
 *
 * The benches use this to print rows in the same layout as Table 1 and
 * the Figure 7 table of the paper.
 */

#ifndef SCAMV_SUPPORT_TABLE_HH
#define SCAMV_SUPPORT_TABLE_HH

#include <string>
#include <vector>

namespace scamv {

/** Column-aligned text table with an optional header row. */
class TextTable
{
  public:
    /** Set the header row (first row, separated by a rule). */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; rows may have differing cell counts. */
    void addRow(std::vector<std::string> cells);

    /** Render the table with aligned columns. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    std::string renderCsv() const;

    /** Write the CSV rendering to a file. @return success. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with the given number of decimals. */
std::string fmtDouble(double v, int decimals = 1);

/** Format "x.y×" speedup ratios; "-" when denominator is zero. */
std::string fmtRatio(double num, double den, int decimals = 1);

} // namespace scamv

#endif // SCAMV_SUPPORT_TABLE_HH
