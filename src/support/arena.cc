#include "support/arena.hh"

#include "support/logging.hh"

namespace scamv::support {

Arena::Arena(std::size_t block_bytes) : blockBytes(block_bytes)
{
    SCAMV_ASSERT(block_bytes > 0, "arena: zero block size");
}

Arena::Block &
Arena::grow(std::size_t min_bytes)
{
    // Reuse a retained block if one is big enough, else allocate.
    while (active < blocks.size()) {
        Block &b = blocks[active];
        if (b.size >= min_bytes) {
            b.offset = 0;
            return b;
        }
        ++active; // too small for this request; skip it this cycle
    }
    Block b;
    b.size = min_bytes > blockBytes ? min_bytes : blockBytes;
    b.data = std::make_unique<std::byte[]>(b.size);
    SCAMV_ASSERT(b.data != nullptr, "arena: allocation failure");
    capacityBytes += b.size;
    blocks.push_back(std::move(b));
    return blocks.back();
}

void *
Arena::allocate(std::size_t bytes, std::size_t alignment)
{
    SCAMV_ASSERT(alignment > 0 && (alignment & (alignment - 1)) == 0,
                 "arena: alignment must be a power of two");
    if (bytes == 0)
        bytes = 1;
    if (blocks.empty() || active >= blocks.size())
        grow(bytes + alignment);

    Block *b = &blocks[active];
    auto base = reinterpret_cast<std::uintptr_t>(b->data.get());
    std::uintptr_t p = (base + b->offset + alignment - 1) &
                       ~static_cast<std::uintptr_t>(alignment - 1);
    if (p + bytes > base + b->size) {
        ++active;
        b = &grow(bytes + alignment);
        base = reinterpret_cast<std::uintptr_t>(b->data.get());
        p = (base + alignment - 1) &
            ~static_cast<std::uintptr_t>(alignment - 1);
    }
    b->offset = static_cast<std::size_t>(p - base) + bytes;
    usedBytes += bytes;
    return reinterpret_cast<void *>(p);
}

void
Arena::reset()
{
    for (Block &b : blocks)
        b.offset = 0;
    active = 0;
    usedBytes = 0;
}

} // namespace scamv::support
