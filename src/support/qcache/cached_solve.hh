/**
 * @file
 * Cache-aware solving wrappers over smt::SmtSolver.
 *
 * Two shapes of query go through the cache:
 *
 *  - `solveOnce`: one-shot satisfiability + model extraction (sampler
 *    fallback, training-input synthesis).  The canonical key is mixed
 *    with the conflict budget, so a budget change can never turn a
 *    cached Sat into what an uncached run would have reported as
 *    Unknown.
 *
 *  - `CachedEnumerator`: the pipeline's canonical model-enumeration
 *    loop (solve, extract model, block it, repeat).  Each step is a
 *    distinct logical query keyed by (formula, blocking config, step
 *    index, budget); on a miss past cached steps the enumerator
 *    rebuilds the incremental solver by replaying the cached prefix —
 *    fingerprint gating guarantees the replayed CDCL trajectory is
 *    the original one, so the rebuilt state is exact.
 *
 * Metric discipline: a miss solves inside a scratch registry and the
 * captured delta is both merged into the querier's registry and
 * stored in the entry; a hit merges the stored delta.  Either way the
 * querier's registry sees byte-identical effects, which is what makes
 * warm (resumed) campaigns byte-identical to cold ones.
 *
 * Fault discipline: the wrapper owns exactly one SmtUnknown gate per
 * logical query (mirroring SmtSolver::solve) and suppresses the
 * injector during miss solves and prefix replays.  The pipeline
 * additionally bypasses the cache entirely when a fault plan is
 * active, keeping fault-injection campaigns byte-identical to PR3.
 */

#ifndef SCAMV_SUPPORT_QCACHE_CACHED_SOLVE_HH
#define SCAMV_SUPPORT_QCACHE_CACHED_SOLVE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "smt/solver.hh"
#include "support/qcache/qcache.hh"

namespace scamv::qcache {

/** Outcome of a (possibly cached) one-shot solve. */
struct SolveResult {
    smt::Outcome outcome = smt::Outcome::Unknown;
    /** Model in the caller's variable names (Sat only). */
    std::optional<expr::Assignment> model;
};

/**
 * Solve `formula` once, consulting `cache` when non-null.  With a
 * null cache this is exactly `SmtSolver(ctx, formula).solve(budget)`
 * plus model extraction — byte-identical to the uncached pipeline
 * paths it replaces.  Cached Sat models are revalidated by concrete
 * evaluation before use; a failing entry is dropped and recomputed.
 */
SolveResult solveOnce(expr::ExprContext &ctx, expr::Expr formula,
                      std::int64_t conflict_budget, QueryCache *cache);

/**
 * The cache key a one-shot solve of `form` under `conflict_budget`
 * uses: the canonical key mixed with the budget.  Exposed so tests
 * and external tools can inspect or pre-seed cache entries.
 */
Key solveKey(const CanonForm &form, std::int64_t conflict_budget);

/**
 * Adapter for smt::SamplerConfig::seedOracle: looks up a cached Sat
 * model for the sampler's formula (keyed with `conflict_budget`, the
 * budget its solver twin would use) and returns it translated to the
 * caller's names.  Purely a hint — no metrics are merged, and the
 * sampler revalidates before accepting.  Not wired into the pipeline
 * (the sampler strategy is explicitly a diversity strategy); exposed
 * for harnesses that want warm-start sampling.
 */
std::function<std::optional<expr::Assignment>(expr::Expr)>
samplerSeedOracle(QueryCache *cache, std::int64_t conflict_budget);

/**
 * Cache-aware replacement for the pipeline's per-pair incremental
 * solver.  With a null cache, `solver()` hands out a lazily
 * constructed SmtSolver and the pipeline drives it exactly as before;
 * with a cache, `next()` runs the enumeration step through the cache.
 */
class CachedEnumerator
{
  public:
    /**
     * @param ctx        expression context of the formula
     * @param formula    relation formula to enumerate models of
     * @param block_vars variables constrained by model blocking
     * @param block_bits low-bit width of the blocking clauses
     * @param cache      query cache, or nullptr for direct solving
     */
    CachedEnumerator(expr::ExprContext &ctx, expr::Expr formula,
                     std::vector<expr::Expr> block_vars,
                     int block_bits, QueryCache *cache);

    /** One enumeration step: solve, then block the found model. */
    struct Step {
        smt::Outcome outcome = smt::Outcome::Unknown;
        std::optional<expr::Assignment> model;
    };

    /**
     * Run the next enumeration step under `conflict_budget`.  On Sat
     * the model has been blocked; `dead()` reports whether blocking
     * exhausted the pair.  Unknown steps are never cached and do not
     * advance the step counter (the pipeline retires the pair).
     */
    Step next(std::int64_t conflict_budget);

    /** @return true when steps go through the query cache. */
    bool usesCache() const { return cache != nullptr; }

    /** @return true once blocking has exhausted the enumeration. */
    bool dead() const { return dead_; }

    /**
     * Direct access to the underlying incremental solver for the
     * non-cached strategies (coverage constraints, random phases).
     * Materializes the solver — replaying any cached prefix first —
     * on first use.
     */
    smt::SmtSolver &solver();

    /**
     * Drop the live solver (oneshot solver mode).  The next solver()
     * or uncached next() call rebuilds it from scratch, replaying the
     * enumeration prefix — the step counter is untouched, so cached
     * hits and the logical enumeration position are unaffected.
     */
    void discardSolver();

    expr::Expr formula() const { return formula_; }

  private:
    void ensureSolverAt(int target);
    Key stepKey(int step, std::int64_t conflict_budget) const;

    expr::ExprContext &ctx;
    expr::Expr formula_;
    std::vector<expr::Expr> blockVars;
    int blockBits;
    QueryCache *cache;
    CanonForm form;
    std::uint64_t chainSalt = 0;
    std::unique_ptr<smt::SmtSolver> solver_;
    int step_ = 0;       ///< next logical enumeration step
    int solverStep_ = 0; ///< steps already applied to solver_
    bool dead_ = false;
};

} // namespace scamv::qcache

#endif // SCAMV_SUPPORT_QCACHE_CACHED_SOLVE_HH
