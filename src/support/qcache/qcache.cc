#include "support/qcache/qcache.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "support/env.hh"
#include "support/faults.hh"
#include "support/logging.hh"

namespace scamv::qcache {

namespace {

constexpr const char *kFileHeader = "scamv-qcache-v1";

/**
 * Record grammar (one line per entry, space-separated fields):
 *
 *   <hi> <lo> <fp> <S|U> <D|-> <payload> <checksum>
 *
 * hex words, then outcome, pair-death flag, the payload and an FNV-1a
 * checksum over everything before it.  The payload is
 * `<model>#<delta>` with comma-separated typed tokens:
 *
 *   v!name:hex        bitvector variable value
 *   o!name:0|1        boolean variable value
 *   M!name@addr:val   one memory cell (hex address/value)
 *   c!name:dec        counter delta
 *   g!name:g17        gauge delta (%.17g, exact round-trip)
 *   h!name:b|..~c|..~sum~count   histogram delta
 *
 * Variable and metric names in this codebase are [A-Za-z0-9_.]+, so
 * the delimiters never collide; an entry whose names do collide is
 * simply not persisted (kept in memory only).
 */

std::string
hex64(std::uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof buf, "%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
g17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
parseHex(std::string_view s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 16)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else
            return false;
        v = (v << 4) | static_cast<std::uint64_t>(d);
    }
    out = v;
    return true;
}

bool
parseDec(std::string_view s, std::uint64_t &out)
{
    if (s.empty() || s.size() > 20)
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

bool
parseDouble(std::string_view s, double &out)
{
    if (s.empty() || s.size() >= 63)
        return false;
    char buf[64];
    std::copy(s.begin(), s.end(), buf);
    buf[s.size()] = '\0';
    char *end = nullptr;
    out = std::strtod(buf, &end);
    return end == buf + s.size();
}

std::vector<std::string_view>
split(std::string_view s, char sep)
{
    std::vector<std::string_view> out;
    while (true) {
        const std::size_t pos = s.find(sep);
        if (pos == std::string_view::npos) {
            out.push_back(s);
            return out;
        }
        out.push_back(s.substr(0, pos));
        s.remove_prefix(pos + 1);
    }
}

/** @return true iff `name` is safe for the record grammar above. */
bool
nameOk(std::string_view name)
{
    return !name.empty() &&
           name.find_first_of(" ,:;~|#@!\n\r\t") ==
               std::string_view::npos;
}

template <class Map>
std::vector<typename Map::key_type>
sortedKeys(const Map &map)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto &[k, v] : map)
        keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
}

/** Encode model + delta as the payload field, or "" on unsafe names. */
std::string
encodePayload(const Entry &e)
{
    std::string out;
    auto push = [&](const std::string &token) {
        if (!out.empty() && out.back() != '#')
            out += ',';
        out += token;
    };
    for (const auto &name : sortedKeys(e.model.bvVars)) {
        if (!nameOk(name))
            return "";
        push("v!" + name + ":" + hex64(e.model.bvVars.at(name)));
    }
    for (const auto &name : sortedKeys(e.model.boolVars)) {
        if (!nameOk(name))
            return "";
        push("o!" + name + ":" +
             (e.model.boolVars.at(name) ? "1" : "0"));
    }
    for (const auto &name : sortedKeys(e.model.mems)) {
        if (!nameOk(name))
            return "";
        const auto &cells = e.model.mems.at(name).entries();
        for (const auto &addr : sortedKeys(cells))
            push("M!" + name + "@" + hex64(addr) + ":" +
                 hex64(cells.at(addr)));
    }
    out += '#';
    for (const auto &[name, v] : e.delta.counters) {
        if (!nameOk(name))
            return "";
        push("c!" + name + ":" + std::to_string(v));
    }
    for (const auto &[name, v] : e.delta.gauges) {
        if (!nameOk(name))
            return "";
        push("g!" + name + ":" + g17(v));
    }
    for (const auto &[name, h] : e.delta.histograms) {
        if (!nameOk(name))
            return "";
        std::string tok = "h!" + name + ":";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i)
                tok += '|';
            tok += g17(h.bounds[i]);
        }
        tok += '~';
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i)
                tok += '|';
            tok += std::to_string(h.counts[i]);
        }
        tok += '~' + g17(h.sum) + '~' + std::to_string(h.count);
        push(tok);
    }
    return out;
}

bool
decodeModelToken(std::string_view token, expr::Assignment &model)
{
    if (token.size() < 4 || token[1] != '!')
        return false;
    const char tag = token[0];
    std::string_view body = token.substr(2);
    const std::size_t colon = body.rfind(':');
    if (colon == std::string_view::npos || colon == 0)
        return false;
    std::string_view value = body.substr(colon + 1);
    std::string_view name = body.substr(0, colon);
    if (tag == 'v') {
        std::uint64_t v;
        if (!parseHex(value, v))
            return false;
        model.bvVars[std::string(name)] = v;
        return true;
    }
    if (tag == 'o') {
        if (value != "0" && value != "1")
            return false;
        model.boolVars[std::string(name)] = value == "1";
        return true;
    }
    if (tag == 'M') {
        const std::size_t at = name.find('@');
        if (at == std::string_view::npos || at == 0)
            return false;
        std::uint64_t addr, v;
        if (!parseHex(name.substr(at + 1), addr) ||
            !parseHex(value, v))
            return false;
        model.mems[std::string(name.substr(0, at))].storeWord(addr, v);
        return true;
    }
    return false;
}

bool
decodeDeltaToken(std::string_view token, metrics::Snapshot &delta)
{
    if (token.size() < 4 || token[1] != '!')
        return false;
    const char tag = token[0];
    std::string_view body = token.substr(2);
    const std::size_t colon = body.find(':');
    if (colon == std::string_view::npos || colon == 0)
        return false;
    const std::string name(body.substr(0, colon));
    std::string_view value = body.substr(colon + 1);
    if (tag == 'c') {
        std::uint64_t v;
        if (!parseDec(value, v))
            return false;
        delta.counters[name] = v;
        return true;
    }
    if (tag == 'g') {
        double v;
        if (!parseDouble(value, v))
            return false;
        delta.gauges[name] = v;
        return true;
    }
    if (tag == 'h') {
        const auto parts = split(value, '~');
        if (parts.size() != 4)
            return false;
        metrics::HistogramData h;
        if (!parts[0].empty()) {
            for (std::string_view b : split(parts[0], '|')) {
                double v;
                if (!parseDouble(b, v))
                    return false;
                h.bounds.push_back(v);
            }
        }
        for (std::string_view c : split(parts[1], '|')) {
            std::uint64_t v;
            if (!parseDec(c, v))
                return false;
            h.counts.push_back(v);
        }
        if (!parseDouble(parts[2], h.sum) ||
            !parseDec(parts[3], h.count))
            return false;
        // Malformed shapes would panic inside Registry::merge later;
        // reject them here so a corrupt record costs one drop, not
        // the campaign.
        if (h.counts.size() != h.bounds.size() + 1 ||
            !std::is_sorted(h.bounds.begin(), h.bounds.end()) ||
            std::adjacent_find(h.bounds.begin(), h.bounds.end()) !=
                h.bounds.end())
            return false;
        delta.histograms[name] = std::move(h);
        return true;
    }
    return false;
}

std::string
encodeRecord(const Key &key, const Entry &e)
{
    const std::string payload = encodePayload(e);
    if (payload.empty())
        return ""; // unsafe names: keep the entry in memory only
    std::string line = hex64(key.hi) + " " + hex64(key.lo) + " " +
                       hex64(e.fingerprint) + " " +
                       (e.sat ? "S" : "U") + " " +
                       (e.pairDead ? "D" : "-") + " " + payload;
    line += " " + hex64(fnv1a(line));
    return line;
}

std::optional<std::pair<Key, Entry>>
decodeRecord(const std::string &line)
{
    const auto fields = split(line, ' ');
    if (fields.size() != 7)
        return std::nullopt;
    for (const auto &f : fields)
        if (f.empty())
            return std::nullopt;
    // Checksum covers everything before the final space.
    const std::size_t prefix_len =
        line.size() - fields.back().size() - 1;
    std::uint64_t checksum;
    if (!parseHex(fields[6], checksum) ||
        checksum != fnv1a(std::string_view(line).substr(0, prefix_len)))
        return std::nullopt;

    Key key;
    Entry e;
    if (!parseHex(fields[0], key.hi) || !parseHex(fields[1], key.lo) ||
        !parseHex(fields[2], e.fingerprint))
        return std::nullopt;
    if (fields[3] == "S")
        e.sat = true;
    else if (fields[3] == "U")
        e.sat = false;
    else
        return std::nullopt;
    if (fields[4] == "D")
        e.pairDead = true;
    else if (fields[4] != "-")
        return std::nullopt;

    std::string_view payload = fields[5];
    const std::size_t hash_pos = payload.find('#');
    if (hash_pos == std::string_view::npos)
        return std::nullopt;
    std::string_view model_part = payload.substr(0, hash_pos);
    std::string_view delta_part = payload.substr(hash_pos + 1);
    if (!model_part.empty())
        for (std::string_view token : split(model_part, ','))
            if (!decodeModelToken(token, e.model))
                return std::nullopt;
    if (!delta_part.empty())
        for (std::string_view token : split(delta_part, ','))
            if (!decodeDeltaToken(token, e.delta))
                return std::nullopt;
    if (!e.sat && !e.model.bvVars.empty())
        return std::nullopt; // Unsat records carry no model
    return std::make_pair(key, std::move(e));
}

std::size_t
entryBytes(const Entry &e)
{
    std::size_t b = 128; // slot + bookkeeping overhead
    for (const auto &[name, v] : e.model.bvVars)
        b += name.size() + 24;
    for (const auto &[name, v] : e.model.boolVars)
        b += name.size() + 17;
    for (const auto &[name, mem] : e.model.mems)
        b += name.size() + 48 + 24 * mem.entries().size();
    for (const auto &[name, v] : e.delta.counters)
        b += name.size() + 24;
    for (const auto &[name, v] : e.delta.gauges)
        b += name.size() + 24;
    for (const auto &[name, h] : e.delta.histograms)
        b += name.size() + 48 +
             8 * (h.bounds.size() + h.counts.size());
    return b;
}

} // namespace

QueryCache::QueryCache(CacheConfig config) : cfg(std::move(config))
{
    if (!cfg.filePath.empty())
        loadFile();
}

QueryCache::~QueryCache()
{
    if (append_.is_open())
        append_.flush();
}

void
QueryCache::loadFile()
{
    metrics::Registry &g = metrics::Registry::global();
    bool fresh = true;
    {
        std::ifstream in(cfg.filePath);
        std::string line;
        if (in && std::getline(in, line)) {
            if (line != kFileHeader) {
                warn("qcache: " + cfg.filePath +
                     " is not a " + kFileHeader +
                     " file; persistence disabled");
                return;
            }
            fresh = false;
            std::uint64_t loaded = 0;
            while (std::getline(in, line)) {
                if (line.empty())
                    continue;
                // Injected record corruption: the persisted bytes
                // are damaged before they are parsed, so the record
                // is dropped exactly as a genuinely corrupt one.
                const bool corrupt =
                    faults::maybeInject(faults::Site::QcacheCorrupt);
                std::optional<std::pair<Key, Entry>> rec;
                if (!corrupt)
                    rec = decodeRecord(line);
                if (!rec) {
                    ++dropped_;
                    g.counter("qcache.load_dropped").inc();
                    continue;
                }
                if (index.count(rec->first))
                    continue; // keep-first on duplicate keys
                Slot slot{rec->first, std::move(rec->second), 0};
                slot.bytes = entryBytes(slot.entry);
                lru.push_front(std::move(slot));
                index.emplace(lru.front().key, lru.begin());
                bytes_ += lru.front().bytes;
                ++loaded;
                evictToFit();
            }
            g.counter("qcache.loaded").add(loaded);
        }
    }
    append_.open(cfg.filePath, std::ios::app);
    if (!append_) {
        warn("qcache: cannot open " + cfg.filePath +
             " for append; persistence disabled");
        return;
    }
    if (fresh)
        append_ << kFileHeader << "\n" << std::flush;
}

void
QueryCache::appendRecord(const Key &key, const Entry &entry)
{
    const std::string line = encodeRecord(key, entry);
    if (line.empty())
        return;
    // Flushed per record: the file is a checkpoint, and a killed
    // campaign must find every completed query on resume.
    append_ << line << "\n" << std::flush;
}

std::optional<Entry>
QueryCache::lookup(const Key &key, std::uint64_t fingerprint)
{
    metrics::Registry &g = metrics::Registry::global();
    std::lock_guard<std::mutex> lock(m);
    auto it = index.find(key);
    if (it == index.end()) {
        g.counter("qcache.miss").inc();
        return std::nullopt;
    }
    if (it->second->entry.fingerprint != fingerprint) {
        // Semantic cousin: same canonical class, different operand
        // order.  Treat as a miss so the hit path stays an exact
        // replay (see file comment in qcache.hh).
        g.counter("qcache.fp_conflict").inc();
        g.counter("qcache.miss").inc();
        return std::nullopt;
    }
    lru.splice(lru.begin(), lru, it->second);
    g.counter("qcache.hit").inc();
    return it->second->entry;
}

void
QueryCache::store(const Key &key, Entry entry)
{
    metrics::Registry &g = metrics::Registry::global();
    std::lock_guard<std::mutex> lock(m);
    if (index.count(key))
        return; // keep-first: determinism makes duplicates identical
    Slot slot{key, std::move(entry), 0};
    slot.bytes = entryBytes(slot.entry);
    lru.push_front(std::move(slot));
    index.emplace(key, lru.begin());
    bytes_ += lru.front().bytes;
    g.counter("qcache.store").inc();
    if (append_.is_open())
        appendRecord(key, lru.front().entry);
    evictToFit();
}

void
QueryCache::dropInvalid(const Key &key)
{
    std::lock_guard<std::mutex> lock(m);
    auto it = index.find(key);
    if (it == index.end())
        return;
    bytes_ -= it->second->bytes;
    lru.erase(it->second);
    index.erase(it);
}

void
QueryCache::evictToFit()
{
    metrics::Registry &g = metrics::Registry::global();
    while (bytes_ > cfg.maxBytes && !lru.empty()) {
        bytes_ -= lru.back().bytes;
        index.erase(lru.back().key);
        lru.pop_back();
        g.counter("qcache.evict").inc();
    }
}

std::size_t
QueryCache::size() const
{
    std::lock_guard<std::mutex> lock(m);
    return lru.size();
}

std::size_t
QueryCache::totalBytes() const
{
    std::lock_guard<std::mutex> lock(m);
    return bytes_;
}

bool
QueryCache::contains(const Key &key) const
{
    std::lock_guard<std::mutex> lock(m);
    return index.count(key) != 0;
}

CacheConfig
QueryCache::configFromEnv()
{
    CacheConfig c;
    c.maxBytes = static_cast<std::size_t>(
                     envLong("SCAMV_QCACHE_MB", 0, 1048576)
                         .value_or(0))
                 << 20;
    if (const char *f = std::getenv("SCAMV_QCACHE_FILE"); f && *f)
        c.filePath = f;
    return c;
}

QueryCache *
QueryCache::sharedFromEnv()
{
    // Latched on first use; still-reachable at exit by design (the
    // destructor flushes the checkpoint stream).
    static std::unique_ptr<QueryCache> shared = [] {
        CacheConfig c = configFromEnv();
        return c.maxBytes
                   ? std::make_unique<QueryCache>(std::move(c))
                   : std::unique_ptr<QueryCache>();
    }();
    return shared.get();
}

} // namespace scamv::qcache
