/**
 * @file
 * Semantic canonicalization of SMT query formulas.
 *
 * The query cache must recognize when two formulas — possibly built in
 * different ExprContexts, with different variable names and different
 * variable-creation orders — pose the *same* question to the solver.
 * Within one context the hash-consed expression layer already
 * identifies commutative reorderings (builders order operands by
 * creation id), but across contexts the same relation can intern as a
 * differently-shaped DAG.  This module computes, per formula:
 *
 *  - a 128-bit **semantic key** (two independent splitmix64 Merkle
 *    lanes): variables are alpha-renamed to per-kind indices assigned
 *    by first encounter in a *shape-sorted* traversal (commutative
 *    operands stable-sorted by a name-blind structural hash), so the
 *    key is invariant under variable renaming and under commutative
 *    operand reorderings;
 *
 *  - a 64-bit **exactness fingerprint**: the same alpha-renaming idea,
 *    but with indices assigned in *original* operand order and hashed
 *    over the original order.  Two formulas with equal keys and equal
 *    fingerprints are structurally identical up to variable names —
 *    they bit-blast to the same CNF, so one's solver trajectory (and
 *    model, after name translation) is an exact replay of the other's.
 *    Equal keys with different fingerprints mark "semantic cousins"
 *    whose CDCL trajectories could diverge; the cache treats those as
 *    misses, which keeps hit-vs-miss from ever changing results.
 *
 * Name translation between the original formula and the canonical
 * namespace (`v<i>`/`b<i>`/`m<i>` for bv/bool/mem variables) is
 * captured in the returned CanonForm so cached models can be stored
 * canonically and replayed into any alpha-equivalent formula.
 */

#ifndef SCAMV_SUPPORT_QCACHE_CANON_HH
#define SCAMV_SUPPORT_QCACHE_CANON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "expr/eval.hh"
#include "expr/expr.hh"

namespace scamv::qcache {

/** 128-bit semantic cache key (two independent hash lanes). */
struct Key {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Key &) const = default;
};

/** Hash functor for Key (unordered_map). */
struct KeyHash {
    std::size_t
    operator()(const Key &k) const
    {
        return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ULL));
    }
};

/** splitmix64 step: the campaign-stable scrambler used repo-wide. */
std::uint64_t splitmix64(std::uint64_t x);

/** Order-sensitive combination of two words (splitmix64-based). */
std::uint64_t mixKey(std::uint64_t a, std::uint64_t b);

/** FNV-1a over a string (stable across platforms and runs). */
std::uint64_t fnv1a(std::string_view s);

/** Canonical form of one formula: key, fingerprint, name maps. */
struct CanonForm {
    Key key;
    std::uint64_t fingerprint = 0;
    /** Original variable name -> canonical name (v<i>/b<i>/m<i>). */
    std::unordered_map<std::string, std::string> toCanon;
    /** Canonical name -> original variable name. */
    std::unordered_map<std::string, std::string> toOrig;
    /** Next free canonical index per variable kind (see extendVars). */
    int nextBv = 0;
    int nextBool = 0;
    int nextMem = 0;
};

/** Compute the canonical form of a boolean formula. */
CanonForm canonicalize(expr::Expr formula);

/**
 * Assign canonical names to variables not reachable from the
 * canonicalized formula (e.g. blocking variables supplied by the
 * pipeline), in list order.  Variables already mapped are untouched,
 * so the extension is deterministic given a deterministic list.
 */
void extendVars(CanonForm &form, const std::vector<expr::Expr> &vars);

/** Translate an assignment into the canonical namespace.  Names
 *  without a mapping are kept verbatim. */
expr::Assignment toCanonical(const CanonForm &form,
                             const expr::Assignment &a);

/** Translate a canonical assignment back to original names. */
expr::Assignment toOriginal(const CanonForm &form,
                            const expr::Assignment &a);

} // namespace scamv::qcache

#endif // SCAMV_SUPPORT_QCACHE_CANON_HH
