/**
 * @file
 * Thread-safe, semantically keyed SMT query cache with optional
 * persistence.
 *
 * Entries are keyed by the canonical form of a query (see canon.hh)
 * and gated on its exactness fingerprint: a lookup only hits when the
 * stored fingerprint equals the querier's, so every hit is an exact
 * replay of the original solve — same outcome, same model (modulo
 * variable-name translation) and, via the captured metric delta, the
 * same instrumentation effects.  Because a hit never changes *what*
 * the pipeline computes (only how much work it redoes), the campaign
 * determinism invariants (thread-count byte-identity, cold-vs-resumed
 * byte-identity) hold unconditionally.
 *
 * Capacity is bounded in bytes (`SCAMV_QCACHE_MB`, least-recently-used
 * eviction).  With `SCAMV_QCACHE_FILE` set the cache doubles as a
 * campaign checkpoint: stores are appended to a versioned text log
 * ("scamv-qcache-v1", one checksummed record per line) and reloaded on
 * construction, so an interrupted campaign resumed against the same
 * file replays its completed queries from disk and produces
 * byte-identical results.  Corrupt, truncated or foreign records are
 * dropped and counted (`qcache.load_dropped`), never trusted; the
 * `qcache_corrupt` fault site injects exactly such damage for tests.
 *
 * Operational counters (`qcache.hit`, `qcache.miss`, ...) go to the
 * process-global metrics registry — never to the thread's scoped
 * registry — so cache bookkeeping stays out of the deterministic
 * campaign snapshot.
 */

#ifndef SCAMV_SUPPORT_QCACHE_QCACHE_HH
#define SCAMV_SUPPORT_QCACHE_QCACHE_HH

#include <cstdint>
#include <fstream>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "expr/eval.hh"
#include "support/metrics.hh"
#include "support/qcache/canon.hh"

namespace scamv::qcache {

/** One cached query result. */
struct Entry {
    /** true = Sat (model present), false = Unsat.  Unknown is never
     *  cached: it depends on the budget, not on the formula. */
    bool sat = false;
    /** Enumeration chaining: blocking the model killed the pair. */
    bool pairDead = false;
    /** Exactness fingerprint of the formula that produced this. */
    std::uint64_t fingerprint = 0;
    /** Satisfying assignment in canonical variable names (Sat only). */
    expr::Assignment model;
    /** Solver metric delta captured while computing the result;
     *  merged into the querier's registry on every hit so cached and
     *  uncached runs tally identically. */
    metrics::Snapshot delta;
};

/** Cache configuration (see configFromEnv). */
struct CacheConfig {
    /** Byte bound for in-memory entries; 0 disables the cache. */
    std::size_t maxBytes = 0;
    /** Persistence/checkpoint file; empty = in-memory only. */
    std::string filePath;
};

/** The cache proper.  All public members are thread-safe. */
class QueryCache
{
  public:
    explicit QueryCache(CacheConfig config);
    ~QueryCache();

    QueryCache(const QueryCache &) = delete;
    QueryCache &operator=(const QueryCache &) = delete;

    /**
     * Fingerprint-gated lookup.  @return a copy of the entry when the
     * key is present *and* its stored fingerprint equals
     * `fingerprint`; nullopt otherwise.  Counts qcache.hit /
     * qcache.miss / qcache.fp_conflict in the global registry and
     * refreshes the entry's LRU position on a hit.
     */
    std::optional<Entry> lookup(const Key &key,
                                std::uint64_t fingerprint);

    /**
     * Insert an entry (keep-first: an existing key is not replaced —
     * determinism makes duplicates byte-identical anyway).  Evicts
     * least-recently-used entries past the byte bound and appends the
     * record to the persistence log when one is configured.
     */
    void store(const Key &key, Entry entry);

    /**
     * Remove an entry whose model failed revalidation against the
     * querier's formula (defense against a corrupt or stale
     * persistence file; the caller counts the drop).
     */
    void dropInvalid(const Key &key);

    /** @return number of live entries. */
    std::size_t size() const;
    /** @return estimated bytes held by live entries. */
    std::size_t totalBytes() const;
    /** @return configured byte bound. */
    std::size_t maxBytes() const { return cfg.maxBytes; }
    /** @return true iff the key is present (any fingerprint). */
    bool contains(const Key &key) const;
    /** @return records dropped while loading the persistence file. */
    std::uint64_t loadDropped() const { return dropped_; }

    /**
     * Configuration from SCAMV_QCACHE_MB (0..1048576 MiB; unset or 0
     * disables) and SCAMV_QCACHE_FILE.  Pure: reads the environment,
     * touches no global state — unit-testable, unlike the latched
     * sharedFromEnv().
     */
    static CacheConfig configFromEnv();

    /**
     * Process-wide cache configured from the environment, created on
     * first use and kept for the process lifetime (the persistence
     * stream flushes on destruction at exit).  @return nullptr when
     * SCAMV_QCACHE_MB is unset or 0.
     */
    static QueryCache *sharedFromEnv();

  private:
    struct Slot {
        Key key;
        Entry entry;
        std::size_t bytes = 0;
    };

    void loadFile();
    void appendRecord(const Key &key, const Entry &entry);
    void evictToFit();

    CacheConfig cfg;
    mutable std::mutex m;
    std::list<Slot> lru; ///< front = most recently used
    std::unordered_map<Key, std::list<Slot>::iterator, KeyHash> index;
    std::size_t bytes_ = 0;
    std::uint64_t dropped_ = 0;
    std::ofstream append_;
};

} // namespace scamv::qcache

#endif // SCAMV_SUPPORT_QCACHE_QCACHE_HH
