#include "support/qcache/canon.hh"

#include <algorithm>

namespace scamv::qcache {

using expr::Expr;
using expr::Kind;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
mixKey(std::uint64_t a, std::uint64_t b)
{
    // Order-sensitive: mixKey(a, b) != mixKey(b, a) in general.
    return splitmix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) +
                           (a >> 2)));
}

std::uint64_t
fnv1a(std::string_view s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

namespace {

/** Hash-lane seeds: semantic key lanes, shape pass, fingerprint. */
constexpr std::uint64_t kSeedLaneHi = 0x5ca77e5700010001ULL;
constexpr std::uint64_t kSeedLaneLo = 0x5ca77e5700020002ULL;
constexpr std::uint64_t kSeedShape = 0x5ca77e5700030003ULL;
constexpr std::uint64_t kSeedFp = 0x5ca77e5700040004ULL;

bool
isVar(Expr e)
{
    return e->kind == Kind::BvVar || e->kind == Kind::BoolVar ||
           e->kind == Kind::MemVar;
}

bool
isCommutative(Kind k)
{
    switch (k) {
      case Kind::Add:
      case Kind::Mul:
      case Kind::BvAnd:
      case Kind::BvOr:
      case Kind::BvXor:
      case Kind::Eq:
      case Kind::And:
      case Kind::Or:
        return true;
      default:
        return false;
    }
}

std::uint64_t
kindTag(Expr e)
{
    return (static_cast<std::uint64_t>(e->kind) << 8) |
           static_cast<std::uint64_t>(e->sort);
}

/** Name-blind structural hash (memoized per node). */
std::uint64_t
shapeOf(Expr e, std::unordered_map<Expr, std::uint64_t> &memo)
{
    if (auto it = memo.find(e); it != memo.end())
        return it->second;
    std::uint64_t h = mixKey(kSeedShape, kindTag(e));
    if (e->isConst()) {
        h = mixKey(h, e->value);
    } else if (!isVar(e)) {
        std::vector<std::uint64_t> kid_hashes;
        kid_hashes.reserve(e->kids.size());
        for (Expr kid : e->kids)
            kid_hashes.push_back(shapeOf(kid, memo));
        if (isCommutative(e->kind))
            std::stable_sort(kid_hashes.begin(), kid_hashes.end());
        for (std::uint64_t kh : kid_hashes)
            h = mixKey(h, kh);
        h = mixKey(h, kid_hashes.size());
    }
    memo.emplace(e, h);
    return h;
}

/** Per-kind alpha index of a variable (see assignAlpha). */
struct AlphaCounters {
    std::uint64_t bv = 0;
    std::uint64_t bool_ = 0;
    std::uint64_t mem = 0;

    std::uint64_t
    next(Kind k)
    {
        switch (k) {
          case Kind::BvVar: return bv++;
          case Kind::BoolVar: return bool_++;
          default: return mem++;
        }
    }
};

/**
 * Walk the DAG once (each node visited at first encounter) in the
 * order defined by `kids_of`, assigning per-kind indices to variable
 * leaves in encounter order.
 */
template <class KidsOf>
void
assignAlpha(Expr root, KidsOf &&kids_of,
            std::unordered_map<Expr, std::uint64_t> &index)
{
    AlphaCounters counters;
    std::unordered_map<Expr, bool> visited;
    auto dfs = [&](auto &&self, Expr e) -> void {
        if (visited.count(e))
            return;
        visited.emplace(e, true);
        if (isVar(e)) {
            index.emplace(e, counters.next(e->kind));
            return;
        }
        for (Expr kid : kids_of(e))
            self(self, kid);
    };
    dfs(dfs, root);
}

/**
 * Merkle hash of the DAG under `kids_of` ordering, with variables
 * contributing their alpha index instead of their name.
 */
template <class KidsOf>
std::uint64_t
merkle(Expr root, std::uint64_t seed, KidsOf &&kids_of,
       const std::unordered_map<Expr, std::uint64_t> &index)
{
    std::unordered_map<Expr, std::uint64_t> memo;
    auto walk = [&](auto &&self, Expr e) -> std::uint64_t {
        if (auto it = memo.find(e); it != memo.end())
            return it->second;
        std::uint64_t h = mixKey(seed, kindTag(e));
        if (e->isConst()) {
            h = mixKey(h, e->value);
        } else if (isVar(e)) {
            h = mixKey(h, index.at(e));
        } else {
            for (Expr kid : kids_of(e))
                h = mixKey(h, self(self, kid));
            h = mixKey(h, e->kids.size());
        }
        memo.emplace(e, h);
        return h;
    };
    return walk(walk, root);
}

std::string
canonicalName(Kind k, std::uint64_t index)
{
    const char *prefix = k == Kind::BvVar   ? "v"
                         : k == Kind::BoolVar ? "b"
                                              : "m";
    return prefix + std::to_string(index);
}

} // namespace

CanonForm
canonicalize(Expr formula)
{
    CanonForm form;

    std::unordered_map<Expr, std::uint64_t> shape_memo;
    shapeOf(formula, shape_memo);

    // Shape-sorted operand order: commutative operands stable-sorted
    // by their name-blind shape hash (ties keep original order), so
    // genuinely reordered formulas traverse isomorphically.
    std::unordered_map<Expr, std::vector<Expr>> sorted_memo;
    auto sorted_kids = [&](Expr e) -> const std::vector<Expr> & {
        if (!isCommutative(e->kind))
            return e->kids;
        auto it = sorted_memo.find(e);
        if (it == sorted_memo.end()) {
            std::vector<Expr> kids = e->kids;
            std::stable_sort(kids.begin(), kids.end(),
                             [&](Expr a, Expr b) {
                                 return shape_memo.at(a) <
                                        shape_memo.at(b);
                             });
            it = sorted_memo.emplace(e, std::move(kids)).first;
        }
        return it->second;
    };
    auto original_kids = [](Expr e) -> const std::vector<Expr> & {
        return e->kids;
    };

    // Semantic key: alpha indices from the shape-sorted traversal,
    // hashed in shape-sorted order through two independent lanes.
    std::unordered_map<Expr, std::uint64_t> sem_index;
    assignAlpha(formula, sorted_kids, sem_index);
    form.key.hi = merkle(formula, kSeedLaneHi, sorted_kids, sem_index);
    form.key.lo = merkle(formula, kSeedLaneLo, sorted_kids, sem_index);

    // Exactness fingerprint: alpha indices from the original-order
    // traversal, hashed in original operand order.
    std::unordered_map<Expr, std::uint64_t> fp_index;
    assignAlpha(formula, original_kids, fp_index);
    form.fingerprint =
        merkle(formula, kSeedFp, original_kids, fp_index);

    // Name maps follow the semantic (shape-sorted) assignment so that
    // canonical model slots correspond across alpha-equivalent
    // formulas.
    for (const auto &[node, index] : sem_index) {
        const std::string canon = canonicalName(node->kind, index);
        form.toCanon.emplace(node->name, canon);
        form.toOrig.emplace(canon, node->name);
        switch (node->kind) {
          case Kind::BvVar:
            form.nextBv = std::max(form.nextBv,
                                   static_cast<int>(index) + 1);
            break;
          case Kind::BoolVar:
            form.nextBool = std::max(form.nextBool,
                                     static_cast<int>(index) + 1);
            break;
          default:
            form.nextMem = std::max(form.nextMem,
                                    static_cast<int>(index) + 1);
            break;
        }
    }
    return form;
}

void
extendVars(CanonForm &form, const std::vector<Expr> &vars)
{
    for (Expr v : vars) {
        if (form.toCanon.count(v->name))
            continue;
        int index = 0;
        switch (v->kind) {
          case Kind::BvVar: index = form.nextBv++; break;
          case Kind::BoolVar: index = form.nextBool++; break;
          default: index = form.nextMem++; break;
        }
        const std::string canon =
            canonicalName(v->kind, static_cast<std::uint64_t>(index));
        form.toCanon.emplace(v->name, canon);
        form.toOrig.emplace(canon, v->name);
    }
}

namespace {

expr::Assignment
translate(const std::unordered_map<std::string, std::string> &names,
          const expr::Assignment &a)
{
    auto rename = [&](const std::string &name) -> const std::string & {
        auto it = names.find(name);
        return it == names.end() ? name : it->second;
    };
    expr::Assignment out;
    for (const auto &[name, v] : a.bvVars)
        out.bvVars[rename(name)] = v;
    for (const auto &[name, v] : a.boolVars)
        out.boolVars[rename(name)] = v;
    for (const auto &[name, mem] : a.mems)
        out.mems[rename(name)] = mem;
    return out;
}

} // namespace

expr::Assignment
toCanonical(const CanonForm &form, const expr::Assignment &a)
{
    return translate(form.toCanon, a);
}

expr::Assignment
toOriginal(const CanonForm &form, const expr::Assignment &a)
{
    return translate(form.toOrig, a);
}

} // namespace scamv::qcache
