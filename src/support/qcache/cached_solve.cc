#include "support/qcache/cached_solve.hh"

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::qcache {

using expr::Expr;

namespace {

constexpr std::uint64_t kBudgetSalt = 0x5ca77e5700050005ULL;
constexpr std::uint64_t kChainSalt = 0x5ca77e5700060006ULL;

/** Mix the conflict budget into a canonical key: outcomes below the
 *  Sat/Unknown boundary depend on it, so cross-budget reuse is out. */
Key
budgetKey(const Key &base, std::int64_t conflict_budget)
{
    const auto b = static_cast<std::uint64_t>(conflict_budget);
    return Key{mixKey(base.hi, b),
               mixKey(base.lo, mixKey(kBudgetSalt, b))};
}

/** Observe one cache-hit latency into the global registry. */
void
observeHit(double t0)
{
    metrics::Registry &g = metrics::Registry::global();
    g.histogram("qcache.hit_seconds").observe(g.now() - t0);
}

} // namespace

Key
solveKey(const CanonForm &form, std::int64_t conflict_budget)
{
    return budgetKey(form.key, conflict_budget);
}

SolveResult
solveOnce(expr::ExprContext &ctx, Expr formula,
          std::int64_t conflict_budget, QueryCache *cache)
{
    if (!cache) {
        // The uncached reference path: exactly what the pipeline did
        // before the cache existed.
        smt::SmtSolver solver(ctx, formula);
        SolveResult r;
        r.outcome = solver.solve(conflict_budget);
        if (r.outcome == smt::Outcome::Sat)
            r.model = solver.model();
        return r;
    }

    // One SmtUnknown gate per logical query, mirroring solve().  Only
    // consulted when an injector is installed, so cache-on runs touch
    // the querier's clock identically on hits and misses.
    if (faults::current()) {
        const double t0 = metrics::current().now();
        if (faults::maybeInject(faults::Site::SmtUnknown))
            return SolveResult{
                smt::tallyQuery(smt::Outcome::Unknown, t0),
                std::nullopt};
    }

    metrics::Registry &g = metrics::Registry::global();
    const double tg0 = g.now();
    const CanonForm form = canonicalize(formula);
    const Key key = budgetKey(form.key, conflict_budget);

    if (auto hit = cache->lookup(key, form.fingerprint)) {
        if (!hit->sat) {
            metrics::current().merge(hit->delta);
            observeHit(tg0);
            return SolveResult{smt::Outcome::Unsat, std::nullopt};
        }
        expr::Assignment model = toOriginal(form, hit->model);
        if (expr::evalBool(formula, model)) {
            metrics::current().merge(hit->delta);
            observeHit(tg0);
            return SolveResult{smt::Outcome::Sat, std::move(model)};
        }
        // Corrupt or stale entry (possible with a damaged persistence
        // file): drop it and recompute below.
        g.counter("qcache.validation_dropped").inc();
        cache->dropInvalid(key);
    }

    // Miss: solve inside a scratch registry so the metric delta can
    // be captured, merged, and stored for future hits.
    SolveResult r;
    metrics::Registry scratch(metrics::current().clockMode());
    {
        metrics::ScopedRegistry scope(scratch);
        faults::ScopedSuppress suppress;
        smt::SmtSolver solver(ctx, formula);
        r.outcome = solver.solveNoInject(conflict_budget);
        if (r.outcome == smt::Outcome::Sat)
            r.model = solver.model();
    }
    metrics::Snapshot delta = scratch.snapshot();
    metrics::current().merge(delta);
    if (r.outcome != smt::Outcome::Unknown) {
        Entry e;
        e.sat = r.outcome == smt::Outcome::Sat;
        e.fingerprint = form.fingerprint;
        if (r.model)
            e.model = toCanonical(form, *r.model);
        e.delta = std::move(delta);
        cache->store(key, std::move(e));
    }
    return r;
}

std::function<std::optional<expr::Assignment>(Expr)>
samplerSeedOracle(QueryCache *cache, std::int64_t conflict_budget)
{
    return [cache, conflict_budget](
               Expr formula) -> std::optional<expr::Assignment> {
        if (!cache)
            return std::nullopt;
        const CanonForm form = canonicalize(formula);
        auto hit = cache->lookup(budgetKey(form.key, conflict_budget),
                                 form.fingerprint);
        if (!hit || !hit->sat)
            return std::nullopt;
        return toOriginal(form, hit->model);
    };
}

CachedEnumerator::CachedEnumerator(expr::ExprContext &ctx_,
                                   Expr formula, std::vector<Expr> block_vars,
                                   int block_bits, QueryCache *cache_)
    : ctx(ctx_),
      formula_(formula),
      blockVars(std::move(block_vars)),
      blockBits(block_bits),
      cache(cache_)
{
    if (!cache)
        return;
    form = canonicalize(formula_);
    extendVars(form, blockVars);
    // The chain salt separates enumerations of one formula under
    // different blocking configurations: blocked bits plus the
    // canonical identity of every blocked variable, in order.
    chainSalt = mixKey(kChainSalt,
                       static_cast<std::uint64_t>(blockBits));
    for (Expr v : blockVars)
        chainSalt = mixKey(chainSalt, fnv1a(form.toCanon.at(v->name)));
}

Key
CachedEnumerator::stepKey(int step, std::int64_t conflict_budget) const
{
    const std::uint64_t salt =
        mixKey(chainSalt, mixKey(static_cast<std::uint64_t>(step),
                                 static_cast<std::uint64_t>(
                                     conflict_budget)));
    return Key{mixKey(form.key.hi, salt),
               mixKey(form.key.lo, mixKey(kBudgetSalt, salt))};
}

void
CachedEnumerator::ensureSolverAt(int target)
{
    if (!solver_)
        solver_ = std::make_unique<smt::SmtSolver>(ctx, formula_);
    if (solverStep_ >= target)
        return;
    // Replay the cached prefix to rebuild incremental solver state.
    // Fingerprint gating guarantees the replayed trajectory is the
    // one that produced the cached entries, so an unlimited budget is
    // safe (a Sat trajectory within budget B is identical under any
    // budget >= B).  The work is invisible: metrics go to a discarded
    // scratch registry (hits already merged the original deltas) and
    // fault decisions are suppressed (the original attempt consumed
    // them).
    metrics::Registry mute(metrics::ClockMode::Wall);
    metrics::ScopedRegistry scope(mute);
    faults::ScopedSuppress suppress;
    while (solverStep_ < target) {
        const smt::Outcome out = solver_->solveNoInject(-1);
        SCAMV_ASSERT(out == smt::Outcome::Sat,
                     "qcache: cached enumeration prefix failed to "
                     "replay");
        solver_->blockCurrentModel(blockVars, blockBits);
        ++solverStep_;
    }
}

smt::SmtSolver &
CachedEnumerator::solver()
{
    ensureSolverAt(step_);
    return *solver_;
}

void
CachedEnumerator::discardSolver()
{
    solver_.reset();
    solverStep_ = 0;
}

CachedEnumerator::Step
CachedEnumerator::next(std::int64_t conflict_budget)
{
    Step s;
    if (!cache) {
        ensureSolverAt(step_);
        s.outcome = solver_->solve(conflict_budget);
        if (s.outcome == smt::Outcome::Sat) {
            s.model = solver_->model();
            if (!solver_->blockCurrentModel(blockVars, blockBits))
                dead_ = true;
            ++solverStep_;
            ++step_;
        }
        return s;
    }

    // One SmtUnknown gate per logical step (cf. solveOnce).
    if (faults::current()) {
        const double t0 = metrics::current().now();
        if (faults::maybeInject(faults::Site::SmtUnknown)) {
            s.outcome = smt::tallyQuery(smt::Outcome::Unknown, t0);
            return s;
        }
    }

    metrics::Registry &g = metrics::Registry::global();
    const double tg0 = g.now();
    const Key key = stepKey(step_, conflict_budget);
    if (auto hit = cache->lookup(key, form.fingerprint)) {
        if (!hit->sat) {
            metrics::current().merge(hit->delta);
            ++step_;
            s.outcome = smt::Outcome::Unsat;
            observeHit(tg0);
            return s;
        }
        expr::Assignment model = toOriginal(form, hit->model);
        if (expr::evalBool(formula_, model)) {
            metrics::current().merge(hit->delta);
            if (hit->pairDead)
                dead_ = true;
            ++step_;
            s.outcome = smt::Outcome::Sat;
            s.model = std::move(model);
            observeHit(tg0);
            return s;
        }
        g.counter("qcache.validation_dropped").inc();
        cache->dropInvalid(key);
    }

    // Miss: bring the solver up to this step, run it inside a scratch
    // registry, and store the captured step.
    ensureSolverAt(step_);
    bool block_dead = false;
    metrics::Registry scratch(metrics::current().clockMode());
    {
        metrics::ScopedRegistry scope(scratch);
        faults::ScopedSuppress suppress;
        s.outcome = solver_->solveNoInject(conflict_budget);
        if (s.outcome == smt::Outcome::Sat) {
            s.model = solver_->model();
            if (!solver_->blockCurrentModel(blockVars, blockBits))
                block_dead = true;
        }
    }
    metrics::Snapshot delta = scratch.snapshot();
    metrics::current().merge(delta);
    if (s.outcome == smt::Outcome::Unknown)
        return s; // budget-dependent: never cached, step not advanced

    Entry e;
    e.sat = s.outcome == smt::Outcome::Sat;
    e.fingerprint = form.fingerprint;
    e.pairDead = block_dead;
    if (s.model)
        e.model = toCanonical(form, *s.model);
    e.delta = std::move(delta);
    cache->store(key, std::move(e));

    if (s.outcome == smt::Outcome::Sat) {
        if (block_dead)
            dead_ = true;
        ++solverStep_;
    }
    ++step_;
    return s;
}

} // namespace scamv::qcache
