#include "support/faults.hh"

#include <cctype>
#include <string>

#include "support/env.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::faults {

namespace {

thread_local Injector *tls_injector = nullptr;

/** splitmix64 finalizer (same avalanche as deriveProgramSeed). */
std::uint64_t
avalanche(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

const char *
siteName(Site site)
{
    switch (site) {
      case Site::SatTimeout: return "sat_timeout";
      case Site::SmtUnknown: return "smt_unknown";
      case Site::SamplerExhaust: return "sampler_exhaust";
      case Site::HwProbeJitter: return "hw_probe_jitter";
      case Site::HwFlake: return "hw_flake";
      case Site::DbWrite: return "db_write";
      case Site::TaskAbort: return "task_abort";
      case Site::QcacheCorrupt: return "qcache_corrupt";
      case Site::CoverLedgerMerge: return "cover.ledger_merge";
      case Site::ShardArtifactCorrupt: return "shard_artifact_corrupt";
      case Site::TriageMinimizeFlake: return "triage_minimize_flake";
      case Site::SvcAcceptDrop: return "svc_accept_drop";
      case Site::SvcWorkerLost: return "svc_worker_lost";
    }
    return "?";
}

std::optional<Site>
siteFromName(std::string_view name)
{
    for (int i = 0; i < kSiteCount; ++i) {
        const Site s = static_cast<Site>(i);
        if (name == siteName(s))
            return s;
    }
    return std::nullopt;
}

std::uint32_t
FaultPlan::maskAll()
{
    return (1u << kSiteCount) - 1;
}

FaultPlan
FaultPlan::fromEnv()
{
    FaultPlan plan;
    const auto rate = envDouble("SCAMV_FAULT_RATE", 0.0, 1.0);
    if (!rate || *rate <= 0.0)
        return plan; // disabled
    plan.rate = *rate;

    const char *spec = std::getenv("SCAMV_FAULT_PLAN");
    if (!spec || !*spec) {
        plan.mask = maskAll();
        return plan;
    }
    std::string_view rest(spec);
    while (!rest.empty()) {
        const std::size_t split = rest.find_first_of(", \t");
        std::string_view token = rest.substr(0, split);
        rest = split == std::string_view::npos
                   ? std::string_view()
                   : rest.substr(split + 1);
        if (token.empty())
            continue;
        if (token == "all") {
            plan.mask = maskAll();
        } else if (auto site = siteFromName(token)) {
            plan.mask |= 1u << static_cast<int>(*site);
        } else {
            warn("SCAMV_FAULT_PLAN: unknown fault site '" +
                 std::string(token) + "' ignored");
        }
    }
    if (plan.mask == 0) {
        warn("SCAMV_FAULT_PLAN selected no valid site; "
             "fault injection disabled");
        plan.rate = 0.0;
    }
    return plan;
}

Injector::Injector(const FaultPlan &plan, std::uint64_t campaign_seed,
                   int prog_i)
    : plan(plan), seed(campaign_seed), prog(prog_i)
{}

bool
Injector::fire(Site site)
{
    const int i = static_cast<int>(site);
    const std::uint64_t attempt = attempts[i]++;
    if (!plan.covers(site))
        return false;
    // splitmix64 of (campaign seed, program index, site, attempt):
    // the same recipe as deriveProgramSeed, so fault decisions are a
    // pure function of campaign coordinates — identical for any
    // thread count and on every replay.
    std::uint64_t x =
        seed +
        0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(prog) + 1) +
        0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(i) + 1) +
        0x94d049bb133111ebULL * (attempt + 1);
    x = avalanche(x);
    // Top 53 bits as a uniform double in [0, 1).
    const double u = static_cast<double>(x >> 11) * 0x1.0p-53;
    if (u >= plan.rate)
        return false;
    ++injected;
    ++injectedPerSite[i];
    metrics::Registry &reg = metrics::current();
    reg.counter("faults.injected").inc();
    reg.counter(std::string("faults.injected.") + siteName(site)).inc();
    return true;
}

Injector *
current()
{
    return tls_injector;
}

bool
maybeInject(Site site)
{
    return tls_injector && tls_injector->fire(site);
}

std::uint64_t
injectedCount()
{
    return tls_injector ? tls_injector->injectedCount() : 0;
}

std::uint64_t
injectedCountAt(Site site)
{
    return tls_injector ? tls_injector->injectedCountAt(site) : 0;
}

ScopedInjector::ScopedInjector(Injector &injector) : prev(tls_injector)
{
    tls_injector = &injector;
}

ScopedInjector::~ScopedInjector()
{
    tls_injector = prev;
}

ScopedSuppress::ScopedSuppress() : prev(tls_injector)
{
    tls_injector = nullptr;
}

ScopedSuppress::~ScopedSuppress()
{
    tls_injector = prev;
}

} // namespace scamv::faults
