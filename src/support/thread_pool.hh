/**
 * @file
 * Fixed-size thread pool for program-level campaign parallelism.
 *
 * Deliberately minimal — a single locked FIFO queue, no work
 * stealing: pipeline tasks are coarse (one whole program campaign
 * each, milliseconds to seconds), so queue contention is negligible
 * and a simple pool keeps the concurrency story auditable.
 *
 * The framework itself is exception-free (see support/logging.hh),
 * but tasks may still throw through library code (`std::bad_alloc`,
 * test harness assertions).  The pool therefore captures the first
 * escaping exception and rethrows it from wait(), so failures in
 * workers are not silently dropped.
 */

#ifndef SCAMV_SUPPORT_THREAD_POOL_HH
#define SCAMV_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scamv {

/** Fixed-size FIFO thread pool with barrier-style wait(). */
class ThreadPool
{
  public:
    /**
     * Spawn the workers.
     * @param threads worker count; 0 selects defaultThreadCount().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Joins all workers (after draining the queue). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; runnable immediately by any idle worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow
     * the first exception (if any) that escaped a task.  The pool is
     * reusable after wait() returns.
     */
    void wait();

    /** @return number of worker threads. */
    unsigned threadCount() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Thread count used when none is configured: the validated
     * SCAMV_THREADS environment variable if set (values < 1 are
     * rejected with a warning), otherwise hardware_concurrency()
     * (at least 1).
     */
    static unsigned defaultThreadCount();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mutex;
    std::condition_variable workReady;
    std::condition_variable allDone;
    /** Tasks submitted but not yet finished (queued + running). */
    std::size_t unfinished = 0;
    std::exception_ptr firstError;
    bool stopping = false;
};

} // namespace scamv

#endif // SCAMV_SUPPORT_THREAD_POOL_HH
