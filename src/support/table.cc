#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace scamv {

void
TextTable::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &r) {
        if (widths.size() < r.size())
            widths.resize(r.size(), 0);
        for (std::size_t i = 0; i < r.size(); ++i)
            widths[i] = std::max(widths[i], r[i].size());
    };
    if (!header.empty())
        grow(header);
    for (const auto &r : rows)
        grow(r);

    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            out << r[i];
            if (i + 1 < r.size())
                out << std::string(widths[i] - r[i].size() + 2, ' ');
        }
        out << '\n';
    };
    if (!header.empty()) {
        emit(header);
        std::size_t total = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        out << std::string(total, '-') << '\n';
    }
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

namespace {

std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n") == std::string::npos)
        return s;
    std::string q = "\"";
    for (char c : s) {
        if (c == '"')
            q += '"';
        q += c;
    }
    q += '"';
    return q;
}

} // namespace

std::string
TextTable::renderCsv() const
{
    std::ostringstream out;
    auto emit = [&](const std::vector<std::string> &r) {
        for (std::size_t i = 0; i < r.size(); ++i) {
            out << csvQuote(r[i]);
            if (i + 1 < r.size())
                out << ',';
        }
        out << '\n';
    };
    if (!header.empty())
        emit(header);
    for (const auto &r : rows)
        emit(r);
    return out.str();
}

bool
TextTable::writeCsv(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << renderCsv();
    return static_cast<bool>(f);
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtRatio(double num, double den, int decimals)
{
    if (den == 0.0)
        return "-";
    return fmtDouble(num / den, decimals) + "x";
}

} // namespace scamv
