/**
 * @file
 * Shared cache geometry and experiment memory layout.
 *
 * Mirrors the evaluation platform of Section 6.1: the Cortex-A53 L1
 * data cache (32 KiB, 4-way, 64-byte lines, hence 128 set indexes),
 * 4 KiB pages (one page spans 64 set indexes), and the cacheable
 * experiment memory region set up by the bare-metal platform module.
 */

#ifndef SCAMV_OBS_LAYOUT_HH
#define SCAMV_OBS_LAYOUT_HH

#include <cstdint>

#include "expr/expr.hh"

namespace scamv::obs {

/** L1 data cache geometry (Cortex-A53 defaults). */
struct CacheGeometry {
    std::uint64_t lineBytes = 64;
    std::uint64_t numSets = 128;
    std::uint64_t ways = 4;

    /** log2(lineBytes). */
    int
    lineShift() const
    {
        int s = 0;
        while ((1ULL << s) < lineBytes)
            ++s;
        return s;
    }

    /** Cache set index of a concrete address. */
    std::uint64_t
    setOf(std::uint64_t addr) const
    {
        return (addr >> lineShift()) & (numSets - 1);
    }

    /** log2(numSets). */
    int
    setShift() const
    {
        int s = 0;
        while ((1ULL << s) < numSets)
            ++s;
        return s;
    }

    /** Cache tag of a concrete address. */
    std::uint64_t
    tagOf(std::uint64_t addr) const
    {
        return addr >> lineShift() >> setShift();
    }

    /** Symbolic set index: (addr >> lineShift) & (numSets-1). */
    expr::Expr
    setExpr(expr::ExprContext &ctx, expr::Expr addr) const
    {
        return ctx.bvAnd(ctx.lshr(addr, ctx.bv(lineShift())),
                         ctx.bv(numSets - 1));
    }
};

/** Contiguous cacheable memory region used by experiments. */
struct MemoryRegion {
    std::uint64_t base = 0x80000;
    std::uint64_t size = 0x80000; // 512 KiB

    std::uint64_t limit() const { return base + size; }

    bool
    contains(std::uint64_t addr) const
    {
        return addr >= base && addr < limit();
    }

    /** Symbolic membership: base <= addr < limit, 8-byte aligned. */
    expr::Expr
    containsExpr(expr::ExprContext &ctx, expr::Expr addr) const
    {
        expr::Expr in = ctx.land(ctx.ule(ctx.bv(base), addr),
                                 ctx.ult(addr, ctx.bv(limit())));
        expr::Expr aligned = ctx.eq(ctx.bvAnd(addr, ctx.bv(7)),
                                    ctx.zero());
        return ctx.land(in, aligned);
    }
};

/**
 * Attacker-accessible cache region for cache-coloring experiments:
 * the set-index range [loSet, hiSet] (Section 6.2 uses 61..127 and,
 * page-aligned, 64..127).
 */
struct AttackerRegion {
    std::uint64_t loSet = 61;
    std::uint64_t hiSet = 127;
    CacheGeometry geom;

    /** AR(addr) on a concrete address. */
    bool
    contains(std::uint64_t addr) const
    {
        const std::uint64_t s = geom.setOf(addr);
        return s >= loSet && s <= hiSet;
    }

    /** AR(addr) as a formula over a symbolic address. */
    expr::Expr
    containsExpr(expr::ExprContext &ctx, expr::Expr addr) const
    {
        expr::Expr set = geom.setExpr(ctx, addr);
        return ctx.land(ctx.ule(ctx.bv(loSet), set),
                        ctx.ule(set, ctx.bv(hiSet)));
    }
};

} // namespace scamv::obs

#endif // SCAMV_OBS_LAYOUT_HH
