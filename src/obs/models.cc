#include "obs/models.hh"

#include <algorithm>

#include "support/logging.hh"

namespace scamv::obs {

using sym::InstrContext;
using sym::Obs;
using sym::ObsTag;

const char *
modelName(ModelKind kind)
{
    switch (kind) {
      case ModelKind::Mpc: return "Mpc";
      case ModelKind::Mline: return "Mline";
      case ModelKind::Mct: return "Mct";
      case ModelKind::Mpart: return "Mpart";
      case ModelKind::MpartRefined: return "Mpart'";
      case ModelKind::Mspec: return "Mspec";
      case ModelKind::Mspec1: return "Mspec1";
      case ModelKind::Mpage: return "Mpage";
      case ModelKind::MspecPage: return "MspecPage";
    }
    return "?";
}

namespace {

/** Observes the program counter of every architectural instruction. */
class MpcModel : public sym::Annotator
{
  public:
    std::string name() const override { return "Mpc"; }

    void
    observe(expr::ExprContext &ctx, const InstrContext &ic,
            std::vector<Obs> &out) const override
    {
        if (ic.transient)
            return;
        out.push_back({ObsTag::Base, ctx.bv(ic.index), "pc"});
    }
};

/** Mpc + cache set index of architectural memory accesses. */
class MlineModel : public sym::Annotator
{
  public:
    explicit MlineModel(const ModelParams &p) : params(p) {}

    std::string name() const override { return "Mline"; }

    void
    observe(expr::ExprContext &ctx, const InstrContext &ic,
            std::vector<Obs> &out) const override
    {
        if (ic.transient)
            return;
        out.push_back({ObsTag::Base, ctx.bv(ic.index), "pc"});
        if (ic.instr->isMemAccess())
            out.push_back({ObsTag::Base,
                           params.geom.setExpr(ctx, ic.addr), "line"});
    }

  private:
    ModelParams params;
};

/** Constant-time model: pc + every architectural access address. */
class MctModel : public sym::Annotator
{
  public:
    std::string name() const override { return "Mct"; }

    void
    observe(expr::ExprContext &ctx, const InstrContext &ic,
            std::vector<Obs> &out) const override
    {
        if (ic.transient) {
            observeTransient(ctx, ic, out);
            return;
        }
        out.push_back({ObsTag::Base, ctx.bv(ic.index), "pc"});
        if (ic.instr->isMemAccess())
            out.push_back({ObsTag::Base, ic.addr, "addr"});
    }

  protected:
    /** Hook for the speculative extensions. */
    virtual void
    observeTransient(expr::ExprContext &, const InstrContext &,
                     std::vector<Obs> &) const
    {}
};

/**
 * Mspec: Mct + all transient memory-access addresses.
 *
 * Transient addresses are observed at cache-line granularity
 * (addr >> lineShift): the data cache cannot distinguish sub-line
 * bits, so a finer observation would add no exclusion power, while
 * the line-granular encoding steers the "refined observations differ"
 * constraint toward states the hardware can actually tell apart (see
 * DESIGN.md).
 */
class MspecModel : public MctModel
{
  public:
    explicit MspecModel(const ModelParams &p) : params(p) {}

    std::string name() const override { return "Mspec"; }

  protected:
    void
    observeTransient(expr::ExprContext &ctx, const InstrContext &ic,
                     std::vector<Obs> &out) const override
    {
        if (ic.instr->isMemAccess())
            out.push_back({ObsTag::Base,
                           ctx.lshr(ic.addr,
                                    ctx.bv(params.geom.lineShift())),
                           "transient-line"});
    }

  private:
    ModelParams params;
};

/** Mspec1: Mct + only the first transient load per shadow block. */
class Mspec1Model : public MctModel
{
  public:
    explicit Mspec1Model(const ModelParams &p) : params(p) {}

    std::string name() const override { return "Mspec1"; }

  protected:
    void
    observeTransient(expr::ExprContext &ctx, const InstrContext &ic,
                     std::vector<Obs> &out) const override
    {
        if (ic.instr->kind == bir::InstrKind::Load &&
            ic.transientLoadOrdinal == 0)
            out.push_back({ObsTag::Base,
                           ctx.lshr(ic.addr,
                                    ctx.bv(params.geom.lineShift())),
                           "transient-first-line"});
    }

  private:
    ModelParams params;
};

/**
 * TLB-channel model: pc + page number of every architectural access;
 * with `transientPages` also the page of every transient access.
 */
class MpageModel : public sym::Annotator
{
  public:
    MpageModel(const ModelParams &p, bool transient_pages)
        : params(p), transientPages(transient_pages)
    {}

    std::string
    name() const override
    {
        return transientPages ? "MspecPage" : "Mpage";
    }

    void
    observe(expr::ExprContext &ctx, const InstrContext &ic,
            std::vector<Obs> &out) const override
    {
        // 4 KiB pages: 12-bit offset.
        if (ic.transient) {
            if (transientPages && ic.instr->isMemAccess())
                out.push_back({ObsTag::Base,
                               ctx.lshr(ic.addr, ctx.bv(12)),
                               "transient-page"});
            return;
        }
        out.push_back({ObsTag::Base, ctx.bv(ic.index), "pc"});
        if (ic.instr->isMemAccess())
            out.push_back({ObsTag::Base,
                           ctx.lshr(ic.addr, ctx.bv(12)), "page"});
    }

  private:
    ModelParams params;
    bool transientPages;
};

/**
 * Cache-coloring model: pc + AR-conditional access addresses, with the
 * 0-sentinel encoding (see models.hh).  With `allAddresses` set this
 * is Mpart': every address is additionally observed unconditionally.
 */
class MpartModel : public sym::Annotator
{
  public:
    MpartModel(const ModelParams &p, bool all_addresses)
        : params(p), allAddresses(all_addresses)
    {}

    std::string
    name() const override
    {
        return allAddresses ? "Mpart'" : "Mpart";
    }

    void
    observe(expr::ExprContext &ctx, const InstrContext &ic,
            std::vector<Obs> &out) const override
    {
        if (ic.transient)
            return;
        out.push_back({ObsTag::Base, ctx.bv(ic.index), "pc"});
        if (!ic.instr->isMemAccess())
            return;
        expr::Expr in_ar = params.attacker.containsExpr(ctx, ic.addr);
        out.push_back({ObsTag::Base, ctx.ite(in_ar, ic.addr, ctx.zero()),
                       "ar-addr"});
        if (allAddresses)
            out.push_back({ObsTag::Base,
                           ctx.lshr(ic.addr,
                                    ctx.bv(params.geom.lineShift())),
                           "any-line"});
    }

  private:
    ModelParams params;
    bool allAddresses;
};

} // namespace

std::unique_ptr<sym::Annotator>
makeModel(ModelKind kind, const ModelParams &params)
{
    switch (kind) {
      case ModelKind::Mpc:
        return std::make_unique<MpcModel>();
      case ModelKind::Mline:
        return std::make_unique<MlineModel>(params);
      case ModelKind::Mct:
        return std::make_unique<MctModel>();
      case ModelKind::Mpart:
        return std::make_unique<MpartModel>(params, false);
      case ModelKind::MpartRefined:
        return std::make_unique<MpartModel>(params, true);
      case ModelKind::Mspec:
        return std::make_unique<MspecModel>(params);
      case ModelKind::Mspec1:
        return std::make_unique<Mspec1Model>(params);
      case ModelKind::Mpage:
        return std::make_unique<MpageModel>(params, false);
      case ModelKind::MspecPage:
        return std::make_unique<MpageModel>(params, true);
    }
    SCAMV_PANIC("unknown model kind");
}

void
RefinementPair::observe(expr::ExprContext &ctx, const InstrContext &ic,
                        std::vector<Obs> &out) const
{
    std::vector<Obs> o1, o2;
    m1->observe(ctx, ic, o1);
    m2->observe(ctx, ic, o2);

    // M2 must be more restrictive: every M1 observation must appear in
    // M2's list (Projection Assumption, Section 5.1).  Match M1
    // observations against M2's by value and consume them so that
    // duplicated values are handled as a multiset.
    std::vector<bool> consumed(o2.size(), false);
    for (const Obs &o : o1) {
        bool found = false;
        for (std::size_t j = 0; j < o2.size(); ++j) {
            if (!consumed[j] && o2[j].value == o.value) {
                consumed[j] = true;
                found = true;
                break;
            }
        }
        SCAMV_ASSERT(found, "RefinementPair: M2 is not more restrictive "
                            "than M1 (missing observation)");
        out.push_back({ObsTag::Base, o.value, o.note});
    }
    for (std::size_t j = 0; j < o2.size(); ++j)
        if (!consumed[j])
            out.push_back({ObsTag::RefinedOnly, o2[j].value, o2[j].note});
}

} // namespace scamv::obs
