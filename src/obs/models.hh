/**
 * @file
 * The observational models of the paper (Sections 4 and 6).
 *
 * Each model is a sym::Annotator that emits every observation it makes
 * with tag Base.  Observation refinement pairs a model under
 * validation M1 with a more-restrictive refined model M2 through
 * `RefinementPair`, which implements the tag/projection optimization
 * of Section 5.1: per instruction it asks both models and emits M1's
 * observations as Base and the observations exclusive to M2 as
 * RefinedOnly.  A single symbolic execution under the pair therefore
 * yields both observation lists.
 *
 * Models:
 *  - `Mpc`     program counter of every architectural instruction
 *              (path-coverage support model, 4.1.1).
 *  - `Mline`   Mpc + cache set index of every architectural memory
 *              access (cache-line coverage support, 4.1.2).
 *  - `Mct`     constant-time model: pc + address of every
 *              architectural memory access (4.2.2).
 *  - `Mpart`   cache-coloring model: pc + address of memory accesses
 *              *within the attacker region* (4.2.1).  The conditional
 *              observation is encoded as ite(AR(addr), addr, 0):
 *              address 0 lies outside the experiment memory region, so
 *              it acts as the "none" sentinel without changing
 *              observation-list lengths.
 *  - `MpartRefined` (Mpart') = Mpart + every access address
 *              regardless of AR.
 *  - `Mspec`   = Mct + every transient memory-access address
 *              (CPU-always-mispredicts model).
 *  - `Mspec1`  = Mct + only the *first* transient load per shadow
 *              block (6.5).
 *
 * Mspec' (straight-line speculation, 6.5) is Mspec applied to a
 * program whose direct jumps were rewritten by
 * bir::rewriteJumpsToCondBranches before instrumentation.
 *
 * `Mpage`/`MspecPage` are the TLB-channel analogues of `Mct`/`Mspec`
 * (Section 2.3 names TLB state as a supported channel type): they
 * observe page numbers instead of addresses/lines, paired with the
 * platform's TLB-snapshot measurement channel.
 */

#ifndef SCAMV_OBS_MODELS_HH
#define SCAMV_OBS_MODELS_HH

#include <memory>
#include <string>

#include "obs/layout.hh"
#include "sym/symexec.hh"

namespace scamv::obs {

/** Identifiers for the models, used by configs and reports. */
enum class ModelKind {
    Mpc,
    Mline,
    Mct,
    Mpart,
    MpartRefined,
    Mspec,
    Mspec1,
    Mpage,    ///< pc + page number of architectural accesses (TLB)
    MspecPage ///< Mpage + page number of transient accesses
};

/** @return the paper's name for a model ("Mpart'", "Mspec1", ...). */
const char *modelName(ModelKind kind);

/** Parameters consumed by the models that need them. */
struct ModelParams {
    CacheGeometry geom;
    AttackerRegion attacker;
};

/** Construct the annotator for a model. */
std::unique_ptr<sym::Annotator> makeModel(ModelKind kind,
                                          const ModelParams &params = {});

/**
 * Refinement combinator (Section 5.1).
 *
 * Emits, per instruction, M1's observations tagged Base and the
 * observations exclusive to M2 tagged RefinedOnly.  Requires (and
 * asserts) the Projection Assumption direction needed here: every M1
 * observation is also an M2 observation.
 */
class RefinementPair : public sym::Annotator
{
  public:
    RefinementPair(std::unique_ptr<sym::Annotator> m1,
                   std::unique_ptr<sym::Annotator> m2)
        : m1(std::move(m1)), m2(std::move(m2))
    {}

    std::string
    name() const override
    {
        return m1->name() + "/" + m2->name();
    }

    void observe(expr::ExprContext &ctx, const sym::InstrContext &ic,
                 std::vector<sym::Obs> &out) const override;

  private:
    std::unique_ptr<sym::Annotator> m1;
    std::unique_ptr<sym::Annotator> m2;
};

} // namespace scamv::obs

#endif // SCAMV_OBS_MODELS_HH
