/**
 * @file
 * Symbolic execution of BIR programs with observation annotation.
 *
 * Executes a (possibly speculatively-instrumented) program on symbolic
 * inputs, exploring every execution path.  Each terminating path
 * yields a PathResult: the path condition and the ordered list of
 * tagged symbolic observations (Section 2.3).  Observation content is
 * supplied by an Annotator, the interface implemented by the
 * observational models in src/obs.
 *
 * Transient (shadow) instructions operate on a shadow copy of the
 * register file that is (re-)initialized from the architectural
 * registers whenever a shadow block is entered, mirroring Fig. 4's
 * "copy of the real state at the time of branch prediction".  Shadow
 * stores do not modify memory; their address is still presented to the
 * annotator.  The executor tracks, per shadow register, whether its
 * value depends on the result of a transient load — the hardware
 * capability boundary probed in Section 6.5.
 */

#ifndef SCAMV_SYM_SYMEXEC_HH
#define SCAMV_SYM_SYMEXEC_HH

#include <string>
#include <vector>

#include "bir/bir.hh"
#include "expr/expr.hh"

namespace scamv::sym {

using expr::Expr;

/** Observation tags implementing the projection of Section 5.1. */
enum class ObsTag : std::uint8_t {
    Base,       ///< belongs to the model under validation (and M2)
    RefinedOnly ///< added by the refined model M2
};

/** One symbolic observation. */
struct Obs {
    ObsTag tag = ObsTag::Base;
    Expr value = nullptr;
    /** Debug label, e.g. "pc", "load-addr", "transient-load-addr". */
    const char *note = "";
};

/** Per-instruction context handed to the annotator. */
struct InstrContext {
    const bir::Instr *instr = nullptr;
    int index = 0;              ///< index in the executed program
    bool transient = false;     ///< shadow instruction
    Expr addr = nullptr;        ///< memory address (Load/Store)
    Expr value = nullptr;       ///< loaded/stored value
    bool isBranch = false;
    bool branchTaken = false;   ///< direction taken on this path
    Expr branchCond = nullptr;  ///< predicate of the *taken* direction
    /** Number of transient loads already seen in this shadow block. */
    int transientLoadOrdinal = 0;
    /** Address depends on the result of an earlier transient load. */
    bool addrDependsOnTransientLoad = false;
};

/** Observation-producing model; implementations live in src/obs. */
class Annotator
{
  public:
    virtual ~Annotator() = default;

    /** Human-readable model name ("Mct", "Mspec", ...). */
    virtual std::string name() const = 0;

    /** Emit the observations this model makes for one instruction. */
    virtual void observe(expr::ExprContext &ctx, const InstrContext &ic,
                         std::vector<Obs> &out) const = 0;
};

/** Result of symbolically executing one path. */
struct PathResult {
    Expr cond = nullptr;            ///< path condition
    std::vector<Obs> obs;           ///< tagged observation list
    std::vector<bool> decisions;    ///< branch outcomes in order
    /** Architectural load/store address expressions, in order. */
    std::vector<Expr> memAddrs;
    /** Transient load address expressions, in order. */
    std::vector<Expr> transientLoadAddrs;

    /** @return the observations with the given tag, in order. */
    std::vector<Obs> project(ObsTag tag) const;

    /** @return a short path id like "TF" (taken, not-taken). */
    std::string pathId() const;
};

/** Symbolic input naming scheme: register and memory variable names. */
struct SymNames {
    /** Suffix appended to every variable ("_1" for state s1). */
    std::string suffix;

    std::string
    reg(bir::Reg r) const
    {
        return "x" + std::to_string(r) + suffix;
    }

    std::string mem() const { return "mem" + suffix; }
};

/** Configuration of the symbolic executor. */
struct SymExecConfig {
    /** Abort a path after this many executed instructions. */
    int maxSteps = 4096;
    /** Abort exploration after this many paths. */
    int maxPaths = 64;
};

/**
 * Symbolically execute `p`, observing through `annotator`.
 *
 * Register x_i is bound to variable names.reg(i) and memory to
 * names.mem().  @return one PathResult per terminating path.
 */
std::vector<PathResult> execute(expr::ExprContext &ctx,
                                const bir::Program &p,
                                const Annotator &annotator,
                                const SymNames &names,
                                const SymExecConfig &config = {});

} // namespace scamv::sym

#endif // SCAMV_SYM_SYMEXEC_HH
