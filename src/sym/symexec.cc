#include "sym/symexec.hh"

#include <array>
#include <functional>

#include "support/logging.hh"

namespace scamv::sym {

using bir::Instr;
using bir::InstrKind;
using expr::ExprContext;

std::vector<Obs>
PathResult::project(ObsTag tag) const
{
    std::vector<Obs> out;
    for (const Obs &o : obs)
        if (o.tag == tag)
            out.push_back(o);
    return out;
}

std::string
PathResult::pathId() const
{
    std::string id;
    for (bool taken : decisions)
        id += taken ? 'T' : 'F';
    return id.empty() ? "-" : id;
}

namespace {

/** Mutable machine state along one symbolic path.  The register
 * files are fixed-size arrays rather than vectors so forking a path
 * at a branch copies flat storage instead of heap-allocating. */
struct SymState {
    std::array<Expr, bir::kNumRegs> regs{};
    Expr mem = nullptr;
    Expr cond = nullptr;

    // Shadow (transient) execution state.
    bool inShadow = false;
    std::array<Expr, bir::kNumRegs> shadowRegs{};
    std::array<bool, bir::kNumRegs> shadowTaint{}; ///< depends on a
                                                   ///< transient load
    int shadowLoadCount = 0;

    PathResult result;
    int steps = 0;
};

Expr
cmpExpr(ExprContext &ctx, bir::CmpOp op, Expr a, Expr b)
{
    using bir::CmpOp;
    switch (op) {
      case CmpOp::Eq: return ctx.eq(a, b);
      case CmpOp::Ne: return ctx.neq(a, b);
      case CmpOp::Ult: return ctx.ult(a, b);
      case CmpOp::Ule: return ctx.ule(a, b);
      case CmpOp::Ugt: return ctx.ult(b, a);
      case CmpOp::Uge: return ctx.ule(b, a);
      case CmpOp::Slt: return ctx.slt(a, b);
      case CmpOp::Sle: return ctx.sle(a, b);
      case CmpOp::Sgt: return ctx.slt(b, a);
      case CmpOp::Sge: return ctx.sle(b, a);
    }
    SCAMV_PANIC("unknown comparison");
}

Expr
aluExpr(ExprContext &ctx, bir::AluOp op, Expr a, Expr b)
{
    using bir::AluOp;
    switch (op) {
      case AluOp::Add: return ctx.add(a, b);
      case AluOp::Sub: return ctx.sub(a, b);
      case AluOp::And: return ctx.bvAnd(a, b);
      case AluOp::Orr: return ctx.bvOr(a, b);
      case AluOp::Eor: return ctx.bvXor(a, b);
      case AluOp::Lsl: return ctx.shl(a, b);
      case AluOp::Lsr: return ctx.lshr(a, b);
      case AluOp::Asr: return ctx.ashr(a, b);
      case AluOp::Mul: return ctx.mul(a, b);
    }
    SCAMV_PANIC("unknown ALU op");
}

/** Whole-path explorer; recursion depth = number of branches. */
class Explorer
{
  public:
    Explorer(ExprContext &ctx, const bir::Program &p,
             const Annotator &annotator, const SymExecConfig &config)
        : ctx(ctx), prog(p), annotator(annotator), config(config)
    {}

    std::vector<PathResult>
    run(const SymNames &names)
    {
        SymState init;
        for (int r = 0; r < bir::kNumRegs; ++r)
            init.regs[r] = ctx.bvVar(names.reg(r));
        init.mem = ctx.memVar(names.mem());
        init.cond = ctx.tru();
        step(init, 0);
        return std::move(paths);
    }

  private:
    void
    finishPath(SymState &s)
    {
        s.result.cond = s.cond;
        paths.push_back(std::move(s.result));
    }

    void
    step(SymState s, int pc)
    {
        const int n = static_cast<int>(prog.size());
        while (true) {
            if (static_cast<int>(paths.size()) >= config.maxPaths)
                return;
            if (pc >= n) {
                finishPath(s);
                return;
            }
            SCAMV_ASSERT(++s.steps <= config.maxSteps,
                         "symbolic execution step limit (loop?)");
            const Instr &ins = prog[pc];

            if (ins.transient) {
                execTransient(s, ins, pc);
                ++pc;
                continue;
            }
            // Leaving a shadow block re-arms shadow initialization.
            s.inShadow = false;

            InstrContext ic;
            ic.instr = &ins;
            ic.index = pc;

            auto operand2 = [&](const Instr &i) {
                return i.useImm ? ctx.bv(i.imm) : s.regs[i.rm];
            };

            switch (ins.kind) {
              case InstrKind::Alu:
                s.regs[ins.rd] =
                    aluExpr(ctx, ins.aluOp, s.regs[ins.rn], operand2(ins));
                emit(s, ic);
                ++pc;
                break;
              case InstrKind::MovImm:
                s.regs[ins.rd] = ctx.bv(ins.imm);
                emit(s, ic);
                ++pc;
                break;
              case InstrKind::Load: {
                Expr addr = ctx.add(s.regs[ins.rn], operand2(ins));
                Expr val = ctx.read(s.mem, addr);
                s.regs[ins.rd] = val;
                ic.addr = addr;
                ic.value = val;
                s.result.memAddrs.push_back(addr);
                emit(s, ic);
                ++pc;
                break;
              }
              case InstrKind::Store: {
                Expr addr = ctx.add(s.regs[ins.rn], operand2(ins));
                Expr val = s.regs[ins.rd];
                s.mem = ctx.store(s.mem, addr, val);
                ic.addr = addr;
                ic.value = val;
                s.result.memAddrs.push_back(addr);
                emit(s, ic);
                ++pc;
                break;
              }
              case InstrKind::Branch: {
                Expr taken =
                    cmpExpr(ctx, ins.cmpOp, s.regs[ins.rn], operand2(ins));
                Expr notTaken = ctx.lnot(taken);
                ic.isBranch = true;

                // Fork: taken direction.
                if (taken->kind != expr::Kind::BoolConst ||
                    taken->value) {
                    SymState t = s;
                    t.cond = ctx.land(t.cond, taken);
                    t.result.decisions.push_back(true);
                    InstrContext tic = ic;
                    tic.branchTaken = true;
                    tic.branchCond = taken;
                    emit(t, tic);
                    step(std::move(t), ins.target);
                }
                // Not-taken direction.
                if (notTaken->kind != expr::Kind::BoolConst ||
                    notTaken->value) {
                    SymState f = std::move(s);
                    f.cond = ctx.land(f.cond, notTaken);
                    f.result.decisions.push_back(false);
                    InstrContext fic = ic;
                    fic.branchTaken = false;
                    fic.branchCond = notTaken;
                    emit(f, fic);
                    step(std::move(f), pc + 1);
                }
                return;
              }
              case InstrKind::Jump:
                emit(s, ic);
                pc = ins.target;
                break;
              case InstrKind::Halt:
                emit(s, ic);
                finishPath(s);
                return;
            }
        }
    }

    void
    execTransient(SymState &s, const Instr &ins, int pc)
    {
        if (!s.inShadow) {
            // Entering a shadow block: snapshot the architectural
            // registers into the shadow file (Fig. 4).
            s.inShadow = true;
            s.shadowRegs = s.regs;
            s.shadowTaint.fill(false);
            s.shadowLoadCount = 0;
        }

        InstrContext ic;
        ic.instr = &ins;
        ic.index = pc;
        ic.transient = true;
        ic.transientLoadOrdinal = s.shadowLoadCount;

        auto operand2 = [&](const Instr &i) {
            return i.useImm ? ctx.bv(i.imm) : s.shadowRegs[i.rm];
        };
        auto taintOf = [&](const Instr &i) {
            bool t = false;
            for (bir::Reg r : i.sourceRegs())
                t = t || s.shadowTaint[r];
            return t;
        };

        switch (ins.kind) {
          case InstrKind::Alu:
            s.shadowRegs[ins.rd] = aluExpr(ctx, ins.aluOp,
                                           s.shadowRegs[ins.rn],
                                           operand2(ins));
            s.shadowTaint[ins.rd] = taintOf(ins);
            emit(s, ic);
            break;
          case InstrKind::MovImm:
            s.shadowRegs[ins.rd] = ctx.bv(ins.imm);
            s.shadowTaint[ins.rd] = false;
            emit(s, ic);
            break;
          case InstrKind::Load: {
            Expr addr = ctx.add(s.shadowRegs[ins.rn], operand2(ins));
            Expr val = ctx.read(s.mem, addr);
            ic.addr = addr;
            ic.value = val;
            ic.addrDependsOnTransientLoad = taintOf(ins);
            s.result.transientLoadAddrs.push_back(addr);
            emit(s, ic);
            s.shadowRegs[ins.rd] = val;
            s.shadowTaint[ins.rd] = true;
            ++s.shadowLoadCount;
            break;
          }
          case InstrKind::Store: {
            // Shadow stores never reach memory; only their address is
            // potentially observable.
            Expr addr = ctx.add(s.shadowRegs[ins.rn], operand2(ins));
            ic.addr = addr;
            ic.value = s.shadowRegs[ins.rd];
            ic.addrDependsOnTransientLoad = taintOf(ins);
            emit(s, ic);
            break;
          }
          case InstrKind::Branch:
          case InstrKind::Jump:
          case InstrKind::Halt:
            // The instrumentation never copies control flow into
            // shadow blocks.
            SCAMV_PANIC("transient control-flow instruction");
        }
    }

    void
    emit(SymState &s, const InstrContext &ic)
    {
        annotator.observe(ctx, ic, s.result.obs);
    }

    ExprContext &ctx;
    const bir::Program &prog;
    const Annotator &annotator;
    const SymExecConfig &config;
    std::vector<PathResult> paths;
};

} // namespace

std::vector<PathResult>
execute(ExprContext &ctx, const bir::Program &p, const Annotator &annotator,
        const SymNames &names, const SymExecConfig &config)
{
    SCAMV_ASSERT(p.validate().empty(), "symexec: invalid program");
    Explorer explorer(ctx, p, annotator, config);
    return explorer.run(names);
}

} // namespace scamv::sym
