/**
 * @file
 * CDCL SAT solver (MiniSat-style).
 *
 * Backend for the SMT-lite bitvector solver in src/smt, which replaces
 * Z3 in the Scam-V pipeline (see DESIGN.md).  The solver implements
 * two-watched-literal propagation, 1-UIP conflict analysis, VSIDS
 * branching with an indexed max-heap, phase saving with configurable
 * default polarity, and Luby restarts.
 *
 * The default polarity is `false`, so unconstrained variables settle
 * to zero: extracted bitvector models are "canonical" (small, often
 * equal across the two states) exactly like the unguided Z3 baseline
 * the paper argues against — the behaviour refinement is designed to
 * overcome.  Randomized polarities are available for diversification.
 */

#ifndef SCAMV_SAT_SOLVER_HH
#define SCAMV_SAT_SOLVER_HH

#include <cstdint>
#include <vector>

#include "support/rng.hh"

namespace scamv::sat {

/** Variable index, 0-based. */
using Var = std::int32_t;

/** Literal: variable with sign, encoded as 2*var + (negated ? 1 : 0). */
struct Lit {
    std::int32_t x = -2;

    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
};

inline Lit
mkLit(Var v, bool negated = false)
{
    return Lit{2 * v + (negated ? 1 : 0)};
}

inline Lit operator~(Lit l) { return Lit{l.x ^ 1}; }
inline Var var(Lit l) { return l.x >> 1; }
inline bool sign(Lit l) { return l.x & 1; }
/** Undefined literal sentinel. */
constexpr Lit kLitUndef{-2};

/** Tri-state assignment value. */
enum class LBool : std::int8_t { False = 0, True = 1, Undef = 2 };

/** Outcome of a solve() call. */
enum class Result { Sat, Unsat, Unknown };

/** CDCL solver. */
class Solver
{
  public:
    Solver();

    /** Allocate a fresh variable. @return its index. */
    Var newVar();

    /** @return number of allocated variables. */
    int numVars() const { return static_cast<int>(assigns.size()); }

    /**
     * Add a clause (empty clause makes the instance unsat).
     * @return false iff the instance became trivially unsat.
     */
    bool addClause(std::vector<Lit> lits);

    /** Convenience single/binary/ternary clause adders. */
    bool addUnit(Lit a) { return addClause({a}); }
    bool addBinary(Lit a, Lit b) { return addClause({a, b}); }
    bool addTernary(Lit a, Lit b, Lit c) { return addClause({a, b, c}); }

    /**
     * Solve the current formula.
     * @param conflict_budget max conflicts before Unknown (-1: none).
     */
    Result solve(std::int64_t conflict_budget = -1);

    /**
     * Solve under assumptions (checked before deciding).  Assumptions
     * do not persist; state is reset for the next call.
     */
    Result solveAssuming(const std::vector<Lit> &assumptions,
                         std::int64_t conflict_budget = -1);

    /** @return model value of v after Result::Sat. */
    bool modelValue(Var v) const;

    /** Set the saved phase (initial polarity) of a variable. */
    void setPhase(Var v, bool value);

    /** Randomize all saved phases using rng. */
    void randomizePhases(Rng &rng);

    /** Statistics. */
    std::uint64_t conflicts() const { return nConflicts; }
    std::uint64_t decisions() const { return nDecisions; }
    std::uint64_t propagations() const { return nPropagations; }

  private:
    struct Clause {
        std::vector<Lit> lits;
        bool learnt = false;
        double activity = 0.0;
    };
    using ClauseRef = std::int32_t;
    static constexpr ClauseRef kRefUndef = -1;

    struct Watcher {
        ClauseRef cref;
        Lit blocker;
    };

    // ---- Core state --------------------------------------------------
    std::vector<Clause> clauses;
    std::vector<std::vector<Watcher>> watches; // indexed by Lit::x
    std::vector<LBool> assigns;
    std::vector<bool> savedPhase;
    std::vector<int> levels;
    std::vector<ClauseRef> reasons;
    std::vector<Lit> trail;
    std::vector<int> trailLim;
    std::size_t qhead = 0;
    bool okay = true;

    // ---- VSIDS heap ---------------------------------------------------
    std::vector<double> activity;
    std::vector<int> heap;      // heap of vars ordered by activity
    std::vector<int> heapIndex; // var -> position in heap (-1: absent)
    double varInc = 1.0;
    double claInc = 1.0;
    std::uint64_t nLearnt = 0;

    // ---- Statistics ----------------------------------------------------
    std::uint64_t nConflicts = 0;
    std::uint64_t nDecisions = 0;
    std::uint64_t nPropagations = 0;

    // ---- Helpers --------------------------------------------------------
    LBool value(Lit l) const;
    int decisionLevel() const { return static_cast<int>(trailLim.size()); }
    void uncheckedEnqueue(Lit l, ClauseRef from);
    ClauseRef propagate();
    void analyze(ClauseRef confl, std::vector<Lit> &out_learnt,
                 int &out_btlevel);
    void cancelUntil(int level);
    Lit pickBranchLit();
    void attachClause(ClauseRef cref);
    void varBumpActivity(Var v);
    void varDecayActivity();
    void claBumpActivity(Clause &c);
    void reduceDB();

    // heap ops
    void heapInsert(Var v);
    void heapUpdate(Var v);
    Var heapPop();
    bool heapEmpty() const { return heap.empty(); }
    void percolateUp(int i);
    void percolateDown(int i);

    Result search(std::int64_t conflict_budget,
                  const std::vector<Lit> &assumptions);
};

} // namespace scamv::sat

#endif // SCAMV_SAT_SOLVER_HH
