#include "sat/solver.hh"

#include <algorithm>
#include <cmath>

#include "support/faults.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace scamv::sat {

namespace {

/** Luby restart sequence (MiniSat's formulation), value for index x. */
std::int64_t
lubyValue(std::int64_t x)
{
    std::int64_t size = 1;
    std::int64_t seq = 0;
    while (size < x + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        --seq;
        x = x % size;
    }
    return 1LL << seq;
}

constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr std::int64_t kRestartBase = 128;

} // namespace

Solver::Solver() = default;

Var
Solver::newVar()
{
    const Var v = numVars();
    assigns.push_back(LBool::Undef);
    savedPhase.push_back(false);
    levels.push_back(0);
    reasons.push_back(kRefUndef);
    activity.push_back(0.0);
    heapIndex.push_back(-1);
    watches.emplace_back();
    watches.emplace_back();
    heapInsert(v);
    return v;
}

LBool
Solver::value(Lit l) const
{
    LBool v = assigns[var(l)];
    if (v == LBool::Undef)
        return LBool::Undef;
    const bool b = (v == LBool::True) != sign(l);
    return b ? LBool::True : LBool::False;
}

bool
Solver::addClause(std::vector<Lit> lits)
{
    if (!okay)
        return false;
    SCAMV_ASSERT(decisionLevel() == 0, "addClause above level 0");

    // Sort/dedup; drop satisfied clauses and false literals.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::vector<Lit> out;
    Lit prev = kLitUndef;
    for (Lit l : lits) {
        SCAMV_ASSERT(var(l) >= 0 && var(l) < numVars(),
                     "literal for unallocated variable");
        if (value(l) == LBool::True || l == ~prev)
            return true; // clause satisfied or tautological
        if (value(l) != LBool::False && l != prev)
            out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        okay = false;
        return false;
    }
    if (out.size() == 1) {
        uncheckedEnqueue(out[0], kRefUndef);
        okay = (propagate() == kRefUndef);
        return okay;
    }

    clauses.push_back({std::move(out), false, 0.0});
    attachClause(static_cast<ClauseRef>(clauses.size()) - 1);
    return true;
}

void
Solver::attachClause(ClauseRef cref)
{
    const Clause &c = clauses[cref];
    SCAMV_ASSERT(c.lits.size() >= 2, "attach of short clause");
    watches[(~c.lits[0]).x].push_back({cref, c.lits[1]});
    watches[(~c.lits[1]).x].push_back({cref, c.lits[0]});
}

void
Solver::uncheckedEnqueue(Lit l, ClauseRef from)
{
    SCAMV_ASSERT(value(l) == LBool::Undef, "enqueue of assigned literal");
    assigns[var(l)] = sign(l) ? LBool::False : LBool::True;
    levels[var(l)] = decisionLevel();
    reasons[var(l)] = from;
    trail.push_back(l);
}

Solver::ClauseRef
Solver::propagate()
{
    while (qhead < trail.size()) {
        const Lit p = trail[qhead++];
        ++nPropagations;
        std::vector<Watcher> &ws = watches[p.x];
        std::size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == LBool::True) {
                ws[j++] = ws[i++];
                continue;
            }
            Clause &c = clauses[w.cref];
            // Normalize so that the false watched literal is lits[1].
            const Lit false_lit = ~p;
            if (c.lits[0] == false_lit)
                std::swap(c.lits[0], c.lits[1]);
            ++i;

            const Lit first = c.lits[0];
            if (first != w.blocker && value(first) == LBool::True) {
                ws[j++] = {w.cref, first};
                continue;
            }

            // Look for a new literal to watch.
            bool found = false;
            for (std::size_t k = 2; k < c.lits.size(); ++k) {
                if (value(c.lits[k]) != LBool::False) {
                    std::swap(c.lits[1], c.lits[k]);
                    watches[(~c.lits[1]).x].push_back({w.cref, first});
                    found = true;
                    break;
                }
            }
            if (found)
                continue;

            // Unit or conflicting.
            ws[j++] = {w.cref, first};
            if (value(first) == LBool::False) {
                // Conflict: copy remaining watchers and bail out.
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                qhead = trail.size();
                return w.cref;
            }
            uncheckedEnqueue(first, w.cref);
        }
        ws.resize(j);
    }
    return kRefUndef;
}

void
Solver::varBumpActivity(Var v)
{
    activity[v] += varInc;
    if (activity[v] > 1e100) {
        for (double &a : activity)
            a *= 1e-100;
        varInc *= 1e-100;
    }
    if (heapIndex[v] != -1)
        percolateUp(heapIndex[v]);
}

void
Solver::varDecayActivity()
{
    varInc /= kVarDecay;
}

void
Solver::claBumpActivity(Clause &c)
{
    c.activity += claInc;
    if (c.activity > 1e20) {
        for (auto &cl : clauses)
            if (cl.learnt)
                cl.activity *= 1e-20;
        claInc *= 1e-20;
    }
}

void
Solver::analyze(ClauseRef confl, std::vector<Lit> &out_learnt,
                int &out_btlevel)
{
    out_learnt.clear();
    out_learnt.push_back(kLitUndef); // reserve slot for asserting literal

    std::vector<bool> seen(numVars(), false);
    int path_count = 0;
    Lit p = kLitUndef;
    std::size_t index = trail.size();

    do {
        SCAMV_ASSERT(confl != kRefUndef, "analyze: missing reason");
        Clause &c = clauses[confl];
        if (c.learnt)
            claBumpActivity(c);
        const std::size_t start = (p == kLitUndef) ? 0 : 1;
        for (std::size_t k = start; k < c.lits.size(); ++k) {
            const Lit q = c.lits[k];
            if (!seen[var(q)] && levels[var(q)] > 0) {
                varBumpActivity(var(q));
                seen[var(q)] = true;
                if (levels[var(q)] >= decisionLevel())
                    ++path_count;
                else
                    out_learnt.push_back(q);
            }
        }
        // Select next literal on the trail to expand.
        while (!seen[var(trail[index - 1])])
            --index;
        p = trail[index - 1];
        confl = reasons[var(p)];
        seen[var(p)] = false;
        --path_count;
    } while (path_count > 0);
    out_learnt[0] = ~p;

    // Compute backtrack level (second-highest level in the clause).
    if (out_learnt.size() == 1) {
        out_btlevel = 0;
    } else {
        std::size_t max_i = 1;
        for (std::size_t k = 2; k < out_learnt.size(); ++k)
            if (levels[var(out_learnt[k])] >
                levels[var(out_learnt[max_i])])
                max_i = k;
        std::swap(out_learnt[1], out_learnt[max_i]);
        out_btlevel = levels[var(out_learnt[1])];
    }
}

void
Solver::cancelUntil(int level)
{
    if (decisionLevel() <= level)
        return;
    for (std::size_t c = trail.size(); c >
         static_cast<std::size_t>(trailLim[level]); --c) {
        const Var v = var(trail[c - 1]);
        savedPhase[v] = assigns[v] == LBool::True;
        assigns[v] = LBool::Undef;
        reasons[v] = kRefUndef;
        if (heapIndex[v] == -1)
            heapInsert(v);
    }
    trail.resize(trailLim[level]);
    trailLim.resize(level);
    qhead = trail.size();
}

Lit
Solver::pickBranchLit()
{
    while (!heapEmpty()) {
        const Var v = heapPop();
        if (assigns[v] == LBool::Undef) {
            ++nDecisions;
            return mkLit(v, !savedPhase[v]);
        }
    }
    return kLitUndef;
}

void
Solver::reduceDB()
{
    // Remove the least active half of the learnt clauses (keeping
    // reasons).  Simplicity over peak performance: rebuild watches.
    std::vector<bool> is_reason(clauses.size(), false);
    for (Var v = 0; v < numVars(); ++v)
        if (assigns[v] != LBool::Undef && reasons[v] != kRefUndef)
            is_reason[reasons[v]] = true;

    std::vector<double> acts;
    for (std::size_t i = 0; i < clauses.size(); ++i)
        if (clauses[i].learnt && !is_reason[i])
            acts.push_back(clauses[i].activity);
    if (acts.size() < 64)
        return;
    std::nth_element(acts.begin(), acts.begin() + acts.size() / 2,
                     acts.end());
    const double median = acts[acts.size() / 2];

    std::vector<Clause> kept;
    std::vector<ClauseRef> remap(clauses.size(), kRefUndef);
    for (std::size_t i = 0; i < clauses.size(); ++i) {
        const bool drop = clauses[i].learnt && !is_reason[i] &&
                          clauses[i].activity < median;
        if (!drop) {
            remap[i] = static_cast<ClauseRef>(kept.size());
            kept.push_back(std::move(clauses[i]));
        }
    }
    clauses = std::move(kept);
    nLearnt = 0;
    for (const auto &c : clauses)
        nLearnt += c.learnt;
    for (auto &ws : watches)
        ws.clear();
    for (std::size_t i = 0; i < clauses.size(); ++i)
        attachClause(static_cast<ClauseRef>(i));
    for (Var v = 0; v < numVars(); ++v)
        if (reasons[v] != kRefUndef)
            reasons[v] = remap[reasons[v]];
}

Result
Solver::search(std::int64_t conflict_budget,
               const std::vector<Lit> &assumptions)
{
    std::int64_t restart_count = 0;
    std::int64_t conflicts_until_restart =
        kRestartBase * lubyValue(restart_count);
    std::int64_t conflicts_this_restart = 0;
    std::uint64_t learnt_limit = std::max<std::uint64_t>(
        4096, clauses.size() * 2);

    while (true) {
        const ClauseRef confl = propagate();
        if (confl != kRefUndef) {
            ++nConflicts;
            ++conflicts_this_restart;
            if (decisionLevel() == 0) {
                okay = false;
                return Result::Unsat;
            }
            std::vector<Lit> learnt;
            int bt_level = 0;
            analyze(confl, learnt, bt_level);
            cancelUntil(bt_level);
            if (learnt.size() == 1) {
                uncheckedEnqueue(learnt[0], kRefUndef);
            } else {
                clauses.push_back({std::move(learnt), true, 0.0});
                ++nLearnt;
                const ClauseRef cref =
                    static_cast<ClauseRef>(clauses.size()) - 1;
                attachClause(cref);
                claBumpActivity(clauses[cref]);
                uncheckedEnqueue(clauses[cref].lits[0], cref);
            }
            varDecayActivity();
            claInc /= kClauseDecay;

            if (conflict_budget >= 0 &&
                nConflicts >= static_cast<std::uint64_t>(conflict_budget))
                return Result::Unknown;
            continue;
        }

        if (conflicts_this_restart >= conflicts_until_restart) {
            cancelUntil(0);
            ++restart_count;
            conflicts_this_restart = 0;
            conflicts_until_restart =
                kRestartBase * lubyValue(restart_count);
        }

        if (nLearnt > learnt_limit) {
            reduceDB();
            learnt_limit = learnt_limit * 3 / 2;
        }

        // Apply assumptions before free decisions.
        Lit next = kLitUndef;
        while (decisionLevel() < static_cast<int>(assumptions.size())) {
            const Lit a = assumptions[decisionLevel()];
            if (value(a) == LBool::True) {
                trailLim.push_back(static_cast<int>(trail.size()));
            } else if (value(a) == LBool::False) {
                return Result::Unsat; // conflicting assumption
            } else {
                next = a;
                break;
            }
        }
        if (next == kLitUndef)
            next = pickBranchLit();
        if (next == kLitUndef)
            return Result::Sat; // all variables assigned
        trailLim.push_back(static_cast<int>(trail.size()));
        uncheckedEnqueue(next, kRefUndef);
    }
}

Result
Solver::solve(std::int64_t conflict_budget)
{
    return solveAssuming({}, conflict_budget);
}

Result
Solver::solveAssuming(const std::vector<Lit> &assumptions,
                      std::int64_t conflict_budget)
{
    metrics::current().counter("sat.solve_calls").inc();
    if (!okay)
        return Result::Unsat;
    // Injected conflict-budget exhaustion: answer Unknown without
    // searching, exactly as a timed-out query would.
    if (faults::maybeInject(faults::Site::SatTimeout))
        return Result::Unknown;
    const std::uint64_t conflicts0 = nConflicts;
    const std::uint64_t decisions0 = nDecisions;
    const std::uint64_t propagations0 = nPropagations;
    const std::int64_t budget =
        conflict_budget < 0 ? -1 : conflict_budget +
        static_cast<std::int64_t>(nConflicts);
    const Result r = search(budget, assumptions);
    if (r == Result::Sat) {
        // Freeze the model into savedPhase so it survives backtracking.
        for (Var v = 0; v < numVars(); ++v)
            if (assigns[v] != LBool::Undef)
                savedPhase[v] = assigns[v] == LBool::True;
    }
    cancelUntil(0);

    metrics::Registry &reg = metrics::current();
    reg.counter("sat.conflicts").add(nConflicts - conflicts0);
    reg.counter("sat.decisions").add(nDecisions - decisions0);
    reg.counter("sat.propagations").add(nPropagations - propagations0);
    return r;
}

bool
Solver::modelValue(Var v) const
{
    SCAMV_ASSERT(v >= 0 && v < numVars(), "modelValue out of range");
    return savedPhase[v];
}

void
Solver::setPhase(Var v, bool value)
{
    SCAMV_ASSERT(v >= 0 && v < numVars(), "setPhase out of range");
    savedPhase[v] = value;
}

void
Solver::randomizePhases(Rng &rng)
{
    for (Var v = 0; v < numVars(); ++v)
        savedPhase[v] = rng.chance(0.5);
}

// ---- Indexed binary max-heap on activity -------------------------------

void
Solver::heapInsert(Var v)
{
    heapIndex[v] = static_cast<int>(heap.size());
    heap.push_back(v);
    percolateUp(heapIndex[v]);
}

void
Solver::heapUpdate(Var v)
{
    if (heapIndex[v] != -1)
        percolateUp(heapIndex[v]);
}

Var
Solver::heapPop()
{
    const Var top = heap[0];
    heapIndex[top] = -1;
    if (heap.size() > 1) {
        heap[0] = heap.back();
        heapIndex[heap[0]] = 0;
        heap.pop_back();
        percolateDown(0);
    } else {
        heap.pop_back();
    }
    return top;
}

void
Solver::percolateUp(int i)
{
    const Var v = heap[i];
    while (i > 0) {
        const int parent = (i - 1) / 2;
        if (activity[heap[parent]] >= activity[v])
            break;
        heap[i] = heap[parent];
        heapIndex[heap[i]] = i;
        i = parent;
    }
    heap[i] = v;
    heapIndex[v] = i;
}

void
Solver::percolateDown(int i)
{
    const Var v = heap[i];
    const int n = static_cast<int>(heap.size());
    while (true) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n &&
            activity[heap[child + 1]] > activity[heap[child]])
            ++child;
        if (activity[heap[child]] <= activity[v])
            break;
        heap[i] = heap[child];
        heapIndex[heap[i]] = i;
        i = child;
    }
    heap[i] = v;
    heapIndex[v] = i;
}

} // namespace scamv::sat
