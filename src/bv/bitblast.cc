#include "bv/bitblast.hh"

#include "support/logging.hh"

namespace scamv::bv {

using expr::Expr;
using expr::Kind;
using sat::Lit;
using sat::mkLit;

BitBlaster::BitBlaster(sat::Solver &solver) : sat(solver)
{
    trueLit = mkLit(sat.newVar());
    sat.addUnit(trueLit);
}

Lit
BitBlaster::freshLit()
{
    return mkLit(sat.newVar());
}

Lit
BitBlaster::gateAnd(Lit a, Lit b)
{
    if (a == litConst(false) || b == litConst(false))
        return litConst(false);
    if (a == litConst(true))
        return b;
    if (b == litConst(true))
        return a;
    if (a == b)
        return a;
    if (a == ~b)
        return litConst(false);
    Lit c = freshLit();
    sat.addTernary(~a, ~b, c);
    sat.addBinary(a, ~c);
    sat.addBinary(b, ~c);
    return c;
}

Lit
BitBlaster::gateOr(Lit a, Lit b)
{
    return ~gateAnd(~a, ~b);
}

Lit
BitBlaster::gateXor(Lit a, Lit b)
{
    if (a == litConst(false))
        return b;
    if (b == litConst(false))
        return a;
    if (a == litConst(true))
        return ~b;
    if (b == litConst(true))
        return ~a;
    if (a == b)
        return litConst(false);
    if (a == ~b)
        return litConst(true);
    Lit c = freshLit();
    sat.addTernary(~a, ~b, ~c);
    sat.addTernary(a, b, ~c);
    sat.addTernary(~a, b, c);
    sat.addTernary(a, ~b, c);
    return c;
}

Lit
BitBlaster::gateMux(Lit s, Lit t, Lit f)
{
    if (s == litConst(true))
        return t;
    if (s == litConst(false))
        return f;
    if (t == f)
        return t;
    Lit c = freshLit();
    sat.addTernary(~s, ~t, c);
    sat.addTernary(~s, t, ~c);
    sat.addTernary(s, ~f, c);
    sat.addTernary(s, f, ~c);
    return c;
}

Lit
BitBlaster::gateMaj(Lit a, Lit b, Lit c)
{
    if (a == b)
        return a;
    if (a == c)
        return a;
    if (b == c)
        return b;
    if (a == litConst(false))
        return gateAnd(b, c);
    if (a == litConst(true))
        return gateOr(b, c);
    if (b == litConst(false))
        return gateAnd(a, c);
    if (b == litConst(true))
        return gateOr(a, c);
    if (c == litConst(false))
        return gateAnd(a, b);
    if (c == litConst(true))
        return gateOr(a, b);
    Lit m = freshLit();
    sat.addTernary(~a, ~b, m);
    sat.addTernary(~a, ~c, m);
    sat.addTernary(~b, ~c, m);
    sat.addTernary(a, b, ~m);
    sat.addTernary(a, c, ~m);
    sat.addTernary(b, c, ~m);
    return m;
}

Lit
BitBlaster::andReduce(const std::vector<Lit> &ls)
{
    Lit acc = litConst(true);
    for (Lit l : ls)
        acc = gateAnd(acc, l);
    return acc;
}

Lit
BitBlaster::orReduce(const std::vector<Lit> &ls)
{
    Lit acc = litConst(false);
    for (Lit l : ls)
        acc = gateOr(acc, l);
    return acc;
}

BitBlaster::Bits
BitBlaster::adder(const Bits &a, const Bits &b, Lit cin, Lit *carry_out)
{
    Bits sum(kWidth);
    Lit carry = cin;
    for (int i = 0; i < kWidth; ++i) {
        Lit axb = gateXor(a[i], b[i]);
        sum[i] = gateXor(axb, carry);
        carry = gateMaj(a[i], b[i], carry);
    }
    if (carry_out)
        *carry_out = carry;
    return sum;
}

BitBlaster::Bits
BitBlaster::negate(const Bits &a)
{
    Bits na(kWidth);
    for (int i = 0; i < kWidth; ++i)
        na[i] = ~a[i];
    Bits zero(kWidth, litConst(false));
    return adder(na, zero, litConst(true));
}

BitBlaster::Bits
BitBlaster::shifter(const Bits &a, const Bits &amount, bool left,
                    bool arithmetic)
{
    // Barrel shifter over the low 6 amount bits (mod-64 semantics).
    Bits cur = a;
    for (int stage = 0; stage < 6; ++stage) {
        const int k = 1 << stage;
        const Lit sel = amount[stage];
        Bits next(kWidth);
        for (int i = 0; i < kWidth; ++i) {
            Lit shifted;
            if (left) {
                shifted = i >= k ? cur[i - k] : litConst(false);
            } else if (arithmetic) {
                shifted = i + k < kWidth ? cur[i + k] : cur[kWidth - 1];
            } else {
                shifted = i + k < kWidth ? cur[i + k] : litConst(false);
            }
            next[i] = gateMux(sel, shifted, cur[i]);
        }
        cur = std::move(next);
    }
    return cur;
}

Lit
BitBlaster::ultLit(const Bits &a, const Bits &b)
{
    // a < b  iff  no carry out of a + ~b + 1.
    Bits nb(kWidth);
    for (int i = 0; i < kWidth; ++i)
        nb[i] = ~b[i];
    Lit carry = litConst(true);
    for (int i = 0; i < kWidth; ++i)
        carry = gateMaj(a[i], nb[i], carry);
    return ~carry;
}

Lit
BitBlaster::sltLit(const Bits &a, const Bits &b)
{
    // Signs differ: a < b iff a negative.  Same sign: unsigned compare.
    const Lit sa = a[kWidth - 1];
    const Lit sb = b[kWidth - 1];
    const Lit diff = gateXor(sa, sb);
    return gateMux(diff, sa, ultLit(a, b));
}

Lit
BitBlaster::eqLit(const Bits &a, const Bits &b)
{
    std::vector<Lit> eqs(kWidth);
    for (int i = 0; i < kWidth; ++i)
        eqs[i] = ~gateXor(a[i], b[i]);
    return andReduce(eqs);
}

const std::vector<Lit> &
BitBlaster::bvBits(Expr e)
{
    SCAMV_ASSERT(e->sort == expr::Sort::Bv, "bvBits of non-bv");
    auto hit = bvCache.find(e);
    if (hit != bvCache.end())
        return hit->second;

    Bits bits;
    switch (e->kind) {
      case Kind::BvConst:
        bits.resize(kWidth);
        for (int i = 0; i < kWidth; ++i)
            bits[i] = litConst((e->value >> i) & 1);
        break;
      case Kind::BvVar:
        bits.resize(kWidth);
        for (int i = 0; i < kWidth; ++i)
            bits[i] = freshLit();
        break;
      case Kind::Add:
        bits = adder(bvBits(e->kids[0]), bvBits(e->kids[1]),
                     litConst(false));
        break;
      case Kind::Sub: {
        Bits nb(kWidth);
        const Bits &b = bvBits(e->kids[1]);
        for (int i = 0; i < kWidth; ++i)
            nb[i] = ~b[i];
        bits = adder(bvBits(e->kids[0]), nb, litConst(true));
        break;
      }
      case Kind::Mul: {
        const Bits a = bvBits(e->kids[0]);
        const Bits b = bvBits(e->kids[1]);
        Bits acc(kWidth, litConst(false));
        for (int i = 0; i < kWidth; ++i) {
            // acc += b[i] ? (a << i) : 0
            Bits partial(kWidth, litConst(false));
            bool any = false;
            for (int j = i; j < kWidth; ++j) {
                partial[j] = gateAnd(b[i], a[j - i]);
                any = any || partial[j] != litConst(false);
            }
            if (any)
                acc = adder(acc, partial, litConst(false));
        }
        bits = std::move(acc);
        break;
      }
      case Kind::BvAnd:
      case Kind::BvOr:
      case Kind::BvXor: {
        const Bits &a = bvBits(e->kids[0]);
        const Bits &b = bvBits(e->kids[1]);
        bits.resize(kWidth);
        for (int i = 0; i < kWidth; ++i) {
            if (e->kind == Kind::BvAnd)
                bits[i] = gateAnd(a[i], b[i]);
            else if (e->kind == Kind::BvOr)
                bits[i] = gateOr(a[i], b[i]);
            else
                bits[i] = gateXor(a[i], b[i]);
        }
        break;
      }
      case Kind::BvNot: {
        const Bits &a = bvBits(e->kids[0]);
        bits.resize(kWidth);
        for (int i = 0; i < kWidth; ++i)
            bits[i] = ~a[i];
        break;
      }
      case Kind::Neg:
        bits = negate(bvBits(e->kids[0]));
        break;
      case Kind::Shl:
        bits = shifter(bvBits(e->kids[0]), bvBits(e->kids[1]), true,
                       false);
        break;
      case Kind::Lshr:
        bits = shifter(bvBits(e->kids[0]), bvBits(e->kids[1]), false,
                       false);
        break;
      case Kind::Ashr:
        bits = shifter(bvBits(e->kids[0]), bvBits(e->kids[1]), false,
                       true);
        break;
      case Kind::Ite: {
        const Lit s = boolLit(e->kids[0]);
        const Bits &t = bvBits(e->kids[1]);
        const Bits &f = bvBits(e->kids[2]);
        bits.resize(kWidth);
        for (int i = 0; i < kWidth; ++i)
            bits[i] = gateMux(s, t[i], f[i]);
        break;
      }
      case Kind::Read:
        SCAMV_PANIC("bitblast: memory read must be eliminated first "
                    "(see smt::SmtSolver)");
      default:
        SCAMV_PANIC(std::string("bitblast: unexpected bv kind ") +
                    expr::kindName(e->kind));
    }
    auto [it, inserted] = bvCache.emplace(e, std::move(bits));
    SCAMV_ASSERT(inserted, "bvCache collision");
    return it->second;
}

Lit
BitBlaster::boolLit(Expr e)
{
    SCAMV_ASSERT(e->sort == expr::Sort::Bool, "boolLit of non-bool");
    auto hit = boolCache.find(e);
    if (hit != boolCache.end())
        return hit->second;

    Lit l;
    switch (e->kind) {
      case Kind::BoolConst:
        l = litConst(e->value != 0);
        break;
      case Kind::BoolVar:
        l = freshLit();
        break;
      case Kind::Eq: {
        SCAMV_ASSERT(e->kids[0]->sort == expr::Sort::Bv,
                     "bitblast: memory equality unsupported");
        l = eqLit(bvBits(e->kids[0]), bvBits(e->kids[1]));
        break;
      }
      case Kind::Ult:
        l = ultLit(bvBits(e->kids[0]), bvBits(e->kids[1]));
        break;
      case Kind::Ule:
        l = ~ultLit(bvBits(e->kids[1]), bvBits(e->kids[0]));
        break;
      case Kind::Slt:
        l = sltLit(bvBits(e->kids[0]), bvBits(e->kids[1]));
        break;
      case Kind::Sle:
        l = ~sltLit(bvBits(e->kids[1]), bvBits(e->kids[0]));
        break;
      case Kind::And:
        l = gateAnd(boolLit(e->kids[0]), boolLit(e->kids[1]));
        break;
      case Kind::Or:
        l = gateOr(boolLit(e->kids[0]), boolLit(e->kids[1]));
        break;
      case Kind::Not:
        l = ~boolLit(e->kids[0]);
        break;
      case Kind::Implies:
        l = gateOr(~boolLit(e->kids[0]), boolLit(e->kids[1]));
        break;
      default:
        SCAMV_PANIC(std::string("bitblast: unexpected bool kind ") +
                    expr::kindName(e->kind));
    }
    boolCache.emplace(e, l);
    return l;
}

void
BitBlaster::assertTrue(Expr e)
{
    sat.addUnit(boolLit(e));
}

std::uint64_t
BitBlaster::bvModel(Expr e)
{
    const Bits &bits = bvBits(e);
    std::uint64_t v = 0;
    for (int i = 0; i < kWidth; ++i) {
        const Lit l = bits[i];
        bool b = sat.modelValue(sat::var(l));
        if (sat::sign(l))
            b = !b;
        if (b)
            v |= 1ULL << i;
    }
    return v;
}

bool
BitBlaster::boolModel(Expr e)
{
    const Lit l = boolLit(e);
    bool b = sat.modelValue(sat::var(l));
    return sat::sign(l) ? !b : b;
}

} // namespace scamv::bv
