/**
 * @file
 * Tseitin bit-blaster: expression DAG -> CNF over the CDCL solver.
 *
 * All bitvector terms are 64 bits wide (LSB-first literal vectors).
 * Memory reads must have been eliminated before blasting (the SMT
 * facade Ackermannizes them into fresh variables); encountering a
 * Read/Store/MemVar node is a programming error.
 *
 * Supported operators: add/sub/mul/neg, and/or/xor/not, shifts by a
 * variable amount (barrel shifter, amount taken mod 64 like the
 * concrete evaluator), unsigned/signed comparisons, equality, ite, and
 * the boolean connectives.
 */

#ifndef SCAMV_BV_BITBLAST_HH
#define SCAMV_BV_BITBLAST_HH

#include <unordered_map>
#include <vector>

#include "expr/expr.hh"
#include "sat/solver.hh"

namespace scamv::bv {

/** Bit width of all bitvector terms. */
constexpr int kWidth = 64;

/** Expression-to-CNF encoder bound to one sat::Solver. */
class BitBlaster
{
  public:
    explicit BitBlaster(sat::Solver &solver);

    /** Assert a boolean-sorted expression at the top level. */
    void assertTrue(expr::Expr e);

    /** @return the literal encoding a boolean-sorted expression. */
    sat::Lit boolLit(expr::Expr e);

    /** @return the LSB-first literal vector of a bv-sorted term. */
    const std::vector<sat::Lit> &bvBits(expr::Expr e);

    /** @return concrete value of a bv term under the solver model. */
    std::uint64_t bvModel(expr::Expr e);

    /** @return concrete value of a bool term under the solver model. */
    bool boolModel(expr::Expr e);

    /** Constant-true literal of this encoder. */
    sat::Lit litTrue() const { return trueLit; }

    sat::Solver &solver() { return sat; }

  private:
    sat::Lit freshLit();
    sat::Lit litConst(bool b) { return b ? trueLit : ~trueLit; }

    // Gate encoders (return output literal, adding Tseitin clauses).
    sat::Lit gateAnd(sat::Lit a, sat::Lit b);
    sat::Lit gateOr(sat::Lit a, sat::Lit b);
    sat::Lit gateXor(sat::Lit a, sat::Lit b);
    sat::Lit gateMux(sat::Lit s, sat::Lit t, sat::Lit f);
    sat::Lit gateMaj(sat::Lit a, sat::Lit b, sat::Lit c);
    sat::Lit andReduce(const std::vector<sat::Lit> &ls);
    sat::Lit orReduce(const std::vector<sat::Lit> &ls);

    using Bits = std::vector<sat::Lit>;
    /** a + b + cin; if carry_out non-null, receives the carry. */
    Bits adder(const Bits &a, const Bits &b, sat::Lit cin,
               sat::Lit *carry_out = nullptr);
    Bits negate(const Bits &a);
    Bits shifter(const Bits &a, const Bits &amount, bool left,
                 bool arithmetic);
    sat::Lit ultLit(const Bits &a, const Bits &b);
    sat::Lit sltLit(const Bits &a, const Bits &b);
    sat::Lit eqLit(const Bits &a, const Bits &b);

    sat::Solver &sat;
    sat::Lit trueLit;
    std::unordered_map<expr::Expr, Bits> bvCache;
    std::unordered_map<expr::Expr, sat::Lit> boolCache;
};

} // namespace scamv::bv

#endif // SCAMV_BV_BITBLAST_HH
