/**
 * @file
 * Counterexample minimizer (triage stage 2).
 *
 * Shrinks a confirmed counterexample — a (program, test case) pair
 * the experiment platform classifies as `Counterexample` — to a
 * minimal leaking core with Zeller/Hildebrandt delta debugging:
 * ddmin over the program's statements first, then over the initial
 * state's atoms (registers and memory entries), then a greedy
 * bit-clearing pass over the surviving values.  Every candidate is
 * re-validated through the same single-experiment API the campaign
 * used to confirm the original (`harness::Platform::runExperiment`),
 * so a reduction is kept only when it still reproduces the leak.
 *
 * Determinism: each candidate evaluation constructs a fresh
 * `Platform` from a seed derived only from `MinimizeConfig::seed`, and
 * the whole shrink runs under a scratch deterministic metrics registry
 * and a fault-injection suppression scope — the minimizer never
 * touches the task's RNG streams, the solver, the query cache or the
 * fault plan's attempt counters, which is what keeps campaign
 * artifacts byte-identical whether or not minimization runs between
 * programs on different threads.
 */

#ifndef SCAMV_TRIAGE_MINIMIZE_HH
#define SCAMV_TRIAGE_MINIMIZE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bir/bir.hh"
#include "harness/platform.hh"

namespace scamv::triage {

/** Subset of n items under reduction: keep[i] == item i retained. */
using KeepMask = std::vector<bool>;

/** Interestingness test: true when the kept subset still "fails"
 *  (for us: still reproduces the counterexample). */
using Predicate = std::function<bool(const KeepMask &)>;

/**
 * Classic ddmin over `n` items.  The predicate must hold for the
 * all-true mask (caller's responsibility).  Decrements `evalBudget`
 * once per predicate evaluation and stops shrinking when it hits 0 —
 * the result is then still a valid (just possibly non-minimal)
 * reduction.  With budget to spare the result is 1-minimal: removing
 * any single kept item makes the predicate fail.
 */
KeepMask ddmin(int n, const Predicate &pred, int &evalBudget);

/**
 * Drop the instructions with keep[i] == false, remapping branch/jump
 * targets: a target is moved to the first surviving instruction at or
 * after it (targets one past the end stay one past the new end).  The
 * result may fail `validate()` — e.g. a dropped trailing halt — and
 * the minimizer treats invalid candidates as uninteresting.
 */
bir::Program dropInstrs(const bir::Program &p, const KeepMask &keep);

/** How to re-validate candidates. */
struct MinimizeConfig {
    /** Platform the counterexample was confirmed on. */
    harness::PlatformConfig platform;
    /** Seed for the evaluation platforms (derive from the campaign's
     *  program seed for reproducibility). */
    std::uint64_t seed = 1;
    /** Predictor-training input, when the campaign used one. */
    std::optional<harness::ProgramInput> training;
    /** Maximum predicate evaluations across all stages. */
    int evalBudget = 384;
};

/** A shrunk counterexample. */
struct MinimizeResult {
    bir::Program program;
    harness::TestCase tc;
    /** Predicate evaluations actually spent. */
    int evalsUsed = 0;
};

/**
 * Shrink (prog, tc).  If the evaluation platform cannot reproduce the
 * original counterexample (possible under nonzero noiseProbability),
 * the inputs are returned unshrunk — degradation, never corruption.
 */
MinimizeResult minimizeCounterexample(const bir::Program &prog,
                                      const harness::TestCase &tc,
                                      const MinimizeConfig &cfg);

} // namespace scamv::triage

#endif // SCAMV_TRIAGE_MINIMIZE_HH
