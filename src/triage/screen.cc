#include "triage/screen.hh"

namespace scamv::triage {
namespace {

/** Refinement pairs whose refined-only observations come exclusively
 *  from transient (shadow) statements. */
bool
isSpecPair(obs::ModelKind m1, obs::ModelKind m2)
{
    using obs::ModelKind;
    return (m1 == ModelKind::Mct && (m2 == ModelKind::Mspec ||
                                     m2 == ModelKind::Mspec1)) ||
           (m1 == ModelKind::Mpage && m2 == ModelKind::MspecPage);
}

} // namespace

ScreenResult
screenProgram(const bir::Program &model_prog, obs::ModelKind m1,
              obs::ModelKind m2, const obs::ModelParams &params)
{
    ScreenResult res;
    const AbstractResult ar = analyzeProgram(model_prog);
    res.classMask = ar.archClassMask(params.geom);

    const auto boring = [&](const char *reason) {
        res.verdict = ScreenVerdict::Boring;
        res.reason = reason;
    };

    if (m1 == m2) {
        // The refined-only list is empty on every path: every pair is
        // dropped by the relation synthesizer before solving.
        boring("identical-models");
        return res;
    }

    if (isSpecPair(m1, m2)) {
        // The refined-only observations of a speculative pair come
        // only from transient statements (Mspec: any transient
        // access; Mspec1: the first transient load).  Without those
        // statements the refined lists are empty on every path — a
        // purely structural, branch-insensitive criterion.
        bool any_access = false, any_load = false;
        for (const bir::Instr &ins : model_prog.instrs()) {
            if (!ins.transient)
                continue;
            any_access |= ins.isMemAccess();
            any_load |= ins.kind == bir::InstrKind::Load;
        }
        const bool refined_empty =
            m2 == obs::ModelKind::Mspec1 ? !any_load : !any_access;
        if (refined_empty) {
            boring("no-transient");
            return res;
        }
    }

    const bool branchless = model_prog.branchCount() == 0;

    if (m1 == obs::ModelKind::Mpart &&
        m2 == obs::ModelKind::MpartRefined && branchless) {
        // Every reachable address provably inside the attacker window
        // means AR(addr) is true for any initial state: Mpart's
        // ite(AR, addr, 0) degenerates to addr, the base equality
        // pins the addresses, and the refined any-line disequality of
        // the single path pair is unsatisfiable.
        bool contained = true;
        for (const AccessBound &a : ar.accesses) {
            if (a.transient)
                continue; // Mpart observes architectural accesses only
            const std::vector<bool> mask =
                classBound(a.addr, params.geom);
            for (std::uint64_t c = 0; c < params.geom.numSets; ++c) {
                if (mask[c] && (c < params.attacker.loSet ||
                                c > params.attacker.hiSet)) {
                    contained = false;
                    break;
                }
            }
            if (!contained)
                break;
        }
        if (contained) {
            boring("ar-contained");
            return res;
        }
    }

    if (branchless && ar.allConstant()) {
        // A single path pair whose every observation — for any model
        // shape: pc, address, line, page, attacker-conditional — is
        // the same constant on both sides: the refined disequality is
        // unsatisfiable.
        boring("constant-footprint");
        return res;
    }

    return res;
}

} // namespace scamv::triage
