/**
 * @file
 * Abstract address domain for the triage pre-screen.
 *
 * A tiny value analysis over BIR in the spirit of CANAL's LLVM-level
 * cache modeling (arXiv:1807.03329): each register holds an abstract
 * 64-bit value — Top, a small explicit set, or an unsigned interval —
 * and a worklist fixpoint over the CFG (joins at merge points,
 * widening on repeated visits) derives, for every reachable memory
 * access, a sound over-approximation of the addresses it can touch
 * for *any* initial state.  `classBound` projects an abstract address
 * onto the Mline cache-set classes it can reach, which is what both
 * the pre-screen and the adaptive scheduler's class gating consume.
 *
 * Soundness contract: entry registers are Top (initial state is
 * unconstrained), loads produce Top (memory is not modeled), every
 * transfer function over-approximates the concrete wrapping 64-bit
 * semantics of sym/symexec and hw/core.  Shadow (transient)
 * instructions are interpreted exactly as the symbolic executor does:
 * entering a transient run snapshots the architectural registers,
 * transient stores never write, and any architectural instruction
 * ends the run (see src/sym/symexec.cc).
 */

#ifndef SCAMV_TRIAGE_ABSDOM_HH
#define SCAMV_TRIAGE_ABSDOM_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bir/bir.hh"
#include "obs/layout.hh"

namespace scamv::triage {

/** Explicit-set cardinality cap; larger sets hull to an interval. */
constexpr std::size_t kSetCap = 16;

/** Fixpoint visits of one block before joins switch to widening. */
constexpr int kWidenAfter = 4;

/** One abstract 64-bit value: Top, a sorted set, or an interval. */
struct AbsValue {
    enum class Kind { Top, Set, Interval };

    Kind kind = Kind::Top;
    /** Set members, sorted and unique (Kind::Set). */
    std::vector<std::uint64_t> elems;
    /** Unsigned bounds, inclusive (Kind::Interval). */
    std::uint64_t lo = 0;
    std::uint64_t hi = ~0ULL;

    static AbsValue top();
    static AbsValue constant(std::uint64_t c);
    static AbsValue interval(std::uint64_t lo, std::uint64_t hi);
    /** Set from members (sorted/deduped; hulls when over kSetCap). */
    static AbsValue setOf(std::vector<std::uint64_t> members);

    bool isTop() const { return kind == Kind::Top; }
    /** @return the single concrete value, if this is a singleton. */
    std::optional<std::uint64_t> asConstant() const;
    /** @return true when v is a possible concrete value. */
    bool contains(std::uint64_t v) const;
    /** @return true when every concrete value of `other` is one of
     *  ours (other ⊑ this). */
    bool subsumes(const AbsValue &other) const;
    /** Smallest interval covering this value (Top stays Top). */
    AbsValue hull() const;

    std::string toString() const;

    bool operator==(const AbsValue &) const = default;
};

/** Least upper bound. */
AbsValue join(const AbsValue &a, const AbsValue &b);

/** Widening: keeps `prev` when it already covers `next`, else Top —
 *  guarantees fixpoint termination on (hypothetical) CFG cycles. */
AbsValue widen(const AbsValue &prev, const AbsValue &next);

/** Abstract ALU transfer over the wrapping 64-bit semantics. */
AbsValue transfer(bir::AluOp op, const AbsValue &a, const AbsValue &b);

/**
 * Project an abstract address onto cache-set classes: member[c] is
 * true when some concrete address in the abstraction maps to set
 * class c under `geom`.  Top (and any interval spanning at least one
 * full cache's worth of lines) marks every class.
 */
std::vector<bool> classBound(const AbsValue &addr,
                             const obs::CacheGeometry &geom);

/** One reachable memory access with its abstract address. */
struct AccessBound {
    int instrIndex = 0;
    bool transient = false;
    bool isLoad = false;
    AbsValue addr;
};

/** What the fixpoint derived for a program. */
struct AbstractResult {
    /** Every reachable access, architectural and transient, in
     *  instruction order. */
    std::vector<AccessBound> accesses;

    /** @return true when every architectural access address is a
     *  single concrete constant (independent of the initial state). */
    bool allArchConstant() const;
    /** @return true when every access (incl. transient) is constant. */
    bool allConstant() const;
    /** @return union of the class bounds of all architectural
     *  accesses (size geom.numSets; all-false when no accesses). */
    std::vector<bool> archClassMask(const obs::CacheGeometry &geom) const;
};

/**
 * Run the abstract interpretation over `p` (which must validate()).
 * Pure function of the program: no RNG, no clock, no globals.
 */
AbstractResult analyzeProgram(const bir::Program &p);

} // namespace scamv::triage

#endif // SCAMV_TRIAGE_ABSDOM_HH
