#include "triage/absdom.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>

#include "bir/cfg.hh"

namespace scamv::triage {
namespace {

/** Smallest all-ones mask covering x (0 -> 0, 2^63.. -> ~0). */
std::uint64_t
maskAbove(std::uint64_t x)
{
    if (x == 0)
        return 0;
    const int w = std::bit_width(x);
    return w >= 64 ? ~0ULL : (1ULL << w) - 1;
}

/** Concrete wrapping ALU semantics (mirrors hw/sym evaluation). */
std::uint64_t
concrete(bir::AluOp op, std::uint64_t a, std::uint64_t b)
{
    switch (op) {
    case bir::AluOp::Add: return a + b;
    case bir::AluOp::Sub: return a - b;
    case bir::AluOp::And: return a & b;
    case bir::AluOp::Orr: return a | b;
    case bir::AluOp::Eor: return a ^ b;
    case bir::AluOp::Lsl: return b >= 64 ? 0 : a << b;
    case bir::AluOp::Lsr: return b >= 64 ? 0 : a >> b;
    case bir::AluOp::Asr:
        if (b >= 64)
            return static_cast<std::uint64_t>(
                static_cast<std::int64_t>(a) >> 63);
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(a) >> b);
    case bir::AluOp::Mul: return a * b;
    }
    return 0;
}

} // namespace

AbsValue
AbsValue::top()
{
    return AbsValue{};
}

AbsValue
AbsValue::constant(std::uint64_t c)
{
    AbsValue v;
    v.kind = Kind::Set;
    v.elems = {c};
    return v;
}

AbsValue
AbsValue::interval(std::uint64_t lo, std::uint64_t hi)
{
    if (lo > hi)
        return top();
    if (lo == hi)
        return constant(lo);
    AbsValue v;
    v.kind = Kind::Interval;
    v.lo = lo;
    v.hi = hi;
    return v;
}

AbsValue
AbsValue::setOf(std::vector<std::uint64_t> members)
{
    if (members.empty())
        return top(); // no information: never a reachable case
    std::sort(members.begin(), members.end());
    members.erase(std::unique(members.begin(), members.end()),
                  members.end());
    if (members.size() > kSetCap)
        return interval(members.front(), members.back());
    AbsValue v;
    v.kind = Kind::Set;
    v.elems = std::move(members);
    return v;
}

std::optional<std::uint64_t>
AbsValue::asConstant() const
{
    if (kind == Kind::Set && elems.size() == 1)
        return elems.front();
    return std::nullopt;
}

bool
AbsValue::contains(std::uint64_t v) const
{
    switch (kind) {
    case Kind::Top: return true;
    case Kind::Set:
        return std::binary_search(elems.begin(), elems.end(), v);
    case Kind::Interval: return v >= lo && v <= hi;
    }
    return true;
}

bool
AbsValue::subsumes(const AbsValue &other) const
{
    if (kind == Kind::Top)
        return true;
    if (other.kind == Kind::Top)
        return kind == Kind::Interval && lo == 0 && hi == ~0ULL;
    if (other.kind == Kind::Set) {
        for (std::uint64_t v : other.elems)
            if (!contains(v))
                return false;
        return true;
    }
    // other is an interval.
    if (kind == Kind::Interval)
        return lo <= other.lo && other.hi <= hi;
    // Set vs interval: only a small interval can fit in a set.
    if (other.hi - other.lo >= kSetCap)
        return false;
    for (std::uint64_t v = other.lo;; ++v) {
        if (!contains(v))
            return false;
        if (v == other.hi)
            break;
    }
    return true;
}

AbsValue
AbsValue::hull() const
{
    if (kind != Kind::Set)
        return *this;
    return interval(elems.front(), elems.back());
}

std::string
AbsValue::toString() const
{
    char buf[64];
    switch (kind) {
    case Kind::Top: return "T";
    case Kind::Set: {
        std::string out = "{";
        for (std::size_t i = 0; i < elems.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%s%" PRIx64,
                          i ? "," : "", elems[i]);
            out += buf;
        }
        return out + "}";
    }
    case Kind::Interval:
        std::snprintf(buf, sizeof buf, "[%" PRIx64 ",%" PRIx64 "]", lo,
                      hi);
        return buf;
    }
    return "T";
}

AbsValue
join(const AbsValue &a, const AbsValue &b)
{
    if (a.isTop() || b.isTop())
        return AbsValue::top();
    if (a.kind == AbsValue::Kind::Set &&
        b.kind == AbsValue::Kind::Set) {
        std::vector<std::uint64_t> merged = a.elems;
        merged.insert(merged.end(), b.elems.begin(), b.elems.end());
        return AbsValue::setOf(std::move(merged));
    }
    // Note: hull() of a singleton set canonicalizes back to Set kind,
    // so bounds must come from elems there, not the lo/hi fields.
    const auto lo_of = [](const AbsValue &v) {
        return v.kind == AbsValue::Kind::Set ? v.elems.front() : v.lo;
    };
    const auto hi_of = [](const AbsValue &v) {
        return v.kind == AbsValue::Kind::Set ? v.elems.back() : v.hi;
    };
    return AbsValue::interval(std::min(lo_of(a), lo_of(b)),
                              std::max(hi_of(a), hi_of(b)));
}

AbsValue
widen(const AbsValue &prev, const AbsValue &next)
{
    return prev.subsumes(next) ? prev : AbsValue::top();
}

AbsValue
transfer(bir::AluOp op, const AbsValue &a, const AbsValue &b)
{
    // Exact cartesian evaluation while both operands are small sets:
    // concrete wrapping arithmetic on every pair is sound because the
    // simulated machine wraps the same way.
    if (a.kind == AbsValue::Kind::Set &&
        b.kind == AbsValue::Kind::Set &&
        a.elems.size() * b.elems.size() <= 64) {
        std::vector<std::uint64_t> out;
        out.reserve(a.elems.size() * b.elems.size());
        for (std::uint64_t x : a.elems)
            for (std::uint64_t y : b.elems)
                out.push_back(concrete(op, x, y));
        return AbsValue::setOf(std::move(out));
    }

    // Interval arithmetic over [lo, hi] bounds (a singleton set is a
    // one-point interval here).
    struct Bounds {
        bool known;
        std::uint64_t lo, hi;
    };
    const auto bounds_of = [](const AbsValue &v) -> Bounds {
        switch (v.kind) {
        case AbsValue::Kind::Top: return {false, 0, ~0ULL};
        case AbsValue::Kind::Set:
            return {true, v.elems.front(), v.elems.back()};
        case AbsValue::Kind::Interval: return {true, v.lo, v.hi};
        }
        return {false, 0, ~0ULL};
    };
    const Bounds A = bounds_of(a);
    const Bounds B = bounds_of(b);
    const auto k = b.asConstant(); // shift amounts come as immediates

    switch (op) {
    case bir::AluOp::Add:
        if (A.known && B.known && A.hi <= ~0ULL - B.hi)
            return AbsValue::interval(A.lo + B.lo, A.hi + B.hi);
        return AbsValue::top();
    case bir::AluOp::Sub:
        if (A.known && B.known && A.lo >= B.hi)
            return AbsValue::interval(A.lo - B.hi, A.hi - B.lo);
        return AbsValue::top();
    case bir::AluOp::And:
        // x & y <= min(x, y): one bounded operand bounds the result.
        if (A.known || B.known)
            return AbsValue::interval(
                0, std::min(A.known ? A.hi : ~0ULL,
                            B.known ? B.hi : ~0ULL));
        return AbsValue::top();
    case bir::AluOp::Orr:
        if (A.known && B.known)
            return AbsValue::interval(std::max(A.lo, B.lo),
                                      maskAbove(A.hi | B.hi));
        return AbsValue::top();
    case bir::AluOp::Eor:
        if (A.known && B.known)
            return AbsValue::interval(0, maskAbove(A.hi | B.hi));
        return AbsValue::top();
    case bir::AluOp::Lsl:
        if (A.known && k && *k < 64 &&
            (*k == 0 || A.hi <= (~0ULL >> *k)))
            return AbsValue::interval(A.lo << *k, A.hi << *k);
        return AbsValue::top();
    case bir::AluOp::Lsr:
        if (k && *k < 64) {
            if (A.known)
                return AbsValue::interval(A.lo >> *k, A.hi >> *k);
            if (*k > 0)
                return AbsValue::interval(0, ~0ULL >> *k);
        }
        return AbsValue::top();
    case bir::AluOp::Asr:
        // For values below 2^63 an arithmetic shift is a logical one.
        if (A.known && k && *k < 64 && A.hi < (1ULL << 63))
            return AbsValue::interval(A.lo >> *k, A.hi >> *k);
        return AbsValue::top();
    case bir::AluOp::Mul:
        if (A.known && B.known &&
            (A.hi == 0 || B.hi <= ~0ULL / A.hi))
            return AbsValue::interval(A.lo * B.lo, A.hi * B.hi);
        return AbsValue::top();
    }
    return AbsValue::top();
}

std::vector<bool>
classBound(const AbsValue &addr, const obs::CacheGeometry &geom)
{
    std::vector<bool> mask(geom.numSets, false);
    const int shift = geom.lineShift();
    switch (addr.kind) {
    case AbsValue::Kind::Top:
        mask.assign(geom.numSets, true);
        break;
    case AbsValue::Kind::Set:
        for (std::uint64_t v : addr.elems)
            mask[geom.setOf(v)] = true;
        break;
    case AbsValue::Kind::Interval: {
        const std::uint64_t lo_line = addr.lo >> shift;
        const std::uint64_t hi_line = addr.hi >> shift;
        if (hi_line - lo_line >= geom.numSets) {
            mask.assign(geom.numSets, true);
            break;
        }
        for (std::uint64_t l = lo_line;; ++l) {
            mask[l & (geom.numSets - 1)] = true;
            if (l == hi_line)
                break;
        }
        break;
    }
    }
    return mask;
}

bool
AbstractResult::allArchConstant() const
{
    for (const AccessBound &a : accesses)
        if (!a.transient && !a.addr.asConstant())
            return false;
    return true;
}

bool
AbstractResult::allConstant() const
{
    for (const AccessBound &a : accesses)
        if (!a.addr.asConstant())
            return false;
    return true;
}

std::vector<bool>
AbstractResult::archClassMask(const obs::CacheGeometry &geom) const
{
    std::vector<bool> mask(geom.numSets, false);
    for (const AccessBound &a : accesses) {
        if (a.transient)
            continue;
        const std::vector<bool> b = classBound(a.addr, geom);
        for (std::size_t c = 0; c < mask.size(); ++c)
            if (b[c])
                mask[c] = true;
    }
    return mask;
}

namespace {

using State = std::vector<AbsValue>;

AbsValue
operand2(const State &s, const bir::Instr &ins)
{
    return ins.useImm ? AbsValue::constant(ins.imm) : s[ins.rm];
}

/** Architectural transfer of one instruction (shadow instrs skipped
 *  by the caller — they never touch architectural registers). */
void
applyArch(const bir::Instr &ins, State &s)
{
    switch (ins.kind) {
    case bir::InstrKind::Alu:
        s[ins.rd] = transfer(ins.aluOp, s[ins.rn], operand2(s, ins));
        break;
    case bir::InstrKind::MovImm:
        s[ins.rd] = AbsValue::constant(ins.imm);
        break;
    case bir::InstrKind::Load:
        s[ins.rd] = AbsValue::top(); // memory is not modeled
        break;
    case bir::InstrKind::Store:
    case bir::InstrKind::Branch:
    case bir::InstrKind::Jump:
    case bir::InstrKind::Halt:
        break;
    }
}

/**
 * Scan one block with a fixed in-state, recording access bounds.
 * Shadow semantics mirror sym/symexec.cc: the first transient
 * instruction of a run snapshots the architectural registers, any
 * architectural instruction ends the run, transient stores never
 * write, transient load destinations become Top.  A block *starting*
 * mid-run (a branch target spliced into a shadow sequence) has an
 * unknown snapshot point, so its shadow state starts at Top.
 */
void
scanBlock(const bir::Program &p, const bir::BasicBlock &bb, State s,
          std::vector<AccessBound> &out)
{
    bool in_shadow = false;
    State shadow;
    if (p[static_cast<std::size_t>(bb.first)].transient) {
        in_shadow = true;
        shadow.assign(s.size(), AbsValue::top());
    }
    for (int i = bb.first; i <= bb.last; ++i) {
        const bir::Instr &ins = p[static_cast<std::size_t>(i)];
        if (ins.transient) {
            if (!in_shadow) {
                in_shadow = true;
                shadow = s;
            }
            switch (ins.kind) {
            case bir::InstrKind::Alu:
                shadow[ins.rd] = transfer(ins.aluOp, shadow[ins.rn],
                                          operand2(shadow, ins));
                break;
            case bir::InstrKind::MovImm:
                shadow[ins.rd] = AbsValue::constant(ins.imm);
                break;
            case bir::InstrKind::Load:
                out.push_back({i, true, true,
                               transfer(bir::AluOp::Add,
                                        shadow[ins.rn],
                                        operand2(shadow, ins))});
                shadow[ins.rd] = AbsValue::top();
                break;
            case bir::InstrKind::Store:
                out.push_back({i, true, false,
                               transfer(bir::AluOp::Add,
                                        shadow[ins.rn],
                                        operand2(shadow, ins))});
                break;
            default:
                break; // transient control flow never occurs
            }
            continue;
        }
        in_shadow = false;
        if (ins.isMemAccess())
            out.push_back({i, false, ins.kind == bir::InstrKind::Load,
                           transfer(bir::AluOp::Add, s[ins.rn],
                                    operand2(s, ins))});
        applyArch(ins, s);
    }
}

} // namespace

AbstractResult
analyzeProgram(const bir::Program &p)
{
    AbstractResult res;
    if (p.empty())
        return res;
    const bir::Cfg cfg(p);
    const std::vector<bir::BasicBlock> &blocks = cfg.blocks();
    const std::size_t nb = blocks.size();

    const State top_state(bir::kNumRegs, AbsValue::top());
    std::vector<State> in(nb);
    std::vector<bool> has_in(nb, false), queued(nb, false);
    std::vector<int> joins(nb, 0);

    std::size_t entry = nb;
    for (std::size_t b = 0; b < nb; ++b)
        if (blocks[b].first == 0) {
            entry = b;
            break;
        }
    if (entry == nb)
        return res;

    in[entry] = top_state;
    has_in[entry] = true;
    std::vector<std::size_t> worklist{entry};
    queued[entry] = true;
    while (!worklist.empty()) {
        const std::size_t b = worklist.back();
        worklist.pop_back();
        queued[b] = false;

        // Out-state: architectural transfers only (shadow statements
        // never write architectural registers).
        State s = in[b];
        for (int i = blocks[b].first; i <= blocks[b].last; ++i) {
            const bir::Instr &ins = p[static_cast<std::size_t>(i)];
            if (!ins.transient)
                applyArch(ins, s);
        }

        for (int succ : blocks[b].succs) {
            const auto t = static_cast<std::size_t>(succ);
            State next;
            if (!has_in[t]) {
                next = s;
            } else {
                next = in[t];
                for (int r = 0; r < bir::kNumRegs; ++r)
                    next[r] = join(next[r], s[r]);
                if (++joins[t] > kWidenAfter)
                    for (int r = 0; r < bir::kNumRegs; ++r)
                        next[r] = widen(in[t][r], next[r]);
            }
            if (!has_in[t] || next != in[t]) {
                in[t] = std::move(next);
                has_in[t] = true;
                if (!queued[t]) {
                    queued[t] = true;
                    worklist.push_back(t);
                }
            }
        }
    }

    // Blocks are in instruction order, so appending per reachable
    // block yields accesses in instruction order.
    for (std::size_t b = 0; b < nb; ++b)
        if (has_in[b])
            scanBlock(p, blocks[b], in[b], res.accesses);
    return res;
}

} // namespace scamv::triage
