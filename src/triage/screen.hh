/**
 * @file
 * Abstract-cache pre-screen (triage stage 1).
 *
 * Decides, before symbolic execution, whether a generated (and, for
 * speculative models, instrumented) program can possibly produce a
 * refined-model observation difference across the relation's state
 * pairs.  When the abstraction *proves* it cannot, the program is
 * `Boring`: every path pair of the relation is unsatisfiable (or
 * dropped by the synthesizer before solving), so the pipeline may
 * skip symbolic execution, relation synthesis and SMT without
 * changing a single verdict or database record — the screen only
 * skips work that is provably fruitless (ctest's differential test
 * enforces exactly this).
 *
 * The four criteria, each with its soundness argument spelled out in
 * DESIGN.md §13:
 *
 *  - "identical-models":   M1 == M2 — the refined-only observation
 *    list is empty on every path, so the synthesizer drops every
 *    pair.
 *  - "no-transient":       a speculative refinement pair (Mct/Mspec,
 *    Mct/Mspec1, Mpage/MspecPage) over a program with no transient
 *    memory access (respectively: no transient load) — the refined
 *    lists are empty on every path and every pair is dropped.
 *  - "ar-contained":       Mpart/Mpart' over a *branchless* program
 *    whose every reachable access address provably maps into the
 *    attacker window [loSet, hiSet] — AR(addr) is semantically true,
 *    so M1's conditional observation pins the addresses equal and the
 *    refined any-line disequality is unsatisfiable.
 *  - "constant-footprint": a branchless program whose every reachable
 *    access address (architectural and transient) is a single
 *    constant — both sides of the single diagonal path pair observe
 *    identical constants, so the refined disequality is
 *    unsatisfiable.
 *
 * The branchless restriction on the last two is load-bearing: with
 * multiple paths, cross pairs whose refined lists differ in *length*
 * are kept by the synthesizer without the disequality constraint
 * (rel/relation.cc, refinedTriviallyDiffer), so experiments would
 * still run.
 *
 * The screen also exports the architectural class mask of the
 * program (`ScreenResult::classMask`) — computed for every screened
 * program, Boring or not — which the adaptive scheduler consults so
 * coverage draws skip classes the program provably cannot touch.
 */

#ifndef SCAMV_TRIAGE_SCREEN_HH
#define SCAMV_TRIAGE_SCREEN_HH

#include <string>
#include <vector>

#include "bir/bir.hh"
#include "obs/models.hh"
#include "triage/absdom.hh"

namespace scamv::triage {

enum class ScreenVerdict {
    Interesting, ///< the abstraction cannot rule the program out
    Boring       ///< provably no refined observation can differ
};

struct ScreenResult {
    ScreenVerdict verdict = ScreenVerdict::Interesting;
    /** Boring criterion ("identical-models", "no-transient",
     *  "ar-contained", "constant-footprint"); empty if Interesting. */
    std::string reason;
    /** Union class bound of the architectural accesses (size
     *  geom.numSets); consumed by cover::planClassAllowed. */
    std::vector<bool> classMask;
};

/**
 * Screen one program.  `model_prog` is the program as the symbolic
 * executor would see it (instrumented when the configuration needs
 * shadow statements); `m1`/`m2` are the refinement pair.  Pure
 * function of its arguments — no RNG, clock or solver — which is what
 * keeps screened campaigns byte-identical across threads and shards.
 * Only meaningful under refinement (the pipeline never consults the
 * screen without an M2).
 */
ScreenResult screenProgram(const bir::Program &model_prog,
                           obs::ModelKind m1, obs::ModelKind m2,
                           const obs::ModelParams &params);

} // namespace scamv::triage

#endif // SCAMV_TRIAGE_SCREEN_HH
