#include "triage/findings.hh"

#include <bit>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "support/faults.hh"
#include "support/metrics.hh"

namespace scamv::triage {
namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (unsigned char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
emitInput(std::ostringstream &os, const harness::ProgramInput &in)
{
    os << "{\"regs\":{";
    bool first = true;
    for (std::size_t r = 0; r < in.regs.regs.size(); ++r) {
        if (in.regs.regs[r] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << r << "\":\"" << hex(in.regs.regs[r]) << "\"";
    }
    os << "},\"mem\":[";
    for (std::size_t i = 0; i < in.mem.size(); ++i) {
        if (i)
            os << ",";
        os << "[\"" << hex(in.mem[i].first) << "\",\""
           << hex(in.mem[i].second) << "\"]";
    }
    os << "]}";
}

} // namespace

int
stateBitCount(const harness::TestCase &tc)
{
    int bits = 0;
    for (const harness::ProgramInput *in : {&tc.s1, &tc.s2}) {
        for (std::uint64_t v : in->regs.regs)
            bits += std::popcount(v);
        for (const auto &[addr, word] : in->mem)
            bits += std::popcount(addr) + std::popcount(word);
    }
    return bits;
}

std::string
shapeSignature(const bir::Program &p)
{
    std::string sig;
    for (const bir::Instr &ins : p.instrs()) {
        if (!sig.empty())
            sig += ',';
        if (ins.transient)
            sig += "t:";
        switch (ins.kind) {
        case bir::InstrKind::Alu: sig += bir::aluName(ins.aluOp); break;
        case bir::InstrKind::MovImm: sig += "mov"; break;
        case bir::InstrKind::Load: sig += "ld"; break;
        case bir::InstrKind::Store: sig += "st"; break;
        case bir::InstrKind::Branch: sig += "br"; break;
        case bir::InstrKind::Jump: sig += "j"; break;
        case bir::InstrKind::Halt: sig += "halt"; break;
        }
    }
    return sig;
}

std::string
classifyMechanism(const bir::Program &prog, const harness::TestCase &tc,
                  const std::optional<harness::ProgramInput> &training,
                  bool speculativeRefinement,
                  const harness::PlatformConfig &platform,
                  std::uint64_t seed)
{
    if (speculativeRefinement)
        return "speculative_load";

    // Same isolation discipline as the minimizer: the probe run must
    // not perturb the task's metrics or fault attempt counters.
    metrics::Registry scratch(metrics::ClockMode::Deterministic);
    metrics::ScopedRegistry scoped(scratch);
    faults::ScopedSuppress suppress;

    harness::PlatformConfig no_pf = platform;
    no_pf.core.prefetcher.enabled = false;
    harness::Platform probe(no_pf, seed ^ 0x9ef7cbULL);
    const auto result = probe.runExperiment(prog, tc, training);
    return result.verdict != harness::Verdict::Counterexample
               ? "prefetch_spill"
               : "cache_set_collision";
}

std::string
findingsToJson(const std::vector<Finding> &findings)
{
    // signature -> findings, already in program-index order because
    // the pipeline merges findings by program index.
    std::map<std::string, std::vector<const Finding *>> clusters;
    for (const Finding &f : findings)
        clusters[f.signature].push_back(&f);

    std::ostringstream os;
    os << "{\n  \"schema\": \"scamv-findings-v1\",\n"
       << "  \"findings\": " << findings.size() << ",\n"
       << "  \"clusters\": [";
    bool first_cluster = true;
    for (const auto &[signature, members] : clusters) {
        os << (first_cluster ? "\n" : ",\n");
        first_cluster = false;
        os << "    {\n      \"signature\": \"" << jsonEscape(signature)
           << "\",\n      \"mechanism\": \""
           << jsonEscape(members.front()->mechanism)
           << "\",\n      \"count\": " << members.size()
           << ",\n      \"findings\": [";
        bool first = true;
        for (const Finding *f : members) {
            os << (first ? "\n" : ",\n");
            first = false;
            os << "        {\"program_index\": " << f->progIndex
               << ", \"program\": \"" << jsonEscape(f->program)
               << "\", \"minimized\": "
               << (f->minimized ? "true" : "false")
               << ", \"degraded\": " << (f->degraded ? "true" : "false")
               << ", \"instrs_before\": " << f->instrsBefore
               << ", \"instrs_after\": " << f->instrsAfter
               << ", \"state_bits_before\": " << f->stateBitsBefore
               << ", \"state_bits_after\": " << f->stateBitsAfter
               << ",\n         \"core\": \"" << jsonEscape(f->core)
               << "\",\n         \"s1\": ";
            emitInput(os, f->tc.s1);
            os << ", \"s2\": ";
            emitInput(os, f->tc.s2);
            os << "}";
        }
        os << "\n      ]\n    }";
    }
    os << (clusters.empty() ? "]\n}\n" : "\n  ]\n}\n");
    return os.str();
}

bool
writeFindings(const std::vector<Finding> &findings,
              const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << findingsToJson(findings);
    return static_cast<bool>(out);
}

} // namespace scamv::triage
