#include "triage/minimize.hh"

#include <algorithm>
#include <cstdint>

#include "support/faults.hh"
#include "support/metrics.hh"

namespace scamv::triage {
namespace {

KeepMask
maskOf(int n, const std::vector<int> &kept)
{
    KeepMask mask(static_cast<std::size_t>(n), false);
    for (int i : kept)
        mask[static_cast<std::size_t>(i)] = true;
    return mask;
}

} // namespace

KeepMask
ddmin(int n, const Predicate &pred, int &evalBudget)
{
    std::vector<int> current(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        current[static_cast<std::size_t>(i)] = i;

    const auto eval = [&](const std::vector<int> &kept) {
        if (evalBudget <= 0)
            return false;
        --evalBudget;
        return pred(maskOf(n, kept));
    };

    // Complement-reduction loop (classic ddmin without the subset
    // probes, which rarely pay off on leak reproduction predicates).
    std::size_t granularity = 2;
    while (current.size() >= 2 && evalBudget > 0) {
        granularity = std::min(granularity, current.size());
        const std::size_t chunk =
            (current.size() + granularity - 1) / granularity;
        bool reduced = false;
        for (std::size_t start = 0;
             start < current.size() && evalBudget > 0; start += chunk) {
            std::vector<int> complement;
            complement.reserve(current.size());
            for (std::size_t i = 0; i < current.size(); ++i)
                if (i < start || i >= start + chunk)
                    complement.push_back(current[i]);
            if (complement.empty())
                continue;
            if (eval(complement)) {
                current = std::move(complement);
                granularity = std::max<std::size_t>(granularity - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (granularity >= current.size())
                break;
            granularity = std::min(granularity * 2, current.size());
        }
    }

    // Final singleton sweep: guarantees 1-minimality when the budget
    // allows (removing any single kept item falsifies the predicate).
    for (std::size_t i = 0; i < current.size() && current.size() > 1;) {
        if (evalBudget <= 0)
            break;
        std::vector<int> without = current;
        without.erase(without.begin() + static_cast<std::ptrdiff_t>(i));
        if (eval(without))
            current = std::move(without); // re-test the same position
        else
            ++i;
    }

    return maskOf(n, current);
}

bir::Program
dropInstrs(const bir::Program &p, const KeepMask &keep)
{
    const int n = static_cast<int>(p.size());
    // keptBefore[t] = surviving instructions at indices < t, which is
    // exactly the new index of the first survivor at or after t.
    std::vector<int> keptBefore(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i)
        keptBefore[static_cast<std::size_t>(i) + 1] =
            keptBefore[static_cast<std::size_t>(i)] +
            (i < static_cast<int>(keep.size()) && keep[i] ? 1 : 0);

    bir::Program out(p.name());
    for (int i = 0; i < n; ++i) {
        if (i >= static_cast<int>(keep.size()) || !keep[i])
            continue;
        bir::Instr ins = p[static_cast<std::size_t>(i)];
        if (ins.target >= 0 && ins.target <= n)
            ins.target = keptBefore[static_cast<std::size_t>(ins.target)];
        out.push(ins);
    }
    return out;
}

MinimizeResult
minimizeCounterexample(const bir::Program &prog,
                       const harness::TestCase &tc,
                       const MinimizeConfig &cfg)
{
    // Isolation: candidate experiments must not leak instrumentation
    // into the task's registry nor advance fault attempt counters —
    // either would make artifacts depend on whether minimization ran.
    metrics::Registry scratch(metrics::ClockMode::Deterministic);
    metrics::ScopedRegistry scoped(scratch);
    faults::ScopedSuppress suppress;

    MinimizeResult res{prog, tc, 0};
    int budget = cfg.evalBudget;

    const auto reproduces = [&](const bir::Program &cand,
                                const harness::TestCase &ctc) {
        harness::Platform platform(cfg.platform,
                                   cfg.seed ^ 0x7a1a6eULL);
        return platform.runExperiment(cand, ctc, cfg.training)
                   .verdict == harness::Verdict::Counterexample;
    };

    // Baseline: the evaluation platform must itself reproduce the
    // leak, or every reduction test would be meaningless (possible
    // under nonzero noiseProbability) — return the inputs unshrunk.
    if (budget <= 0)
        return res;
    --budget;
    if (!reproduces(prog, tc)) {
        res.evalsUsed = cfg.evalBudget - budget;
        return res;
    }

    // Stage 1: ddmin over statements.
    const Predicate stmtPred = [&](const KeepMask &keep) {
        const bir::Program cand = dropInstrs(prog, keep);
        if (cand.empty() || !cand.validate().empty())
            return false;
        return reproduces(cand, tc);
    };
    const KeepMask keptStmts =
        ddmin(static_cast<int>(prog.size()), stmtPred, budget);
    bir::Program cur = dropInstrs(prog, keptStmts);

    // Stage 2: ddmin over initial-state atoms.  An atom is either
    // "register r is nonzero in some state" (dropping zeroes it in
    // both) or one memory entry of one state (dropping removes it).
    struct Atom {
        enum class Kind { Reg, Mem1, Mem2 } kind;
        int index;
    };
    std::vector<Atom> atoms;
    for (int r = 0; r < bir::kNumRegs; ++r)
        if (tc.s1.regs.regs[static_cast<std::size_t>(r)] != 0 ||
            tc.s2.regs.regs[static_cast<std::size_t>(r)] != 0)
            atoms.push_back({Atom::Kind::Reg, r});
    for (int i = 0; i < static_cast<int>(tc.s1.mem.size()); ++i)
        atoms.push_back({Atom::Kind::Mem1, i});
    for (int i = 0; i < static_cast<int>(tc.s2.mem.size()); ++i)
        atoms.push_back({Atom::Kind::Mem2, i});

    const auto applyAtoms = [&](const KeepMask &keep) {
        harness::TestCase out = tc;
        std::vector<bool> keepMem1(tc.s1.mem.size(), true);
        std::vector<bool> keepMem2(tc.s2.mem.size(), true);
        for (std::size_t i = 0; i < atoms.size(); ++i) {
            if (keep[i])
                continue;
            const Atom &a = atoms[i];
            switch (a.kind) {
            case Atom::Kind::Reg:
                out.s1.regs.regs[static_cast<std::size_t>(a.index)] = 0;
                out.s2.regs.regs[static_cast<std::size_t>(a.index)] = 0;
                break;
            case Atom::Kind::Mem1:
                keepMem1[static_cast<std::size_t>(a.index)] = false;
                break;
            case Atom::Kind::Mem2:
                keepMem2[static_cast<std::size_t>(a.index)] = false;
                break;
            }
        }
        const auto filter = [](const harness::MemInit &mem,
                               const std::vector<bool> &keep_entry) {
            harness::MemInit out_mem;
            for (std::size_t i = 0; i < mem.size(); ++i)
                if (keep_entry[i])
                    out_mem.push_back(mem[i]);
            return out_mem;
        };
        out.s1.mem = filter(tc.s1.mem, keepMem1);
        out.s2.mem = filter(tc.s2.mem, keepMem2);
        return out;
    };

    const Predicate atomPred = [&](const KeepMask &keep) {
        return reproduces(cur, applyAtoms(keep));
    };
    const KeepMask keptAtoms =
        ddmin(static_cast<int>(atoms.size()), atomPred, budget);
    harness::TestCase best = applyAtoms(keptAtoms);

    // Stage 3: greedy bit-clearing over the surviving register and
    // memory *values* (addresses stay put: clearing address bits
    // moves the access, which changes the leak rather than shrinks
    // its witness).
    const auto clearBits = [&](std::uint64_t &slot) {
        for (int b = 63; b >= 0 && budget > 0; --b) {
            const std::uint64_t bit = 1ULL << b;
            if (!(slot & bit))
                continue;
            const std::uint64_t saved = slot;
            slot &= ~bit;
            --budget;
            if (!reproduces(cur, best))
                slot = saved;
        }
    };
    for (int r = 0; r < bir::kNumRegs; ++r) {
        clearBits(best.s1.regs.regs[static_cast<std::size_t>(r)]);
        clearBits(best.s2.regs.regs[static_cast<std::size_t>(r)]);
    }
    for (auto &entry : best.s1.mem)
        clearBits(entry.second);
    for (auto &entry : best.s2.mem)
        clearBits(entry.second);

    res.program = std::move(cur);
    res.tc = std::move(best);
    res.evalsUsed = cfg.evalBudget - budget;
    return res;
}

} // namespace scamv::triage
