/**
 * @file
 * Campaign findings: minimized counterexamples clustered by leak
 * mechanism.
 *
 * Every confirmed counterexample becomes a `Finding` carrying the
 * (possibly minimized) witness program and test case plus a
 * *mechanism signature* — which microarchitectural feature carries
 * the leak (prefetch spill, speculative load, or a plain cache-set
 * collision), concatenated with the shape of the minimized core — so
 * a thousand-program campaign exports as a handful of deduplicated
 * clusters.  The export format is `scamv-findings-v1` JSON, written
 * to `SCAMV_FINDINGS_FILE` by the pipeline; key order and number
 * formatting are fixed so the file is byte-identical for any thread
 * or shard count (findings are ordered by program index, clusters by
 * signature).
 */

#ifndef SCAMV_TRIAGE_FINDINGS_HH
#define SCAMV_TRIAGE_FINDINGS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bir/bir.hh"
#include "harness/platform.hh"

namespace scamv::triage {

/** One confirmed (and usually minimized) leak. */
struct Finding {
    /** Campaign program index (global merge ordering key). */
    int progIndex = 0;
    /** Generated program's name. */
    std::string program;
    /** Leak mechanism: "prefetch_spill", "speculative_load" or
     *  "cache_set_collision". */
    std::string mechanism;
    /** Cluster key: mechanism + "/" + shapeSignature(core). */
    std::string signature;
    /** True when the minimizer shrank the witness. */
    bool minimized = false;
    /** True when minimization was skipped (fault injection) or the
     *  baseline did not reproduce — the original witness is kept. */
    bool degraded = false;
    int instrsBefore = 0;
    int instrsAfter = 0;
    int stateBitsBefore = 0;
    int stateBitsAfter = 0;
    /** Textual assembly of the (minimized) witness program. */
    std::string core;
    /** The (minimized) witness test case. */
    harness::TestCase tc;

    bool operator==(const Finding &) const = default;
};

/** Total set bits across both states' registers and memory words
 *  (addresses and values) — the minimizer's state-size metric. */
int stateBitCount(const harness::TestCase &tc);

/**
 * Canonical shape of a program: comma-separated instruction tokens
 * ("mov", "add", "ld", "st", "br", "j", "halt", ALU ops by mnemonic),
 * transient statements prefixed "t:".  Registers and immediates are
 * deliberately erased so isomorphic leaks cluster together.
 */
std::string shapeSignature(const bir::Program &p);

/**
 * Classify the leak mechanism of a confirmed counterexample.  A
 * speculative refinement pair (Mspec/Mspec1/MspecPage as M2) is
 * "speculative_load" by construction — the refined observations only
 * exist transiently.  Otherwise the witness is re-run on a platform
 * with the prefetcher disabled (fresh deterministic platform derived
 * from `seed`; runs under a scratch registry and fault suppression):
 * if the leak disappears it was a "prefetch_spill", else a plain
 * "cache_set_collision".
 */
std::string classifyMechanism(const bir::Program &prog,
                              const harness::TestCase &tc,
                              const std::optional<harness::ProgramInput> &training,
                              bool speculativeRefinement,
                              const harness::PlatformConfig &platform,
                              std::uint64_t seed);

/**
 * Render findings as `scamv-findings-v1` JSON: clusters sorted by
 * signature, findings within a cluster by program index.  Pure
 * function of the list; fixed key order and hex value formatting
 * make equal lists render byte-identically.
 */
std::string findingsToJson(const std::vector<Finding> &findings);

/** Write `findingsToJson` to `path`.  @return false on I/O failure. */
bool writeFindings(const std::vector<Finding> &findings,
                   const std::string &path);

} // namespace scamv::triage

#endif // SCAMV_TRIAGE_FINDINGS_HH
