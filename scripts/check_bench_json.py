#!/usr/bin/env python3
"""Validate the JSON artifacts emitted by the bench smoke run.

Three shapes are recognized (auto-detected per file):

 - ``BENCH_parallel.json`` from bench/parallel_report.hh: campaign
   speedup entries, each of which must be marked deterministic;
 - ``scamv-qcache-v1`` from bench/qcache_report.hh: query-cache
   on/off comparison; the repeated-query component must show at
   least a 1.5x speedup and the warm campaign must be deterministic;
 - ``scamv-metrics-v1`` from src/support/metrics (SCAMV_METRICS):
   counters, gauges and histograms, with internally consistent
   histogram bucket layouts;
 - ``scamv-coverage-v1`` from src/cover (SCAMV_COVERAGE_FILE or
   bench/coverage_report.hh): per-template coverage-ledger atoms;
   when the bench's ``comparison`` section is present, the adaptive
   scheduler must beat uniform by its declared ``min_ratio``;
 - ``scamv-hotpath-v1`` from bench/hotpath_report.hh: hot-path
   engine comparison (batched simulation + solver modes); every mode
   must carry p50 <= p99 per-program latencies, the end-to-end
   speedup must meet its declared ``min_speedup`` and the modes must
   agree byte-for-byte (``deterministic``);
 - ``scamv-shard-v1`` from bench/shard_report.hh: sharded campaign
   comparison (N concurrent workers + coordinator merge vs the
   1-process reference); at least 2 shards, the end-to-end speedup
   must meet its declared host-adapted ``min_speedup``, and the
   merged artifacts must be byte-identical to the single-process
   run (``deterministic``);
 - ``scamv-triage-v1`` from bench/triage_report.hh: abstract-cache
   pre-screen comparison; the screen must pay for itself (wall-clock
   ``min_speedup`` or ``min_smt_avoided``) and must preserve
   campaign outcomes (``deterministic``);
 - ``scamv-svc-v1`` from bench/svc_report.hh: N standalone campaigns
   vs the same N through the campaign service's shared qcache; the
   sharing must pay for itself (aggregate ``min_speedup`` or
   ``min_solves_avoided``) and every service campaign's artifacts
   must be byte-identical to its standalone run (``deterministic``);
 - ``scamv-front-v1`` from bench/front_report.hh: SC frontend smoke;
   corpus compilation must clear its declared throughput floor,
   independent corpus loads must be byte-identical
   (``deterministic``) and every kernel must round-trip through the
   bir assembler (``round_trip``).

Exit status is non-zero if any file is missing, unparseable or
malformed, which is what makes the CI bench-smoke job a real gate.

Usage: check_bench_json.py FILE [FILE...]
"""

import json
import sys


def fail(path, msg):
    raise SystemExit(f"{path}: {msg}")


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_parallel(path, doc):
    campaigns = doc.get("campaigns")
    if not isinstance(campaigns, dict) or not campaigns:
        fail(path, "no campaigns recorded")
    for name, entry in campaigns.items():
        if not isinstance(entry, dict):
            fail(path, f"campaign {name!r} is not an object")
        for key in ("threads", "serial_s", "parallel_s", "speedup"):
            if not is_num(entry.get(key)):
                fail(path, f"campaign {name!r}: missing numeric {key!r}")
        if entry["threads"] < 1:
            fail(path, f"campaign {name!r}: threads < 1")
        if entry["serial_s"] < 0 or entry["parallel_s"] < 0:
            fail(path, f"campaign {name!r}: negative wall-clock")
        if entry.get("deterministic") is not True:
            fail(path, f"campaign {name!r}: serial/parallel runs "
                       "disagree (deterministic != true)")
    print(f"{path}: OK ({len(campaigns)} campaigns, all deterministic)")


def check_qcache(path, doc):
    components = doc.get("components")
    if not isinstance(components, dict) or not components:
        fail(path, "no components recorded")
    for name, entry in components.items():
        if not isinstance(entry, dict):
            fail(path, f"component {name!r} is not an object")
        for key, value in entry.items():
            if key == "deterministic":
                continue
            if not is_num(value) or value < 0:
                fail(path, f"component {name!r}: {key!r} is not a "
                           "non-negative number")
    rq = components.get("repeated_query")
    if not isinstance(rq, dict):
        fail(path, "missing repeated_query component")
    for key in ("queries", "cache_off_s", "cache_on_s", "speedup",
                "hits", "misses"):
        if not is_num(rq.get(key)):
            fail(path, f"repeated_query: missing numeric {key!r}")
    if rq["speedup"] < 1.5:
        fail(path, f"repeated_query: speedup {rq['speedup']} < 1.5 "
                   "(cache is not paying for itself)")
    if rq["hits"] < 1:
        fail(path, "repeated_query: no cache hits recorded")
    wc = components.get("warm_campaign")
    if isinstance(wc, dict) and wc.get("deterministic") is not True:
        fail(path, "warm_campaign: cold/warm runs disagree "
                   "(deterministic != true)")
    print(f"{path}: OK (repeated_query speedup "
          f"{rq['speedup']:.2f}x, {len(components)} components)")


def check_metrics(path, doc):
    counters = doc.get("counters")
    gauges = doc.get("gauges")
    histograms = doc.get("histograms")
    if not isinstance(counters, dict) or not isinstance(gauges, dict) \
            or not isinstance(histograms, dict):
        fail(path, "missing counters/gauges/histograms objects")
    for name, v in counters.items():
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(path, f"counter {name!r}: not a non-negative integer")
    for name, v in gauges.items():
        if not is_num(v):
            fail(path, f"gauge {name!r}: not a number")
    for name, h in histograms.items():
        bounds = h.get("bounds")
        counts = h.get("counts")
        if not isinstance(bounds, list) or not isinstance(counts, list):
            fail(path, f"histogram {name!r}: missing bounds/counts")
        if len(counts) != len(bounds) + 1:
            fail(path, f"histogram {name!r}: expected "
                       f"{len(bounds) + 1} buckets, got {len(counts)}")
        if bounds != sorted(bounds):
            fail(path, f"histogram {name!r}: bounds not ascending")
        if any(not isinstance(c, int) or c < 0 for c in counts):
            fail(path, f"histogram {name!r}: bad bucket count")
        if not is_num(h.get("sum")) or not isinstance(h.get("count"), int):
            fail(path, f"histogram {name!r}: missing sum/count")
        if sum(counts) != h["count"]:
            fail(path, f"histogram {name!r}: buckets sum to "
                       f"{sum(counts)}, count says {h['count']}")
    if not counters:
        fail(path, "empty counters (campaign recorded nothing?)")
    print(f"{path}: OK ({len(counters)} counters, {len(gauges)} gauges, "
          f"{len(histograms)} histograms)")


def check_coverage(path, doc):
    templates = doc.get("templates")
    if not isinstance(templates, dict) or not templates:
        fail(path, "no templates recorded")
    for name, cell in templates.items():
        if not isinstance(cell, dict):
            fail(path, f"template {name!r} is not an object")
        for key in ("universe", "covered"):
            v = cell.get(key)
            if not isinstance(v, int) or isinstance(v, bool) or v < 0:
                fail(path, f"template {name!r}: {key!r} is not a "
                           "non-negative integer")
        classes = cell.get("classes")
        if not isinstance(classes, dict):
            fail(path, f"template {name!r}: missing classes object")
        hit = 0
        for cls, st in classes.items():
            if not cls.lstrip("-").isdigit():
                fail(path, f"template {name!r}: class key {cls!r} is "
                           "not an integer")
            if not isinstance(st, dict) \
                    or not all(is_num(st.get(k)) for k in
                               ("hits", "draws", "solver_s")):
                fail(path, f"template {name!r}: class {cls!r} is "
                           "missing hits/draws/solver_s")
            if st["hits"] > st["draws"]:
                fail(path, f"template {name!r}: class {cls!r} has "
                           "more hits than draws")
            hit += st["hits"] > 0
        if hit != cell["covered"]:
            fail(path, f"template {name!r}: covered says "
                       f"{cell['covered']}, classes show {hit}")
        if cell["universe"] and cell["covered"] > cell["universe"]:
            fail(path, f"template {name!r}: covered exceeds universe")
        for key in ("path_pairs", "models"):
            if not isinstance(cell.get(key), dict):
                fail(path, f"template {name!r}: missing {key!r} object")
    comparison = doc.get("comparison")
    if comparison is None:
        print(f"{path}: OK ({len(templates)} templates)")
        return
    if not isinstance(comparison, dict):
        fail(path, "comparison is not an object")
    for mode in ("uniform", "adaptive"):
        entry = comparison.get(mode)
        if not isinstance(entry, dict):
            fail(path, f"comparison: missing {mode!r} object")
        for key in ("programs", "classes_covered",
                    "classes_per_program"):
            if not is_num(entry.get(key)):
                fail(path, f"comparison {mode!r}: missing numeric "
                           f"{key!r}")
    ratio = comparison.get("ratio")
    min_ratio = comparison.get("min_ratio")
    if not is_num(ratio) or not is_num(min_ratio):
        fail(path, "comparison: missing numeric ratio/min_ratio")
    if ratio < min_ratio:
        fail(path, f"comparison: adaptive/uniform classes-per-program "
                   f"ratio {ratio} < {min_ratio} (adaptive scheduling "
                   "is not paying for itself)")
    print(f"{path}: OK (adaptive {ratio:.2f}x uniform, "
          f"{len(templates)} templates)")


def check_hotpath(path, doc):
    modes = doc.get("modes")
    if not isinstance(modes, dict) or not modes:
        fail(path, "no modes recorded")
    for name, entry in modes.items():
        if not isinstance(entry, dict):
            fail(path, f"mode {name!r} is not an object")
        if not isinstance(entry.get("solver"), str):
            fail(path, f"mode {name!r}: missing solver name")
        for key in ("sim_batch", "wall_s", "p50_program_s",
                    "p99_program_s", "experiments", "counterexamples"):
            if not is_num(entry.get(key)) or entry[key] < 0:
                fail(path, f"mode {name!r}: {key!r} is not a "
                           "non-negative number")
        if entry["p50_program_s"] > entry["p99_program_s"]:
            fail(path, f"mode {name!r}: p50 {entry['p50_program_s']} "
                       f"exceeds p99 {entry['p99_program_s']}")
    speedup = doc.get("speedup")
    min_speedup = doc.get("min_speedup")
    if not is_num(speedup) or not is_num(min_speedup):
        fail(path, "missing numeric speedup/min_speedup")
    if speedup < min_speedup:
        fail(path, f"speedup {speedup} < {min_speedup} "
                   "(hot-path engine is not paying for itself)")
    if doc.get("deterministic") is not True:
        fail(path, "solver modes disagree (deterministic != true)")
    print(f"{path}: OK (hotpath speedup {speedup:.2f}x, "
          f"{len(modes)} modes, deterministic)")


def check_shard(path, doc):
    shards = doc.get("shards")
    if not isinstance(shards, int) or isinstance(shards, bool) \
            or shards < 2:
        fail(path, "shards is not an integer >= 2 (no fan-out "
                   "was measured)")
    for key in ("single_seconds", "sharded_seconds", "worker_seconds",
                "merge_seconds"):
        if not is_num(doc.get(key)) or doc[key] < 0:
            fail(path, f"{key!r} is not a non-negative number")
    if doc["merge_seconds"] > doc["sharded_seconds"]:
        fail(path, "merge_seconds exceeds sharded_seconds")
    speedup = doc.get("speedup")
    min_speedup = doc.get("min_speedup")
    if not is_num(speedup) or not is_num(min_speedup):
        fail(path, "missing numeric speedup/min_speedup")
    if speedup < min_speedup:
        fail(path, f"speedup {speedup} < {min_speedup} "
                   "(sharding is not paying for itself)")
    if doc.get("deterministic") is not True:
        fail(path, "merged campaign diverges from the single-process "
                   "run (deterministic != true)")
    print(f"{path}: OK (shard speedup {speedup:.2f}x over "
          f"{shards} shards, merge deterministic)")


def check_triage(path, doc):
    screened = doc.get("screened")
    if not isinstance(screened, int) or isinstance(screened, bool) \
            or screened < 1:
        fail(path, "screened is not an integer >= 1 (the pre-screen "
                   "proved nothing boring)")
    for key in ("screen_off_seconds", "screen_on_seconds",
                "smt_queries_off", "smt_queries_on"):
        if not is_num(doc.get(key)) or doc[key] < 0:
            fail(path, f"{key!r} is not a non-negative number")
    speedup = doc.get("speedup")
    min_speedup = doc.get("min_speedup")
    avoided = doc.get("smt_avoided")
    min_avoided = doc.get("min_smt_avoided")
    if not is_num(speedup) or not is_num(min_speedup):
        fail(path, "missing numeric speedup/min_speedup")
    if not is_num(avoided) or not is_num(min_avoided):
        fail(path, "missing numeric smt_avoided/min_smt_avoided")
    if doc["smt_queries_on"] > doc["smt_queries_off"]:
        fail(path, "screened run issued more SMT queries than the "
                   "unscreened one")
    if speedup < min_speedup and avoided < min_avoided:
        fail(path, f"speedup {speedup} < {min_speedup} and "
                   f"smt_avoided {avoided} < {min_avoided} "
                   "(the pre-screen is not paying for itself)")
    if doc.get("deterministic") is not True:
        fail(path, "screened campaign diverges from the unscreened "
                   "one (deterministic != true)")
    print(f"{path}: OK (triage speedup {speedup:.2f}x, "
          f"{100 * avoided:.0f}% SMT avoided, {screened} screened, "
          f"outcome-preserving)")


def check_svc(path, doc):
    campaigns = doc.get("campaigns")
    if not isinstance(campaigns, int) or isinstance(campaigns, bool) \
            or campaigns < 2:
        fail(path, "campaigns is not an integer >= 2 (no "
                   "cross-campaign sharing was measured)")
    for key in ("standalone_seconds", "service_seconds",
                "standalone_misses", "service_misses"):
        if not is_num(doc.get(key)) or doc[key] < 0:
            fail(path, f"{key!r} is not a non-negative number")
    if doc["service_misses"] > doc["standalone_misses"]:
        fail(path, "service run missed the cache more often than "
                   "the standalone runs")
    speedup = doc.get("speedup")
    min_speedup = doc.get("min_speedup")
    avoided = doc.get("solves_avoided")
    min_avoided = doc.get("min_solves_avoided")
    if not is_num(speedup) or not is_num(min_speedup):
        fail(path, "missing numeric speedup/min_speedup")
    if not is_num(avoided) or not is_num(min_avoided):
        fail(path, "missing numeric solves_avoided/"
                   "min_solves_avoided")
    if speedup < min_speedup and avoided < min_avoided:
        fail(path, f"speedup {speedup} < {min_speedup} and "
                   f"solves_avoided {avoided} < {min_avoided} "
                   "(the shared qcache is not paying for itself)")
    if doc.get("deterministic") is not True:
        fail(path, "a service campaign diverges from its standalone "
                   "run (deterministic != true)")
    print(f"{path}: OK (service speedup {speedup:.2f}x over "
          f"{campaigns} campaigns, {100 * avoided:.0f}% solves "
          f"avoided, byte-identical)")


def check_front(path, doc):
    kernels = doc.get("kernels")
    if not isinstance(kernels, int) or isinstance(kernels, bool) \
            or kernels < 1:
        fail(path, "kernels is not an integer >= 1 (empty corpus?)")
    for key in ("instructions", "iterations", "compile_seconds",
                "compiles_per_second"):
        if not is_num(doc.get(key)) or doc[key] < 0:
            fail(path, f"{key!r} is not a non-negative number")
    per_sec = doc.get("compiles_per_second")
    floor = doc.get("min_compiles_per_second")
    if not is_num(floor):
        fail(path, "missing numeric min_compiles_per_second")
    if per_sec < floor:
        fail(path, f"compiles_per_second {per_sec} < {floor} "
                   "(frontend throughput regressed)")
    if doc.get("deterministic") is not True:
        fail(path, "independent corpus loads disagree "
                   "(deterministic != true)")
    if doc.get("round_trip") is not True:
        fail(path, "a kernel fails to round-trip through the bir "
                   "assembler (round_trip != true)")
    print(f"{path}: OK ({kernels} kernels at {per_sec:.0f} "
          f"compiles/s, deterministic, round-trips)")


def check_file(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        fail(path, f"cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(path, f"malformed JSON: {e}")
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") == "scamv-metrics-v1":
        check_metrics(path, doc)
    elif doc.get("schema") == "scamv-qcache-v1":
        check_qcache(path, doc)
    elif doc.get("schema") == "scamv-coverage-v1":
        check_coverage(path, doc)
    elif doc.get("schema") == "scamv-hotpath-v1":
        check_hotpath(path, doc)
    elif doc.get("schema") == "scamv-shard-v1":
        check_shard(path, doc)
    elif doc.get("schema") == "scamv-triage-v1":
        check_triage(path, doc)
    elif doc.get("schema") == "scamv-svc-v1":
        check_svc(path, doc)
    elif doc.get("schema") == "scamv-front-v1":
        check_front(path, doc)
    elif "campaigns" in doc:
        check_parallel(path, doc)
    else:
        fail(path, "unrecognized schema (neither scamv-metrics-v1 "
                   "nor a parallel-bench report)")


def main(argv):
    if len(argv) < 2:
        raise SystemExit(__doc__.strip())
    for path in argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main(sys.argv)
