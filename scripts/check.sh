#!/usr/bin/env bash
#
# CI check: build + full test suite in the default configuration,
# rebuild the concurrency-sensitive tests with ThreadSanitizer
# (SCAMV_ENABLE_TSAN) and run them under a real multi-thread pool,
# then run the full suite under Address+UB Sanitizer
# (SCAMV_ENABLE_ASAN).
#
# Usage: scripts/check.sh [build-dir] [tsan-build-dir] [asan-build-dir]

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TSAN_DIR="${2:-build-tsan}"
ASAN_DIR="${3:-build-asan}"
GENERATOR=()
command -v ninja > /dev/null && GENERATOR=(-G Ninja)
JOBS="$(nproc 2> /dev/null || echo 2)"

echo "== tier-1: configure + build + ctest (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S . "${GENERATOR[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== TSan: thread pool + pipeline tests (${TSAN_DIR}) =="
cmake -B "$TSAN_DIR" -S . "${GENERATOR[@]}" -DSCAMV_ENABLE_TSAN=ON
cmake --build "$TSAN_DIR" -j "$JOBS" \
    --target test_thread_pool test_pipeline test_metrics test_qcache \
    test_cover test_svc

# Force a real multi-thread pool even on single-core CI runners so
# TSan observes genuine cross-thread interleavings.
SCAMV_THREADS=4 "$TSAN_DIR"/tests/test_thread_pool
SCAMV_THREADS=4 "$TSAN_DIR"/tests/test_pipeline \
    --gtest_filter='Pipeline.ThreadCount*:Pipeline.Deterministic*'
SCAMV_THREADS=4 "$TSAN_DIR"/tests/test_metrics \
    --gtest_filter='Metrics.Concurrent*:Metrics.Scoped*:MetricsPipeline.*'
SCAMV_THREADS=4 "$TSAN_DIR"/tests/test_qcache \
    --gtest_filter='Campaign.*:Cache.*'
SCAMV_THREADS=4 "$TSAN_DIR"/tests/test_cover \
    --gtest_filter='CoverPipeline.*:CoverFaultCampaign.*'
# Campaign service: worker fleet + merger thread + socket server.
SCAMV_THREADS=4 "$TSAN_DIR"/tests/test_svc \
    --gtest_filter='SvcTest.*'

echo "== ASan/UBSan: full test suite (${ASAN_DIR}) =="
cmake -B "$ASAN_DIR" -S . "${GENERATOR[@]}" -DSCAMV_ENABLE_ASAN=ON
cmake --build "$ASAN_DIR" -j "$JOBS"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
    ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$JOBS"

echo "== all checks passed =="
