#!/usr/bin/env python3
"""Verify the operator documentation against the code.

The single source of truth for ``SCAMV_*`` environment variables is
the "Environment variables" table in ``README.md``.  This script
fails when the docs and the code drift apart:

 - every variable the code actually reads (a quoted ``"SCAMV_..."``
   string literal in ``src/``) must have a row in the README table;
 - every row in the README table must correspond to a variable read
   somewhere in ``src/`` or ``tests/`` (no stale documentation);
 - the ``SCAMV_FAULT_PLAN`` README row must list exactly the
   canonical fault-site names ``siteName`` returns
   (``src/support/faults.cc``), so a new injection site cannot land
   without its documentation;
 - every ``SCAMV_SVC_*`` variable must additionally have a row in
   the ``OPERATIONS.md`` service-configuration table (the daemon's
   operator manual), and that table must hold no stale rows;
 - every SC kernel in ``examples/corpus/`` must be listed in the
   README corpus table (a ``\`<name>.sc\``` mention), and the README
   must not list kernels that no longer exist — a corpus change
   cannot land without its one-line side-channel story.

Only quoted literals count as usage — prose mentions in comments do
not — so the check tracks real ``getenv``/``envLong``/``envDouble``
lookups.  Build-system options (``SCAMV_ENABLE_*`` CMake flags) are
not environment variables and are ignored.

Exit status is non-zero on any mismatch; run as the CI ``docs-lint``
step and locally via ``python3 scripts/check_docs.py``.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SOURCE_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp"}
USE_RE = re.compile(r'"(SCAMV_[A-Z0-9_]+)"')
ROW_RE = re.compile(r"^\|\s*`(SCAMV_[A-Z0-9_]+)`")


def used_vars(*dirs):
    """Map of variable -> first file using it (quoted literal)."""
    found = {}
    for d in dirs:
        for path in sorted((ROOT / d).rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            for var in USE_RE.findall(path.read_text(encoding="utf-8")):
                found.setdefault(var, path.relative_to(ROOT))
    return found


def documented_vars(readme):
    """Map of variable -> line number of its README table row."""
    found = {}
    for lineno, line in enumerate(
            readme.read_text(encoding="utf-8").splitlines(), 1):
        m = ROW_RE.match(line)
        if m:
            found.setdefault(m.group(1), lineno)
    return found


def canonical_sites():
    """Fault-site names as ``siteName`` returns them (faults.cc)."""
    sites = set()
    for line in (ROOT / "src" / "support" / "faults.cc").read_text(
            encoding="utf-8").splitlines():
        m = re.search(r'case Site::\w+:\s*return "([^"]+)";', line)
        if m:
            sites.add(m.group(1))
    return sites


def fault_row_sites(readme):
    """Site names listed in the README ``SCAMV_FAULT_PLAN`` row."""
    for line in readme.read_text(encoding="utf-8").splitlines():
        if line.startswith("| `SCAMV_FAULT_PLAN`"):
            listed = set(re.findall(r"`([a-z0-9_.]+)`", line))
            listed.discard("all")
            return listed
    return None


def check_fault_sites(readme, errors):
    listed = fault_row_sites(readme)
    if listed is None:
        errors.append("README.md has no `SCAMV_FAULT_PLAN` table row")
        return
    sites = canonical_sites()
    for name in sorted(sites - listed):
        errors.append(
            f"fault site {name!r} (src/support/faults.cc) is missing "
            f"from the README.md SCAMV_FAULT_PLAN row")
    for name in sorted(listed - sites):
        errors.append(
            f"README.md SCAMV_FAULT_PLAN row lists {name!r}, which is "
            f"not a fault site siteName knows")


def check_operations(src_used, errors):
    operations = ROOT / "OPERATIONS.md"
    svc_used = {v for v in src_used if v.startswith("SCAMV_SVC_")}
    if not operations.exists():
        errors.append("OPERATIONS.md is missing (the scamvd operator "
                      "manual documents the SCAMV_SVC_* table)")
        return
    rows = documented_vars(operations)
    for var in sorted(svc_used - set(rows)):
        errors.append(
            f"{var} is read by {src_used[var]} but has no row in the "
            f"OPERATIONS.md service-configuration table")
    for var in sorted({v for v in rows if v.startswith("SCAMV_SVC_")}
                      - svc_used):
        errors.append(
            f"{var} is documented (OPERATIONS.md:{rows[var]}) but no "
            f"code in src/ reads it")


def check_corpus(readme, errors):
    corpus = ROOT / "examples" / "corpus"
    if not corpus.is_dir():
        errors.append("examples/corpus/ is missing (the SC kernel "
                      "corpus the README documents)")
        return
    on_disk = {p.name for p in corpus.glob("*.sc")}
    listed = set(re.findall(r"`([a-z0-9_]+\.sc)`",
                            readme.read_text(encoding="utf-8")))
    for name in sorted(on_disk - listed):
        errors.append(
            f"examples/corpus/{name} is not listed in the README.md "
            f"corpus table")
    for name in sorted(listed - on_disk):
        errors.append(
            f"README.md lists {name!r} but examples/corpus/ has no "
            f"such kernel")


def main():
    readme = ROOT / "README.md"
    src_used = used_vars("src")
    all_used = used_vars("src", "tests")
    documented = documented_vars(readme)

    errors = []
    for var in sorted(set(src_used) - set(documented)):
        errors.append(
            f"{var} is read by {src_used[var]} but has no row in the "
            f"README.md environment-variable table")
    for var in sorted(set(documented) - set(all_used)):
        errors.append(
            f"{var} is documented (README.md:{documented[var]}) but no "
            f"code in src/ or tests/ reads it")
    check_fault_sites(readme, errors)
    check_operations(src_used, errors)
    check_corpus(readme, errors)

    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        raise SystemExit(1)

    test_only = sorted(set(all_used) - set(src_used) - set(documented))
    print(f"check_docs: OK — {len(src_used)} variables used in src/, "
          f"{len(documented)} documented"
          + (f" ({', '.join(test_only)} test-internal, undocumented "
             "by design)" if test_only else ""))


if __name__ == "__main__":
    main()
