/**
 * @file
 * Campaign service tests: scamv-rpc-v1 codec round-trip and damage
 * handling, submission-queue ordering determinism, and the service
 * byte-identity contract (ARCHITECTURE.md, invariant 10) — a
 * campaign submitted through `svc::Service` produces artifacts
 * byte-identical to the same campaign run standalone through the
 * shard worker/merge machinery with an equivalently warmed qcache,
 * across {1,2} concurrent submissions x {cold, warm} x
 * fault-plan-all, with `svc_worker_lost` recovery and
 * `svc_accept_drop` rejection.
 */

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hh"
#include "shard/shard.hh"
#include "support/faults.hh"
#include "support/metrics.hh"
#include "svc/svc.hh"

namespace fs = std::filesystem;
using namespace scamv;

namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return in ? ss.str() : std::string("<unreadable:" + path + ">");
}

/** Fresh per-test scratch directory under the gtest temp root. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = testing::TempDir() + "scamv_svc_" + name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::uint64_t
globalCounter(const std::string &name)
{
    const metrics::Snapshot snap =
        metrics::Registry::global().snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
}

/**
 * Standalone reference: the same campaign run through the shard
 * worker/merge machinery directly — the scamv_worker/scamv_merge CLI
 * path — optionally with every shard seeded from a checkpoint file
 * (the "equivalently warmed cache" of invariant 10).
 */
shard::MergeResult
runStandalone(const svc::SubmissionSpec &spec, int shards,
              const std::string &root,
              const std::string &seed_ckpt = "")
{
    std::error_code ec;
    for (int i = 0; i < shards; ++i) {
        const std::string sdir = shard::shardDir(root, i);
        fs::create_directories(sdir, ec);
        if (!seed_ckpt.empty())
            fs::copy_file(seed_ckpt,
                          sdir + "/" + shard::kQcacheFile,
                          fs::copy_options::overwrite_existing, ec);
    }
    for (int i = 0; i < shards; ++i) {
        core::PipelineConfig cfg = svc::campaignConfig(spec);
        cover::CoverageLedger ledger;
        cfg.coverageLedger = &ledger;
        const shard::WorkerResult res = shard::runWorker(
            cfg, shard::ShardSpec{i, shards},
            shard::shardDir(root, i));
        EXPECT_TRUE(res.ok);
    }
    core::PipelineConfig cfg = svc::campaignConfig(spec);
    cover::CoverageLedger ledger;
    core::ExperimentDb db;
    cfg.coverageLedger = &ledger;
    cfg.database = &db;
    if (spec.minimize)
        cfg.findingsFile = root + "/findings.json";
    shard::MergeOptions opts;
    opts.rerunMissing = true;
    return shard::mergeCampaign(cfg, shards, root, opts);
}

void
expectArtifactsEqual(const std::string &dir, const std::string &ref,
                     bool with_qcache, bool with_findings = false)
{
    std::vector<std::string> files = {
        shard::kMetricsFile, shard::kCoverageFile, shard::kDbFile,
        shard::kStatsFile};
    if (with_qcache)
        files.push_back(shard::kQcacheFile);
    if (with_findings)
        files.push_back("findings.json");
    for (const std::string &f : files)
        EXPECT_EQ(readFile(dir + "/" + f), readFile(ref + "/" + f))
            << "artifact " << f << " differs between " << dir
            << " and " << ref;
}

svc::SubmissionSpec
smallSpec(std::uint64_t seed = 7)
{
    svc::SubmissionSpec spec;
    spec.programs = 6;
    spec.tests = 3;
    spec.seed = seed;
    return spec;
}

class SvcTest : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The byte-identity contract assumes the service fleet and
        // the standalone reference answer environment questions
        // identically; scrub every knob the campaign machinery and
        // the service consult.
        for (const char *var :
             {"SCAMV_QCACHE_MB", "SCAMV_QCACHE_FILE",
              "SCAMV_FAULT_RATE", "SCAMV_FAULT_PLAN",
              "SCAMV_SCHEDULE", "SCAMV_COVERAGE_FILE",
              "SCAMV_METRICS", "SCAMV_METRICS_TABLE",
              "SCAMV_THREADS", "SCAMV_RETRY_MAX", "SCAMV_SOLVER",
              "SCAMV_SHARD", "SCAMV_SHARD_DIR", "SCAMV_TRIAGE",
              "SCAMV_MINIMIZE", "SCAMV_FINDINGS_FILE",
              "SCAMV_SVC_DIR", "SCAMV_SVC_SOCKET",
              "SCAMV_SVC_WORKERS", "SCAMV_SVC_SHARDS",
              "SCAMV_SVC_QUEUE_MAX"})
            unsetenv(var);
    }
};

} // namespace

// ---------------------------------------------------------------
// scamv-rpc-v1 codec

TEST(SvcRpc, PayloadRoundTrip)
{
    const std::vector<svc::Frame> frames = {
        {"PING", {}},
        {"SUBMIT", {"programs=8", "seed=7"}},
        {"OK", {"", "-", "with space", "percent%sign", "a\nb",
                "tab\tfield"}},
        {"PROGRESS", {"1", "running", "3", "8"}},
    };
    for (const svc::Frame &frame : frames) {
        const std::string payload = svc::encodePayload(frame);
        EXPECT_EQ(payload.find('\n'), std::string::npos);
        const auto back = svc::decodePayload(payload);
        ASSERT_TRUE(back.has_value()) << payload;
        EXPECT_EQ(*back, frame);
    }
}

TEST(SvcRpc, PayloadDamageIsRejectedWhole)
{
    const svc::Frame frame{"SUBMIT", {"programs=8", "name with space"}};
    const std::string good = svc::encodePayload(frame);
    ASSERT_TRUE(svc::decodePayload(good).has_value());
    // Any single-byte flip breaks the checksum (payload bytes) or
    // the checksum's own hex encoding; the frame is dropped whole.
    for (std::size_t i = 0; i < good.size(); ++i) {
        std::string bad = good;
        bad[i] = bad[i] == 'x' ? 'y' : 'x';
        EXPECT_FALSE(svc::decodePayload(bad).has_value())
            << "byte " << i;
    }
    EXPECT_FALSE(svc::decodePayload("").has_value());
    EXPECT_FALSE(svc::decodePayload("PING").has_value());
}

TEST(SvcRpc, WireFramingIsIncremental)
{
    const svc::Frame frame{"STATUS", {"42"}};
    const std::string wire = svc::encodeFrame(frame);
    svc::Frame out;
    std::size_t consumed = 0;
    // Every strict prefix wants more bytes; the full buffer decodes.
    for (std::size_t n = 0; n < wire.size(); ++n)
        EXPECT_EQ(svc::decodeFrame(wire.substr(0, n), out, consumed),
                  svc::FrameStatus::NeedMore)
            << "prefix " << n;
    ASSERT_EQ(svc::decodeFrame(wire, out, consumed),
              svc::FrameStatus::Ok);
    EXPECT_EQ(out, frame);
    EXPECT_EQ(consumed, wire.size());

    // Two frames back to back: the first decode consumes exactly one.
    const std::string two = wire + svc::encodeFrame(frame);
    ASSERT_EQ(svc::decodeFrame(two, out, consumed),
              svc::FrameStatus::Ok);
    EXPECT_EQ(consumed, wire.size());

    // Damaged prefix and oversized length are Bad, not NeedMore.
    EXPECT_EQ(svc::decodeFrame("zzzzzzzz\nrest", out, consumed),
              svc::FrameStatus::Bad);
    EXPECT_EQ(svc::decodeFrame("ffffffff\n", out, consumed),
              svc::FrameStatus::Bad);
    std::string flipped = wire;
    flipped[10] = flipped[10] == 'x' ? 'y' : 'x';
    EXPECT_EQ(svc::decodeFrame(flipped, out, consumed),
              svc::FrameStatus::Bad);
}

TEST(SvcRpc, SpecArgsRoundTripAndValidation)
{
    svc::SubmissionSpec spec;
    spec.programs = 12;
    spec.tests = 5;
    spec.seed = 0xdeadbeef;
    spec.adaptive = true;
    spec.line = true;
    spec.priority = 3;
    spec.shards = 4;
    spec.faultRate = 0.25;
    spec.faultSites = "svc_worker_lost,db_write";
    spec.retryMax = 1;
    spec.triage = true;
    spec.minimize = true;

    std::string err;
    const auto back = svc::specFromArgs(svc::specToArgs(spec), err);
    ASSERT_TRUE(back.has_value()) << err;
    EXPECT_EQ(*back, spec);

    for (const char *bad :
         {"programs=0", "programs=x", "nonsense=1", "tests=-3",
          "fault_rate=2", "shards=65", "priority=101", "noequals"}) {
        EXPECT_FALSE(svc::specFromArgs({bad}, err).has_value())
            << bad;
    }
}

TEST(SvcRpc, FaultPlanForCoversSvcSites)
{
    svc::SubmissionSpec spec;
    spec.faultRate = 1.0;
    spec.faultSites = "svc_accept_drop svc_worker_lost";
    const faults::FaultPlan plan = svc::faultPlanFor(spec);
    EXPECT_TRUE(plan.enabled());
    EXPECT_TRUE(plan.covers(faults::Site::SvcAcceptDrop));
    EXPECT_TRUE(plan.covers(faults::Site::SvcWorkerLost));
    EXPECT_FALSE(plan.covers(faults::Site::DbWrite));
    // "all" includes the service sites.
    spec.faultSites = "all";
    EXPECT_TRUE(svc::faultPlanFor(spec).covers(
        faults::Site::SvcWorkerLost));
    // Canonical names round-trip through the site registry.
    EXPECT_EQ(faults::siteFromName("svc_accept_drop"),
              faults::Site::SvcAcceptDrop);
    EXPECT_EQ(faults::siteFromName("svc_worker_lost"),
              faults::Site::SvcWorkerLost);
}

// ---------------------------------------------------------------
// Submission queue

TEST(SvcQueue, PriorityThenFifoDeterministic)
{
    svc::SubmissionQueue q;
    q.push(1, 0);
    q.push(2, 5);
    q.push(3, 0);
    q.push(4, 5);
    q.push(5, -1);
    const std::vector<std::uint64_t> want = {2, 4, 1, 3, 5};
    for (const std::uint64_t id : want) {
        const auto got = q.pop();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, id);
    }
    EXPECT_FALSE(q.pop().has_value());

    // Replaying the same push sequence replays the same pop order.
    svc::SubmissionQueue r;
    r.push(1, 0);
    r.push(2, 5);
    r.push(3, 0);
    r.push(4, 5);
    r.push(5, -1);
    for (const std::uint64_t id : want)
        EXPECT_EQ(r.pop(), id);
}

// ---------------------------------------------------------------
// Service byte-identity (invariant 10)

TEST_F(SvcTest, ColdCampaignMatchesStandalone)
{
    const std::string root = freshDir("cold");
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    std::uint64_t id = 0;
    {
        svc::Service service(cfg);
        const svc::SubmitResult res = service.submit(smallSpec());
        ASSERT_TRUE(res.accepted) << res.error;
        id = res.id;
        EXPECT_TRUE(service.wait(id));
        const auto st = service.status(id);
        ASSERT_TRUE(st.has_value());
        EXPECT_EQ(st->state, svc::SubmissionState::Done);
        EXPECT_EQ(st->programsDone, st->programsTotal);
    }
    runStandalone(smallSpec(), 2, root + "/ref");
    // No cache env: compare the deterministic artifact set.
    expectArtifactsEqual(root + "/svc/campaign-" + std::to_string(id),
                         root + "/ref", /*with_qcache=*/false);
}

TEST_F(SvcTest, SharedCacheSequentialWarmMatrix)
{
    setenv("SCAMV_QCACHE_MB", "8", 1);
    const std::string root = freshDir("warm");
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    {
        svc::Service service(cfg);
        const auto r1 = service.submit(smallSpec());
        ASSERT_TRUE(r1.accepted);
        EXPECT_TRUE(service.wait(r1.id));
        const auto r2 = service.submit(smallSpec());
        ASSERT_TRUE(r2.accepted);
        EXPECT_TRUE(service.wait(r2.id));
        service.drain();
        // The shared checkpoint exists after the ordered folds.
        EXPECT_TRUE(fs::exists(service.checkpointPath()));
    }
    // Reference 1: cold standalone run.
    runStandalone(smallSpec(), 2, root + "/ref1");
    expectArtifactsEqual(root + "/svc/campaign-1", root + "/ref1",
                         /*with_qcache=*/true);
    // Reference 2: standalone run warmed with campaign 1's
    // checkpoint — exactly what the service seeded campaign 2 with.
    runStandalone(smallSpec(), 2, root + "/ref2",
                  root + "/ref1/" + shard::kQcacheFile);
    expectArtifactsEqual(root + "/svc/campaign-2", root + "/ref2",
                         /*with_qcache=*/true);
    // Warm == cold (invariant 5) lifts to the service: both
    // submissions produced identical deterministic artifacts.
    expectArtifactsEqual(root + "/svc/campaign-1",
                         root + "/svc/campaign-2",
                         /*with_qcache=*/false);
    unsetenv("SCAMV_QCACHE_MB");
}

TEST_F(SvcTest, ConcurrentSubmissionsMatchStandalone)
{
    setenv("SCAMV_QCACHE_MB", "8", 1);
    const std::string root = freshDir("concurrent");
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    {
        svc::Service service(cfg);
        // Pre-warm the shared checkpoint, then two concurrent
        // submissions racing over it.
        const auto warm = service.submit(smallSpec(3));
        ASSERT_TRUE(warm.accepted);
        EXPECT_TRUE(service.wait(warm.id));
        const auto ra = service.submit(smallSpec(7));
        const auto rb = service.submit(smallSpec(11));
        ASSERT_TRUE(ra.accepted);
        ASSERT_TRUE(rb.accepted);
        EXPECT_TRUE(service.wait(ra.id));
        EXPECT_TRUE(service.wait(rb.id));
    }
    // Whatever checkpoint each campaign was seeded with, warm ==
    // cold makes the deterministic artifact set byte-identical to a
    // cold standalone run (the qcache checkpoint itself encodes the
    // seeding history and is compared only in the sequential test).
    runStandalone(smallSpec(7), 2, root + "/refa");
    runStandalone(smallSpec(11), 2, root + "/refb");
    expectArtifactsEqual(root + "/svc/campaign-2", root + "/refa",
                         /*with_qcache=*/false);
    expectArtifactsEqual(root + "/svc/campaign-3", root + "/refb",
                         /*with_qcache=*/false);
    unsetenv("SCAMV_QCACHE_MB");
}

TEST_F(SvcTest, FaultPlanAllMatchesStandalone)
{
    // Full fault plan, cache env set: campaigns bypass the cache
    // (resolveCampaignEnv) and the svc sites fire in the service's
    // own accept/worker paths; artifacts must still match the
    // standalone run under the identical plan.
    setenv("SCAMV_QCACHE_MB", "8", 1);
    const std::string root = freshDir("faults");
    svc::SubmissionSpec spec = smallSpec();
    spec.faultRate = 0.05;
    spec.faultSites = "all";
    spec.retryMax = 2;
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    std::uint64_t id = 0;
    {
        svc::Service service(cfg);
        // The plan covers svc_accept_drop, but at 5% per attempt a
        // retried accept (3 deterministic attempts) goes through.
        const svc::SubmitResult res = service.submit(spec);
        ASSERT_TRUE(res.accepted) << res.error;
        id = res.id;
        EXPECT_TRUE(service.wait(id));
    }
    runStandalone(spec, 2, root + "/ref");
    expectArtifactsEqual(root + "/svc/campaign-" + std::to_string(id),
                         root + "/ref", /*with_qcache=*/false);
    unsetenv("SCAMV_QCACHE_MB");
}

TEST_F(SvcTest, WorkerLostRecoveryIsByteIdentical)
{
    const std::string root = freshDir("workerlost");
    svc::SubmissionSpec spec = smallSpec();
    spec.faultRate = 1.0;
    spec.faultSites = "svc_worker_lost";
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    const std::uint64_t lost_before =
        globalCounter("svc.worker_lost");
    std::uint64_t id = 0;
    {
        svc::Service service(cfg);
        const svc::SubmitResult res = service.submit(spec);
        ASSERT_TRUE(res.accepted) << res.error;
        id = res.id;
        // Every shard's artifacts are deleted after its run; the
        // always-on rerunMissing merge path must recover the whole
        // campaign.
        EXPECT_TRUE(service.wait(id));
    }
    EXPECT_EQ(globalCounter("svc.worker_lost"), lost_before + 2);
    // Standalone reference under the same plan: the site never fires
    // outside the service, so this is simply the campaign's bytes.
    runStandalone(spec, 2, root + "/ref");
    expectArtifactsEqual(root + "/svc/campaign-" + std::to_string(id),
                         root + "/ref", /*with_qcache=*/false);
}

TEST_F(SvcTest, AcceptDropRejectsDeterministically)
{
    const std::string root = freshDir("acceptdrop");
    svc::SubmissionSpec spec = smallSpec();
    spec.faultRate = 1.0;
    spec.faultSites = "svc_accept_drop";
    spec.retryMax = 2;
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 1;
    const std::uint64_t drops_before =
        globalCounter("svc.accept_drop");
    svc::Service service(cfg);
    // Rate 1.0 drops every retried attempt: deterministic rejection.
    const svc::SubmitResult res = service.submit(spec);
    EXPECT_FALSE(res.accepted);
    EXPECT_NE(res.error.find("accept_drop"), std::string::npos);
    EXPECT_EQ(globalCounter("svc.accept_drop"), drops_before + 1);
    // A fault-free submission on the same service is unaffected
    // (per-campaign isolation).
    const svc::SubmitResult ok = service.submit(smallSpec());
    ASSERT_TRUE(ok.accepted);
    EXPECT_TRUE(service.wait(ok.id));
}

TEST_F(SvcTest, MinimizeFindingsMatchStandalone)
{
    const std::string root = freshDir("minimize");
    svc::SubmissionSpec spec = smallSpec();
    spec.minimize = true;
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    std::uint64_t id = 0;
    {
        svc::Service service(cfg);
        const svc::SubmitResult res = service.submit(spec);
        ASSERT_TRUE(res.accepted);
        id = res.id;
        EXPECT_TRUE(service.wait(id));
    }
    runStandalone(spec, 2, root + "/ref");
    expectArtifactsEqual(root + "/svc/campaign-" + std::to_string(id),
                         root + "/ref", /*with_qcache=*/false,
                         /*with_findings=*/true);
}

// ---------------------------------------------------------------
// Socket front-end

TEST_F(SvcTest, SocketSubmitWatchDrain)
{
    const std::string root = freshDir("socket");
    const std::string sock = root + "/scamvd.sock";
    svc::ServiceConfig cfg;
    cfg.dir = root + "/svc";
    cfg.workers = 2;
    cfg.shards = 2;
    svc::Service service(cfg);
    std::atomic<bool> stop{false};
    std::thread server([&] {
        EXPECT_TRUE(svc::serveLoop(service, sock, stop));
    });
    // Wait for the socket to appear.
    for (int i = 0; i < 100 && !fs::exists(sock); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));

    svc::Client client;
    ASSERT_TRUE(client.connectTo(sock));
    const auto pong = client.call(svc::Frame{"PING", {}});
    ASSERT_TRUE(pong.has_value());
    EXPECT_EQ(pong->type, "OK");

    const auto bad_status =
        client.call(svc::Frame{"STATUS", {"999"}});
    ASSERT_TRUE(bad_status.has_value());
    EXPECT_EQ(bad_status->type, "ERR");

    const auto submitted = client.call(
        svc::Frame{"SUBMIT", svc::specToArgs(smallSpec())});
    ASSERT_TRUE(submitted.has_value());
    ASSERT_EQ(submitted->type, "OK");
    const std::string id = submitted->args.at(0);

    // WATCH streams PROGRESS frames and finishes with DONE.
    ASSERT_TRUE(client.send(svc::Frame{"WATCH", {id}}));
    bool done = false;
    for (int i = 0; i < 10000 && !done; ++i) {
        const auto frame = client.recv();
        ASSERT_TRUE(frame.has_value());
        if (frame->type == "DONE") {
            EXPECT_EQ(frame->args.at(1), "done");
            done = true;
        } else {
            EXPECT_EQ(frame->type, "PROGRESS");
        }
    }
    EXPECT_TRUE(done);

    // DRAIN drains and stops the serve loop.
    svc::Client drainer;
    ASSERT_TRUE(drainer.connectTo(sock));
    const auto drained = drainer.call(svc::Frame{"DRAIN", {}});
    ASSERT_TRUE(drained.has_value());
    EXPECT_EQ(drained->type, "OK");
    server.join();
    EXPECT_TRUE(stop.load());
}
