/** @file Solver fuzzing: random formulas cross-checked between the
 * concrete evaluator, the CDCL/bit-blasting solver and the repair
 * sampler.  Catches encoding bugs no hand-written case would. */

#include <gtest/gtest.h>

#include <functional>

#include "expr/eval.hh"
#include "smt/sampler.hh"
#include "smt/solver.hh"
#include "support/env.hh"
#include "support/rng.hh"

namespace scamv::smt {
namespace {

using expr::Expr;
using expr::ExprContext;

/**
 * Iteration scale from the validated SCAMV_FUZZ_ITERS environment
 * variable (default 1): the CI nightly-stress job multiplies every
 * fuzz loop by 10x; local debugging can crank it higher.
 */
int
fuzzIters(int base)
{
    static const int scale = static_cast<int>(
        envLong("SCAMV_FUZZ_ITERS", 1, 1000).value_or(1));
    return base * scale;
}

/** Random bitvector term over a small variable pool. */
Expr
randomBv(ExprContext &ctx, Rng &rng, int depth)
{
    if (depth == 0 || rng.chance(0.3)) {
        switch (rng.below(3)) {
          case 0:
            return ctx.bvVar("v" + std::to_string(rng.below(4)));
          case 1:
            return ctx.bv(rng.below(256));
          default:
            return ctx.read(ctx.memVar("m"),
                            ctx.bvVar("v" + std::to_string(
                                               rng.below(4))));
        }
    }
    Expr a = randomBv(ctx, rng, depth - 1);
    Expr b = randomBv(ctx, rng, depth - 1);
    switch (rng.below(8)) {
      case 0: return ctx.add(a, b);
      case 1: return ctx.sub(a, b);
      case 2: return ctx.bvAnd(a, b);
      case 3: return ctx.bvOr(a, b);
      case 4: return ctx.bvXor(a, b);
      case 5: return ctx.bvNot(a);
      case 6: return ctx.lshr(a, ctx.bv(rng.below(10)));
      default: return ctx.shl(a, ctx.bv(rng.below(10)));
    }
}

/** Random boolean formula. */
Expr
randomBool(ExprContext &ctx, Rng &rng, int depth)
{
    if (depth == 0 || rng.chance(0.3)) {
        Expr a = randomBv(ctx, rng, 2);
        Expr b = randomBv(ctx, rng, 2);
        switch (rng.below(5)) {
          case 0: return ctx.eq(a, b);
          case 1: return ctx.ult(a, b);
          case 2: return ctx.ule(a, b);
          case 3: return ctx.slt(a, b);
          default: return ctx.sle(a, b);
        }
    }
    Expr p = randomBool(ctx, rng, depth - 1);
    Expr q = randomBool(ctx, rng, depth - 1);
    switch (rng.below(4)) {
      case 0: return ctx.land(p, q);
      case 1: return ctx.lor(p, q);
      case 2: return ctx.lnot(p);
      default: return ctx.implies(p, q);
    }
}

/** Random concrete assignment over the pool. */
expr::Assignment
randomAssignment(Rng &rng)
{
    expr::Assignment a;
    for (int i = 0; i < 4; ++i)
        a.bvVars["v" + std::to_string(i)] =
            rng.chance(0.5) ? rng.below(512) : rng.next();
    // A handful of memory words; the evaluator defaults the rest to 0.
    for (int i = 0; i < 6; ++i)
        a.mems["m"].storeWord(rng.below(512), rng.below(64));
    return a;
}

class SolverFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SolverFuzz, EvaluatorWitnessImpliesSat)
{
    Rng rng(5000 + GetParam());
    ExprContext ctx;
    for (int i = 0; i < fuzzIters(20); ++i) {
        Expr f = randomBool(ctx, rng, 3);
        // Find a witness by random search; if none found, skip.
        bool witnessed = false;
        for (int j = 0; j < 30 && !witnessed; ++j)
            witnessed = expr::evalBool(f, randomAssignment(rng));
        if (!witnessed)
            continue;
        EXPECT_NE(checkSat(ctx, f), Outcome::Unsat)
            << expr::toString(f);
    }
}

TEST_P(SolverFuzz, SatModelsSatisfyFormula)
{
    Rng rng(6000 + GetParam());
    ExprContext ctx;
    for (int i = 0; i < fuzzIters(15); ++i) {
        Expr f = randomBool(ctx, rng, 3);
        SmtSolver solver(ctx, f);
        if (solver.solve(50000) != Outcome::Sat)
            continue;
        auto model = solver.model();
        EXPECT_TRUE(expr::evalBool(f, model)) << expr::toString(f);
    }
}

TEST_P(SolverFuzz, FormulaAndNegationUnsat)
{
    Rng rng(7000 + GetParam());
    ExprContext ctx;
    for (int i = 0; i < fuzzIters(15); ++i) {
        Expr f = randomBool(ctx, rng, 2);
        EXPECT_EQ(checkSat(ctx, ctx.land(f, ctx.lnot(f))),
                  Outcome::Unsat);
    }
}

TEST_P(SolverFuzz, SamplerModelsSatisfyFormula)
{
    Rng rng(8000 + GetParam());
    ExprContext ctx;
    for (int i = 0; i < fuzzIters(15); ++i) {
        Expr f = randomBool(ctx, rng, 3);
        SamplerConfig cfg;
        cfg.maxIters = 300;
        cfg.maxRestarts = 2;
        RepairSampler sampler(ctx, f, rng, cfg);
        auto model = sampler.sample();
        if (!model)
            continue; // incomplete: fine
        EXPECT_TRUE(expr::evalBool(f, *model)) << expr::toString(f);
        // Agreement: if the sampler found a model, CDCL must not
        // claim unsat.
        EXPECT_NE(checkSat(ctx, f), Outcome::Unsat);
    }
}

TEST_P(SolverFuzz, SamplerAndCdclAgreeWithEvaluatorOnBvTerms)
{
    // Direct term-level check: assert (t == eval(t)) under a pinned
    // assignment; must be Sat.
    Rng rng(9000 + GetParam());
    ExprContext ctx;
    for (int i = 0; i < fuzzIters(10); ++i) {
        Expr t = randomBv(ctx, rng, 3);
        expr::Assignment a = randomAssignment(rng);
        const std::uint64_t want = expr::evalBv(t, a);
        Expr f = ctx.eq(t, ctx.bv(want));
        for (const auto &[name, value] : a.bvVars)
            f = ctx.land(f, ctx.eq(ctx.bvVar(name), ctx.bv(value)));
        // Pin the memory cells the term reads (evaluator defaults the
        // rest to zero, so pin those reads too).
        std::function<void(Expr)> pin = [&](Expr e) {
            for (Expr r : expr::collectReads(e)) {
                const std::uint64_t addr = expr::evalBv(r->kids[1], a);
                const std::uint64_t val = a.mems["m"].load(addr);
                f = ctx.land(f, ctx.eq(ctx.read(ctx.memVar("m"),
                                                ctx.bv(addr)),
                                       ctx.bv(val)));
                // Tie the symbolic read's address to the same cell.
                f = ctx.land(f, ctx.eq(r->kids[1], ctx.bv(addr)));
            }
        };
        pin(t);
        EXPECT_EQ(checkSat(ctx, f), Outcome::Sat)
            << expr::toString(t);
    }
}

INSTANTIATE_TEST_SUITE_P(Rounds, SolverFuzz, ::testing::Range(0, 6));

} // namespace
} // namespace scamv::smt
