/** @file Unit tests for the template program generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "bir/cfg.hh"
#include "gen/templates.hh"

namespace scamv::gen {
namespace {

using bir::InstrKind;

class TemplateTest
    : public ::testing::TestWithParam<TemplateKind>
{
};

TEST_P(TemplateTest, ProgramsAlwaysValidate)
{
    ProgramGenerator g(GetParam(), 1);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(g.next().validate(), "") << i;
}

TEST_P(TemplateTest, DeterministicFromSeed)
{
    ProgramGenerator a(GetParam(), 7), b(GetParam(), 7);
    for (int i = 0; i < 10; ++i) {
        // Names include a counter; compare the rendering of the body.
        EXPECT_EQ(a.next().toString(), b.next().toString());
    }
}

TEST_P(TemplateTest, DifferentSeedsProduceVariety)
{
    ProgramGenerator a(GetParam(), 1), b(GetParam(), 2);
    int same = 0;
    for (int i = 0; i < 20; ++i)
        same += a.next().toString() == b.next().toString();
    EXPECT_LT(same, 15);
}

TEST_P(TemplateTest, ProgramsAreAcyclic)
{
    ProgramGenerator g(GetParam(), 3);
    for (int i = 0; i < 20; ++i) {
        bir::Program p = g.next();
        EXPECT_TRUE(bir::Cfg(p).acyclic()) << p.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTemplates, TemplateTest,
    ::testing::Values(TemplateKind::Stride, TemplateKind::A,
                      TemplateKind::B, TemplateKind::C, TemplateKind::D),
    [](const ::testing::TestParamInfo<TemplateKind> &info) {
        switch (info.param) {
          case TemplateKind::Stride: return std::string("Stride");
          case TemplateKind::A: return std::string("A");
          case TemplateKind::B: return std::string("B");
          case TemplateKind::C: return std::string("C");
          case TemplateKind::D: return std::string("D");
        }
        return std::string("Unknown");
    });

TEST(StrideTemplate, ThreeToFiveEquidistantLoads)
{
    ProgramGenerator g(TemplateKind::Stride, 11);
    for (int i = 0; i < 30; ++i) {
        bir::Program p = g.next();
        int loads = 0;
        std::uint64_t prev = 0;
        std::int64_t delta = -1;
        bool equidistant = true;
        for (const auto &ins : p.instrs()) {
            if (ins.kind != InstrKind::Load)
                continue;
            if (!ins.useImm)
                continue;
            if (loads > 0) {
                const std::int64_t d =
                    static_cast<std::int64_t>(ins.imm - prev);
                if (loads == 1)
                    delta = d;
                else if (d != delta && ins.imm != 0)
                    equidistant = false;
            }
            prev = ins.imm;
            ++loads;
        }
        EXPECT_GE(loads, 3);
        EXPECT_LE(loads, 6); // 5 stride loads + optional pointer chase
        EXPECT_TRUE(equidistant) << p.toString();
        EXPECT_EQ(p.branchCount(), 0);
    }
}

TEST(StrideTemplate, DistanceIsLineMultiple)
{
    ProgramGenerator g(TemplateKind::Stride, 13);
    for (int i = 0; i < 30; ++i) {
        bir::Program p = g.next();
        for (const auto &ins : p.instrs())
            if (ins.kind == InstrKind::Load && ins.useImm) {
                EXPECT_EQ(ins.imm % 64, 0u);
            }
    }
}

TEST(TemplateA, StructureAndSideConstraints)
{
    ProgramGenerator g(TemplateKind::A, 17);
    for (int i = 0; i < 50; ++i) {
        bir::Program p = g.next();
        ASSERT_EQ(p.size(), 4u) << p.toString();
        EXPECT_EQ(p[0].kind, InstrKind::Load);
        EXPECT_EQ(p[1].kind, InstrKind::Branch);
        EXPECT_EQ(p[2].kind, InstrKind::Load);
        EXPECT_EQ(p[3].kind, InstrKind::Halt);
        // Body load is indexed by the first load's destination.
        EXPECT_EQ(p[2].rm, p[0].rd);
        // r2 != r1 and r4 not in {r1, r2}.
        const int r1 = p[0].rm, r2 = p[0].rd, r4 = p[1].rm;
        EXPECT_NE(r2, r1);
        EXPECT_NE(r4, r1);
        EXPECT_NE(r4, r2);
    }
}

TEST(TemplateB, LoadCountsInRange)
{
    ProgramGenerator g(TemplateKind::B, 19);
    std::set<int> pre_counts, body_counts;
    for (int i = 0; i < 60; ++i) {
        bir::Program p = g.next();
        int branch_at = -1;
        for (std::size_t j = 0; j < p.size(); ++j)
            if (p[j].kind == InstrKind::Branch)
                branch_at = static_cast<int>(j);
        ASSERT_GE(branch_at, 0);
        pre_counts.insert(branch_at);
        int body = 0;
        for (std::size_t j = branch_at + 1; j < p.size(); ++j)
            body += p[j].kind == InstrKind::Load;
        body_counts.insert(body);
        EXPECT_GE(body, 1);
        EXPECT_LE(body, 2);
        EXPECT_LE(branch_at, 2);
    }
    EXPECT_GE(pre_counts.size(), 2u); // variety: 0..2 pre-loads
    EXPECT_EQ(body_counts.size(), 2u);
}

TEST(TemplateC, SecondLoadDependsOnFirst)
{
    ProgramGenerator g(TemplateKind::C, 23);
    for (int i = 0; i < 50; ++i) {
        bir::Program p = g.next();
        // Find the two body loads.
        std::vector<std::size_t> loads;
        std::size_t branch_at = 0;
        for (std::size_t j = 0; j < p.size(); ++j) {
            if (p[j].kind == InstrKind::Branch)
                branch_at = j;
            if (p[j].kind == InstrKind::Load && j > branch_at &&
                branch_at > 0)
                loads.push_back(j);
        }
        // (branch may be instruction 0 when there is no pre-load)
        loads.clear();
        for (std::size_t j = 0; j < p.size(); ++j)
            if (p[j].kind == InstrKind::Branch)
                branch_at = j;
        for (std::size_t j = branch_at + 1; j < p.size(); ++j)
            if (p[j].kind == InstrKind::Load)
                loads.push_back(j);
        ASSERT_EQ(loads.size(), 2u) << p.toString();
        const bir::Reg first_dst = p[loads[0]].rd;
        const auto srcs = p[loads[1]].sourceRegs();
        EXPECT_TRUE(std::find(srcs.begin(), srcs.end(), first_dst) !=
                    srcs.end())
            << p.toString();
    }
}

TEST(TemplateD, DeadLoadsAfterJump)
{
    ProgramGenerator g(TemplateKind::D, 29);
    for (int i = 0; i < 50; ++i) {
        bir::Program p = g.next();
        int jump_at = -1;
        for (std::size_t j = 0; j < p.size(); ++j)
            if (p[j].kind == InstrKind::Jump)
                jump_at = static_cast<int>(j);
        ASSERT_GE(jump_at, 0) << p.toString();
        // Jump goes to the final halt, over at least one load.
        EXPECT_EQ(p[p[jump_at].target].kind, InstrKind::Halt);
        int dead_loads = 0;
        for (int j = jump_at + 1; j < p[jump_at].target; ++j)
            dead_loads += p[j].kind == InstrKind::Load;
        EXPECT_GE(dead_loads, 1);
        EXPECT_EQ(p.branchCount(), 0);
    }
}

TEST(Generator, NamesEncodeTemplateAndCounter)
{
    ProgramGenerator g(TemplateKind::A, 31);
    EXPECT_EQ(g.next().name(), "Template A#0");
    EXPECT_EQ(g.next().name(), "Template A#1");
}

} // namespace
} // namespace scamv::gen
