/** @file Unit tests for the bit-blaster, cross-checked against the
 * concrete evaluator on random inputs. */

#include <gtest/gtest.h>

#include "bv/bitblast.hh"
#include "expr/eval.hh"
#include "support/rng.hh"

namespace scamv::bv {
namespace {

using expr::Expr;
using expr::ExprContext;

/**
 * Check that asserting (result == expected) is Sat and asserting
 * (result != expected) under fixed inputs is Unsat — i.e. the circuit
 * computes exactly the evaluator's function.
 */
void
checkCircuit(ExprContext &ctx, Expr term,
             const std::vector<std::pair<std::string, std::uint64_t>>
                 &inputs,
             std::uint64_t expected)
{
    sat::Solver solver;
    BitBlaster blaster(solver);
    for (const auto &[name, value] : inputs)
        blaster.assertTrue(ctx.eq(ctx.bvVar(name), ctx.bv(value)));
    blaster.assertTrue(ctx.eq(term, ctx.bv(expected)));
    EXPECT_EQ(solver.solve(), sat::Result::Sat)
        << expr::toString(term) << " != " << expected;
}

class BvOpTest : public ::testing::TestWithParam<int>
{
  protected:
    ExprContext ctx;
};

TEST_P(BvOpTest, RandomCrossCheckAgainstEvaluator)
{
    Rng rng(1234 + GetParam());
    ExprContext ctx;
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");

    const std::uint64_t va = rng.next();
    const std::uint64_t vb =
        GetParam() % 3 == 0 ? rng.below(70) : rng.next(); // small shifts
    expr::Assignment asg;
    asg.bvVars["a"] = va;
    asg.bvVars["b"] = vb;

    const std::vector<Expr> terms = {
        ctx.add(a, b),        ctx.sub(a, b),   ctx.bvAnd(a, b),
        ctx.bvOr(a, b),       ctx.bvXor(a, b), ctx.bvNot(a),
        ctx.neg(a),           ctx.shl(a, b),   ctx.lshr(a, b),
        ctx.ashr(a, b),
        ctx.ite(ctx.ult(a, b), a, b),
    };
    for (Expr t : terms) {
        const std::uint64_t expected = expr::evalBv(t, asg);
        checkCircuit(ctx, t, {{"a", va}, {"b", vb}}, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, BvOpTest,
                         ::testing::Range(0, 12));

TEST(BitBlast, MulSmallCrossCheck)
{
    ExprContext ctx;
    Rng rng(77);
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    const std::uint64_t va = rng.below(1 << 20);
    const std::uint64_t vb = rng.below(1 << 20);
    checkCircuit(ctx, ctx.mul(a, b), {{"a", va}, {"b", vb}}, va * vb);
}

class BvCmpTest : public ::testing::TestWithParam<int>
{
};

TEST_P(BvCmpTest, ComparisonsMatchEvaluator)
{
    ExprContext ctx;
    Rng rng(4321 + GetParam());
    Expr a = ctx.bvVar("a");
    Expr b = ctx.bvVar("b");
    // Mix of near and far values, including sign-boundary cases.
    std::uint64_t va = rng.next();
    std::uint64_t vb = rng.chance(0.3) ? va + rng.below(3) - 1
                                       : rng.next();
    if (GetParam() == 0) {
        va = 0x8000000000000000ULL;
        vb = 1;
    }
    expr::Assignment asg;
    asg.bvVars["a"] = va;
    asg.bvVars["b"] = vb;

    for (Expr pred : {ctx.eq(a, b), ctx.ult(a, b), ctx.ule(a, b),
                      ctx.slt(a, b), ctx.sle(a, b)}) {
        const bool expected = expr::evalBool(pred, asg);
        sat::Solver solver;
        BitBlaster blaster(solver);
        blaster.assertTrue(ctx.eq(a, ctx.bv(va)));
        blaster.assertTrue(ctx.eq(b, ctx.bv(vb)));
        blaster.assertTrue(expected ? pred : ctx.lnot(pred));
        EXPECT_EQ(solver.solve(), sat::Result::Sat)
            << expr::toString(pred) << " va=" << va << " vb=" << vb;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, BvCmpTest,
                         ::testing::Range(0, 10));

TEST(BitBlast, SolveForInput)
{
    // Find x such that x + 5 == 12.
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr x = ctx.bvVar("x");
    blaster.assertTrue(ctx.eq(ctx.add(x, ctx.bv(5)), ctx.bv(12)));
    ASSERT_EQ(solver.solve(), sat::Result::Sat);
    EXPECT_EQ(blaster.bvModel(x), 7u);
}

TEST(BitBlast, SolveInequalityConjunction)
{
    // 100 <= x < 108 and x & 7 == 4  =>  x == 104... wait: 104 & 7 = 0.
    // Use x & 7 == 4 -> x == 100? 100&7=4. Yes.
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr x = ctx.bvVar("x");
    blaster.assertTrue(ctx.ule(ctx.bv(100), x));
    blaster.assertTrue(ctx.ult(x, ctx.bv(108)));
    blaster.assertTrue(ctx.eq(ctx.bvAnd(x, ctx.bv(7)), ctx.bv(4)));
    ASSERT_EQ(solver.solve(), sat::Result::Sat);
    EXPECT_EQ(blaster.bvModel(x), 100u);
}

TEST(BitBlast, UnsatArithmeticContradiction)
{
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr x = ctx.bvVar("x");
    blaster.assertTrue(ctx.ult(x, ctx.bv(4)));
    blaster.assertTrue(ctx.ult(ctx.bv(10), x));
    EXPECT_EQ(solver.solve(), sat::Result::Unsat);
}

TEST(BitBlast, OverflowSemantics)
{
    // x + 1 == 0 has the unique solution x == 2^64-1.
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr x = ctx.bvVar("x");
    blaster.assertTrue(ctx.eq(ctx.add(x, ctx.bv(1)), ctx.bv(0)));
    ASSERT_EQ(solver.solve(), sat::Result::Sat);
    EXPECT_EQ(blaster.bvModel(x), UINT64_MAX);
}

TEST(BitBlast, BooleanStructure)
{
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr p = ctx.boolVar("p");
    Expr q = ctx.boolVar("q");
    blaster.assertTrue(ctx.lor(p, q));
    blaster.assertTrue(ctx.lnot(p));
    ASSERT_EQ(solver.solve(), sat::Result::Sat);
    EXPECT_FALSE(blaster.boolModel(p));
    EXPECT_TRUE(blaster.boolModel(q));
}

TEST(BitBlast, SharedSubtermsEncodedOnce)
{
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr x = ctx.bvVar("x");
    Expr sum = ctx.add(x, ctx.bv(3));
    const int vars_initial = solver.numVars();
    blaster.assertTrue(ctx.eq(sum, ctx.bv(10)));
    const int first_delta = solver.numVars() - vars_initial;
    // A second constraint over the same subterm must reuse the adder
    // circuit: only the new comparator gates are added.
    blaster.assertTrue(ctx.ule(sum, ctx.bv(10)));
    const int second_delta =
        solver.numVars() - vars_initial - first_delta;
    EXPECT_LT(second_delta, first_delta);
}

TEST(BitBlast, CacheSetIndexExtraction)
{
    // The Mline observation shape: ((x >> 6) & 127) == 61 must have a
    // solution whose concrete set index is 61.
    ExprContext ctx;
    sat::Solver solver;
    BitBlaster blaster(solver);
    Expr x = ctx.bvVar("x");
    Expr set = ctx.bvAnd(ctx.lshr(x, ctx.bv(6)), ctx.bv(127));
    blaster.assertTrue(ctx.eq(set, ctx.bv(61)));
    blaster.assertTrue(ctx.ule(ctx.bv(0x80000), x));
    ASSERT_EQ(solver.solve(), sat::Result::Sat);
    const std::uint64_t v = blaster.bvModel(x);
    EXPECT_EQ((v >> 6) & 127, 61u);
    EXPECT_GE(v, 0x80000u);
}

} // namespace
} // namespace scamv::bv
