/** @file Unit tests for relation synthesis (Eq. 1 + refinement). */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "bir/transform.hh"
#include "expr/eval.hh"
#include "obs/models.hh"
#include "rel/relation.hh"
#include "smt/solver.hh"
#include "sym/symexec.hh"

namespace scamv::rel {
namespace {

using expr::Expr;
using expr::ExprContext;

bir::Program
prog(const char *src)
{
    auto r = bir::assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

struct Synth {
    ExprContext ctx;
    std::unique_ptr<RelationSynthesizer> rel;
    std::vector<sym::PathResult> trainingPaths;

    Synth(const char *src, obs::ModelKind m1,
          std::optional<obs::ModelKind> m2 = std::nullopt,
          bool instrument = false)
    {
        bir::Program p = prog(src);
        bir::Program mp = instrument ? bir::instrumentSpeculation(p) : p;
        std::unique_ptr<sym::Annotator> annot;
        if (m2) {
            annot = std::make_unique<obs::RefinementPair>(
                obs::makeModel(m1), obs::makeModel(*m2));
        } else {
            annot = obs::makeModel(m1);
        }
        auto p1 = sym::execute(ctx, mp, *annot, {"_1"});
        auto p2 = sym::execute(ctx, mp, *annot, {"_2"});
        auto mpc = obs::makeModel(obs::ModelKind::Mpc);
        trainingPaths = sym::execute(ctx, mp, *mpc, {"_t"});
        RelationConfig cfg;
        cfg.refine = m2.has_value();
        rel = std::make_unique<RelationSynthesizer>(
            ctx, std::move(p1), std::move(p2), cfg);
    }
};

TEST(Relation, MctSamePathPairsOnly)
{
    // Mct observes the pc: only same-path pairs are structurally
    // compatible (different paths have different pc constants).
    Synth s("b.lt x0, x1, end\nldr x2, [x0]\nend: ret\n",
            obs::ModelKind::Mct);
    EXPECT_EQ(s.rel->pairs().size(), 2u);
    for (const auto &pair : s.rel->pairs())
        EXPECT_EQ(s.rel->paths1()[pair.idx1].pathId(),
                  s.rel->paths2()[pair.idx2].pathId());
}

TEST(Relation, FormulaForcesEqualAddresses)
{
    Synth s("ldr x2, [x0]\nret\n", obs::ModelKind::Mct);
    ASSERT_EQ(s.rel->pairs().size(), 1u);
    Expr f = s.rel->formulaFor(s.rel->pairs()[0]);
    smt::SmtSolver solver(s.ctx, f);
    ASSERT_EQ(solver.solve(), smt::Outcome::Sat);
    auto model = solver.model();
    EXPECT_EQ(model.bv("x0_1"), model.bv("x0_2"));
    // Region constraint applied.
    EXPECT_GE(model.bv("x0_1"), 0x80000u);
}

TEST(Relation, RefinementRequiresDifference)
{
    // Mct vs Mspec on the SiSCloak shape: base equal (addresses) and
    // transient addresses different.
    Synth s("ldr x2, [x0, x1]\n"
            "b.ne x1, x4, end\n"
            "ldr x6, [x5, x2]\n"
            "end: ret\n",
            obs::ModelKind::Mct, obs::ModelKind::Mspec, true);
    // Find the taken-path pair (branch skips body; body speculated).
    bool found = false;
    for (const auto &pair : s.rel->pairs()) {
        const auto &path = s.rel->paths1()[pair.idx1];
        if (!path.decisions.empty() && path.decisions[0] &&
            !path.transientLoadAddrs.empty()) {
            found = true;
            Expr f = s.rel->formulaFor(pair);
            smt::SmtSolver solver(s.ctx, f);
            ASSERT_EQ(solver.solve(), smt::Outcome::Sat);
            auto model = solver.model();
            EXPECT_TRUE(expr::evalBool(f, model));
            // Architectural equality.
            EXPECT_EQ(model.bv("x0_1") + model.bv("x1_1"),
                      model.bv("x0_2") + model.bv("x1_2"));
            // Transient addresses differ: x5 + mem[x0+x1].
            const std::uint64_t t1 =
                model.bv("x5_1") +
                model.mems["mem_1"].load(model.bv("x0_1") +
                                         model.bv("x1_1"));
            const std::uint64_t t2 =
                model.bv("x5_2") +
                model.mems["mem_2"].load(model.bv("x0_2") +
                                         model.bv("x1_2"));
            EXPECT_NE(t1, t2);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Relation, RefinementSkipsPairsWithoutRefinedObs)
{
    // On the fall-through path the body executes architecturally and
    // the taken side contributes no transient loads: no refined
    // observations, so refinement-driven search skips that pair.
    Synth s("b.ne x1, x4, end\nldr x6, [x5, x2]\nend: ret\n",
            obs::ModelKind::Mct, obs::ModelKind::Mspec, true);
    for (const auto &pair : s.rel->pairs()) {
        const auto &path = s.rel->paths1()[pair.idx1];
        EXPECT_TRUE(path.decisions[0])
            << "fall-through pair should have been dropped";
    }
}

TEST(Relation, WithoutRefinementAllSamePathPairsKept)
{
    Synth s("b.ne x1, x4, end\nldr x6, [x5, x2]\nend: ret\n",
            obs::ModelKind::Mct);
    EXPECT_EQ(s.rel->pairs().size(), 2u);
}

TEST(Relation, MpartAllowsCrossPathEquivalence)
{
    // Mpart observes pc too, so pairs are same-path; but within a
    // path, states differing outside AR are related.
    Synth s("ldr x2, [x0]\nret\n", obs::ModelKind::Mpart,
            obs::ModelKind::MpartRefined);
    ASSERT_EQ(s.rel->pairs().size(), 1u);
    Expr f = s.rel->formulaFor(s.rel->pairs()[0]);
    smt::SmtSolver solver(s.ctx, f);
    ASSERT_EQ(solver.solve(), smt::Outcome::Sat);
    auto model = solver.model();
    // Refinement: addresses differ; Mpart equality: both outside AR
    // or equal. Hence both outside AR.
    obs::AttackerRegion ar;
    EXPECT_NE(model.bv("x0_1"), model.bv("x0_2"));
    EXPECT_FALSE(ar.contains(model.bv("x0_1")));
    EXPECT_FALSE(ar.contains(model.bv("x0_2")));
}

TEST(Relation, LineCoverageConstraintPinsSetIndex)
{
    Synth s("ldr x2, [x0]\nret\n", obs::ModelKind::Mpart,
            obs::ModelKind::MpartRefined);
    Rng rng(3);
    auto cov = s.rel->lineCoverageConstraint(s.rel->pairs()[0], rng);
    ASSERT_TRUE(cov.has_value());
    EXPECT_GE(cov->class1, 0); // the load's class id is reported back
    Expr f = s.ctx.land(s.rel->formulaFor(s.rel->pairs()[0]),
                        cov->constraint);
    smt::SmtSolver solver(s.ctx, f);
    // The sampled class may contradict the relation (e.g. both pinned
    // inside AR with different addresses); retry a few draws.
    smt::Outcome o = solver.solve();
    int tries = 0;
    while (o != smt::Outcome::Sat && tries < 10) {
        auto cov2 = s.rel->lineCoverageConstraint(s.rel->pairs()[0], rng);
        smt::SmtSolver s2(s.ctx,
                          s.ctx.land(s.rel->formulaFor(s.rel->pairs()[0]),
                                     cov2->constraint));
        o = s2.solve();
        ++tries;
    }
    EXPECT_EQ(o, smt::Outcome::Sat);
}

TEST(Relation, LineCoverageConstraintForPinsChosenClass)
{
    // The explicit-class overload pins exactly the class the adaptive
    // scheduler asked for: the solved model's first access falls into
    // that set index.
    Synth s("ldr x2, [x0]\nret\n", obs::ModelKind::Mpart,
            obs::ModelKind::MpartRefined);
    obs::CacheGeometry geom;
    auto cov =
        s.rel->lineCoverageConstraintFor(s.rel->pairs()[0], 5, 5);
    ASSERT_TRUE(cov.has_value());
    EXPECT_EQ(cov->class1, 5);
    smt::SmtSolver solver(
        s.ctx, s.ctx.land(s.rel->formulaFor(s.rel->pairs()[0]),
                          cov->constraint));
    ASSERT_EQ(solver.solve(), smt::Outcome::Sat);
    auto model = solver.model();
    EXPECT_EQ(geom.setOf(model.bv("x0_1")), 5u);
}

TEST(Relation, NoMemoryAccessNoLineCoverage)
{
    Synth s("add x1, x0, #8\nret\n", obs::ModelKind::Mct);
    Rng rng(4);
    EXPECT_FALSE(
        s.rel->lineCoverageConstraint(s.rel->pairs()[0], rng).has_value());
}

TEST(Relation, TrainingFormulaTakesOtherPath)
{
    Synth s("b.ne x1, x4, end\nldr x6, [x5, x2]\nend: ret\n",
            obs::ModelKind::Mct);
    for (const auto &pair : s.rel->pairs()) {
        const auto &tested = s.rel->paths1()[pair.idx1];
        auto f = RelationSynthesizer::trainingFormula(
            s.ctx, s.trainingPaths, tested, RelationConfig{});
        ASSERT_TRUE(f.has_value());
        smt::SmtSolver solver(s.ctx, *f);
        ASSERT_EQ(solver.solve(), smt::Outcome::Sat);
        auto model = solver.model();
        // The training state must take the opposite branch direction:
        // tested taken (x1 != x4) => training has x1 == x4.
        if (tested.decisions[0])
            EXPECT_EQ(model.bv("x1_t"), model.bv("x4_t"));
        else
            EXPECT_NE(model.bv("x1_t"), model.bv("x4_t"));
    }
}

TEST(Relation, TrainingFormulaNoneForStraightLine)
{
    Synth s("ldr x2, [x0]\nret\n", obs::ModelKind::Mct);
    auto f = RelationSynthesizer::trainingFormula(
        s.ctx, s.trainingPaths, s.rel->paths1()[0], RelationConfig{});
    EXPECT_FALSE(f.has_value());
}

TEST(Relation, FullEquivalenceRelationEvaluates)
{
    Synth s("b.lt x0, x1, end\nldr x2, [x0]\nend: ret\n",
            obs::ModelKind::Mct);
    Expr full = fullEquivalenceRelation(s.ctx, s.rel->paths1(),
                                        s.rel->paths2());
    // Two identical states are always related.
    expr::Assignment a;
    for (const char *r : {"x0", "x1", "x2"}) {
        a.bvVars[std::string(r) + "_1"] = 7;
        a.bvVars[std::string(r) + "_2"] = 7;
    }
    EXPECT_TRUE(expr::evalBool(full, a));
    // States on different paths are not related (different obs).
    a.bvVars["x1_2"] = 0xFFFF;
    a.bvVars["x0_2"] = 0xFFFFFF; // x0 >= x1+...: not taken for s2
    EXPECT_FALSE(expr::evalBool(full, a));
}

TEST(Relation, Mspec1RefinedByMspecOnIndependentLoads)
{
    // Template-B shape: two independent body loads.  Validating
    // Mspec1 against Mspec must require the *second* transient load
    // to differ while the first stays equal.
    Synth s("b.ne x1, x4, end\n"
            "ldr x6, [x5, x3]\n"
            "ldr x8, [x7, x2]\n"
            "end: ret\n",
            obs::ModelKind::Mspec1, obs::ModelKind::Mspec, true);
    bool checked = false;
    for (const auto &pair : s.rel->pairs()) {
        const auto &path = s.rel->paths1()[pair.idx1];
        if (path.transientLoadAddrs.size() < 2)
            continue;
        checked = true;
        Expr f = s.rel->formulaFor(pair);
        smt::SmtSolver solver(s.ctx, f);
        ASSERT_EQ(solver.solve(), smt::Outcome::Sat);
        auto model = solver.model();
        // First transient load equal across states.
        EXPECT_EQ(model.bv("x5_1") + model.bv("x3_1"),
                  model.bv("x5_2") + model.bv("x3_2"));
        // Second transient load differs.
        EXPECT_NE(model.bv("x7_1") + model.bv("x2_1"),
                  model.bv("x7_2") + model.bv("x2_2"));
    }
    EXPECT_TRUE(checked);
}

} // namespace
} // namespace scamv::rel
