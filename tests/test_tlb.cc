/** @file Tests for the TLB substrate, the TLB-snapshot measurement
 * channel, and the page-granular observational models — the "new
 * channel" extension workflow of Section 2.3. */

#include <gtest/gtest.h>

#include "bir/asm.hh"
#include "core/pipeline.hh"
#include "core/repair.hh"
#include "harness/platform.hh"
#include "hw/tlb.hh"

namespace scamv {
namespace {

using harness::Channel;
using harness::PlatformConfig;
using harness::ProgramInput;
using harness::TestCase;
using harness::Verdict;

bir::Program
prog(const char *src)
{
    auto r = bir::assemble(src);
    EXPECT_TRUE(r.ok()) << r.error;
    return r.program;
}

TEST(Tlb, MissThenHitSamePage)
{
    hw::Tlb tlb;
    EXPECT_FALSE(tlb.access(0x80000));
    EXPECT_TRUE(tlb.access(0x80000 + 4095)); // same 4 KiB page
    EXPECT_FALSE(tlb.access(0x81000));       // next page
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(tlb.hits(), 1u);
}

TEST(Tlb, ProbeDoesNotFill)
{
    hw::Tlb tlb;
    EXPECT_FALSE(tlb.probe(0x80000));
    EXPECT_FALSE(tlb.access(0x80000));
    EXPECT_TRUE(tlb.probe(0x80000));
}

TEST(Tlb, LruEvictionWhenFull)
{
    hw::TlbConfig cfg;
    cfg.entries = 4;
    hw::Tlb tlb(cfg);
    for (int i = 0; i < 4; ++i)
        tlb.access(0x80000 + i * 0x1000);
    tlb.access(0x80000); // refresh page 0: page 1 is LRU
    tlb.access(0x80000 + 4 * 0x1000);
    EXPECT_TRUE(tlb.probe(0x80000));
    EXPECT_FALSE(tlb.probe(0x80000 + 0x1000));
    EXPECT_TRUE(tlb.probe(0x80000 + 4 * 0x1000));
}

TEST(Tlb, SnapshotSortedPages)
{
    hw::Tlb tlb;
    tlb.access(0x85000);
    tlb.access(0x80000);
    const hw::TlbState s = tlb.snapshot();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0], 0x80u); // 0x80000 / 4096
    EXPECT_EQ(s[1], 0x85u);
}

TEST(Tlb, ResetClears)
{
    hw::Tlb tlb;
    tlb.access(0x80000);
    tlb.reset();
    EXPECT_TRUE(tlb.snapshot().empty());
}

TEST(TlbCore, ArchitecturalAccessesFillTlb)
{
    hw::Core core;
    auto r = core.run(prog("mov x0, #0x80000\n"
                           "ldr x1, [x0]\n"
                           "ldr x2, [x0, #8]\n"
                           "str x1, [x0, #0x2000]\n"
                           "ret\n"),
                      hw::ArchState{});
    EXPECT_EQ(r.tlbMisses, 2u); // pages 0x80 and 0x82
    EXPECT_TRUE(core.tlb().probe(0x80000));
    EXPECT_TRUE(core.tlb().probe(0x82000));
}

TEST(TlbCore, TransientLoadsFillTlbToo)
{
    // Translation precedes the squash: the speculative side channel.
    auto p = prog("b.eq x0, x1, end\n"
                  "ldr x2, [x3]\n"
                  "end: ret\n");
    hw::Core core;
    hw::ArchState train;
    train.regs[0] = 1;
    train.regs[1] = 2;
    train.regs[3] = 0x90000;
    for (int i = 0; i < 4; ++i)
        core.run(p, train);
    core.tlb().reset();
    hw::ArchState attack = train;
    attack.regs[0] = 5;
    attack.regs[1] = 5; // taken, mispredicted
    auto r = core.run(p, attack);
    EXPECT_EQ(r.transientLoadsIssued, 1u);
    EXPECT_TRUE(core.tlb().probe(0x90000));
}

TEST(TlbChannel, SamePageDifferentLineIndistinguishable)
{
    // The TLB sees pages, not lines: two victim addresses in the same
    // page are equivalent through this channel even though the cache
    // channel distinguishes them.
    PlatformConfig cfg;
    cfg.channel = Channel::TlbSnapshot;
    harness::Platform platform(cfg);
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1.regs.regs[0] = 0x80000;
    tc.s2.regs.regs[0] = 0x80000 + 5 * 64; // same page, other line
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Indistinguishable);

    PlatformConfig snap;
    harness::Platform cache_platform(snap);
    EXPECT_EQ(cache_platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(TlbChannel, DifferentPagesDistinguishable)
{
    PlatformConfig cfg;
    cfg.channel = Channel::TlbSnapshot;
    harness::Platform platform(cfg);
    auto p = prog("ldr x1, [x0]\nret\n");
    TestCase tc;
    tc.s1.regs.regs[0] = 0x80000;
    tc.s2.regs.regs[0] = 0x83000;
    EXPECT_EQ(platform.runExperiment(p, tc).verdict,
              Verdict::Counterexample);
}

TEST(TlbChannel, SpeculativeTlbLeak)
{
    // SiSCloak through the TLB: architecturally page-equivalent
    // states whose transient loads touch different pages.
    PlatformConfig cfg;
    cfg.channel = Channel::TlbSnapshot;
    harness::Platform platform(cfg);
    auto p = prog("ldr x2, [x0, x1]\n"
                  "b.ne x1, x4, end\n"
                  "ldr x6, [x5, x2]\n"
                  "end: ret\n");
    auto mk = [](std::uint64_t ptr) {
        ProgramInput in;
        in.regs.regs[0] = 0x80000;
        in.regs.regs[1] = 8;
        in.regs.regs[4] = 99;
        in.mem = {{0x80008, ptr}};
        return in;
    };
    TestCase tc;
    tc.s1 = mk(0x90000);
    tc.s2 = mk(0x94000); // different page
    ProgramInput train = mk(0x88000);
    train.regs.regs[4] = 8; // takes the other path
    EXPECT_EQ(platform.runExperiment(p, tc, train).verdict,
              Verdict::Counterexample);
}

TEST(TlbPipeline, MpageWithMspecPageFindsTlbLeaks)
{
    // Full pipeline over the new channel: validate the page-granular
    // constant-time model with its speculative refinement.
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mpage;
    cfg.refinement = obs::ModelKind::MspecPage;
    cfg.train = true;
    cfg.programs = 6;
    cfg.testsPerProgram = 8;
    cfg.seed = 91;
    cfg.platform.channel = Channel::TlbSnapshot;
    auto stats = core::Pipeline(cfg).run();
    EXPECT_GT(stats.experiments, 0);
    EXPECT_GT(stats.counterexamples, 0);
}

TEST(TlbPipeline, MpageBaselineIsNearlyBlind)
{
    // Unguided Mpage validation may get the occasional lucky hit
    // (residual state asymmetry, as on the cache channel) but must be
    // far below the refinement-guided campaign above.
    core::PipelineConfig cfg;
    cfg.templateKind = gen::TemplateKind::A;
    cfg.model = obs::ModelKind::Mpage;
    cfg.train = true;
    cfg.programs = 6;
    cfg.testsPerProgram = 8;
    cfg.seed = 91;
    cfg.platform.channel = Channel::TlbSnapshot;
    auto baseline = core::Pipeline(cfg).run();

    cfg.refinement = obs::ModelKind::MspecPage;
    auto refined = core::Pipeline(cfg).run();
    EXPECT_LT(4 * baseline.counterexamples, refined.counterexamples);
}

TEST(TlbPipeline, RepairLatticeCoversMpage)
{
    using obs::ModelKind;
    EXPECT_EQ(core::repairLattice(ModelKind::Mpage),
              (std::vector<ModelKind>{ModelKind::Mpage,
                                      ModelKind::MspecPage}));
}

} // namespace
} // namespace scamv
